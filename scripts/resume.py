"""Resume CLI: finish a crash-interrupted sweep from its run directory.

Any sweep started with ``--resume RUN_DIR`` (``scripts/chaos.py`` /
``scripts/fleet.py``) write-ahead journals its progress into RUN_DIR:
the spec, one results row per completed grid point, mid-point simulator
snapshots, and a quarantine list.  After a crash, SIGKILL, or OOM this
tool reopens the directory from ``spec.json`` alone — no original
command line needed — and runs whatever the journal says is missing.
Resumed output merges byte-identically with an uninterrupted run's
(pinned by the ``state.wal_resume`` audit check).

Usage::

    PYTHONPATH=src python scripts/resume.py RUN_DIR            # finish it
    PYTHONPATH=src python scripts/resume.py RUN_DIR --status   # just look
    PYTHONPATH=src python scripts/resume.py RUN_DIR --json rows.json
    PYTHONPATH=src python scripts/resume.py RUN_DIR --max-points 2
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.state import StateError, SweepRunner  # noqa: E402


def _status(runner: SweepRunner) -> None:
    spec = runner.spec
    done = runner.completed()
    bad = runner.quarantined()
    pending = runner.pending()
    print(f"run dir      {runner.run_dir}")
    print(f"grid         {len(spec.points)} points "
          f"({', '.join(sorted({p.runner for p in spec.points}))})")
    print(f"completed    {len(done)}")
    print(f"quarantined  {len(bad)}")
    print(f"pending      {len(pending)}"
          + (f"  (next: {pending[0].key})" if pending else ""))
    if spec.prune_field:
        pruned = [p.key for p in spec.points
                  if p.index not in done and p.index not in bad
                  and p not in pending]
        if pruned:
            print(f"pruned       {len(pruned)} "
                  f"(group satisfied '{spec.prune_field}')")
    for entry in bad.values():
        print(f"  quarantined {entry['key']}: {entry['error']} "
              f"({entry['attempts']} attempts)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Finish a crash-interrupted sweep from its run directory")
    parser.add_argument("run_dir", type=Path,
                        help="directory created by a --resume sweep")
    parser.add_argument("--status", action="store_true",
                        help="report progress without running anything")
    parser.add_argument("--max-points", type=int, default=None,
                        help="stop after completing this many new points")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the merged rows (execution order) as a "
                             "JSON array")
    args = parser.parse_args(argv)

    try:
        runner = SweepRunner.open(args.run_dir)
    except StateError as error:
        print(f"cannot open {args.run_dir}: {error}", file=sys.stderr)
        return 2
    _status(runner)
    if args.status:
        return 0

    before = set(runner.completed())

    def on_row(point, row) -> None:
        print(f"  done {point.key}")

    try:
        rows = runner.run(max_points=args.max_points, on_row=on_row)
    except StateError as error:
        print(f"sweep halted: {error}", file=sys.stderr)
        return 1
    fresh = len(set(rows) - before)
    print(f"{fresh} new point(s) this session; "
          f"{len(rows)}/{len(runner.spec.points)} journaled total")
    if args.json:
        merged = [rows[index] for index in sorted(rows)]
        args.json.write_text(json.dumps(merged, indent=2, sort_keys=True)
                             + "\n")
        print(f"merged rows written to {args.json}")
    remaining = runner.pending()
    if remaining:
        print(f"{len(remaining)} point(s) still pending "
              f"(next: {remaining[0].key})")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
