"""Calibration sweep: print every paper anchor vs the simulator."""

from repro import Workload, cpu_deployment, gpu_deployment, simulate_generation
from repro.core.overhead import latency_overhead, throughput_overhead
from repro.cost import GCP_SPOT_US_EAST1, cpu_cost_point, gpu_cost_point
from repro.hardware import EMR1, EMR2
from repro.llm import BFLOAT16, FLOAT32, INT8, LLAMA2_7B, LLAMA2_70B, VALIDATION_MODELS
from repro.memsim import HugepagePolicy


def sim(w, d, **kw):
    return simulate_generation(w, d, **kw)


print("=== Fig 3: frameworks (EMR1, 1024/128, bs=1) ===")
w = Workload(LLAMA2_7B, BFLOAT16, 1, 1024, 128)
for fw_name, dt in [("hf", FLOAT32), ("hf", BFLOAT16), ("vllm-cpu", FLOAT32),
                    ("vllm-cpu", BFLOAT16), ("ipex", BFLOAT16), ("llamacpp", BFLOAT16)]:
    d = cpu_deployment("baremetal", cpu=EMR1, framework=fw_name, sockets_used=1)
    r = sim(w.with_(dtype=dt), d)
    print(f"  {fw_name:10s} {dt.name:5s} total={r.total_time_s:6.1f}s")

print("=== Fig 4: single socket EMR1 ===")
wt = Workload(LLAMA2_7B, BFLOAT16, 6, 1024, 128, beam_size=4)
wl = Workload(LLAMA2_7B, BFLOAT16, 1, 1024, 128)
for dt in (BFLOAT16, INT8):
    res = {}
    for b in ("baremetal", "vm", "sgx", "tdx"):
        res[b] = (sim(wt.with_(dtype=dt), cpu_deployment(b, cpu=EMR1, sockets_used=1)),
                  sim(wl.with_(dtype=dt), cpu_deployment(b, cpu=EMR1, sockets_used=1)))
    for b in ("vm", "sgx", "tdx"):
        to = throughput_overhead(res[b][0], res["baremetal"][0])
        lo = latency_overhead(res[b][1], res["baremetal"][1], filtered=False)
        print(f"  {dt.name:5s} {b:4s}: tput_ovh={to:6.2%} lat_ovh={lo:6.2%} "
              f"(lat={res[b][1].next_token_latency_s*1e3:.0f}ms tput={res[b][0].decode_throughput_tok_s:.1f})")
    tdx_over_vm = throughput_overhead(res["tdx"][0], res["vm"][0])
    print(f"  {dt.name:5s} tdx-over-vm tput: {tdx_over_vm:.2%}")

print("=== Fig 5: 70B two-socket NUMA (EMR1) ===")
w70 = Workload(LLAMA2_70B, BFLOAT16, 1, 1024, 64)
vm_b = cpu_deployment("vm", cpu=EMR1, sockets_used=2, hugepages=HugepagePolicy.TRANSPARENT_2M)
vm_nb = cpu_deployment("vm-unbound", cpu=EMR1, sockets_used=2, hugepages=HugepagePolicy.TRANSPARENT_2M)
tdx2 = cpu_deployment("tdx", cpu=EMR1, sockets_used=2)
r_b, r_nb, r_t = sim(w70, vm_b), sim(w70, vm_nb), sim(w70, tdx2)
print(f"  VM B lat={r_b.next_token_latency_s*1e3:.0f}ms  VM NB={r_nb.next_token_latency_s*1e3:.0f}ms  TDX={r_t.next_token_latency_s*1e3:.0f}ms")
print(f"  TDX over VM B: lat {latency_overhead(r_t, r_b, filtered=False):.1%}, between? {r_b.next_token_latency_s < r_t.next_token_latency_s < r_nb.next_token_latency_s}")

print("=== Fig 6: two-socket hugepages (7B, EMR1) ===")
base2 = cpu_deployment("baremetal", cpu=EMR1, sockets_used=2, hugepages=HugepagePolicy.RESERVED_1G)
vm_fh = cpu_deployment("vm", cpu=EMR1, sockets_used=2, hugepages=HugepagePolicy.RESERVED_1G)
vm_th = cpu_deployment("vm", cpu=EMR1, sockets_used=2, hugepages=HugepagePolicy.TRANSPARENT_2M)
tdx2 = cpu_deployment("tdx", cpu=EMR1, sockets_used=2, hugepages=HugepagePolicy.RESERVED_1G)
for label, d in [("vm_fh", vm_fh), ("vm_th", vm_th), ("tdx", tdx2)]:
    rt = sim(wt, d); rl = sim(wl, d)
    bt = sim(wt, base2); bl = sim(wl, base2)
    print(f"  {label}: tput_ovh={throughput_overhead(rt, bt):.2%} lat_ovh={latency_overhead(rl, bl, filtered=False):.2%}")
r_th_t, r_fh_t = sim(wt, vm_th), sim(wt, vm_fh)
print(f"  VM TH over VM FH tput: {throughput_overhead(r_th_t, r_fh_t):.2%}")
r_tdx_t = sim(wt, tdx2)
print(f"  TDX over VM TH tput: {throughput_overhead(r_tdx_t, r_th_t):.2%}")

print("=== SGX two-socket (should blow up ~230%) ===")
sgx2 = cpu_deployment("sgx", cpu=EMR1, sockets_used=2)
r_sgx2 = sim(wt, sgx2)
print(f"  SGX 2S tput_ovh vs baremetal 2S: {throughput_overhead(r_sgx2, sim(wt, base2)):.1%}")

print("=== Fig 8: AMX (EMR2, 128/128) ===")
for bs in (1, 16, 64, 256):
    wb = Workload(LLAMA2_7B, BFLOAT16, bs, 128, 128)
    amx = sim(wb, cpu_deployment("vm", sockets_used=1))
    noamx = sim(wb, cpu_deployment("vm", sockets_used=1, amx_enabled=False))
    adv = noamx.decode_throughput_tok_s and amx.decode_throughput_tok_s / noamx.decode_throughput_tok_s
    t_amx = throughput_overhead(sim(wb, cpu_deployment("tdx", sockets_used=1)), amx)
    t_no = throughput_overhead(sim(wb, cpu_deployment("tdx", sockets_used=1, amx_enabled=False)), noamx)
    print(f"  bf16 bs={bs:4d}: AMX adv={adv:5.2f}x  tdx_ovh amx={t_amx:.2%} noamx={t_no:.2%}")
# int8 fallback
wi = Workload(LLAMA2_7B, INT8, 64, 128, 128)
amx_t = sim(wi, cpu_deployment("vm", sockets_used=1))
no_t = sim(wi, cpu_deployment("vm", sockets_used=1, amx_enabled=False))
print(f"  int8 bs=64 1S no-AMX tput overhead vs AMX: {throughput_overhead(no_t, amx_t):.1%}")
wi1 = Workload(LLAMA2_7B, INT8, 1, 128, 128)
amx_l = sim(wi1, cpu_deployment("vm", sockets_used=2))
no_l = sim(wi1, cpu_deployment("vm", sockets_used=2, amx_enabled=False))
print(f"  int8 bs=1 2S no-AMX latency overhead vs AMX: {latency_overhead(no_l, amx_l, filtered=False):.0%}")

print("=== Fig 9: batch scaling (EMR2, 128/128, 1 socket tput) ===")
for dt in (BFLOAT16, INT8):
    prev = None
    for bs in (1, 4, 16, 64, 128, 256, 512):
        wb = Workload(LLAMA2_7B, dt, bs, 128, 128)
        base = sim(wb, cpu_deployment("baremetal", sockets_used=1))
        tdx = sim(wb, cpu_deployment("tdx", sockets_used=1))
        ovh = throughput_overhead(tdx, base)
        print(f"  {dt.name} bs={bs:4d}: base_tput={base.decode_throughput_tok_s:8.1f} tdx_ovh={ovh:6.2%}")

print("=== Fig 10: input scaling (EMR2, bs=64, 128 out) ===")
for inp in (32, 128, 256, 512, 1024, 2048, 3584):
    wb = Workload(LLAMA2_7B, BFLOAT16, 64, inp, 128)
    base = sim(wb, cpu_deployment("baremetal", sockets_used=1))
    tdx = sim(wb, cpu_deployment("tdx", sockets_used=1))
    print(f"  input={inp:5d}: tdx tput_ovh={throughput_overhead(tdx, base, include_prefill=True):6.2%} "
          f"(decode-only {throughput_overhead(tdx, base):6.2%}) base_tput={base.throughput_tok_s:8.1f}")

print("=== Fig 11: cGPU (H100, vLLM) ===")
for bs in (1, 4, 16, 64):
    for inp in (128, 512, 2048):
        wb = Workload(LLAMA2_7B, BFLOAT16, bs, inp, 128)
        gpu = sim(wb, gpu_deployment(confidential=False))
        cgpu = sim(wb, gpu_deployment(confidential=True))
        print(f"  bs={bs:3d} in={inp:5d}: cgpu_ovh={throughput_overhead(cgpu, gpu, include_prefill=True):6.2%} gpu_tput={gpu.throughput_tok_s:9.1f}")

print("=== Fig 12: vCPU scaling + cost (EMR2, 128/128 bf16) ===")
for bs in (1, 16, 64, 128):
    wb = Workload(LLAMA2_7B, BFLOAT16, bs, 128, 128)
    best = None
    for cores in (8, 16, 24, 32, 40, 48, 56):
        tdx = sim(wb, cpu_deployment("tdx", sockets_used=1, cores_per_socket_used=cores))
        pt = cpu_cost_point(tdx, vcpus=cores, catalog=GCP_SPOT_US_EAST1)
        if best is None or pt.usd_per_mtok < best.usd_per_mtok:
            best = pt
    cgpu = sim(wb, gpu_deployment(confidential=True))
    gp = gpu_cost_point(cgpu, catalog=GCP_SPOT_US_EAST1)
    print(f"  bs={bs:4d}: best CPU {best.vcpus}c ${best.usd_per_mtok:7.3f}/Mtok  cGPU ${gp.usd_per_mtok:7.3f}/Mtok  cgpu_extra={gp.usd_per_mtok/best.usd_per_mtok-1:.0%}")

print("=== Fig 13: input scaling cost (bs=4) ===")
for inp in (32, 64, 128, 256, 512, 1024, 2048):
    wb = Workload(LLAMA2_7B, BFLOAT16, 4, inp, 128)
    pt = None
    for cores in (8, 16, 24, 32, 48):
        tdx = sim(wb, cpu_deployment("tdx", sockets_used=1, cores_per_socket_used=cores))
        c = cpu_cost_point(tdx, vcpus=cores, catalog=GCP_SPOT_US_EAST1)
        if pt is None or c.usd_per_mtok < pt.usd_per_mtok:
            pt = c
    cgpu = sim(wb, gpu_deployment(confidential=True))
    gp = gpu_cost_point(cgpu, catalog=GCP_SPOT_US_EAST1)
    print(f"  in={inp:5d}: CPU ${pt.usd_per_mtok:7.3f} cGPU ${gp.usd_per_mtok:7.3f} cgpu_extra={gp.usd_per_mtok/pt.usd_per_mtok-1:+.0%}")

print("=== multi-model validation (TDX 1S, 3.1-13.1%) ===")
for m in VALIDATION_MODELS:
    wm = Workload(m, BFLOAT16, 1, 1024, 64)
    base = sim(wm, cpu_deployment("baremetal", sockets_used=1))
    tdx = sim(wm, cpu_deployment("tdx", sockets_used=1))
    print(f"  {m.name:14s}: tdx tput_ovh={throughput_overhead(tdx, base):.2%}")

print("=== SNC ablation ===")
wb = Workload(LLAMA2_7B, BFLOAT16, 6, 1024, 64, beam_size=4)
base_snc = sim(wb, cpu_deployment("baremetal", sockets_used=1, snc_clusters=2))
tdx_snc = sim(wb, cpu_deployment("tdx", sockets_used=1, snc_clusters=2))
base_no = sim(wb, cpu_deployment("baremetal", sockets_used=1))
tdx_no = sim(wb, cpu_deployment("tdx", sockets_used=1))
print(f"  no SNC: {throughput_overhead(tdx_no, base_no):.1%}  SNC: {throughput_overhead(tdx_snc, base_snc):.1%}")

print("=== RAG (Fig 14) ===")
from repro.rag import rag_tdx_overheads
print(" ", rag_tdx_overheads(num_docs=300, num_queries=10, seed=1))
