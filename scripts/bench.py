"""Simulator performance benchmark: hot paths, caches, suite wall-clock.

Times the simulator's hot paths (cold vs. warm, vectorized vs. reference
loop, a representative sweep), collects the memo-cache counters from
``repro.core.profiling``, and optionally times the tier-1 test suite
against a wall-clock budget.  Results are written as JSON so the numbers
can be committed (``BENCH_sim.json``) and compared across PRs.

Usage::

    PYTHONPATH=src python scripts/bench.py                 # micro benches
    PYTHONPATH=src python scripts/bench.py --quick         # skip the 1M run
    PYTHONPATH=src python scripts/bench.py --suite         # + pytest timing
    PYTHONPATH=src python scripts/bench.py --suite --budget-s 40
    PYTHONPATH=src python scripts/bench.py --out BENCH_sim.json
    PYTHONPATH=src python scripts/bench.py --compare BENCH_sim.json

With ``--budget-s`` the script exits non-zero when the suite exceeds the
budget — CI uses this to fail if the suite regresses past 2x the
post-optimization baseline.  ``--compare`` gates the event-engine
headline (``fleet_1M_req``): the run fails if its wall time regresses
more than 25% past the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import time
from pathlib import Path

from repro.core.experiment import cpu_deployment, gpu_deployment
from repro.core.profiling import cache_stats, reset_caches
from repro.core.sweep import sweep_workload
from repro.engine.placement import Workload
from repro.engine.simulator import simulate_generation
from repro.llm.config import LLAMA2_7B
from repro.llm.datatypes import BFLOAT16

REPO_ROOT = Path(__file__).resolve().parent.parent

WORKLOAD = Workload(LLAMA2_7B, BFLOAT16, batch_size=4, input_tokens=128,
                    output_tokens=128)
DEPLOYMENTS = {
    "baremetal": cpu_deployment("baremetal", sockets_used=1),
    "tdx": cpu_deployment("tdx", sockets_used=1),
    "sgx": cpu_deployment("sgx", sockets_used=1),
    "cgpu": gpu_deployment(confidential=True),
}


def _time(func, repeats: int = 5) -> dict:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        samples.append(time.perf_counter() - start)
    return {
        "best_s": min(samples),
        "mean_s": statistics.fmean(samples),
        "repeats": repeats,
    }


def micro_benchmarks() -> dict:
    tdx = DEPLOYMENTS["tdx"]
    results = {}

    # Cold: every graph, engine and step cost built from scratch.
    reset_caches()
    start = time.perf_counter()
    simulate_generation(WORKLOAD, tdx)
    results["simulate_7b_cold"] = {"best_s": time.perf_counter() - start,
                                   "repeats": 1}

    # Warm: everything but the noise draw comes out of the caches.
    results["simulate_7b_warm"] = _time(
        lambda: simulate_generation(WORKLOAD, tdx))

    # Engine comparison at exact stride-1 resolution (parity-tested).
    results["decode_vectorized_stride1"] = _time(
        lambda: simulate_generation(WORKLOAD, tdx, context_stride=1,
                                    engine="vectorized"))
    results["decode_loop_stride1"] = _time(
        lambda: simulate_generation(WORKLOAD, tdx, context_stride=1,
                                    engine="loop"), repeats=3)

    # A representative sweep (warm caches; what figures actually run).
    results["sweep_batch_4pts"] = _time(
        lambda: sweep_workload("bench", WORKLOAD, DEPLOYMENTS, "batch_size",
                               [1, 4, 16, 64]), repeats=3)

    # Fleet smoke: a 2-replica TDX fleet serving a 40-request stream
    # through the shared-clock event loop (routing + stepped replicas).
    from repro.fleet import fixed_fleet, poisson_arrivals, replica_spec
    fleet_stream = poisson_arrivals(40, rate_per_s=4.0, mean_prompt=128,
                                    mean_output=32, seed=11)
    fleet_spec = replica_spec("tdx", max_batch=16, kv_capacity_tokens=65536)
    results["fleet_2x_tdx_40req"] = _time(
        lambda: fixed_fleet(fleet_spec, 2).run(fleet_stream), repeats=3)

    # Chaos smoke: the same fleet under a hazard-rate fault schedule
    # with timeout/retry recovery — the injector + resilience overhead
    # on top of the plain event loop.
    from repro.faults import RetryPolicy, mtbf_schedule
    chaos_schedule = mtbf_schedule([0, 1], mtbf_s=8.0, horizon_s=20.0,
                                   seed=5)
    results["fleet_2x_tdx_40req_chaos"] = _time(
        lambda: fixed_fleet(
            fleet_spec, 2, faults=chaos_schedule,
            retry_policy=RetryPolicy(timeout_s=15.0, max_attempts=3,
                                     seed=5)).run(fleet_stream), repeats=3)

    # Tenancy smoke: the whale-dominated tenant mix under WFQ with
    # prefix sharing — the multi-tenant plane's overhead (tagged
    # admission + per-tenant breakdown) on top of the plain fleet.
    from repro.tenancy import run_tenant_fleet, whale_mix
    tenant_population = whale_mix(total_requests=40, rate_per_s=6.0, seed=3,
                                  prefix_tokens=64)
    results["fleet_tenant_mix"] = _time(
        lambda: run_tenant_fleet(tenant_population, kind="tdx", count=2,
                                 engine="event", admission="wfq",
                                 kv_isolation="shared-prefix", max_batch=16,
                                 kv_capacity_tokens=65536), repeats=3)

    # Boot smoke: the same fleet with the phased confidential cold
    # start armed — every replica walks provision → attest → key
    # release → decrypt → load before serving, and crash recoveries
    # re-enter at attestation.  Measures the boot-lifecycle overhead
    # (phase arithmetic + longer simulated horizon) on the chaos fleet.
    from repro.tee.boot import boot_profile
    boot_spec = replica_spec("tdx", max_batch=16, kv_capacity_tokens=65536,
                             boot=boot_profile("tdx"))
    results["fleet_2x_tdx_40req_phased_boot"] = _time(
        lambda: fixed_fleet(
            boot_spec, 2, faults=chaos_schedule,
            retry_policy=RetryPolicy(timeout_s=15.0, max_attempts=3,
                                     seed=5)).run(fleet_stream), repeats=3)
    return results


def fleet_million_benchmark() -> dict:
    """The event-engine headline: one million requests in one run.

    Stream generation happens outside the timed region (it is numpy
    columnar construction, not simulation); the measurement is the
    event-driven fleet core serving the full table.  Run once —
    at this scale a single run is statistically stable.
    """
    from repro.fleet import fixed_fleet, poisson_table, replica_spec
    spec = replica_spec("tdx", max_batch=16, kv_capacity_tokens=65536)
    table = poisson_table(1_000_000, rate_per_s=400.0, mean_prompt=128,
                          mean_output=32, seed=11)
    start = time.perf_counter()
    report = fixed_fleet(spec, 8, engine="event").run(table)
    wall_s = time.perf_counter() - start
    requests = len(report.outcomes)
    if requests < 1_000_000:
        raise AssertionError(
            f"fleet_1M_req completed only {requests} requests")
    return {"requests": requests, "wall_s": wall_s,
            "req_per_wall_s": requests / wall_s, "repeats": 1}


def fleet_stepped_reference_benchmark() -> dict:
    """Same fleet config as ``fleet_1M_req``, stepped engine, 60k requests.

    The live denominator for the event-engine speedup: the 40-request
    smoke is too small once the shared step-cost tables are warm (it
    finishes in milliseconds and measures cache lookups, not the dense
    tick loop), so the apples-to-apples stepped throughput comes from a
    stream long enough for the per-tick and per-request costs to
    dominate (~3 s of wall time at 60k requests).
    """
    from repro.fleet import fixed_fleet, poisson_arrivals, replica_spec
    spec = replica_spec("tdx", max_batch=16, kv_capacity_tokens=65536)
    stream = poisson_arrivals(60_000, rate_per_s=400.0, mean_prompt=128,
                              mean_output=32, seed=11)
    start = time.perf_counter()
    report = fixed_fleet(spec, 8, engine="stepped").run(stream)
    wall_s = time.perf_counter() - start
    requests = len(report.outcomes)
    return {"requests": requests, "wall_s": wall_s,
            "req_per_wall_s": requests / wall_s, "repeats": 1}


#: The stepped core's simulated-requests-per-wall-second at the commit
#: that introduced the event engine (fleet_2x_tdx_40req: 40 requests in
#: 0.404 s).  Frozen so the headline speedup ratio keeps its meaning as
#: both engines get faster.
STEPPED_BASELINE_REQ_S = 40 / 0.404

#: Regression tolerance for the --compare gate: a benchmark may be at
#: most this much slower than the committed baseline before CI fails.
COMPARE_SLACK = 1.25

#: Benchmarks the --compare gate enforces (others are informational).
COMPARE_GATED = ("fleet_1M_req",)


def compare_against(report: dict, baseline_path: Path) -> list[str]:
    """Diff ``report`` against a committed baseline; return failures."""
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name in COMPARE_GATED:
        ours = report["micro"].get(name)
        theirs = baseline.get("micro", {}).get(name)
        if ours is None or theirs is None:
            failures.append(f"{name}: missing from "
                            f"{'report' if ours is None else 'baseline'}")
            continue
        wall, committed = ours["wall_s"], theirs["wall_s"]
        verdict = "OK" if wall <= committed * COMPARE_SLACK else "FAIL"
        print(f"compare {name}: {wall:.1f}s vs committed {committed:.1f}s "
              f"(x{wall / committed:.2f}, slack x{COMPARE_SLACK}) {verdict}",
              file=sys.stderr)
        if verdict == "FAIL":
            failures.append(
                f"{name}: {wall:.1f}s exceeds committed {committed:.1f}s "
                f"by more than {(COMPARE_SLACK - 1) * 100:.0f}%")
    return failures


def suite_benchmark() -> dict:
    """Wall-clock of the tier-1 suite in a fresh interpreter."""
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    cmd = [sys.executable, "-m", "pytest", "-x", "-q",
           "-p", "no:cacheprovider"]
    start = time.perf_counter()
    proc = subprocess.run(cmd, cwd=REPO_ROOT, capture_output=True, text=True,
                          env=env)
    wall_s = time.perf_counter() - start
    tail = proc.stdout.strip().splitlines()[-1] if proc.stdout.strip() else ""
    return {"wall_s": wall_s, "returncode": proc.returncode, "summary": tail}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", action="store_true",
                        help="also time the tier-1 pytest suite")
    parser.add_argument("--budget-s", type=float, default=None,
                        help="fail (exit 1) if the suite exceeds this budget")
    parser.add_argument("--baseline-s", type=float, default=None,
                        help="pre-optimization suite wall-clock to record "
                             "alongside the measurement")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--quick", action="store_true",
                        help="skip the 1M-request event-engine benchmark")
    parser.add_argument("--compare", type=Path, default=None,
                        help="fail (exit 1) if a gated benchmark regresses "
                             f"more than {(COMPARE_SLACK - 1) * 100:.0f}%% "
                             "past this committed baseline JSON")
    args = parser.parse_args(argv)

    report = {
        "schema": "repro-bench/1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "micro": micro_benchmarks(),
        "caches": {name: {"hits": s.hits, "misses": s.misses,
                          "hit_rate": round(s.hit_rate, 4),
                          "size": s.size, "evictions": s.evictions}
                   for name, s in sorted(cache_stats().items())},
    }
    micro = report["micro"]
    speedup = (micro["decode_loop_stride1"]["best_s"]
               / micro["decode_vectorized_stride1"]["best_s"])
    report["vectorized_speedup_x"] = round(speedup, 1)

    if not args.quick:
        micro["fleet_1M_req"] = fleet_million_benchmark()
        micro["fleet_stepped_60k_req"] = fleet_stepped_reference_benchmark()
        # Simulated-requests-per-wall-second vs the stepped core.  The
        # acceptance baseline is frozen at the pre-event-core commit of
        # fleet_2x_tdx_40req (40 req / 0.404 s ~= 100 req/s).  The live
        # ratio against this run's same-config stepped reference is
        # reported alongside and is far smaller — the op-cost memo and
        # shared step tables that make the event core fast sped the
        # stepped core up by a similar factor, so on this saturated
        # stream (no quiet ticks to jump) the engines are within a
        # small factor of each other once caches are warm.
        event_rps = micro["fleet_1M_req"]["req_per_wall_s"]
        live_rps = micro["fleet_stepped_60k_req"]["req_per_wall_s"]
        report["event_engine_speedup_x"] = round(
            event_rps / STEPPED_BASELINE_REQ_S, 1)
        report["event_engine_speedup_live_x"] = round(event_rps / live_rps, 1)

    if args.suite or args.budget_s is not None:
        report["suite"] = suite_benchmark()
        if args.baseline_s is not None:
            report["suite"]["baseline_wall_s"] = args.baseline_s
            report["suite"]["speedup_vs_baseline_x"] = round(
                args.baseline_s / report["suite"]["wall_s"], 1)

    out = json.dumps(report, indent=2, sort_keys=False)
    print(out)
    if args.out:
        args.out.write_text(out + "\n")

    if args.compare is not None:
        failures = compare_against(report, args.compare)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1

    suite = report.get("suite")
    if suite and suite["returncode"] != 0:
        print("FAIL: test suite failed", file=sys.stderr)
        return suite["returncode"]
    if suite and args.budget_s is not None and suite["wall_s"] > args.budget_s:
        print(f"FAIL: suite took {suite['wall_s']:.1f}s "
              f"> budget {args.budget_s:.1f}s", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
