"""Fleet serving CLI: simulate, autoscale, and capacity-plan TEE fleets.

Drives :mod:`repro.fleet` end to end — the cluster-scale counterpart of
the per-instance figure benchmarks: how many confidential replicas does
a traffic level need, at what $/Mtok, and how do routing and reactive
autoscaling change the answer.

Usage::

    PYTHONPATH=src python scripts/fleet.py run --kind tdx --replicas 3 \\
        --arrivals poisson --rate 4 --count 80
    PYTHONPATH=src python scripts/fleet.py run --kind tdx --kind cgpu \\
        --router cost-slo --slo-ttft 2.0 --arrivals mmpp --rate 3 --count 120
    PYTHONPATH=src python scripts/fleet.py autoscale --kind tdx \\
        --max-replicas 6 --arrivals diurnal --rate 4 --count 150
    PYTHONPATH=src python scripts/fleet.py sweep --slo-ttft 2.0 \\
        --kinds tdx,cgpu --max-replicas 6 [--json plan.json]
    PYTHONPATH=src python scripts/fleet.py tenants --kind tdx --replicas 2 \\
        --admission wfq --kv-isolation shared-prefix --count 120 --inflation
    PYTHONPATH=src python scripts/fleet.py boot --tax [--resume RUN_DIR]

``sweep`` runs the committed capacity-planning trace (the same one the
``golden.fleet_capacity`` audit check snapshots) unless ``--arrivals``
overrides it.  ``--phased-boot`` arms the per-kind phased confidential
boot profiles (:mod:`repro.tee.boot`) instead of instant boots; ``boot``
prints the per-phase breakdown and (with ``--tax``) the attestation-tax
table the ``golden.attest_tax`` audit snapshot pins.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.fleet import (  # noqa: E402
    ARRIVAL_KINDS,
    AutoscalerConfig,
    CapacityPlan,
    CapacityPoint,
    ENGINES,
    FleetReport,
    FleetSimulator,
    ROUTER_KINDS,
    ReactiveAutoscaler,
    iter_capacity_points,
    make_arrivals,
    make_router,
    replica_spec,
    trace_replay,
)
from repro.serving import ADMISSION_POLICIES, KV_ISOLATION_MODES  # noqa: E402
from repro.tee.boot import (  # noqa: E402
    TAX_TEE_KINDS,
    attest_tax_sweep,
    boot_breakdown,
    boot_profile,
)
from repro.tenancy import (  # noqa: E402
    noisy_neighbor_inflation,
    run_tenant_fleet,
    whale_mix,
)
from repro.validate.fleet import CAPACITY_SLO_TTFT_S, CAPACITY_TRACE  # noqa: E402


def _print_rows(title: str, rows: list[dict]) -> None:
    if not rows:
        print(f"=== {title} === (empty)")
        return
    columns = list(rows[0])
    widths = {c: max(len(c), *(len(_fmt(r[c])) for r in rows))
              for c in columns}
    print(f"\n=== {title} ===")
    print("  ".join(c.ljust(widths[c]) for c in columns))
    for row in rows:
        print("  ".join(_fmt(row[c]).ljust(widths[c]) for c in columns))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.0f}"
    return str(value)


def _print_report(report: FleetReport, slo_ttft_s: float) -> None:
    print(f"requests           {len(report.outcomes)}")
    print(f"makespan           {report.makespan_s:.1f} s "
          f"(from t={report.start_s:.1f})")
    print(f"throughput         {report.throughput_tok_s:.0f} tok/s")
    print(f"ttft p50/p99       {report.ttft_percentile(50):.2f} / "
          f"{report.ttft_percentile(99):.2f} s")
    print(f"e2e  p50/p99       {report.e2e_percentile(50):.2f} / "
          f"{report.e2e_percentile(99):.2f} s")
    print(f"SLO attainment     {100 * report.slo_attainment(slo_ttft_s):.1f}% "
          f"(TTFT <= {slo_ttft_s:.1f} s)")
    print(f"fleet cost         ${report.cost_usd:.4f} "
          f"(${report.usd_per_mtok:.2f}/Mtok)")
    print(f"peak replicas      {report.peak_replicas}  "
          f"preemptions {report.total_preemptions}  "
          f"scale events {len(report.scale_events)}")
    _print_rows("replicas", report.summary_rows())


def _arrivals(args: argparse.Namespace):
    return make_arrivals(args.arrivals, args.count, args.rate,
                         mean_prompt=args.mean_prompt,
                         mean_output=args.mean_output, seed=args.seed)


def _boot(args: argparse.Namespace, kind: str):
    """Phased confidential boot profile, when ``--phased-boot`` is set."""
    return boot_profile(kind) if args.phased_boot else None


def cmd_run(args: argparse.Namespace) -> int:
    specs = [replica_spec(kind,
                          admission_lookahead=args.admission_lookahead,
                          boot=_boot(args, kind))
             for kind in args.kind for _ in range(args.replicas)]
    router = make_router(args.router, slo_ttft_s=args.slo_ttft)
    report = FleetSimulator(specs, router=router,
                            engine=args.engine).run(_arrivals(args))
    _print_report(report, args.slo_ttft)
    if args.json:
        args.json.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
    return 0


def cmd_autoscale(args: argparse.Namespace) -> int:
    scaler = ReactiveAutoscaler(AutoscalerConfig(
        min_replicas=args.replicas, max_replicas=args.max_replicas,
        scale_up_load=args.scale_up_load,
        scale_down_load=args.scale_down_load,
        cooldown_s=args.cooldown, boot_latency_s=args.boot_latency))
    specs = [replica_spec(args.kind[0],
                          admission_lookahead=args.admission_lookahead,
                          boot=_boot(args, args.kind[0]))
             ] * args.replicas
    router = make_router(args.router, slo_ttft_s=args.slo_ttft)
    fleet = FleetSimulator(specs, router=router, autoscaler=scaler,
                           engine=args.engine)
    report = fleet.run(_arrivals(args))
    _print_report(report, args.slo_ttft)
    _print_rows("scale events", [
        {"t_s": e.time_s, "action": e.action,
         "load_per_replica": e.load_per_replica,
         "active": e.active_replicas}
        for e in report.scale_events])
    if args.json:
        args.json.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
    return 0


def _plan_from_points(kind: str, points: list[CapacityPoint],
                      slo_ttft_s: float, percentile: float) -> CapacityPlan:
    needed = next((p.replicas for p in points if p.meets_slo), None)
    return CapacityPlan(kind=kind, slo_ttft_s=slo_ttft_s,
                        percentile=percentile, points=tuple(points),
                        replicas_needed=needed)


def cmd_sweep(args: argparse.Namespace) -> int:
    kinds = args.kinds.split(",")
    # Partial results stream as each fleet size lands (append when
    # resuming: the run directory's WAL already holds earlier rows).
    stream = (open(args.jsonl, "a" if args.resume else "w",
                   encoding="utf-8") if args.jsonl else None)

    def emit(row: dict) -> None:
        if stream is not None:
            stream.write(json.dumps(row, sort_keys=True) + "\n")
            stream.flush()

    quarantined: dict[int, dict] = {}
    try:
        if args.resume:
            if args.arrivals is not None or args.percentile != 99.0 \
                    or args.phased_boot:
                print("--resume pins the committed capacity trace at p99 "
                      "with instant boots; drop --arrivals/--percentile/"
                      "--phased-boot", file=sys.stderr)
                return 2
            from repro.state import SweepRunner, capacity_grid
            spec = capacity_grid(kinds=tuple(kinds),
                                 max_replicas=args.max_replicas,
                                 slo_ttft_s=args.slo_ttft,
                                 point_timeout_s=args.point_timeout)
            runner = SweepRunner.create(args.resume, spec)
            done = len(runner.completed())
            print(f"run dir {args.resume}: {done}/{len(spec.points)} points "
                  f"journaled, {len(runner.pending())} to go "
                  f"(SLO-met sizes prune the rest of their kind)")
            by_index = runner.run(on_row=lambda point, row: emit(row))
            quarantined = runner.quarantined()
            requests = trace_replay(list(CAPACITY_TRACE))
            by_kind: dict[str, list[CapacityPoint]] = {k: [] for k in kinds}
            for index in sorted(by_index):
                point = CapacityPoint(**by_index[index])
                by_kind[point.kind].append(point)
            plans = {kind: _plan_from_points(kind, points, args.slo_ttft,
                                             99.0)
                     for kind, points in by_kind.items()}
        else:
            if args.arrivals:
                requests = _arrivals(args)
            else:
                requests = trace_replay(list(CAPACITY_TRACE))
            plans = {}
            for kind in kinds:
                spec = replica_spec(
                    kind, max_batch=16, kv_capacity_tokens=65536,
                    admission_lookahead=args.admission_lookahead,
                    boot=_boot(args, kind))
                points = []
                for point in iter_capacity_points(
                        spec, requests, args.slo_ttft, args.percentile,
                        args.max_replicas, engine=args.engine):
                    emit(point.to_dict())
                    points.append(point)
                plans[kind] = _plan_from_points(kind, points, args.slo_ttft,
                                                args.percentile)
    finally:
        if stream is not None:
            stream.close()
    rows = []
    for kind, plan in plans.items():
        for point in plan.points:
            rows.append({"kind": kind, "replicas": point.replicas,
                         f"p{args.percentile:.0f}_ttft_s": point.p99_ttft_s,
                         "attainment": point.attainment,
                         "usd_per_mtok": point.usd_per_mtok,
                         "meets_slo": point.meets_slo})
    _print_rows(f"capacity sweep (p{args.percentile:.0f} TTFT <= "
                f"{args.slo_ttft:.1f}s, {len(requests)} requests)", rows)
    print()
    for kind, plan in plans.items():
        if plan.replicas_needed is None:
            print(f"{kind:>10}: SLO unattainable within "
                  f"{args.max_replicas} replicas")
        else:
            print(f"{kind:>10}: {plan.replicas_needed} replica(s), "
                  f"${plan.usd_per_mtok_at_slo:.2f}/Mtok at SLO")
    if quarantined:
        _print_rows("quarantined points", [
            {"index": q["index"], "key": q["key"],
             "attempts": q["attempts"], "error": q["error"]}
            for q in quarantined.values()])
    if args.json:
        payload = {kind: plan.to_dict() for kind, plan in plans.items()}
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nplan written to {args.json}")
    return 0


def cmd_tenants(args: argparse.Namespace) -> int:
    population = whale_mix(total_requests=args.count, rate_per_s=args.rate,
                           seed=args.seed, prefix_tokens=args.prefix_tokens)
    report = run_tenant_fleet(
        population, kind=args.kind[0], count=args.replicas,
        engine=args.engine, admission=args.admission,
        kv_isolation=args.kv_isolation, max_batch=args.max_batch,
        kv_capacity_tokens=args.kv_capacity,
        admission_lookahead=args.admission_lookahead)
    fleet = report.fleet
    print(f"tenants            {len(report.tenants)} "
          f"({args.admission}, {args.kv_isolation})")
    print(f"requests           {len(fleet.outcomes)} completed, "
          f"{len(fleet.shed)} shed")
    print(f"fleet cost         ${fleet.cost_usd:.4f} "
          f"({report.total_bill_cents} tenant-invoice cents)")
    spread = report.ttft_p99_spread()
    print(f"p99-TTFT spread    "
          f"{'n/a' if spread is None else f'{spread:.2f}x'}  "
          f"prefix hits/misses {report.prefix_hits}/{report.prefix_misses}")
    _print_rows("tenants", [u.to_dict() for u in report.tenants])
    if args.inflation:
        inflation = noisy_neighbor_inflation(
            population, kind=args.kind[0], count=args.replicas,
            engine=args.engine, admission=args.admission,
            kv_isolation=args.kv_isolation, max_batch=args.max_batch,
            kv_capacity_tokens=args.kv_capacity,
            admission_lookahead=args.admission_lookahead)
        _print_rows("noisy-neighbor p99-TTFT inflation vs solo", [
            {"tenant_id": tenant_id,
             "inflation": "n/a" if value is None else f"{value:.2f}x"}
            for tenant_id, value in sorted(inflation.items())])
    if args.json:
        args.json.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
    return 0


def cmd_boot(args: argparse.Namespace) -> int:
    kinds = tuple(args.kinds.split(","))
    rows = boot_breakdown(kinds)
    _print_rows("phased boot breakdown (seconds per phase)", rows)
    if not args.tax:
        return 0
    if args.resume:
        from repro.state import SweepRunner, attest_grid
        spec = attest_grid(slo_ttft_s=args.slo_ttft, engine=args.engine,
                           point_timeout_s=args.point_timeout)
        runner = SweepRunner.create(args.resume, spec)
        print(f"\nrun dir {args.resume}: {len(runner.completed())}/"
              f"{len(spec.points)} points journaled, "
              f"{len(runner.pending())} to go")
        by_index = runner.run()
        tax_rows = [by_index[index] for index in sorted(by_index)]
    else:
        tax_rows = attest_tax_sweep(slo_ttft_s=args.slo_ttft,
                                    engine=args.engine)
    _print_rows("attestation tax (phased vs legacy instant boots)",
                tax_rows)
    if args.json:
        args.json.write_text(json.dumps(
            {"breakdown": rows, "tax": tax_rows}, indent=2) + "\n")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, default_arrivals: str | None):
        p.add_argument("--arrivals", choices=ARRIVAL_KINDS,
                       default=default_arrivals,
                       help="arrival process (sweep default: committed trace)")
        p.add_argument("--rate", type=float, default=4.0,
                       help="arrival rate (req/s; MMPP calm rate)")
        p.add_argument("--count", type=int, default=80,
                       help="number of requests")
        p.add_argument("--mean-prompt", type=int, default=256)
        p.add_argument("--mean-output", type=int, default=64)
        p.add_argument("--seed", type=int, default=11)
        p.add_argument("--router", choices=ROUTER_KINDS,
                       default="least-outstanding")
        p.add_argument("--slo-ttft", type=float,
                       default=CAPACITY_SLO_TTFT_S,
                       help="TTFT SLO in seconds")
        p.add_argument("--json", type=Path, default=None,
                       help="also write the report/plan as JSON")
        p.add_argument("--engine", choices=ENGINES, default="stepped",
                       help="fleet core: stepped reference or the "
                            "event-driven columnar engine (bit-identical "
                            "reports, orders of magnitude faster)")
        p.add_argument("--admission-lookahead", type=int, default=0,
                       help="scheduler head-of-line lookahead window "
                            "(0 = strict head-of-line blocking)")
        p.add_argument("--phased-boot", action="store_true",
                       help="arm the per-kind phased confidential boot "
                            "profile (provision/attest/key-release/"
                            "decrypt/load) instead of instant boots")

    run_p = sub.add_parser("run", help="simulate a fixed fleet")
    run_p.add_argument("--kind", action="append", default=None,
                       help="replica kind (repeatable for mixed fleets)")
    run_p.add_argument("--replicas", type=int, default=2,
                       help="replicas per kind")
    add_common(run_p, "poisson")
    run_p.set_defaults(func=cmd_run)

    auto_p = sub.add_parser("autoscale", help="simulate a reactive fleet")
    auto_p.add_argument("--kind", action="append", default=None)
    auto_p.add_argument("--replicas", type=int, default=1,
                        help="initial (and minimum) replicas")
    auto_p.add_argument("--max-replicas", type=int, default=6)
    auto_p.add_argument("--scale-up-load", type=float, default=4.0)
    auto_p.add_argument("--scale-down-load", type=float, default=0.5)
    auto_p.add_argument("--cooldown", type=float, default=10.0)
    auto_p.add_argument("--boot-latency", type=float, default=15.0)
    add_common(auto_p, "mmpp")
    auto_p.set_defaults(func=cmd_autoscale)

    sweep_p = sub.add_parser("sweep", help="capacity-planning sweep")
    sweep_p.add_argument("--kinds", default="tdx,cgpu",
                         help="comma-separated replica kinds")
    sweep_p.add_argument("--max-replicas", type=int, default=6)
    sweep_p.add_argument("--percentile", type=float, default=99.0)
    sweep_p.add_argument("--jsonl", type=Path, default=None,
                         help="stream one JSON row per completed fleet size")
    sweep_p.add_argument("--resume", type=Path, default=None,
                         metavar="RUN_DIR",
                         help="write-ahead journal the sweep into RUN_DIR; "
                              "rerun to continue after a crash/SIGKILL")
    sweep_p.add_argument("--point-timeout", type=float, default=None,
                         metavar="WALL_S",
                         help="with --resume: watchdog wall-clock budget "
                              "per point attempt")
    add_common(sweep_p, None)
    sweep_p.set_defaults(func=cmd_sweep)

    ten_p = sub.add_parser(
        "tenants", help="simulate a multi-tenant fleet (whale mix)")
    ten_p.add_argument("--kind", action="append", default=None,
                       help="replica kind")
    ten_p.add_argument("--replicas", type=int, default=2)
    ten_p.add_argument("--count", type=int, default=120,
                       help="total requests across the tenant mix")
    ten_p.add_argument("--rate", type=float, default=6.0,
                       help="aggregate arrival rate (req/s)")
    ten_p.add_argument("--seed", type=int, default=0)
    ten_p.add_argument("--admission", choices=ADMISSION_POLICIES,
                       default="wfq")
    ten_p.add_argument("--kv-isolation", choices=KV_ISOLATION_MODES,
                       default="shared")
    ten_p.add_argument("--prefix-tokens", type=int, default=64,
                       help="shared prompt prefix for the whale and mid "
                            "tenants (shared-prefix isolation)")
    ten_p.add_argument("--max-batch", type=int, default=8)
    ten_p.add_argument("--kv-capacity", type=int, default=16384,
                       help="KV pool per replica (tokens)")
    ten_p.add_argument("--admission-lookahead", type=int, default=0)
    ten_p.add_argument("--inflation", action="store_true",
                       help="also run each tenant solo and report "
                            "noisy-neighbor p99-TTFT inflation")
    ten_p.add_argument("--engine", choices=ENGINES, default="stepped")
    ten_p.add_argument("--json", type=Path, default=None)
    ten_p.set_defaults(func=cmd_tenants)

    boot_p = sub.add_parser(
        "boot", help="phased confidential boot breakdown / attestation tax")
    boot_p.add_argument("--kinds", default=",".join(TAX_TEE_KINDS),
                        help="comma-separated TEE kinds for the breakdown")
    boot_p.add_argument("--tax", action="store_true",
                        help="also re-run the capacity and chaos headlines "
                             "with phased vs instant boots")
    boot_p.add_argument("--slo-ttft", type=float, default=CAPACITY_SLO_TTFT_S)
    boot_p.add_argument("--engine", choices=ENGINES, default="stepped")
    boot_p.add_argument("--resume", type=Path, default=None,
                        metavar="RUN_DIR",
                        help="with --tax: write-ahead journal the table "
                             "into RUN_DIR; rerun to continue after a "
                             "crash/SIGKILL")
    boot_p.add_argument("--point-timeout", type=float, default=None,
                        metavar="WALL_S",
                        help="with --resume: watchdog wall-clock budget "
                             "per point attempt")
    boot_p.add_argument("--json", type=Path, default=None)
    boot_p.set_defaults(func=cmd_boot)

    args = parser.parse_args(argv)
    if getattr(args, "kind", None) is None and hasattr(args, "kind"):
        args.kind = ["tdx"]
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
