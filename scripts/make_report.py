"""Generate the live reproduction report (markdown) to stdout or a file.

Usage:
    python scripts/make_report.py [output.md]
"""

import sys

from repro.core.report import headline_report


def main() -> None:
    report = headline_report()
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w") as handle:
            handle.write(report)
        print(f"wrote {sys.argv[1]}")
    else:
        print(report)


if __name__ == "__main__":
    main()
