"""Chaos CLI: fault-inject TEE serving fleets and price the damage.

Drives :mod:`repro.faults` against the fleet simulator — the resilience
counterpart of ``scripts/fleet.py``: what does a replica failure rate do
to SLO attainment and $/Mtok on TDX vs confidential-GPU fleets, where do
retries and wasted tokens go, and what does graceful degradation shed?

Usage::

    PYTHONPATH=src python scripts/chaos.py sweep [--json sweep.json]
    PYTHONPATH=src python scripts/chaos.py sweep --kinds tdx,cgpu \\
        --mtbf 12,6,3 --requests 36 --rate 1.5 --replicas 1 --seed 7
    PYTHONPATH=src python scripts/chaos.py sweep --jsonl rows.jsonl
    PYTHONPATH=src python scripts/chaos.py sweep --resume runs/chaos \\
        --checkpoint-every 5 --point-timeout 60
    PYTHONPATH=src python scripts/chaos.py run --kind tdx --replicas 2 \\
        --mtbf 8 --requests 40 --rate 4 [--timeline]
    PYTHONPATH=src python scripts/chaos.py run --kind tdx --crash 5:0 \\
        --hang 8:1:3 --requests 30

``sweep`` with no overrides reproduces the committed ``golden.chaos_mtbf``
snapshot exactly (same seeds, same grid).  Rows stream to ``--jsonl`` as
each grid point completes, so an interrupted sweep keeps everything
already computed; ``--resume RUN_DIR`` goes further and write-ahead
journals the sweep into a durable run directory that survives SIGKILL —
rerun the same command (or ``scripts/resume.py RUN_DIR``) to continue
where it stopped.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults import (  # noqa: E402
    DegradationPolicy,
    FaultSchedule,
    RetryPolicy,
    mtbf_schedule,
    one_shot,
)
from repro.faults.sweep import (  # noqa: E402
    DEFAULT_KINDS,
    DEFAULT_MTBF_GRID_S,
    ROW_FIELDS,
    iter_mtbf_rows,
)
from repro.fleet import (  # noqa: E402
    ENGINES,
    fixed_fleet,
    poisson_arrivals,
    replica_spec,
)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def _print_rows(title: str, rows: list[dict]) -> None:
    if not rows:
        print(f"=== {title} === (empty)")
        return
    columns = list(rows[0])
    widths = {c: max(len(c), *(len(_fmt(r[c])) for r in rows))
              for c in columns}
    print(f"\n=== {title} ===")
    print("  ".join(c.ljust(widths[c]) for c in columns))
    for row in rows:
        print("  ".join(_fmt(row[c]).ljust(widths[c]) for c in columns))


def _parse_point(text: str, kind: str) -> object:
    """``time:replica[:duration[:factor]]`` -> FaultSchedule."""
    parts = text.split(":")
    if len(parts) < 2:
        raise argparse.ArgumentTypeError(
            f"--{kind} wants time:replica[:duration[:factor]], got {text!r}")
    time_s, replica_id = float(parts[0]), int(parts[1])
    params = {}
    if kind == "crash":
        if len(parts) > 2:
            params["restart_after_s"] = float(parts[2])
    else:
        params["duration_s"] = float(parts[2]) if len(parts) > 2 else 5.0
        if len(parts) > 3:
            params["factor"] = float(parts[3])
        elif kind == "slowdown":
            params["factor"] = 2.0
        elif kind == "link_degrade":
            params["factor"] = 0.25
    return one_shot(kind, replica_id, time_s, **params)


def _schedule_from_args(args: argparse.Namespace,
                        replicas: int) -> FaultSchedule:
    schedule = FaultSchedule.empty()
    for kind in ("crash", "hang", "slowdown", "boot_failure",
                 "attestation_failure", "link_degrade"):
        for text in getattr(args, kind.replace("-", "_")) or ():
            schedule = schedule + _parse_point(text, kind)
    if args.mtbf is not None:
        schedule = schedule + mtbf_schedule(
            list(range(replicas)), mtbf_s=args.mtbf,
            horizon_s=args.horizon, seed=args.seed)
    return schedule


def cmd_run(args: argparse.Namespace) -> int:
    from repro.tee.boot import boot_profile

    spec = replica_spec(args.kind, max_batch=16, kv_capacity_tokens=65536,
                        boot=(boot_profile(args.kind) if args.phased_boot
                              else None))
    schedule = _schedule_from_args(args, args.replicas)
    degradation = None
    if args.degrade:
        spill_spec = (replica_spec(args.spill_kind, max_batch=16,
                                   kv_capacity_tokens=65536)
                      if args.degrade == "spill" else None)
        degradation = DegradationPolicy(mode=args.degrade,
                                        max_hold_s=args.max_hold,
                                        spill_spec=spill_spec)
    fleet = fixed_fleet(
        spec, args.replicas, faults=schedule,
        retry_policy=RetryPolicy(timeout_s=args.timeout,
                                 max_attempts=args.max_attempts,
                                 seed=args.seed),
        degradation=degradation, engine=args.engine)
    requests = poisson_arrivals(args.requests, args.rate, args.mean_prompt,
                                args.mean_output, seed=args.seed)
    report = fleet.run(requests)

    print(f"submitted          {report.submitted}  "
          f"(completed {len(report.outcomes)}, shed {len(report.shed)})")
    print(f"faults applied     {len(report.fault_events)}  "
          f"retries {report.retries}  wasted tokens {report.wasted_tokens}")
    print(f"SLO attainment     "
          f"{100 * report.slo_attainment(args.slo_ttft):.1f}% "
          f"(TTFT <= {args.slo_ttft:g} s)")
    print(f"fleet cost         ${report.cost_usd:.4f}  "
          f"(goodput ${report.goodput_cost_usd:.4f}, "
          f"wasted ${report.wasted_cost_usd:.4f})")
    if report.tokens_out:
        print(f"$/Mtok             {report.usd_per_mtok:.2f}")
    _print_rows("replicas", report.summary_rows())
    if report.shed:
        _print_rows("shed requests", [s.to_dict() for s in report.shed])
    if args.timeline:
        _print_rows("fault timeline", [
            {"t_s": a.applied_s, "kind": a.event.kind,
             "replica": a.event.replica_id, "effect": a.effect}
            for a in report.fault_events])
    if args.json:
        payload = report.to_dict()
        payload["fault_timeline"] = [a.to_dict()
                                     for a in report.fault_events]
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    grid = (DEFAULT_MTBF_GRID_S if args.mtbf_grid is None else
            tuple(None if p in ("inf", "none") else float(p)
                  for p in args.mtbf_grid.split(",")))
    kinds = tuple(args.kinds.split(","))
    # Partial results stream as each point lands (append when resuming:
    # the run directory's WAL already holds the earlier rows).
    stream = (open(args.jsonl, "a" if args.resume else "w",
                   encoding="utf-8") if args.jsonl else None)

    def emit(row: dict) -> None:
        if stream is not None:
            stream.write(json.dumps(row, sort_keys=True) + "\n")
            stream.flush()

    quarantined: dict[int, dict] = {}
    try:
        if args.resume:
            from repro.state import SweepRunner, chaos_grid
            spec = chaos_grid(kinds=kinds, mtbf_grid_s=grid,
                              num_requests=args.requests, rate_rps=args.rate,
                              mean_prompt=args.mean_prompt,
                              mean_output=args.mean_output,
                              replicas=args.replicas, seed=args.seed,
                              slo_ttft_s=args.slo_ttft,
                              timeout_s=args.timeout, horizon_s=args.horizon,
                              checkpoint_every_s=args.checkpoint_every,
                              point_timeout_s=args.point_timeout)
            runner = SweepRunner.create(args.resume, spec)
            done = len(runner.completed())
            print(f"run dir {args.resume}: {done}/{len(spec.points)} points "
                  f"journaled, {len(runner.pending())} to go")
            by_index = runner.run(on_row=lambda point, row: emit(row))
            rows = [{field: by_index[index][field] for field in ROW_FIELDS}
                    for index in sorted(by_index)]
            quarantined = runner.quarantined()
        else:
            rows = []
            for row in iter_mtbf_rows(kinds, grid, args.requests, args.rate,
                                      args.mean_prompt, args.mean_output,
                                      args.replicas, args.seed,
                                      args.slo_ttft, args.timeout,
                                      args.horizon):
                emit(row)
                rows.append(row)
    finally:
        if stream is not None:
            stream.close()
    _print_rows(f"MTBF sweep (SLO: TTFT <= {args.slo_ttft:g} s)", rows)
    if quarantined:
        _print_rows("quarantined points", [
            {"index": q["index"], "key": q["key"],
             "attempts": q["attempts"], "error": q["error"]}
            for q in quarantined.values()])
    anchor = {r["kind"]: r for r in rows if r["mtbf_s"] is None}
    for row in rows:
        base = anchor.get(row["kind"])
        if base is None or row["mtbf_s"] is None or not row["usd_per_mtok"]:
            continue
        slo_drop = base["slo_attainment"] - row["slo_attainment"]
        cost_x = row["usd_per_mtok"] / base["usd_per_mtok"]
        print(f"{row['kind']:>6} @ MTBF {row['mtbf_s']:g}s: "
              f"SLO -{100 * slo_drop:.1f} pts, $/Mtok x{cost_x:.2f}")
    if args.json:
        args.json.write_text(json.dumps(rows, indent=2) + "\n")
    return 0


def _add_workload_args(p: argparse.ArgumentParser, requests: int,
                       rate: float, replicas: int) -> None:
    p.add_argument("--requests", type=int, default=requests)
    p.add_argument("--rate", type=float, default=rate)
    p.add_argument("--mean-prompt", type=int, default=128)
    p.add_argument("--mean-output", type=int, default=64)
    p.add_argument("--replicas", type=int, default=replicas)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--slo-ttft", type=float, default=2.0)
    p.add_argument("--timeout", type=float, default=20.0)
    p.add_argument("--max-attempts", type=int, default=4)
    p.add_argument("--horizon", type=float, default=40.0)
    p.add_argument("--engine", choices=ENGINES, default="stepped",
                   help="fleet core: stepped reference or the event-driven "
                        "columnar engine (bit-identical reports)")
    p.add_argument("--json", type=Path, default=None)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fault-inject TEE serving fleets and price the damage")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="one chaos run against one fleet")
    run.add_argument("--kind", default="tdx")
    run.add_argument("--mtbf", type=float, default=None,
                     help="arm a hazard-rate schedule at this MTBF (s)")
    for kind in ("crash", "hang", "slowdown", "boot-failure",
                 "attestation-failure", "link-degrade"):
        run.add_argument(f"--{kind}", action="append", metavar="T:RID[:...]",
                         dest=kind.replace("-", "_"),
                         help=f"inject a {kind} (time:replica[:dur[:fac]])")
    run.add_argument("--degrade", choices=("shed", "spill"), default=None)
    run.add_argument("--max-hold", type=float, default=20.0)
    run.add_argument("--spill-kind", default="cgpu")
    run.add_argument("--timeline", action="store_true",
                     help="print the applied-fault timeline")
    run.add_argument("--phased-boot", action="store_true",
                     help="arm the kind's phased confidential boot profile "
                          "(crash recovery and attestation failures pay "
                          "the re-attestation remainder)")
    _add_workload_args(run, requests=40, rate=4.0, replicas=2)
    run.set_defaults(func=cmd_run)

    sweep = sub.add_parser("sweep",
                           help="SLO and $/Mtok vs failure rate per backend")
    sweep.add_argument("--kinds", default=",".join(DEFAULT_KINDS))
    sweep.add_argument("--mtbf", dest="mtbf_grid", default=None,
                       metavar="GRID",
                       help="comma list of MTBF seconds ('inf' = no faults)")
    sweep.add_argument("--jsonl", type=Path, default=None,
                       help="stream one JSON row per completed point")
    sweep.add_argument("--resume", type=Path, default=None, metavar="RUN_DIR",
                       help="write-ahead journal the sweep into RUN_DIR; "
                            "rerun to continue after a crash/SIGKILL")
    sweep.add_argument("--checkpoint-every", type=float, default=0.0,
                       metavar="SIM_S",
                       help="with --resume: snapshot each in-flight point "
                            "every SIM_S simulated seconds (0 = off)")
    sweep.add_argument("--point-timeout", type=float, default=None,
                       metavar="WALL_S",
                       help="with --resume: watchdog wall-clock budget per "
                            "point attempt (retry + quarantine on breach)")
    sweep.set_defaults(func=cmd_sweep)
    _add_workload_args(sweep, requests=36, rate=1.5, replicas=1)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
