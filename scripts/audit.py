"""Invariant audit CLI: run the ``repro.validate`` check batteries.

Executes the registered differential, metamorphic, golden-trace and chaos
checks against the live model and reports pass/fail/skip per check.
Exit status is the CI gate: 0 when the run is green, 1 on failures,
2 on usage errors (e.g. filters that match nothing).

Usage::

    PYTHONPATH=src python scripts/audit.py                  # full audit
    PYTHONPATH=src python scripts/audit.py --strict         # fail on warns too
    PYTHONPATH=src python scripts/audit.py --family golden
    PYTHONPATH=src python scripts/audit.py --layer serving --layer memsim
    PYTHONPATH=src python scripts/audit.py --check vectorized_loop_parity
    PYTHONPATH=src python scripts/audit.py --regen          # rewrite goldens
    PYTHONPATH=src python scripts/audit.py --list           # show registry
    PYTHONPATH=src python scripts/audit.py --json audit.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.validate import (  # noqa: E402
    AuditContext,
    all_checks,
    run_audit,
)


def list_registry() -> None:
    specs = sorted(all_checks().values(), key=lambda s: (s.family, s.name))
    family = None
    for spec in specs:
        if spec.family != family:
            family = spec.family
            print(f"[{family}]")
        tags = ",".join(spec.layers)
        print(f"  {spec.name:<42} severity={spec.severity:<8} layers={tags}")
    print(f"{len(specs)} checks registered")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--family", action="append", dest="families",
                        metavar="NAME",
                        help="run only this family (repeatable)")
    parser.add_argument("--layer", action="append", dest="layers",
                        metavar="TAG",
                        help="run only checks tagged with this layer "
                             "(repeatable)")
    parser.add_argument("--check", action="append", dest="names",
                        metavar="SUBSTR",
                        help="run only checks whose name contains this "
                             "substring (repeatable)")
    parser.add_argument("--strict", action="store_true",
                        help="any failing check gates (default: only "
                             "blocker-severity failures)")
    parser.add_argument("--regen", action="store_true",
                        help="golden checks rewrite their snapshots instead "
                             "of comparing")
    parser.add_argument("--golden-dir", type=Path, default=None,
                        help="override the golden snapshot directory")
    parser.add_argument("--list", action="store_true",
                        help="list registered checks and exit")
    parser.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="also write the report as JSON")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="show detail lines for passing checks too")
    args = parser.parse_args(argv)

    if args.list:
        list_registry()
        return 0

    ctx = AuditContext(golden_dir=args.golden_dir, regen=args.regen)
    families = tuple(args.families) if args.families else None
    if args.regen and families is None and not args.layers and not args.names:
        families = ("golden",)
    try:
        report = run_audit(families=families,
                           layers=tuple(args.layers) if args.layers else None,
                           names=tuple(args.names) if args.names else None,
                           ctx=ctx)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(report.render(verbose=args.verbose))
    if args.json:
        args.json.write_text(report.to_json() + "\n")
        print(f"report written to {args.json}")
    return 0 if report.ok(strict=args.strict) else 1


if __name__ == "__main__":
    raise SystemExit(main())
