"""repro — reproduction of "Confidential LLM Inference: Performance and
Cost Across CPU and GPU TEEs" (IISWC 2025).

The package simulates end-to-end LLM inference inside CPU TEEs (Intel
TDX and SGX) and GPU TEEs (NVIDIA H100 confidential compute) from
mechanism-level models — memory encryption, nested page walks, TLB and
hugepage behaviour, NUMA placement, EPC paging, PCIe bounce buffers —
plus functional substrates: a numpy reference transformer, Gramine/QEMU
configuration tooling, an attestation flow, and a working RAG stack.

Quick start::

    from repro import Workload, cpu_deployment, simulate_generation
    from repro.llm import LLAMA2_7B, BFLOAT16

    w = Workload(LLAMA2_7B, BFLOAT16, batch_size=6, beam_size=4)
    result = simulate_generation(w, cpu_deployment("tdx", sockets_used=1))
    print(result.decode_throughput_tok_s)
"""

from .core import (
    ConfidentialPipeline,
    Experiment,
    ExperimentResult,
    cpu_deployment,
    gpu_deployment,
    latency_stats,
    render_summary_table,
    verify_all_insights,
)
from .engine import (
    CpuPlacement,
    Deployment,
    GenerationResult,
    GpuPlacement,
    Workload,
    simulate_encode,
    simulate_generation,
)

__version__ = "1.0.0"

__all__ = [
    "ConfidentialPipeline", "Experiment", "ExperimentResult",
    "cpu_deployment", "gpu_deployment", "latency_stats",
    "render_summary_table", "verify_all_insights",
    "CpuPlacement", "Deployment", "GenerationResult", "GpuPlacement",
    "Workload", "simulate_encode", "simulate_generation",
    "__version__",
]
