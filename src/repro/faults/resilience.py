"""Request-level resilience: timeout/retry policies and degradation.

Two knobs govern how a fleet survives the faults that
:mod:`repro.faults.schedule` injects:

* :class:`RetryPolicy` — a per-request timeout plus exponential backoff
  with seeded jitter.  Backoff delays are deterministic per
  ``(seed, request_id)`` and monotone non-decreasing per attempt (a
  running max over the jittered exponential series), so chaos replays
  are bit-identical and a later retry never fires sooner than an
  earlier one would have.
* :class:`DegradationPolicy` — what to do when demand outlives
  capacity: ``shed`` drops the lowest-priority overdue requests, while
  ``spill`` provisions emergency replicas of a fallback spec (the
  paper's "other backend", e.g. spilling a TDX fleet onto cGPU).

Requests that leave the system unserved are recorded as
:class:`ShedRequest` so conservation checks can prove nothing is ever
silently lost.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..serving.scheduler import ServeRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fleet -> faults)
    from ..fleet.replica import ReplicaSpec

#: Degradation modes.
DEGRADATION_MODES = ("shed", "spill")

#: Reasons a request can be shed (surfaced on :class:`ShedRequest`).
SHED_REASONS = ("retries-exhausted", "degraded", "unroutable")


@dataclass(frozen=True)
class RetryPolicy:
    """Per-request timeout + seeded exponential backoff.

    Attributes:
        timeout_s: In-flight wall-clock budget per attempt; a request
            older than this on a replica is cancelled and retried.
        max_attempts: Total attempts (first submission included) before
            the request is shed as ``retries-exhausted``.
        backoff_base_s: Delay before the first retry.
        backoff_multiplier: Exponential growth per further retry.
        jitter_frac: Uniform jitter added on top of each delay, as a
            fraction of the un-jittered delay.
        seed: Jitter seed; draws are keyed by
            ``f"{seed}:{request_id}:{retry}"`` so they are independent
            of scheduling order and stable across processes.
    """

    timeout_s: float = 30.0
    max_attempts: int = 3
    backoff_base_s: float = 0.5
    backoff_multiplier: float = 2.0
    jitter_frac: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if not math.isfinite(self.timeout_s) or self.timeout_s <= 0:
            raise ValueError("timeout_s must be finite and positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0 <= self.jitter_frac <= 1:
            raise ValueError("jitter_frac must be in [0, 1]")

    def jitter(self, request_id: int, retry: int) -> float:
        """Deterministic uniform draw in [0, 1) for one retry."""
        return random.Random(f"{self.seed}:{request_id}:{retry}").random()

    def backoff_s(self, request_id: int, retry: int) -> float:
        """Delay before retry number ``retry`` (1-based).

        Monotone non-decreasing in ``retry`` and deterministic per
        ``(seed, request_id)``.
        """
        if retry < 1:
            raise ValueError("retry must be >= 1")
        delay = 0.0
        for k in range(1, retry + 1):
            base = self.backoff_base_s * self.backoff_multiplier ** (k - 1)
            jittered = base * (1.0 + self.jitter_frac
                               * self.jitter(request_id, k))
            # Running max: jitter can never reorder successive retries.
            delay = max(delay, jittered)
        return delay


@dataclass(frozen=True)
class DegradationPolicy:
    """Graceful degradation when held work outlives ``max_hold_s``.

    Attributes:
        mode: ``shed`` drops overdue requests (lowest priority first);
            ``spill`` provisions emergency replicas instead.
        max_hold_s: How long a request may wait unrouted before the
            policy acts.
        spill_spec: Spec of emergency replicas (``spill`` mode); when
            ``None`` the fleet's ``scale_spec`` is used.
        spill_boot_s: Boot latency of emergency replicas.
        max_spill: Cap on emergency instances per run.
    """

    mode: str = "shed"
    max_hold_s: float = 20.0
    spill_spec: ReplicaSpec | None = None
    spill_boot_s: float = 0.0
    max_spill: int = 2

    def __post_init__(self) -> None:
        if self.mode not in DEGRADATION_MODES:
            raise ValueError(f"unknown degradation mode {self.mode!r}; "
                             f"expected one of {DEGRADATION_MODES}")
        if not math.isfinite(self.max_hold_s) or self.max_hold_s <= 0:
            raise ValueError("max_hold_s must be finite and positive")
        if self.spill_boot_s < 0:
            raise ValueError("spill_boot_s must be >= 0")
        if self.max_spill < 0:
            raise ValueError("max_spill must be >= 0")


@dataclass(frozen=True)
class ShedRequest:
    """A request that left the system unserved.

    Attributes:
        request: The original request.
        time_s: When it was shed.
        reason: One of :data:`SHED_REASONS`.
        attempts: Submissions made before giving up (0 = never routed).
    """

    request: ServeRequest
    time_s: float
    reason: str
    attempts: int

    def __post_init__(self) -> None:
        if self.reason not in SHED_REASONS:
            raise ValueError(f"unknown shed reason {self.reason!r}; "
                             f"expected one of {SHED_REASONS}")
        if self.attempts < 0:
            raise ValueError("attempts must be >= 0")

    def to_dict(self) -> dict:
        return {"request_id": self.request.request_id, "time_s": self.time_s,
                "reason": self.reason, "attempts": self.attempts}
