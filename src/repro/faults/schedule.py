"""Fault schedules: deterministic, seedable failure timelines.

A :class:`FaultSchedule` is an immutable, time-sorted list of
:class:`FaultEvent` records that a
:class:`~repro.faults.injector.FaultInjector` replays against the
shared-clock fleet simulator.  Three builders cover the operational
regimes chaos tests care about: :func:`one_shot` (a single scripted
failure), :func:`recurring` (a periodic failure, e.g. a nightly enclave
restart), and :func:`mtbf_schedule` (a hazard-rate process — per-replica
exponential inter-failure times at a target MTBF, with MTTR-drawn
repair windows).  Every draw comes from ``random.Random`` seeded by
``f"{seed}:{replica_id}"``, so a schedule is bit-identical across
processes and independent of replica iteration order.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

#: Fault kinds the injector knows how to apply.
FAULT_KINDS = ("crash", "hang", "slowdown", "boot_failure",
               "attestation_failure", "link_degrade")

#: Fraction of a decode step spent on interconnect traffic (used to
#: translate a link-bandwidth cut into a step-time multiplier).
DEFAULT_COMM_SHARE = 0.15

#: Default repair/penalty window when a builder draw is not supplied.
DEFAULT_DURATION_S = 10.0


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure.

    Attributes:
        time_s: Injection time on the fleet's shared clock.
        kind: One of :data:`FAULT_KINDS`.
        replica_id: Target instance (fleet provisioning order).
        duration_s: Effect window — hang stall, slowdown window,
            attestation re-admission delay, boot-failure penalty, or
            link-degradation window.  Ignored for ``crash``.
        factor: ``slowdown``: wall-time multiplier (> 1).
            ``link_degrade``: remaining bandwidth fraction in (0, 1].
        restart_after_s: For ``crash``: downtime before the instance
            reboots (``None`` = the instance stays dead).
        comm_share: For ``link_degrade``: fraction of step time that is
            interconnect-bound.
    """

    time_s: float
    kind: str
    replica_id: int
    duration_s: float = 0.0
    factor: float = 1.0
    restart_after_s: float | None = None
    comm_share: float = DEFAULT_COMM_SHARE

    def __post_init__(self) -> None:
        if not math.isfinite(self.time_s) or self.time_s < 0:
            raise ValueError("time_s must be finite and >= 0")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if self.replica_id < 0:
            raise ValueError("replica_id must be >= 0")
        if not math.isfinite(self.duration_s) or self.duration_s < 0:
            raise ValueError("duration_s must be finite and >= 0")
        if self.kind in ("hang", "slowdown", "link_degrade",
                         "attestation_failure") and self.duration_s <= 0:
            raise ValueError(f"{self.kind} requires duration_s > 0")
        if self.kind == "slowdown" and self.factor <= 1.0:
            raise ValueError("slowdown factor must be > 1")
        if self.kind == "link_degrade" and not 0 < self.factor <= 1.0:
            raise ValueError("link_degrade factor must be in (0, 1]")
        if self.restart_after_s is not None and (
                not math.isfinite(self.restart_after_s)
                or self.restart_after_s < 0):
            raise ValueError("restart_after_s must be finite and >= 0")
        if not 0 < self.comm_share <= 1:
            raise ValueError("comm_share must be in (0, 1]")

    def to_dict(self) -> dict:
        return {
            "time_s": self.time_s,
            "kind": self.kind,
            "replica_id": self.replica_id,
            "duration_s": self.duration_s,
            "factor": self.factor,
            "restart_after_s": self.restart_after_s,
            "comm_share": self.comm_share,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultEvent":
        """Inverse of :meth:`to_dict` (checkpoint restore path)."""
        from ..state.errors import StateError, StateValueError
        from ..state.schema import require, require_finite
        try:
            return cls(
                time_s=require_finite(payload, "time_s", "$.fault_event"),
                kind=require(payload, "kind", str, "$.fault_event"),
                replica_id=require(payload, "replica_id", int,
                                   "$.fault_event"),
                duration_s=require_finite(payload, "duration_s",
                                          "$.fault_event"),
                factor=require_finite(payload, "factor", "$.fault_event"),
                restart_after_s=require_finite(payload, "restart_after_s",
                                               "$.fault_event",
                                               optional=True),
                comm_share=require_finite(payload, "comm_share",
                                          "$.fault_event"),
            )
        except StateError:
            raise
        except ValueError as error:
            raise StateValueError(
                f"invalid fault event payload: {error}") from error


def _sort_key(event: FaultEvent) -> tuple:
    return (event.time_s, event.replica_id, FAULT_KINDS.index(event.kind))


@dataclass(frozen=True)
class FaultSchedule:
    """A time-sorted, immutable failure timeline."""

    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=_sort_key))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __add__(self, other: FaultSchedule) -> FaultSchedule:
        return FaultSchedule(self.events + other.events)

    @classmethod
    def empty(cls) -> FaultSchedule:
        """A schedule that injects nothing (chaos machinery armed, no
        faults) — the zero-fault differential-twin configuration."""
        return cls(())

    def to_dicts(self) -> list[dict]:
        return [event.to_dict() for event in self.events]


def one_shot(kind: str, replica_id: int, time_s: float,
             **params: object) -> FaultSchedule:
    """A single scripted failure."""
    return FaultSchedule((FaultEvent(time_s=time_s, kind=kind,
                                     replica_id=replica_id, **params),))


def recurring(kind: str, replica_id: int, start_s: float, period_s: float,
              count: int, **params: object) -> FaultSchedule:
    """The same failure every ``period_s`` seconds, ``count`` times."""
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    if count < 1:
        raise ValueError("count must be >= 1")
    return FaultSchedule(tuple(
        FaultEvent(time_s=start_s + index * period_s, kind=kind,
                   replica_id=replica_id, **params)
        for index in range(count)))


#: Kind mix drawn by :func:`mtbf_schedule` (boot failures are excluded:
#: they only make sense against a booting instance).
MTBF_KIND_WEIGHTS = (
    ("crash", 0.35),
    ("hang", 0.20),
    ("slowdown", 0.20),
    ("attestation_failure", 0.15),
    ("link_degrade", 0.10),
)


def mtbf_schedule(replica_ids: list[int], mtbf_s: float, horizon_s: float,
                  seed: int = 0, mttr_s: float = DEFAULT_DURATION_S,
                  kinds: tuple[tuple[str, float], ...] = MTBF_KIND_WEIGHTS,
                  ) -> FaultSchedule:
    """A hazard-rate failure process per replica.

    Each replica fails independently with exponential inter-failure
    times at mean ``mtbf_s`` until ``horizon_s``; the fault kind is
    drawn from ``kinds`` and repair/effect windows are exponential at
    mean ``mttr_s`` (floored at one second so a fault is never a
    no-op).  Deterministic per ``(seed, replica_id)``.
    """
    if mtbf_s <= 0:
        raise ValueError("mtbf_s must be positive")
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    if mttr_s <= 0:
        raise ValueError("mttr_s must be positive")
    names = tuple(name for name, _ in kinds)
    weights = tuple(weight for _, weight in kinds)
    events: list[FaultEvent] = []
    for replica_id in sorted(set(replica_ids)):
        rng = random.Random(f"{seed}:{replica_id}")
        clock = rng.expovariate(1.0 / mtbf_s)
        while clock < horizon_s:
            kind = rng.choices(names, weights=weights, k=1)[0]
            repair = max(1.0, rng.expovariate(1.0 / mttr_s))
            params: dict[str, object] = {}
            if kind == "crash":
                params["restart_after_s"] = repair
            elif kind == "slowdown":
                params["duration_s"] = repair
                params["factor"] = 1.5 + 2.0 * rng.random()
            elif kind == "link_degrade":
                params["duration_s"] = repair
                params["factor"] = 0.1 + 0.8 * rng.random()
            else:  # hang / attestation_failure / boot_failure
                params["duration_s"] = repair
            events.append(FaultEvent(time_s=clock, kind=kind,
                                     replica_id=replica_id, **params))
            clock += rng.expovariate(1.0 / mtbf_s)
    return FaultSchedule(tuple(events))
