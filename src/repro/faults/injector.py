"""Fault injector: replays a schedule against the fleet's shared clock.

The injector is a deterministic event source: the fleet loop asks it
for the faults due by each tick (:meth:`FaultInjector.due`) and records
what actually happened when each one was applied
(:meth:`FaultInjector.record`).  The applied timeline — injection time,
event, and a human-readable effect — is surfaced on the
:class:`~repro.fleet.report.FleetReport` so chaos checks can replay and
compare fault histories bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from .schedule import FaultEvent, FaultSchedule


@dataclass(frozen=True)
class AppliedFault:
    """One fault as it actually landed on the fleet.

    Attributes:
        event: The scheduled fault.
        applied_s: Shared-clock tick at which it was applied (the first
            tick at or after ``event.time_s``).
        effect: What the injection did (e.g. ``"crash: evacuated 3
            requests"`` or ``"no-op: replica already failed"``).
    """

    event: FaultEvent
    applied_s: float
    effect: str

    def to_dict(self) -> dict:
        return {"event": self.event.to_dict(), "applied_s": self.applied_s,
                "effect": self.effect}


class FaultInjector:
    """Single-shot replay of one :class:`FaultSchedule`.

    An injector is consumed by one fleet run; build a fresh one per run
    (passing a :class:`FaultSchedule` to the simulator does this
    automatically).
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self._cursor = 0
        self.applied: list[AppliedFault] = []

    @property
    def pending(self) -> int:
        """Events not yet handed to the fleet."""
        return len(self.schedule.events) - self._cursor

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.schedule.events)

    @property
    def next_due_s(self) -> float | None:
        """Scheduled time of the next undelivered event, if any.

        The event-driven fleet core uses this as a wake candidate so it
        can jump quiet stretches without missing an injection tick.
        """
        if self._cursor >= len(self.schedule.events):
            return None
        return self.schedule.events[self._cursor].time_s

    def due(self, now: float) -> list[FaultEvent]:
        """Pop every event scheduled at or before ``now``, in order."""
        popped: list[FaultEvent] = []
        events = self.schedule.events
        while self._cursor < len(events) and events[self._cursor].time_s <= now:
            popped.append(events[self._cursor])
            self._cursor += 1
        return popped

    def record(self, event: FaultEvent, applied_s: float,
               effect: str) -> None:
        """Log how a due event landed (kept in application order)."""
        self.applied.append(AppliedFault(event=event, applied_s=applied_s,
                                         effect=effect))

    # -- checkpoint/restore ---------------------------------------------------

    def to_state(self) -> dict:
        """Plain-dict snapshot: schedule fingerprint, cursor, timeline.

        The full schedule rides along so restore can refuse a cursor
        positioned against a *different* timeline — a silently wrong
        schedule would replay the wrong faults from the right index.
        """
        return {
            "schedule": self.schedule.to_dicts(),
            "cursor": self._cursor,
            "applied": [fault.to_dict() for fault in self.applied],
        }

    def from_state(self, state: dict) -> None:
        """Install a :meth:`to_state` snapshot into this injector.

        The injector must have been built from the same schedule.

        Raises:
            repro.state.errors.StateIntegrityError: On a schedule
                mismatch or an out-of-range cursor.
        """
        from ..state.errors import StateIntegrityError
        from ..state.schema import require, require_finite

        recorded = require(state, "schedule", list, "$.injector")
        if recorded != self.schedule.to_dicts():
            raise StateIntegrityError(
                f"injector snapshot was taken against a different fault "
                f"schedule ({len(recorded)} vs "
                f"{len(self.schedule.events)} events)")
        cursor = require(state, "cursor", int, "$.injector")
        if not 0 <= cursor <= len(self.schedule.events):
            raise StateIntegrityError(
                f"injector cursor {cursor} out of range for "
                f"{len(self.schedule.events)} events")
        self._cursor = cursor
        self.applied = []
        for payload in require(state, "applied", list, "$.injector"):
            self.applied.append(AppliedFault(
                event=FaultEvent.from_dict(
                    require(payload, "event", dict, "$.injector.applied")),
                applied_s=require_finite(payload, "applied_s",
                                         "$.injector.applied"),
                effect=require(payload, "effect", str, "$.injector.applied"),
            ))
