"""Fault injection and resilience for the fleet simulator.

Deterministic, seedable chaos for :mod:`repro.fleet`: fault schedules
(one-shot, recurring, MTBF hazard processes) injecting replica crashes,
hangs, slowdowns, boot failures, attestation failures (TEE replicas
re-attest before readmission), and interconnect degradation; plus the
recovery side — per-request timeout/retry with seeded exponential
backoff, requeue-on-death with duplicate suppression, and graceful
degradation (shed by priority, or spill to another backend).

Every draw is keyed by an explicit seed, so a fault schedule, its retry
jitter, and the resulting failure-aware
:class:`~repro.fleet.report.FleetReport` are bit-reproducible — the
property the ``chaos`` audit family and the hypothesis chaos tests
exercise.
"""

from .attest import TEE_KINDS, FleetAttestation, needs_attestation
from .injector import AppliedFault, FaultInjector
from .resilience import (
    DEGRADATION_MODES,
    SHED_REASONS,
    DegradationPolicy,
    RetryPolicy,
    ShedRequest,
)
from .schedule import (
    DEFAULT_COMM_SHARE,
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    mtbf_schedule,
    one_shot,
    recurring,
)

#: Lazily resolved from :mod:`repro.faults.sweep`, which imports
#: :mod:`repro.fleet` (itself an importer of this package).
_SWEEP_EXPORTS = ("DEFAULT_KINDS", "DEFAULT_MTBF_GRID_S", "chaos_fleet",
                  "mtbf_sweep", "sweep_row")

__all__ = [
    "AppliedFault",
    "DEFAULT_COMM_SHARE",
    "DEGRADATION_MODES",
    "DegradationPolicy",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FleetAttestation",
    "RetryPolicy",
    "SHED_REASONS",
    "ShedRequest",
    "TEE_KINDS",
    "mtbf_schedule",
    "needs_attestation",
    "one_shot",
    "recurring",
    *_SWEEP_EXPORTS,
]


def __getattr__(name: str):
    if name in _SWEEP_EXPORTS:
        from . import sweep
        return getattr(sweep, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
