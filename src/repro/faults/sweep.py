"""Chaos sweeps: serving economics as a function of failure rate.

The paper's §V-D cost comparison (TDX vs confidential GPU $/Mtok at a
TTFT SLO) assumes immortal replicas; this module quantifies how the
conclusion erodes when replicas fail.  :func:`mtbf_sweep` runs the
same fleet and request stream under hazard-rate fault schedules at
decreasing MTBF and reports, per backend, the SLO attainment and the
dollars per million *good* tokens — the cost of goodput including the
instance-hours burned on retried and wasted work.

Everything is seeded; the sweep is bit-reproducible and snapshotted by
the ``golden.chaos_mtbf`` audit check.
"""

from __future__ import annotations

from ..fleet.arrivals import poisson_arrivals
from ..fleet.cluster import FleetSimulator, fixed_fleet
from ..fleet.replica import replica_spec
from ..fleet.report import FleetReport
from ..tee.boot import BootProfile
from .resilience import RetryPolicy
from .schedule import FaultSchedule, mtbf_schedule

#: Backends the headline chaos comparison covers (the paper's CPU-TEE
#: vs confidential-GPU cost rivals).
DEFAULT_KINDS = ("tdx", "cgpu")

#: MTBF grid: no faults, then roughly two and five failures over the
#: default ~25 s serving window.
DEFAULT_MTBF_GRID_S: tuple[float | None, ...] = (None, 12.0, 6.0)


def chaos_fleet(kind: str, replicas: int = 2,
                mtbf_s: float | None = None,
                horizon_s: float = 40.0, seed: int = 0,
                timeout_s: float = 20.0,
                max_attempts: int = 4,
                engine: str = "stepped",
                boot: BootProfile | None = None) -> FleetSimulator:
    """A fixed fleet armed with an MTBF fault schedule and retries.

    ``mtbf_s=None`` arms the chaos machinery with an empty schedule —
    the configuration the zero-fault differential twin pins against a
    fault-free run.  ``boot`` arms a phased confidential boot profile
    (:mod:`repro.tee.boot`): crash recoveries and attestation failures
    then pay the re-attestation remainder instead of rebooting free.
    """
    spec = replica_spec(kind, max_batch=16, kv_capacity_tokens=65536,
                        boot=boot)
    if mtbf_s is None:
        schedule = FaultSchedule.empty()
    else:
        schedule = mtbf_schedule(list(range(replicas)), mtbf_s=mtbf_s,
                                 horizon_s=horizon_s, seed=seed)
    retry = RetryPolicy(timeout_s=timeout_s, max_attempts=max_attempts,
                        seed=seed)
    return fixed_fleet(spec, replicas, faults=schedule, retry_policy=retry,
                       engine=engine)


#: Canonical column order of :func:`sweep_row` — JSON round-trips (the
#: resumable runner's WAL) sort keys, so tables rebuilt from restored
#: rows reorder through this.
ROW_FIELDS = ("kind", "mtbf_s", "slo_attainment", "usd_per_mtok",
              "cost_usd", "goodput_cost_usd", "wasted_cost_usd",
              "completed", "shed", "retries", "wasted_tokens",
              "fault_events", "makespan_s")


def sweep_row(kind: str, mtbf_s: float | None, report: FleetReport,
              slo_ttft_s: float) -> dict:
    """Flatten one chaos run into a JSON-friendly sweep row."""
    return {
        "kind": kind,
        "mtbf_s": mtbf_s,
        "slo_attainment": report.slo_attainment(slo_ttft_s),
        "usd_per_mtok": (report.usd_per_mtok if report.tokens_out
                         else None),
        "cost_usd": report.cost_usd,
        "goodput_cost_usd": report.goodput_cost_usd,
        "wasted_cost_usd": report.wasted_cost_usd,
        "completed": len(report.outcomes),
        "shed": len(report.shed),
        "retries": report.retries,
        "wasted_tokens": report.wasted_tokens,
        "fault_events": len(report.fault_events),
        "makespan_s": report.makespan_s,
    }


def iter_mtbf_rows(kinds: tuple[str, ...] = DEFAULT_KINDS,
                   mtbf_grid_s: tuple[float | None, ...]
                   = DEFAULT_MTBF_GRID_S,
                   num_requests: int = 36, rate_rps: float = 1.5,
                   mean_prompt: int = 128, mean_output: int = 64,
                   replicas: int = 1, seed: int = 7,
                   slo_ttft_s: float = 2.0, timeout_s: float = 20.0,
                   horizon_s: float = 40.0, engine: str = "stepped"):
    """Yield :func:`mtbf_sweep` rows one completed point at a time.

    The streaming form exists so CLIs can emit partial results (JSONL)
    as each grid point lands instead of buffering the whole sweep — an
    interrupted sweep then keeps everything already computed.
    """
    for kind in kinds:
        for mtbf_s in mtbf_grid_s:
            requests = poisson_arrivals(num_requests, rate_rps, mean_prompt,
                                        mean_output, seed=seed)
            fleet = chaos_fleet(kind, replicas=replicas, mtbf_s=mtbf_s,
                                horizon_s=horizon_s, seed=seed,
                                timeout_s=timeout_s, engine=engine)
            report = fleet.run(requests)
            yield sweep_row(kind, mtbf_s, report, slo_ttft_s)


def mtbf_sweep(kinds: tuple[str, ...] = DEFAULT_KINDS,
               mtbf_grid_s: tuple[float | None, ...] = DEFAULT_MTBF_GRID_S,
               num_requests: int = 36, rate_rps: float = 1.5,
               mean_prompt: int = 128, mean_output: int = 64,
               replicas: int = 1, seed: int = 7,
               slo_ttft_s: float = 2.0, timeout_s: float = 20.0,
               horizon_s: float = 40.0) -> list[dict]:
    """SLO attainment and $/Mtok vs replica MTBF, per backend.

    One row per ``(kind, mtbf)`` point, same seeded Poisson stream
    everywhere, ``mtbf=None`` first as the fault-free anchor.  The
    default is a single replica per backend, so every crash stalls the
    stream until repair — the configuration where the slower CPU TEE's
    longer exposure per request shows up most clearly against the
    faster confidential GPU.
    """
    return list(iter_mtbf_rows(kinds, mtbf_grid_s, num_requests, rate_rps,
                               mean_prompt, mean_output, replicas, seed,
                               slo_ttft_s, timeout_s, horizon_s))
