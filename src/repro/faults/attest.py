"""Fleet-side attestation: TEE replicas re-attest before readmission.

Wires the real DCAP-style flow from :mod:`repro.tee.attestation` into
the replica lifecycle.  Every TEE replica is enrolled as a platform
when provisioned; an ``attestation_failure`` fault revokes the
platform key (so its next quote attempt genuinely fails verification)
and the replica may only rejoin the routable pool after the service
re-provisions it and a fresh quote passes the relying party's check.
Counters expose how many verifications ran and failed, so chaos tests
can prove the protocol was actually exercised rather than short-cut.
"""

from __future__ import annotations

from ..tee.attestation import AttestationService, RelyingParty, measure

#: Replica kinds that must attest before serving.
TEE_KINDS = ("tdx", "sgx", "cgpu")

#: Artifacts measured into the fleet's expected launch measurement.
_FLEET_ARTIFACTS = {
    "enclave.signed": b"repro-fleet-serving-enclave-v1",
    "manifest": b"repro-fleet-manifest-v1",
}


def needs_attestation(kind: str) -> bool:
    """Whether a replica kind runs inside a TEE and must attest."""
    return kind in TEE_KINDS


class FleetAttestation:
    """Attestation authority for one fleet run.

    One :class:`~repro.tee.attestation.AttestationService` plays the
    platform side for every replica; one
    :class:`~repro.tee.attestation.RelyingParty` holds the expected
    measurement.  All operations are deterministic (HMAC over fixed
    artifacts), so attestation adds no nondeterminism to a run.
    """

    def __init__(self) -> None:
        self.service = AttestationService()
        self.measurement = measure(_FLEET_ARTIFACTS)
        self.relying_party = RelyingParty(self.measurement)
        self.verifications = 0
        self.failures = 0

    def platform_id(self, replica_id: int) -> str:
        return f"replica-{replica_id}"

    def enroll(self, replica_id: int) -> None:
        """Provision a platform key for a newly created TEE replica."""
        self.service.provision_platform(self.platform_id(replica_id))

    def revoke(self, replica_id: int) -> bool:
        """Inject an attestation failure: revoke the key and prove the
        platform can no longer produce a verifiable quote.

        Returns:
            Whether a post-revocation quote attempt failed (always
            ``True``; returned so callers can assert the protocol ran).
        """
        platform = self.platform_id(replica_id)
        self.service.revoke_platform(platform)
        try:
            self.service.generate_quote(platform, self.measurement)
        except KeyError:
            self.verifications += 1
            self.failures += 1
            return True
        return False  # pragma: no cover - revocation always bites

    def readmit(self, replica_id: int) -> bool:
        """Re-provision and re-attest a replica for readmission.

        Runs the full flow — provision, quote, verify — and returns the
        relying party's verdict.
        """
        platform = self.platform_id(replica_id)
        if not self.service.provisioned(platform):
            self.service.provision_platform(platform)
        quote = self.service.generate_quote(platform, self.measurement,
                                            report_data=platform)
        ok = self.relying_party.verify(quote)
        self.verifications += 1
        if not ok:  # pragma: no cover - fresh keys always verify
            self.failures += 1
        return ok

    # -- checkpoint/restore ---------------------------------------------------

    def to_state(self) -> dict:
        """Plain-dict snapshot: provisioned platforms + counters.

        Platform keys are derived deterministically (HMAC over the
        platform id), so recording *which* platforms hold keys is
        enough — restore re-derives identical keys by re-provisioning.
        """
        return {
            "platforms": sorted(self.service._platform_keys),
            "verifications": self.verifications,
            "failures": self.failures,
        }

    def from_state(self, state: dict) -> None:
        """Install a :meth:`to_state` snapshot into this authority."""
        from ..state.schema import require
        platforms = require(state, "platforms", list, "$.attestation")
        self.service._platform_keys.clear()
        for platform in platforms:
            self.service.provision_platform(platform)
        self.verifications = require(state, "verifications", int,
                                     "$.attestation")
        self.failures = require(state, "failures", int, "$.attestation")
