"""End-to-end confidential inference pipeline (functional).

Ties the substrates together the way a real deployment would:

1. build the deployment's configuration artifact (Gramine manifest for
   SGX, QEMU/libvirt definition + LUKS plan for TDX),
2. measure it and run remote attestation,
3. on success, receive the model decryption key and decrypt the weights
   (a real stream cipher over real bytes),
4. serve generations: actual tokens from the numpy reference model, and
   performance estimates for the production-size model from the engine.

Examples and integration tests drive this class; a tampered manifest or
unprovisioned platform must fail closed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


from ..engine.placement import CpuPlacement, Deployment, Workload
from ..engine.simulator import GenerationResult, simulate_generation
from ..llm.config import ModelConfig, tiny_llama
from ..llm.reference import ReferenceTransformer
from ..llm.sampling import GenerationOutput, greedy_decode
from ..llm.tokenizer import HashTokenizer
from ..memsim.pages import GB
from ..tee.attestation import AttestationService, Quote, RelyingParty, measure
from ..tee.gramine import GramineManifest, inference_manifest
from ..tee.qemu import TdxVmConfig, paper_tdx_guest


def stream_cipher(data: bytes, key: bytes) -> bytes:
    """XOR stream cipher keyed by BLAKE2b(key, counter) blocks.

    Symmetric: applying it twice with the same key round-trips.  Stands
    in for AES-CTR so weight decryption is real byte-level work without
    needing non-stdlib crypto.
    """
    if not key:
        raise ValueError("empty key")
    out = bytearray(len(data))
    block_size = 64
    for block_start in range(0, len(data), block_size):
        counter = (block_start // block_size).to_bytes(8, "little")
        keystream = hashlib.blake2b(counter, key=key[:64],
                                    digest_size=block_size).digest()
        chunk = data[block_start:block_start + block_size]
        for offset, byte in enumerate(chunk):
            out[block_start + offset] = byte ^ keystream[offset]
    return bytes(out)


@dataclass(frozen=True)
class ProvisioningReport:
    """Outcome of the attest-and-provision phase."""

    backend: str
    measurement: str
    quote: Quote
    attested: bool
    config_artifact: str


@dataclass(frozen=True)
class PipelineResponse:
    """One served generation."""

    text_tokens: tuple[int, ...]
    reference_output: GenerationOutput
    performance: GenerationResult

    @property
    def estimated_latency_ms(self) -> float:
        return self.performance.next_token_latency_s * 1e3


class ConfidentialPipeline:
    """A confidential LLM service over one deployment.

    Args:
        deployment: Where the service runs (must be a TEE backend for
            provisioning to succeed against a strict relying party).
        workload: The production-size workload whose performance is
            estimated per request.
        service_model: Tiny architecture actually executed for token
            generation; defaults to a 2-layer toy Llama.
    """

    def __init__(self, deployment: Deployment, workload: Workload,
                 service_model: ModelConfig | None = None) -> None:
        self.deployment = deployment
        self.workload = workload
        self.tokenizer = HashTokenizer(
            (service_model or tiny_llama()).vocab_size)
        self._service_config = service_model or tiny_llama()
        self._attestation = AttestationService()
        self._platform_id = f"platform-{deployment.backend.name}"
        self._model: ReferenceTransformer | None = None
        self._report: ProvisioningReport | None = None

    # -- configuration artifacts ---------------------------------------------

    def build_config(self) -> GramineManifest | TdxVmConfig | None:
        """The deployment's configuration artifact (None for bare metal
        and GPU modes, which need no TEE-specific config on our side)."""
        backend = self.deployment.backend.name
        if backend == "sgx":
            return inference_manifest("/models/llama2-7b.safetensors",
                                      enclave_size_bytes=64 * GB)
        if backend == "tdx" and isinstance(self.deployment.placement,
                                           CpuPlacement):
            placement = self.deployment.placement
            return paper_tdx_guest(
                cpu_cores=placement.cores_per_socket,
                memory_gib=128,
                sockets=tuple(range(placement.sockets_used)))
        return None

    # -- provisioning ---------------------------------------------------------

    def provision(self, model_key: bytes = b"model-wrapping-key",
                  expected_measurement: str | None = None) -> ProvisioningReport:
        """Attest the platform and decrypt the service model's weights.

        Args:
            model_key: Key protecting the weights at rest.
            expected_measurement: Override what the relying party expects
                (tests use this to exercise the failure path).

        Raises:
            PermissionError: If attestation fails (wrong measurement or
                non-TEE backend asked to attest).
        """
        config = self.build_config()
        artifact = ""
        if isinstance(config, GramineManifest):
            artifact = config.render()
        elif isinstance(config, TdxVmConfig):
            artifact = config.libvirt_xml()
        measurement = measure({
            "config": artifact.encode(),
            "backend": self.deployment.backend.name.encode(),
            "model": self._service_config.name.encode(),
        })

        self._attestation.provision_platform(self._platform_id)
        quote = self._attestation.generate_quote(self._platform_id, measurement)
        relying_party = RelyingParty(expected_measurement or measurement)
        if not self.deployment.backend.is_tee:
            raise PermissionError(
                f"backend {self.deployment.backend.name!r} cannot attest; "
                "refusing to release model keys")
        relying_party.register_secret("model-key", model_key)
        released = relying_party.release_secret("model-key", quote)

        # Round-trip the weights through the at-rest encryption with the
        # released key: real bytes, real cipher, real failure if the key
        # is wrong.
        plain_model = ReferenceTransformer(self._service_config, seed=7)
        blob = plain_model.embed.tobytes()
        decrypted = stream_cipher(stream_cipher(blob, model_key), released)
        if decrypted != blob:
            raise PermissionError("released key failed to decrypt the model")
        self._model = plain_model
        self._report = ProvisioningReport(
            backend=self.deployment.backend.name, measurement=measurement,
            quote=quote, attested=True, config_artifact=artifact)
        return self._report

    # -- serving ---------------------------------------------------------------

    def generate(self, prompt: str, max_new_tokens: int = 8,
                 seed: int = 0) -> PipelineResponse:
        """Serve one generation.

        Raises:
            RuntimeError: If called before successful provisioning.
        """
        if self._model is None:
            raise RuntimeError("pipeline not provisioned; call provision()")
        prompt_ids = self.tokenizer.encode(prompt)
        reference = greedy_decode(self._model, prompt_ids, max_new_tokens)
        performance = simulate_generation(self.workload, self.deployment,
                                          seed=seed)
        return PipelineResponse(
            text_tokens=reference.tokens,
            reference_output=reference,
            performance=performance,
        )
