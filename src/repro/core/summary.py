"""Table I: the systems summary matrix.

Combines the qualitative security matrix (:mod:`repro.tee.security`)
with measured overhead bands and the parameter-influence arrows into the
paper's summary table, rendered as text.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tee.security import (
    CGPU_SECURITY,
    SGX_SECURITY,
    TDX_SECURITY,
    SecurityProfile,
)


@dataclass(frozen=True)
class Trend:
    """How a parameter influences overheads (Table I arrows)."""

    symbol: str

    DOWN = "down"
    UP = "up"
    UP_STRONG = "up-strong"
    DOWN_THEN_UP = "down-then-up"
    NEUTRAL = "-"

    def __post_init__(self) -> None:
        valid = (self.DOWN, self.UP, self.UP_STRONG, self.DOWN_THEN_UP,
                 self.NEUTRAL)
        if self.symbol not in valid:
            raise ValueError(f"unknown trend {self.symbol!r}; valid: {valid}")

    def __str__(self) -> str:
        return {"down": "v", "up": "^", "up-strong": "^^",
                "down-then-up": "v^", "-": "-"}[self.symbol]


@dataclass(frozen=True)
class SystemSummary:
    """One column of Table I."""

    system: str
    security: SecurityProfile
    overhead_band: tuple[float, float]
    batch_size_trend: Trend
    input_size_trend: Trend
    amx_trend: Trend
    scale_up_trend: Trend
    overhead_sources: tuple[str, ...]
    good_for_small_workloads: bool
    good_for_large_workloads: bool


SGX_SUMMARY = SystemSummary(
    system="Intel SGX (process TEE)",
    security=SGX_SECURITY,
    overhead_band=(0.04, 0.05),
    batch_size_trend=Trend(Trend.DOWN),
    input_size_trend=Trend(Trend.DOWN_THEN_UP),
    amx_trend=Trend(Trend.DOWN),
    scale_up_trend=Trend(Trend.UP_STRONG),
    overhead_sources=("EPC paging", "enclave exits", "memory encryption",
                      "NUMA"),
    good_for_small_workloads=True,
    good_for_large_workloads=False,
)

TDX_SUMMARY = SystemSummary(
    system="Intel TDX (VM TEE)",
    security=TDX_SECURITY,
    overhead_band=(0.05, 0.10),
    batch_size_trend=Trend(Trend.DOWN),
    input_size_trend=Trend(Trend.DOWN_THEN_UP),
    amx_trend=Trend(Trend.DOWN),
    scale_up_trend=Trend(Trend.UP),
    overhead_sources=("virtualization tax", "hugepages",
                      "memory encryption", "NUMA"),
    good_for_small_workloads=True,
    good_for_large_workloads=False,
)

CGPU_SUMMARY = SystemSummary(
    system="H100 cGPU (GPU TEE)",
    security=CGPU_SECURITY,
    overhead_band=(0.04, 0.08),
    batch_size_trend=Trend(Trend.DOWN),
    input_size_trend=Trend(Trend.DOWN),
    amx_trend=Trend(Trend.NEUTRAL),
    scale_up_trend=Trend(Trend.UP_STRONG),
    overhead_sources=("PCIe transfers", "kernel launch"),
    good_for_small_workloads=False,
    good_for_large_workloads=True,
)

ALL_SUMMARIES = (SGX_SUMMARY, TDX_SUMMARY, CGPU_SUMMARY)


def render_summary_table(summaries: tuple[SystemSummary, ...] = ALL_SUMMARIES,
                         measured_bands: dict[str, tuple[float, float]] | None = None,
                         ) -> str:
    """Render the Table I matrix as text.

    Args:
        measured_bands: Optional measured single-resource overhead bands
            keyed by the security profile name, overriding the paper
            bands (EXPERIMENTS.md compares both).
    """
    if not summaries:
        raise ValueError("no summaries given")
    header = ["row"] + [summary.system for summary in summaries]
    rows: list[list[str]] = [header]

    def add(row_name: str, cells: list[str]) -> None:
        rows.append([row_name] + cells)

    add("memory protected",
        [summary.security.memory_encrypted.glyph for summary in summaries])
    add("scale-up protected",
        [summary.security.scale_up_protected.glyph for summary in summaries])
    add("trusted: app", [summary.security.app_trusted.glyph for summary in summaries])
    add("trusted: OS", [summary.security.os_trusted.glyph for summary in summaries])
    add("trusted: VM", [summary.security.vm_trusted.glyph for summary in summaries])

    bands = []
    for summary in summaries:
        band = summary.overhead_band
        if measured_bands and summary.security.name in measured_bands:
            band = measured_bands[summary.security.name]
        bands.append(f"~{band[0] * 100:.0f}-{band[1] * 100:.0f}%")
    add("single-resource overhead", bands)

    add("batch size ^", [str(summary.batch_size_trend) for summary in summaries])
    add("input size ^", [str(summary.input_size_trend) for summary in summaries])
    add("AMX", [str(summary.amx_trend) for summary in summaries])
    add("scale-up", [str(summary.scale_up_trend) for summary in summaries])
    add("overhead sources",
        [", ".join(summary.overhead_sources) for summary in summaries])
    add("dev cost",
        [str(summary.security.development_cost) for summary in summaries])
    add("efficient: small batches",
        ["#" if summary.good_for_small_workloads else "." for summary in summaries])
    add("efficient: large batches",
        ["#" if summary.good_for_large_workloads else "." for summary in summaries])

    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        line = " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line)
        if index == 0:
            lines.append("-+-".join("-" * width for width in widths))
    return "\n".join(lines)
