"""Experiment configuration and execution.

An experiment runs one workload across a set of labelled deployments
(backend + placement + framework) and reports per-label results plus
overheads against a designated baseline — the structure shared by every
figure in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.placement import CpuPlacement, Deployment, GpuPlacement, Workload
from ..engine.simulator import GenerationResult, simulate_generation
from ..frameworks.base import Framework, framework_by_name
from ..hardware.cpu import CpuSpec
from ..hardware.gpu import GpuSpec, H100_NVL
from ..tee.base import backend_by_name
from .overhead import OverheadReport, compare


def cpu_deployment(backend: str = "baremetal", cpu: CpuSpec | None = None,
                   framework: str | Framework = "ipex",
                   **placement_kwargs: object) -> Deployment:
    """Build a CPU deployment from names and placement options.

    Args:
        backend: Registered backend name (``baremetal``, ``vm``,
            ``vm-unbound``, ``tdx``, ``sgx``).
        cpu: CPU system; defaults to EMR2.
        framework: Framework name or instance.
        **placement_kwargs: Forwarded to :class:`CpuPlacement`.
    """
    from ..hardware.cpu import EMR2
    fw = framework if isinstance(framework, Framework) \
        else framework_by_name(framework)
    placement = CpuPlacement(cpu=cpu or EMR2, **placement_kwargs)  # type: ignore[arg-type]
    return Deployment(placement=placement, backend=backend_by_name(backend),
                      framework=fw)


def gpu_deployment(confidential: bool = True,
                   gpu: GpuSpec = H100_NVL,
                   framework: str | Framework = "vllm-gpu",
                   backend: str | None = None) -> Deployment:
    """Build a GPU deployment.

    Args:
        confidential: Pick ``cgpu`` vs ``gpu`` when ``backend`` is None.
        backend: Explicit backend name (e.g. ``"cgpu-b100"`` for the
            projected B100 confidential mode).
    """
    fw = framework if isinstance(framework, Framework) \
        else framework_by_name(framework)
    name = backend or ("cgpu" if confidential else "gpu")
    return Deployment(placement=GpuPlacement(gpu=gpu),
                      backend=backend_by_name(name), framework=fw)


@dataclass
class ExperimentResult:
    """Results of one workload over several labelled deployments."""

    name: str
    workload: Workload
    results: dict[str, GenerationResult]
    baseline_label: str

    @property
    def baseline(self) -> GenerationResult:
        return self.results[self.baseline_label]

    def overhead(self, label: str, include_prefill: bool = False) -> OverheadReport:
        """Overhead of one deployment vs the experiment baseline.

        Raises:
            KeyError: For unknown labels.
        """
        return compare(self.results[label], self.baseline, include_prefill)

    def rows(self) -> list[dict[str, float | str]]:
        """Flat result table (one row per label) for harness printing."""
        rows: list[dict[str, float | str]] = []
        for label, result in self.results.items():
            report = self.overhead(label)
            rows.append({
                "label": label,
                "throughput_tok_s": result.decode_throughput_tok_s,
                "next_token_latency_ms": result.next_token_latency_s * 1e3,
                "first_token_latency_s": result.prefill_s,
                "throughput_overhead_pct": 100 * report.throughput_overhead,
                "latency_overhead_pct": 100 * report.latency_overhead,
            })
        return rows


@dataclass(frozen=True)
class Experiment:
    """A named, reusable experiment definition.

    Attributes:
        name: Experiment id (e.g. ``"fig4"``).
        workload: What runs.
        deployments: Labelled execution environments.
        baseline_label: Which label the overheads are computed against.
        seed: Noise seed (per-label offset added for independence).
        context_stride: Decode-cost recomputation stride.
        engine: Decode-cost engine (``"auto"``, ``"vectorized"`` or
            ``"loop"``; see :func:`repro.engine.simulator.simulate_generation`).
    """

    name: str
    workload: Workload
    deployments: dict[str, Deployment] = field(default_factory=dict)
    baseline_label: str = "baremetal"
    seed: int = 0
    context_stride: int | None = None
    engine: str = "auto"

    def run(self) -> ExperimentResult:
        """Simulate every deployment.

        Raises:
            ValueError: If the baseline label is missing.
        """
        if self.baseline_label not in self.deployments:
            raise ValueError(
                f"baseline {self.baseline_label!r} not among deployments "
                f"{sorted(self.deployments)}")
        results = {}
        for offset, (label, deployment) in enumerate(self.deployments.items()):
            results[label] = simulate_generation(
                self.workload, deployment, seed=self.seed + offset,
                context_stride=self.context_stride, engine=self.engine)
        return ExperimentResult(
            name=self.name, workload=self.workload, results=results,
            baseline_label=self.baseline_label)
