"""Parameter sweeps.

Most figures are sweeps: batch size (Figs. 8-9), input length
(Figs. 10-11, 13), core count (Fig. 12).  A sweep runs an experiment per
parameter value and flattens the results into rows a harness can print
or assert on.
"""

from __future__ import annotations

from typing import Callable

from ..engine.placement import Deployment, Workload
from .experiment import Experiment, ExperimentResult


def sweep_workload(name: str, base: Workload,
                   deployments: dict[str, Deployment], parameter: str,
                   values: list[int], baseline_label: str = "baremetal",
                   seed: int = 0) -> dict[int, ExperimentResult]:
    """Run one experiment per value of a workload parameter.

    Args:
        parameter: Workload field to vary (``batch_size``,
            ``input_tokens``, ...).

    Returns:
        Mapping from parameter value to that experiment's result.
    """
    if not values:
        raise ValueError("values must be non-empty")
    outcomes = {}
    for value in values:
        workload = base.with_(**{parameter: value})
        experiment = Experiment(
            name=f"{name}[{parameter}={value}]", workload=workload,
            deployments=deployments, baseline_label=baseline_label, seed=seed)
        outcomes[value] = experiment.run()
    return outcomes


def sweep_deployments(name: str, workload: Workload,
                      make_deployments: Callable[[int], dict[str, Deployment]],
                      values: list[int], baseline_label: str = "baremetal",
                      seed: int = 0) -> dict[int, ExperimentResult]:
    """Run one experiment per deployment variant (e.g. core counts).

    Args:
        make_deployments: Builds the labelled deployments for one value.
    """
    if not values:
        raise ValueError("values must be non-empty")
    outcomes = {}
    for value in values:
        experiment = Experiment(
            name=f"{name}[{value}]", workload=workload,
            deployments=make_deployments(value),
            baseline_label=baseline_label, seed=seed)
        outcomes[value] = experiment.run()
    return outcomes


def overhead_series(outcomes: dict[int, ExperimentResult], label: str,
                    metric: str = "throughput") -> dict[int, float]:
    """Extract an overhead-vs-parameter series from sweep outcomes.

    Args:
        metric: ``"throughput"`` or ``"latency"``.
    """
    if metric not in ("throughput", "latency"):
        raise ValueError("metric must be 'throughput' or 'latency'")
    series = {}
    for value, outcome in outcomes.items():
        report = outcome.overhead(label)
        series[value] = (report.throughput_overhead if metric == "throughput"
                         else report.latency_overhead)
    return series


def metric_series(outcomes: dict[int, ExperimentResult], label: str,
                  metric: str = "decode_throughput_tok_s") -> dict[int, float]:
    """Extract a raw-metric series (attribute of GenerationResult)."""
    series = {}
    for value, outcome in outcomes.items():
        series[value] = getattr(outcome.results[label], metric)
    return series


def is_monotonic(series: dict[int, float], decreasing: bool = True,
                 tolerance: float = 0.0) -> bool:
    """Whether a series moves monotonically with the parameter.

    Args:
        tolerance: Allowed counter-movement per step (absolute).
    """
    ordered = [series[key] for key in sorted(series)]
    pairs = zip(ordered, ordered[1:])
    if decreasing:
        return all(later <= earlier + tolerance for earlier, later in pairs)
    return all(later >= earlier - tolerance for earlier, later in pairs)
