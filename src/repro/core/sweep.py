"""Parameter sweeps.

Most figures are sweeps: batch size (Figs. 8-9), input length
(Figs. 10-11, 13), core count (Fig. 12).  A sweep runs an experiment per
parameter value and flattens the results into rows a harness can print
or assert on.

Sweeps run serially by default; pass ``parallel=True`` to fan the
per-value experiments out over a process pool.  Parallel execution is
deterministic and seed-stable: each experiment carries its own derived
seed, workers return complete :class:`ExperimentResult` objects, and the
merge preserves the caller's value order — a parallel sweep is
bit-identical to the serial one.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable

from ..engine.placement import Deployment, Workload
from ..state.errors import StateValueError
from .experiment import Experiment, ExperimentResult


def _validate_grid(parameter: str, values: list) -> None:
    """Reject malformed sweep grids before any experiment is built.

    Grid values name workload parameters (batch sizes, token counts,
    core counts) so they must be positive finite numbers; catching a
    NaN or negative here fails the whole sweep in microseconds instead
    of shipping poisoned experiments to a process pool and failing one
    worker minutes in.  Raises the structured
    :class:`~repro.state.errors.StateValueError` (a ``ValueError``
    subclass, so pre-existing handlers keep working).
    """
    if not values:
        raise StateValueError(f"sweep grid {parameter!r} must be non-empty")
    for slot, value in enumerate(values):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise StateValueError(
                f"sweep grid {parameter!r}[{slot}] must be numeric, got "
                f"{type(value).__name__}")
        if not math.isfinite(value) or value <= 0:
            raise StateValueError(
                f"sweep grid {parameter!r}[{slot}] must be a positive "
                f"finite number, got {value!r}")


def _run_experiment(experiment: Experiment) -> ExperimentResult:
    """Top-level worker entry point (must be picklable)."""
    return experiment.run()


def _run_all(experiments: list[Experiment], parallel: bool,
             max_workers: int | None) -> list[ExperimentResult]:
    """Run experiments serially or over a process pool, preserving order."""
    if not parallel or len(experiments) < 2:
        return [experiment.run() for experiment in experiments]
    workers = max_workers or min(len(experiments), os.cpu_count() or 1)
    workers = max(1, min(workers, len(experiments)))
    if workers == 1:
        return [experiment.run() for experiment in experiments]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_experiment, experiments))


def sweep_workload(name: str, base: Workload,
                   deployments: dict[str, Deployment], parameter: str,
                   values: list[int], baseline_label: str = "baremetal",
                   seed: int = 0, engine: str = "auto",
                   parallel: bool = False,
                   max_workers: int | None = None) -> dict[int, ExperimentResult]:
    """Run one experiment per value of a workload parameter.

    Args:
        parameter: Workload field to vary (``batch_size``,
            ``input_tokens``, ...).
        engine: Decode-cost engine forwarded to each experiment.
        parallel: Fan the per-value experiments out over a process pool.
        max_workers: Pool size (defaults to ``min(len(values), cpus)``).

    Returns:
        Mapping from parameter value to that experiment's result, in the
        order of ``values`` regardless of execution mode.

    Raises:
        repro.state.errors.StateValueError: On an empty grid or a
            non-finite/non-positive value.
    """
    _validate_grid(parameter, values)
    experiments = [
        Experiment(name=f"{name}[{parameter}={value}]",
                   workload=base.with_(**{parameter: value}),
                   deployments=deployments, baseline_label=baseline_label,
                   seed=seed, engine=engine)
        for value in values
    ]
    results = _run_all(experiments, parallel, max_workers)
    return dict(zip(values, results))


def sweep_deployments(name: str, workload: Workload,
                      make_deployments: Callable[[int], dict[str, Deployment]],
                      values: list[int], baseline_label: str = "baremetal",
                      seed: int = 0, engine: str = "auto",
                      parallel: bool = False,
                      max_workers: int | None = None) -> dict[int, ExperimentResult]:
    """Run one experiment per deployment variant (e.g. core counts).

    Args:
        make_deployments: Builds the labelled deployments for one value
            (called in the parent process; only the built experiments are
            shipped to workers under ``parallel=True``).

    Raises:
        repro.state.errors.StateValueError: On an empty grid or a
            non-finite/non-positive value.
    """
    _validate_grid(name, values)
    experiments = [
        Experiment(name=f"{name}[{value}]", workload=workload,
                   deployments=make_deployments(value),
                   baseline_label=baseline_label, seed=seed, engine=engine)
        for value in values
    ]
    results = _run_all(experiments, parallel, max_workers)
    return dict(zip(values, results))


def _series_result(outcomes: dict[int, ExperimentResult], value: int,
                   label: str) -> ExperimentResult:
    outcome = outcomes[value]
    if label not in outcome.results:
        raise KeyError(
            f"label {label!r} not in sweep outcome for value {value}; "
            f"known labels: {sorted(outcome.results)}")
    return outcome


def overhead_series(outcomes: dict[int, ExperimentResult], label: str,
                    metric: str = "throughput") -> dict[int, float]:
    """Extract an overhead-vs-parameter series from sweep outcomes.

    Args:
        metric: ``"throughput"`` or ``"latency"``.

    Raises:
        KeyError: If ``label`` is missing from any outcome (the error
            names the offending value and the known labels).
    """
    if metric not in ("throughput", "latency"):
        raise ValueError("metric must be 'throughput' or 'latency'")
    series = {}
    for value in outcomes:
        outcome = _series_result(outcomes, value, label)
        report = outcome.overhead(label)
        series[value] = (report.throughput_overhead if metric == "throughput"
                         else report.latency_overhead)
    return series


def metric_series(outcomes: dict[int, ExperimentResult], label: str,
                  metric: str = "decode_throughput_tok_s") -> dict[int, float]:
    """Extract a raw-metric series (attribute of GenerationResult).

    Raises:
        KeyError: If ``label`` is missing from any outcome.
    """
    series = {}
    for value in outcomes:
        outcome = _series_result(outcomes, value, label)
        series[value] = getattr(outcome.results[label], metric)
    return series


def is_monotonic(series: dict[int, float], decreasing: bool = True,
                 tolerance: float = 0.0) -> bool:
    """Whether a series moves monotonically with the parameter.

    Keys are sorted before comparison, so insertion order never matters.

    Args:
        tolerance: Allowed counter-movement per step (absolute).
    """
    ordered = [series[key] for key in sorted(series)]
    pairs = zip(ordered, ordered[1:])
    if decreasing:
        return all(later <= earlier + tolerance for earlier, later in pairs)
    return all(later >= earlier - tolerance for earlier, later in pairs)
