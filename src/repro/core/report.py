"""Markdown report generation.

Builds EXPERIMENTS.md-style reports from live runs so a user on
different calibration constants (or future hardware specs) can
regenerate the paper-vs-measured comparison in one call.
"""

from __future__ import annotations

from ..engine.placement import Workload
from ..engine.simulator import simulate_generation
from ..hardware.cpu import EMR1
from ..llm.config import LLAMA2_7B
from ..llm.datatypes import BFLOAT16
from .experiment import Experiment, ExperimentResult, cpu_deployment, gpu_deployment
from .insights import verify_all_insights
from .overhead import throughput_overhead
from .summary import render_summary_table


def markdown_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render dict rows as a GitHub-flavoured markdown table.

    Raises:
        ValueError: For empty input.
    """
    if not rows:
        raise ValueError("no rows")
    columns = columns or list(rows[0])
    header = "| " + " | ".join(columns) + " |"
    divider = "|" + "|".join("---" for _ in columns) + "|"
    lines = [header, divider]
    for row in rows:
        cells = []
        for column in columns:
            value = row[column]
            cells.append(f"{value:.2f}" if isinstance(value, float)
                         else str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def experiment_section(result: ExperimentResult) -> str:
    """One experiment as a markdown section with its overhead table."""
    rows = result.rows()
    return (f"### {result.name}\n\n"
            f"Workload: {result.workload.model.name}, "
            f"{result.workload.dtype.name}, batch "
            f"{result.workload.batch_size} x beam "
            f"{result.workload.beam_size}, "
            f"{result.workload.input_tokens}/"
            f"{result.workload.output_tokens} tokens.\n\n"
            + markdown_table(rows))


def insights_section() -> str:
    """The 12 insights with live evidence."""
    lines = ["### The 12 insights\n"]
    for check in verify_all_insights():
        status = "holds" if check.holds else "**FAILS**"
        lines.append(f"{check.number}. {check.statement} — {status} "
                     f"({check.evidence})")
    return "\n".join(lines)


def headline_report(output_tokens: int = 64) -> str:
    """A compact live report: Fig. 4-style CPU bands, the cGPU band,
    Table I, and the insight checklist."""
    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=6,
                        input_tokens=1024, output_tokens=output_tokens,
                        beam_size=4)
    cpu = Experiment(
        name="CPU TEEs, single socket (Fig. 4)", workload=workload,
        deployments={
            "baremetal": cpu_deployment("baremetal", cpu=EMR1,
                                        sockets_used=1),
            "vm": cpu_deployment("vm", cpu=EMR1, sockets_used=1),
            "sgx": cpu_deployment("sgx", cpu=EMR1, sockets_used=1),
            "tdx": cpu_deployment("tdx", cpu=EMR1, sockets_used=1),
        }).run()

    gpu_workload = workload.with_(beam_size=1)
    gpu = simulate_generation(gpu_workload, gpu_deployment(confidential=False))
    cgpu = simulate_generation(gpu_workload, gpu_deployment(confidential=True))
    cgpu_overhead = throughput_overhead(cgpu, gpu, include_prefill=True)

    parts = [
        "# Confidential LLM inference — live reproduction report\n",
        experiment_section(cpu),
        (f"\n### GPU TEE (Fig. 11 anchor)\n\n"
         f"cGPU throughput overhead at this workload: "
         f"{100 * cgpu_overhead:.1f}%\n"),
        "### Table I\n\n```\n" + render_summary_table() + "\n```\n",
        insights_section(),
    ]
    return "\n".join(parts)
