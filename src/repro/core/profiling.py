"""Profiling layer: cache statistics and hot-path timers.

The simulator memoizes its hot paths — op-graph construction
(``op_graph``, ``affine_decode_graph`` in :mod:`repro.llm.graph`),
scalar step costs (``prefill_step_cost``, ``decode_step_cost`` in
:mod:`repro.engine.simulator`) and the vectorized decode-cost engine
(``decode_cost_engine`` in :mod:`repro.engine.vectorized`).  This module
is the front door to those caches plus a small wall-clock timer registry
used by ``scripts/bench.py`` to track simulator performance across PRs
(the ``BENCH_sim.json`` trajectory file).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..memo import (
    CacheStats,
    all_cache_stats,
    clear_all_caches,
    registered_caches,
)

__all__ = [
    "CacheStats", "TimerStat", "cache_stats", "reset_caches",
    "cache_report", "timed", "timer_stats", "reset_timers",
]


def cache_stats() -> dict[str, CacheStats]:
    """Hit/miss/size statistics for every simulator cache, by name."""
    return all_cache_stats()


def reset_caches() -> None:
    """Clear every simulator cache and zero its counters.

    Use between measurements that must not share state (cold-path
    benchmarks, leak hunts); correctness never requires it — cached
    values are identical to recomputed ones.
    """
    clear_all_caches()


def cache_report() -> str:
    """Human-readable one-line-per-cache summary."""
    lines = []
    for name in sorted(registered_caches()):
        stats = registered_caches()[name].stats()
        lines.append(
            f"{name:24s} hits={stats.hits:<8d} misses={stats.misses:<6d} "
            f"hit_rate={stats.hit_rate:6.1%} size={stats.size}/{stats.maxsize}"
            f" evictions={stats.evictions}")
    return "\n".join(lines)


@dataclass
class TimerStat:
    """Accumulated wall-clock time of one named code region."""

    name: str
    calls: int = 0
    total_s: float = 0.0
    _samples: list[float] = field(default_factory=list, repr=False)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

    @property
    def min_s(self) -> float:
        return min(self._samples) if self._samples else 0.0


_TIMERS: dict[str, TimerStat] = {}


@contextmanager
def timed(name: str):
    """Accumulate the wall-clock time of the ``with`` body under ``name``."""
    stat = _TIMERS.setdefault(name, TimerStat(name))
    start = time.perf_counter()
    try:
        yield stat
    finally:
        elapsed = time.perf_counter() - start
        stat.calls += 1
        stat.total_s += elapsed
        stat._samples.append(elapsed)


def timer_stats() -> dict[str, TimerStat]:
    """All accumulated timers, by name."""
    return dict(_TIMERS)


def reset_timers() -> None:
    """Drop every accumulated timer."""
    _TIMERS.clear()
