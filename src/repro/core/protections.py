"""Protection mechanisms for LLM inference (paper §II).

The paper's Section II compares three families of defenses — ML methods
(watermarking, fingerprinting, passports), cryptographic methods (HE,
MPC), and confidential computing (TEEs) — and concludes that TEEs are
currently the only pragmatic option (Insight 1).  This module encodes
that comparison with the properties the paper argues from, so the
conclusion is a checkable query instead of prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Family(str, Enum):
    """Defense family."""

    ML_METHOD = "ml-method"
    CRYPTOGRAPHIC = "cryptographic"
    CONFIDENTIAL_COMPUTING = "confidential-computing"


@dataclass(frozen=True)
class Protection:
    """One protection mechanism and the paper's assessment of it.

    Attributes:
        name: Mechanism name.
        family: Defense family.
        overhead_factor: Typical runtime multiplier (1.05 = +5%).  HE is
            cited at up to 10,000x; TEEs at ~1.04-1.10 in this paper.
        active_protection: Actively prevents theft/leakage (vs post-hoc
            detection like watermark verification).
        protects_prompts: Covers user-input confidentiality.
        integrity: Protects computation integrity (HE/MPC cannot).
        needs_retraining: Requires retraining / model modification.
        general_purpose: Applies to any model without per-model work.
        composable: Can be combined with other protections (the paper
            cites conflicts between ML methods [75]).
    """

    name: str
    family: Family
    overhead_factor: float
    active_protection: bool
    protects_prompts: bool
    integrity: bool
    needs_retraining: bool
    general_purpose: bool
    composable: bool

    def __post_init__(self) -> None:
        if self.overhead_factor < 1.0:
            raise ValueError("overhead_factor must be >= 1.0")

    @property
    def practical_for_llms(self) -> bool:
        """The paper's §II bar: active, prompt-covering, general
        protection at overheads a service can absorb (< ~2x)."""
        return (self.active_protection and self.protects_prompts
                and self.general_purpose and not self.needs_retraining
                and self.overhead_factor < 2.0)


PROTECTIONS: tuple[Protection, ...] = (
    Protection("watermarking", Family.ML_METHOD, overhead_factor=1.0,
               active_protection=False, protects_prompts=False,
               integrity=False, needs_retraining=True, general_purpose=False,
               composable=False),
    Protection("passport-authentication", Family.ML_METHOD,
               overhead_factor=1.05, active_protection=False,
               protects_prompts=False, integrity=False, needs_retraining=True,
               general_purpose=False, composable=False),
    Protection("backdoor-fingerprinting", Family.ML_METHOD,
               overhead_factor=1.0, active_protection=False,
               protects_prompts=False, integrity=False, needs_retraining=True,
               general_purpose=False, composable=False),
    Protection("homomorphic-encryption", Family.CRYPTOGRAPHIC,
               overhead_factor=10_000.0, active_protection=True,
               protects_prompts=True, integrity=False, needs_retraining=False,
               general_purpose=False, composable=True),
    Protection("multiparty-computation", Family.CRYPTOGRAPHIC,
               overhead_factor=1_000.0, active_protection=True,
               protects_prompts=True, integrity=False, needs_retraining=False,
               general_purpose=False, composable=True),
    Protection("cpu-tee", Family.CONFIDENTIAL_COMPUTING,
               overhead_factor=1.10, active_protection=True,
               protects_prompts=True, integrity=True, needs_retraining=False,
               general_purpose=True, composable=True),
    Protection("gpu-tee", Family.CONFIDENTIAL_COMPUTING,
               overhead_factor=1.08, active_protection=True,
               protects_prompts=True, integrity=True, needs_retraining=False,
               general_purpose=True, composable=True),
)


def practical_mechanisms() -> tuple[Protection, ...]:
    """Mechanisms passing the paper's practicality bar."""
    return tuple(p for p in PROTECTIONS if p.practical_for_llms)


def only_practical_family() -> Family:
    """The §II conclusion as a computation.

    Raises:
        ValueError: If the catalogue no longer supports a unique answer
            (e.g. after adding a future practical HE scheme).
    """
    families = {p.family for p in practical_mechanisms()}
    if len(families) != 1:
        raise ValueError(f"no unique practical family: {sorted(families)}")
    return next(iter(families))


def overhead_gap_vs_he(measured_tee_overhead: float) -> float:
    """How many times cheaper a measured TEE is than the HE citation.

    Args:
        measured_tee_overhead: Fractional TEE overhead (e.g. 0.09).
    """
    if measured_tee_overhead < 0:
        raise ValueError("overhead must be >= 0")
    he = next(p for p in PROTECTIONS
              if p.name == "homomorphic-encryption")
    return he.overhead_factor / (1.0 + measured_tee_overhead)
