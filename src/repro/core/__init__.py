"""Core library: experiments, metrics, overheads, insights, pipeline."""

from .advisor import Candidate, Recommendation, Requirements, recommend
from .experiment import (
    Experiment,
    ExperimentResult,
    cpu_deployment,
    gpu_deployment,
)
from .insights import ALL_CHECKS, InsightCheck, verify_all_insights
from .metrics import (
    HUMAN_READING_LATENCY_S,
    LatencyStats,
    geometric_mean,
    latency_stats,
    outlier_fraction,
    throughput_from_latencies,
    zscore_filter,
)
from .overhead import (
    OverheadReport,
    compare,
    latency_overhead,
    throughput_overhead,
)
from .report import (
    experiment_section,
    headline_report,
    insights_section,
    markdown_table,
)
from .protections import (
    PROTECTIONS,
    Family,
    Protection,
    only_practical_family,
    practical_mechanisms,
)
from .pipeline import (
    ConfidentialPipeline,
    PipelineResponse,
    ProvisioningReport,
    stream_cipher,
)
from .profiling import (
    CacheStats,
    TimerStat,
    cache_report,
    cache_stats,
    reset_caches,
    reset_timers,
    timed,
    timer_stats,
)
from .summary import (
    ALL_SUMMARIES,
    CGPU_SUMMARY,
    SGX_SUMMARY,
    TDX_SUMMARY,
    SystemSummary,
    Trend,
    render_summary_table,
)
from .sweep import (
    is_monotonic,
    metric_series,
    overhead_series,
    sweep_deployments,
    sweep_workload,
)

__all__ = [
    "Candidate", "Recommendation", "Requirements", "recommend",
    "experiment_section", "headline_report", "insights_section",
    "markdown_table",
    "Experiment", "ExperimentResult", "cpu_deployment", "gpu_deployment",
    "ALL_CHECKS", "InsightCheck", "verify_all_insights",
    "HUMAN_READING_LATENCY_S", "LatencyStats", "geometric_mean",
    "latency_stats", "outlier_fraction", "throughput_from_latencies",
    "zscore_filter",
    "OverheadReport", "compare", "latency_overhead", "throughput_overhead",
    "PROTECTIONS", "Family", "Protection", "only_practical_family",
    "practical_mechanisms",
    "ConfidentialPipeline", "PipelineResponse", "ProvisioningReport",
    "stream_cipher",
    "CacheStats", "TimerStat", "cache_report", "cache_stats",
    "reset_caches", "reset_timers", "timed", "timer_stats",
    "ALL_SUMMARIES", "CGPU_SUMMARY", "SGX_SUMMARY", "TDX_SUMMARY",
    "SystemSummary", "Trend", "render_summary_table",
    "is_monotonic", "metric_series", "overhead_series",
    "sweep_deployments", "sweep_workload",
]
