"""The paper's 12 insights as executable checks.

Each check runs a small simulation (or inspects the model structure) and
returns whether the insight holds in this reproduction, with evidence.
``verify_all_insights()`` is the one-call regression gate used by tests
and the quickstart example.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.placement import Workload
from ..llm.config import LLAMA2_7B, LLAMA2_70B
from ..llm.datatypes import BFLOAT16
from ..memsim.pages import HugepagePolicy
from ..tee.base import backend_by_name
from .experiment import Experiment, cpu_deployment, gpu_deployment
from .overhead import latency_overhead, throughput_overhead


@dataclass(frozen=True)
class InsightCheck:
    """Outcome of one insight verification."""

    number: int
    statement: str
    holds: bool
    evidence: str


def _small_workload(batch_size: int = 1, input_tokens: int = 256,
                    output_tokens: int = 32) -> Workload:
    return Workload(LLAMA2_7B, BFLOAT16, batch_size=batch_size,
                    input_tokens=input_tokens, output_tokens=output_tokens)


def _single_socket_experiment(**workload_kwargs: int) -> Experiment:
    return Experiment(
        name="insight", workload=_small_workload(**workload_kwargs),
        deployments={
            "baremetal": cpu_deployment("baremetal", sockets_used=1),
            "vm": cpu_deployment("vm", sockets_used=1),
            "sgx": cpu_deployment("sgx", sockets_used=1),
            "tdx": cpu_deployment("tdx", sockets_used=1),
        })


def check_insight_1() -> InsightCheck:
    """TEEs balance security, performance, programmability.

    Evidence: a TEE's overhead stays within tens of percent while
    homomorphic encryption is cited at up to 10,000x.
    """
    outcome = _single_socket_experiment().run()
    worst = max(outcome.overhead(label).throughput_overhead
                for label in ("sgx", "tdx"))
    he_overhead = 10_000.0
    holds = worst < 0.5 < he_overhead
    return InsightCheck(1, "TEEs offer a practical balance between security, "
                           "performance, and programmability.", holds,
                        f"worst TEE throughput overhead {worst:.1%} vs ~10,000x for HE")


def check_insight_2() -> InsightCheck:
    """TDX is easier to work with than SGX (development cost)."""
    sgx = backend_by_name("sgx").security_profile()
    tdx = backend_by_name("tdx").security_profile()
    holds = tdx.development_cost < sgx.development_cost
    return InsightCheck(2, "TDX is considerably easier to work with than SGX.",
                        holds,
                        f"dev cost: TDX {tdx.development_cost} vs SGX "
                        f"{sgx.development_cost}")


def check_insight_3() -> InsightCheck:
    """IPEX (AMX + oneCCL) roughly doubles CPU inference performance."""
    from ..engine.simulator import simulate_generation
    workload = _small_workload(input_tokens=1024)
    ipex = simulate_generation(workload,
                               cpu_deployment("baremetal", framework="ipex",
                                              sockets_used=1))
    hf = simulate_generation(workload,
                             cpu_deployment("baremetal", framework="hf",
                                            sockets_used=1))
    speedup = hf.total_time_s / ipex.total_time_s
    holds = speedup >= 1.8
    return InsightCheck(3, "Leveraging IPEX (AMX, oneCCL) can double CPU "
                           "inference performance.", holds,
                        f"IPEX is {speedup:.2f}x faster than HF transformers")


def check_insight_4() -> InsightCheck:
    """TDX and SGX single-socket overheads land in the 4-10% band."""
    outcome = _single_socket_experiment(input_tokens=1024,
                                        output_tokens=64).run()
    sgx = outcome.overhead("sgx").throughput_overhead
    tdx = outcome.overhead("tdx").throughput_overhead
    holds = 0.02 <= sgx <= 0.12 and 0.03 <= tdx <= 0.14
    return InsightCheck(4, "TDX and SGX have overheads as low as 4-10% for "
                           "cLLM inference.", holds,
                        f"SGX {sgx:.1%}, TDX {tdx:.1%} throughput overhead")


def check_insight_5() -> InsightCheck:
    """SGX outperforms TDX; the virtualization tax is ~1-5%."""
    outcome = _single_socket_experiment(input_tokens=1024,
                                        output_tokens=64).run()
    sgx = outcome.overhead("sgx").throughput_overhead
    tdx = outcome.overhead("tdx").throughput_overhead
    vm = outcome.overhead("vm").throughput_overhead
    holds = sgx < tdx and 0.005 <= vm <= 0.08
    return InsightCheck(5, "TDX pays a virtualization tax of 1-5%, making SGX "
                           "more performant.", holds,
                        f"SGX {sgx:.1%} < TDX {tdx:.1%}; VM tax {vm:.1%}")


def check_insight_6() -> InsightCheck:
    """Broken NUMA support degrades two-socket TEE performance."""
    workload = Workload(LLAMA2_70B, BFLOAT16, batch_size=1,
                        input_tokens=256, output_tokens=16)
    experiment = Experiment(
        name="i6", workload=workload,
        deployments={
            "baremetal": cpu_deployment("baremetal", sockets_used=2),
            "tdx": cpu_deployment("tdx", sockets_used=2),
            "sgx": cpu_deployment("sgx", sockets_used=2),
        })
    outcome = experiment.run()
    tdx = outcome.overhead("tdx").latency_overhead
    sgx = outcome.overhead("sgx").latency_overhead
    single = _single_socket_experiment(output_tokens=16).run()
    tdx_single = single.overhead("tdx").latency_overhead
    holds = tdx > tdx_single and sgx > 1.0
    return InsightCheck(6, "TDX and SGX do not properly support NUMA "
                           "bindings, degrading multi-socket performance.",
                        holds,
                        f"TDX 2-socket {tdx:.1%} vs 1-socket {tdx_single:.1%}; "
                        f"SGX 2-socket {sgx:.1%}")


def check_insight_7() -> InsightCheck:
    """TDX silently replaces reserved 1 GB hugepages with THP."""
    tdx = backend_by_name("tdx")
    resolved = tdx.resolve_hugepages(HugepagePolicy.RESERVED_1G)
    holds = resolved is HugepagePolicy.TRANSPARENT_2M
    return InsightCheck(7, "TDX uses self-allocated transparent hugepages and "
                           "ignores manually reserved hugepages.", holds,
                        f"requested 1G resolved to {resolved.value}")


def check_insight_8() -> InsightCheck:
    """AMX reduces both raw cost and TDX overhead.

    Uses the paper's Fig. 8 convention: overheads are measured relative
    to a VM *running AMX*, so disabling AMX inflates both the raw time
    and the apparent TDX overhead.
    """
    from ..engine.simulator import simulate_generation
    workload = _small_workload(batch_size=32, input_tokens=128)
    vm_amx = simulate_generation(
        workload, cpu_deployment("vm", sockets_used=1, amx_enabled=True))
    tdx_amx = simulate_generation(
        workload, cpu_deployment("tdx", sockets_used=1, amx_enabled=True))
    tdx_noamx = simulate_generation(
        workload, cpu_deployment("tdx", sockets_used=1, amx_enabled=False))
    overhead_amx = latency_overhead(tdx_amx, vm_amx, filtered=False)
    overhead_noamx = latency_overhead(tdx_noamx, vm_amx, filtered=False)
    vm_noamx = simulate_generation(
        workload, cpu_deployment("vm", sockets_used=1, amx_enabled=False))
    faster = vm_noamx.next_token_latency_s / vm_amx.next_token_latency_s
    holds = faster > 1.1 and overhead_amx < overhead_noamx
    return InsightCheck(8, "AMX improves performance and also lowers TEE "
                           "overheads (relative to a VM running AMX).", holds,
                        f"AMX {faster:.2f}x faster; TDX-over-VM(AMX) latency "
                        f"overhead {overhead_amx:.1%} (AMX) vs "
                        f"{overhead_noamx:.1%} (no AMX)")


def check_insight_9() -> InsightCheck:
    """TDX overhead is lowest when the workload is compute-bound."""
    from ..engine.simulator import simulate_generation
    small = _small_workload(batch_size=1, input_tokens=128)
    large = _small_workload(batch_size=256, input_tokens=128)
    overheads = {}
    for name, workload in (("small", small), ("large", large)):
        base = simulate_generation(workload,
                                   cpu_deployment("baremetal", sockets_used=1))
        tdx = simulate_generation(workload,
                                  cpu_deployment("tdx", sockets_used=1))
        overheads[name] = throughput_overhead(tdx, base)
    holds = overheads["large"] < overheads["small"]
    return InsightCheck(9, "TDX has the lowest overhead when the workload is "
                           "compute-bound.", holds,
                        f"overhead {overheads['small']:.1%} (memory-bound) -> "
                        f"{overheads['large']:.1%} (compute-bound)")


def check_insight_10() -> InsightCheck:
    """GPU TEEs stay under 10% overhead, shrinking with batch/input."""
    from ..engine.simulator import simulate_generation
    overheads = {}
    for batch in (1, 64):
        workload = _small_workload(batch_size=batch, input_tokens=512,
                                   output_tokens=64)
        gpu = simulate_generation(workload, gpu_deployment(confidential=False))
        cgpu = simulate_generation(workload, gpu_deployment(confidential=True))
        overheads[batch] = throughput_overhead(cgpu, gpu)
    holds = overheads[1] < 0.10 and overheads[64] < overheads[1]
    return InsightCheck(10, "GPU TEEs achieve <10% overheads, decreasing with "
                            "larger batch and input sizes.", holds,
                        f"cGPU overhead {overheads[1]:.1%} (bs=1) -> "
                        f"{overheads[64]:.1%} (bs=64)")


def check_insight_11() -> InsightCheck:
    """For small workloads, CPU TEEs are cheaper and stricter than cGPUs."""
    from ..cost.efficiency import cpu_cost_point, gpu_cost_point
    from ..cost.pricing import GCP_SPOT_US_EAST1
    from ..engine.simulator import simulate_generation
    workload = _small_workload(batch_size=1, input_tokens=128,
                               output_tokens=64)
    tdx = simulate_generation(
        workload, cpu_deployment("tdx", sockets_used=1,
                                 cores_per_socket_used=16))
    cgpu = simulate_generation(workload, gpu_deployment(confidential=True))
    cpu_point = cpu_cost_point(tdx, vcpus=16, catalog=GCP_SPOT_US_EAST1)
    gpu_point = gpu_cost_point(cgpu, catalog=GCP_SPOT_US_EAST1)
    cheaper = cpu_point.usd_per_mtok < gpu_point.usd_per_mtok
    stricter = backend_by_name("tdx").security_profile().stricter_than(
        backend_by_name("cgpu").security_profile())
    holds = cheaper and stricter
    return InsightCheck(11, "For strict security and small LLM workloads, CPU "
                            "TEEs offer a pragmatic way to secure inference.",
                        holds,
                        f"TDX ${cpu_point.usd_per_mtok:.2f}/Mtok vs cGPU "
                        f"${gpu_point.usd_per_mtok:.2f}/Mtok; stricter={stricter}")


def check_insight_12() -> InsightCheck:
    """A full RAG pipeline in TDX shows LLM-like overheads."""
    from ..rag.evaluate import rag_tdx_overheads
    overheads = rag_tdx_overheads(num_docs=300, num_queries=8, seed=3)
    worst = max(overheads.values())
    best = min(overheads.values())
    holds = 0.0 < best and worst < 0.15
    return InsightCheck(12, "RAG pipelines in TDX achieve overheads similar "
                            "to LLM inference.", holds,
                        f"RAG overheads {best:.1%}-{worst:.1%} across retrievers")


ALL_CHECKS = (
    check_insight_1, check_insight_2, check_insight_3, check_insight_4,
    check_insight_5, check_insight_6, check_insight_7, check_insight_8,
    check_insight_9, check_insight_10, check_insight_11, check_insight_12,
)


def verify_all_insights() -> list[InsightCheck]:
    """Run every insight check (a few seconds of simulation)."""
    return [check() for check in ALL_CHECKS]
