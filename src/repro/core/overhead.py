"""Overhead computation between deployments.

Every figure in the paper reports *relative* overheads — TDX over bare
metal, TDX over VM, cGPU over raw GPU — on throughput (lower is
overhead) and latency (higher is overhead).  These helpers make the
direction conventions explicit so experiment code cannot mix them up.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.simulator import GenerationResult
from .metrics import latency_stats


def throughput_overhead(result: GenerationResult,
                        baseline: GenerationResult,
                        include_prefill: bool = False) -> float:
    """Fractional throughput loss vs the baseline (positive = slower).

    Args:
        include_prefill: Use the first-token-inclusive throughput
            (Fig. 12 convention) instead of steady-state decode.
    """
    if include_prefill:
        ours, base = result.throughput_tok_s, baseline.throughput_tok_s
    else:
        ours = result.decode_throughput_tok_s
        base = baseline.decode_throughput_tok_s
    return base / ours - 1.0


def latency_overhead(result: GenerationResult,
                     baseline: GenerationResult,
                     filtered: bool = True) -> float:
    """Fractional next-token latency increase vs the baseline.

    Args:
        filtered: Compare Z-score-filtered means of the noisy samples
            (the paper's method); ``False`` compares noise-free means.
    """
    if filtered:
        ours = latency_stats(result.latency_samples_s).mean_s
        base = latency_stats(baseline.latency_samples_s).mean_s
    else:
        ours = result.next_token_latency_s
        base = baseline.next_token_latency_s
    return ours / base - 1.0


@dataclass(frozen=True)
class OverheadReport:
    """Overheads of one backend against its baseline."""

    backend: str
    baseline: str
    throughput_overhead: float
    latency_overhead: float

    def as_percent(self) -> tuple[float, float]:
        """(throughput, latency) overheads in percent."""
        return (100.0 * self.throughput_overhead,
                100.0 * self.latency_overhead)


def compare(result: GenerationResult, baseline: GenerationResult,
            include_prefill: bool = False) -> OverheadReport:
    """Full overhead report of one run against a baseline run."""
    return OverheadReport(
        backend=result.backend_name,
        baseline=baseline.backend_name,
        throughput_overhead=throughput_overhead(result, baseline,
                                                include_prefill),
        latency_overhead=latency_overhead(result, baseline),
    )
