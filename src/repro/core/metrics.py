"""Measurement metrics and filtering.

The paper reports user-perceived performance: throughput (tokens per
second) and next-token latency, measured over at least 1000 output
tokens, with TEE encryption-stall outliers excluded by a Z-score > 3
filter (~0.64% of samples, §III-D).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Average human reading speed the paper uses as the service-level bar:
#: 200 ms per word (~300 words/minute).
HUMAN_READING_LATENCY_S = 0.200


def zscore_filter(samples: np.ndarray, threshold: float = 3.0) -> np.ndarray:
    """Drop samples more than ``threshold`` standard deviations from the
    mean (the paper's outlier exclusion).

    Returns:
        The retained samples (all of them if the spread is zero).
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("no samples")
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    std = samples.std()
    if std == 0.0:
        return samples.copy()
    z = np.abs(samples - samples.mean()) / std
    return samples[z <= threshold]


def outlier_fraction(samples: np.ndarray, threshold: float = 3.0) -> float:
    """Fraction of samples the Z-score filter removes."""
    samples = np.asarray(samples, dtype=float)
    kept = zscore_filter(samples, threshold)
    return 1.0 - kept.size / samples.size


@dataclass(frozen=True)
class LatencyStats:
    """Distribution summary of per-token latencies (filtered)."""

    mean_s: float
    median_s: float
    p95_s: float
    std_s: float
    samples: int
    outliers_removed: float

    @property
    def meets_reading_speed(self) -> bool:
        """Whether the mean stays under the 200 ms/word human bar."""
        return self.mean_s < HUMAN_READING_LATENCY_S


def latency_stats(samples: np.ndarray, zscore: float = 3.0) -> LatencyStats:
    """Summarize per-token latency samples after outlier filtering."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("no samples")
    if np.any(samples <= 0) or not np.all(np.isfinite(samples)):
        raise ValueError("latencies must be positive and finite")
    kept = zscore_filter(samples, zscore)
    return LatencyStats(
        mean_s=float(kept.mean()),
        median_s=float(np.median(kept)),
        p95_s=float(np.percentile(kept, 95)),
        std_s=float(kept.std()),
        samples=int(kept.size),
        outliers_removed=1.0 - kept.size / samples.size,
    )


def throughput_from_latencies(samples: np.ndarray, sequences: int,
                              zscore: float = 3.0) -> float:
    """Tokens/second implied by per-step latencies for a batch.

    The paper measures per-token generation time and reports its inverse
    scaled by the batch as throughput.
    """
    if sequences < 1:
        raise ValueError("sequences must be >= 1")
    stats = latency_stats(samples, zscore)
    return sequences / stats.mean_s


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of positive values (multi-model summaries)."""
    if not values:
        raise ValueError("no values")
    if any(value <= 0 for value in values):
        raise ValueError("values must be positive")
    return math.exp(sum(math.log(value) for value in values) / len(values))
