"""Deployment advisor: pick a TEE for a workload programmatically.

Encodes the paper's decision logic (Table I + Insight 11 + Figs. 12-13)
as a library call: given a workload and requirements — accelerator-
memory encryption, a latency SLA, a development-effort cap — score the
candidate deployments on security coverage, SLA attainment, and $/Mtok,
and return a ranked recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cost.efficiency import cost_per_million_tokens
from ..cost.pricing import GCP_SPOT_US_EAST1, PAPER_MEMORY_GB, PriceCatalog
from ..engine.placement import Workload
from ..engine.simulator import simulate_generation
from ..tee.base import backend_by_name
from ..tee.threats import coverage_score, uncovered
from .experiment import cpu_deployment, gpu_deployment
from .metrics import HUMAN_READING_LATENCY_S


@dataclass(frozen=True)
class Requirements:
    """What the deployment must satisfy.

    Attributes:
        require_encrypted_accelerator_memory: Hard security requirement
            (disqualifies H100 cGPUs, Insight 11).
        max_latency_s: Next-token latency SLA (default: the paper's
            200 ms/word human reading speed).
        max_dev_effort: Highest acceptable development cost (Table I
            scale 0-3; 2 excludes SGX's manifest/libOS work).
    """

    require_encrypted_accelerator_memory: bool = False
    max_latency_s: float = HUMAN_READING_LATENCY_S
    max_dev_effort: int = 3

    def __post_init__(self) -> None:
        if self.max_latency_s <= 0:
            raise ValueError("max_latency_s must be positive")
        if not 0 <= self.max_dev_effort <= 3:
            raise ValueError("max_dev_effort must be in [0, 3]")


@dataclass(frozen=True)
class Candidate:
    """One evaluated deployment option."""

    backend: str
    vcpus: int
    latency_s: float
    throughput_tok_s: float
    usd_per_mtok: float
    security_coverage: float
    meets_sla: bool
    disqualified: str | None


@dataclass(frozen=True)
class Recommendation:
    """The advisor's output: best pick plus the full evaluated field."""

    best: Candidate
    candidates: tuple[Candidate, ...]
    rationale: str


_CPU_CORE_OPTIONS = (8, 16, 32)


def _evaluate_cpu(workload: Workload, backend: str, cores: int,
                  catalog: PriceCatalog,
                  requirements: Requirements) -> Candidate:
    deployment = cpu_deployment(backend, sockets_used=1,
                                cores_per_socket_used=cores)
    result = simulate_generation(workload, deployment)
    price = catalog.cpu_instance_hr(cores, PAPER_MEMORY_GB)
    profile = backend_by_name(backend).security_profile()
    disqualified = None
    if profile.development_cost > requirements.max_dev_effort:
        disqualified = "development effort above cap"
    return Candidate(
        backend=backend, vcpus=cores,
        latency_s=result.next_token_latency_s,
        throughput_tok_s=result.throughput_tok_s,
        usd_per_mtok=cost_per_million_tokens(result.throughput_tok_s, price),
        security_coverage=coverage_score(backend),
        meets_sla=result.next_token_latency_s <= requirements.max_latency_s,
        disqualified=disqualified,
    )


def _evaluate_gpu(workload: Workload, backend: str, catalog: PriceCatalog,
                  requirements: Requirements) -> Candidate:
    deployment = gpu_deployment(backend=backend)
    result = simulate_generation(workload, deployment)
    disqualified = None
    if requirements.require_encrypted_accelerator_memory:
        open_threats = {threat.name for threat in uncovered(backend)}
        if "accelerator-memory-scrape" in open_threats:
            disqualified = "accelerator memory unencrypted"
    return Candidate(
        backend=backend, vcpus=0,
        latency_s=result.next_token_latency_s,
        throughput_tok_s=result.throughput_tok_s,
        usd_per_mtok=cost_per_million_tokens(
            result.throughput_tok_s, catalog.cgpu_instance_hr),
        security_coverage=coverage_score(backend),
        meets_sla=result.next_token_latency_s <= requirements.max_latency_s,
        disqualified=disqualified,
    )


def recommend(workload: Workload,
              requirements: Requirements | None = None,
              catalog: PriceCatalog = GCP_SPOT_US_EAST1) -> Recommendation:
    """Rank TEE deployments for a workload.

    Only TEE-backed options are considered (the caller asked for
    confidential inference); among the qualified, SLA-meeting options
    the cheapest wins, with security coverage as the tiebreak.

    Raises:
        ValueError: If no candidate qualifies (nothing meets the hard
            requirements).
    """
    requirements = requirements or Requirements()
    candidates: list[Candidate] = []
    for backend in ("sgx", "tdx"):
        for cores in _CPU_CORE_OPTIONS:
            candidates.append(_evaluate_cpu(workload, backend, cores,
                                            catalog, requirements))
    candidates.append(_evaluate_gpu(workload, "cgpu", catalog, requirements))

    qualified = [c for c in candidates
                 if c.disqualified is None and c.meets_sla]
    if not qualified:
        qualified = [c for c in candidates if c.disqualified is None]
    if not qualified:
        raise ValueError("no deployment satisfies the hard requirements")

    best = min(qualified,
               key=lambda c: (c.usd_per_mtok, -c.security_coverage))
    rationale = (
        f"{best.backend} ({best.vcpus or 'GPU'} "
        f"{'cores' if best.vcpus else ''}): "
        f"${best.usd_per_mtok:.2f}/Mtok at "
        f"{best.latency_s * 1e3:.0f} ms/token, security coverage "
        f"{best.security_coverage:.0%}")
    return Recommendation(best=best, candidates=tuple(candidates),
                          rationale=rationale)
