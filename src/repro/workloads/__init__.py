"""Workload generation: synthetic prompts and request streams."""

from .prompts import Request, request_stream, synthetic_prompt, verify_prompt_length

__all__ = ["Request", "request_stream", "synthetic_prompt",
           "verify_prompt_length"]
