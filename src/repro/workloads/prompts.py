"""Synthetic prompt and request-stream generation.

The paper's workloads are defined by token counts, not content; the
generators here produce deterministic prompts of exact token lengths
(for the functional pipeline) and request streams with realistic length
mixes (for the examples' capacity planning).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..llm.tokenizer import HashTokenizer

_DOMAINS = {
    "healthcare": ["patient", "diagnosis", "treatment", "record", "clinical",
                   "insurance", "symptom", "dosage"],
    "finance": ["portfolio", "ledger", "transaction", "earnings", "audit",
                "compliance", "forecast", "risk"],
    "legal": ["contract", "clause", "liability", "precedent", "statute",
              "filing", "counsel", "verdict"],
}


def synthetic_prompt(num_tokens: int, domain: str = "healthcare",
                     seed: int = 0) -> str:
    """A prompt that tokenizes to exactly ``num_tokens`` word pieces.

    Raises:
        KeyError: For unknown domains.
        ValueError: For non-positive lengths.
    """
    if num_tokens < 1:
        raise ValueError("num_tokens must be >= 1")
    if domain not in _DOMAINS:
        raise KeyError(f"unknown domain {domain!r}; known: {sorted(_DOMAINS)}")
    rng = random.Random(seed)
    words = [rng.choice(_DOMAINS[domain]) for _ in range(num_tokens)]
    return " ".join(words)


@dataclass(frozen=True)
class Request:
    """One inference request of a serving trace."""

    prompt_tokens: int
    output_tokens: int
    domain: str


def request_stream(count: int, mean_prompt: int = 512, mean_output: int = 128,
                   seed: int = 0) -> list[Request]:
    """A deterministic request mix with lognormal-ish length spread.

    Lengths are clamped to [16, 4x mean] so downstream workloads stay
    within model context windows.
    """
    if count < 1 or mean_prompt < 16 or mean_output < 16:
        raise ValueError("count >= 1 and means >= 16 required")
    rng = random.Random(seed)
    domains = sorted(_DOMAINS)
    requests = []
    for _ in range(count):
        prompt = int(rng.lognormvariate(0.0, 0.6) * mean_prompt)
        output = int(rng.lognormvariate(0.0, 0.5) * mean_output)
        requests.append(Request(
            prompt_tokens=max(16, min(prompt, 4 * mean_prompt)),
            output_tokens=max(16, min(output, 4 * mean_output)),
            domain=rng.choice(domains),
        ))
    return requests


def verify_prompt_length(prompt: str, expected_tokens: int,
                         tokenizer: HashTokenizer | None = None) -> bool:
    """Check a prompt's token count against the workload definition."""
    tokenizer = tokenizer or HashTokenizer()
    return tokenizer.count(prompt) == expected_tokens
