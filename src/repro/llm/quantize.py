"""Post-training int8 quantization (functional).

The paper's int8 results come from weight quantization tuned for AMX.
This module implements symmetric per-row absmax quantization — the scheme
IPEX's weight-only quantization uses — so the reference transformer can
actually run int8 forward passes and the tests can bound the numerical
error the scheme introduces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizedTensor:
    """A per-row symmetrically quantized matrix.

    Attributes:
        values: int8 payload with the original shape.
        scales: Per-row float32 scales such that
            ``dequantize() == values * scales[:, None]``.
    """

    values: np.ndarray
    scales: np.ndarray

    @property
    def nbytes(self) -> int:
        """Storage bytes of payload plus scales."""
        return self.values.nbytes + self.scales.nbytes

    def dequantize(self) -> np.ndarray:
        """Reconstruct the float32 approximation of the original matrix."""
        return self.values.astype(np.float32) * self.scales[:, None]


def quantize_per_row(weight: np.ndarray) -> QuantizedTensor:
    """Symmetric per-output-row absmax quantization to int8.

    Args:
        weight: A 2-D float matrix (rows are output features).

    Raises:
        ValueError: If the input is not 2-D or not finite.
    """
    if weight.ndim != 2:
        raise ValueError(f"expected a 2-D weight, got shape {weight.shape}")
    if not np.all(np.isfinite(weight)):
        raise ValueError("weight contains non-finite values")
    absmax = np.abs(weight).max(axis=1)
    scales = np.where(absmax > 0, absmax / 127.0, 1.0).astype(np.float32)
    values = np.clip(np.rint(weight / scales[:, None]), -127, 127).astype(np.int8)
    return QuantizedTensor(values=values, scales=scales)


def quantization_error(weight: np.ndarray) -> float:
    """Max absolute error introduced by :func:`quantize_per_row`.

    Bounded by ``absmax / 254`` per row (half a quantization step).
    """
    quantized = quantize_per_row(np.asarray(weight, dtype=np.float32))
    return float(np.abs(quantized.dequantize() - weight).max())


def int8_matmul(activations: np.ndarray, quantized: QuantizedTensor) -> np.ndarray:
    """Weight-only-int8 matmul: dequantize-on-the-fly GEMM.

    Mirrors IPEX weight-only quantization: activations stay floating
    point, weights are stored int8 and scaled per row.  Computed as
    ``(x @ W_q.T) * scales`` to keep the integer payload on the fast path.
    """
    raw = activations.astype(np.float32) @ quantized.values.astype(np.float32).T
    return raw * quantized.scales[None, :]


def to_bfloat16(array: np.ndarray) -> np.ndarray:
    """Round-to-nearest-even bfloat16 emulation, returned as float32.

    numpy has no native bfloat16; truncating the low 16 mantissa bits with
    rounding reproduces its precision so tests can bound bf16 error.
    """
    as_f32 = np.asarray(array, dtype=np.float32)
    bits = as_f32.view(np.uint32)
    # Round to nearest even on the upper 16 bits.
    rounding = ((bits >> 16) & 1) + 0x7FFF
    rounded = (bits + rounding) & 0xFFFF0000
    return rounded.astype(np.uint32).view(np.float32)
