"""KV-cache bookkeeping.

Two implementations are provided:

* :class:`KVCacheState` — the contiguous per-sequence cache used by the
  CPU (IPEX-style) path; the analytical model only needs its byte
  accounting, but the class also supports functional append/trim so the
  reference transformer can share it.
* :class:`PagedKVCache` — a vLLM-style block-allocated cache used by the
  GPU path; it exercises block allocation/free invariants that the test
  suite checks with property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import ModelConfig


@dataclass
class KVCacheState:
    """Contiguous KV cache for a batch of sequences.

    Attributes:
        model: Architecture whose K/V widths are cached.
        dtype_bytes: Element width of the cached K/V values.
        lengths: Current cached length per sequence.
    """

    model: ModelConfig
    dtype_bytes: float
    lengths: list[int] = field(default_factory=list)

    def add_sequences(self, count: int, prompt_len: int) -> None:
        """Register ``count`` new sequences with ``prompt_len`` cached tokens."""
        if count < 0 or prompt_len < 0:
            raise ValueError("count and prompt_len must be >= 0")
        self.lengths.extend([prompt_len] * count)

    def append_token(self) -> None:
        """Extend every sequence by one decoded token."""
        self.lengths = [length + 1 for length in self.lengths]

    def evict(self, index: int) -> None:
        """Remove a finished sequence from the cache."""
        del self.lengths[index]

    @property
    def total_tokens(self) -> int:
        """Tokens cached across all sequences."""
        return sum(self.lengths)

    @property
    def bytes(self) -> float:
        """Total cache footprint in bytes."""
        return self.total_tokens * self.model.kv_bytes_per_token(self.dtype_bytes)

    def read_bytes_per_step(self) -> float:
        """Bytes read by one decode step (full cache scan, all layers)."""
        return self.bytes

    def write_bytes_per_step(self) -> float:
        """Bytes appended by one decode step."""
        return len(self.lengths) * self.model.kv_bytes_per_token(self.dtype_bytes)


class PagedKVCache:
    """Block-allocated KV cache in the style of vLLM's PagedAttention.

    Sequences own ordered lists of fixed-size blocks; blocks are recycled
    through a free list.  Invariants (checked by tests):

    * a block is owned by at most one sequence,
    * ``free + allocated == total`` at all times,
    * capacity in tokens is ``blocks * block_size``.
    """

    def __init__(self, num_blocks: int, block_size: int) -> None:
        if num_blocks <= 0 or block_size <= 0:
            raise ValueError("num_blocks and block_size must be positive")
        self.block_size = block_size
        self.num_blocks = num_blocks
        self._free: list[int] = list(range(num_blocks - 1, -1, -1))
        self._tables: dict[int, list[int]] = {}
        self._lengths: dict[int, int] = {}

    @property
    def free_blocks(self) -> int:
        """Number of unallocated blocks."""
        return len(self._free)

    @property
    def allocated_blocks(self) -> int:
        """Number of blocks currently owned by sequences."""
        return self.num_blocks - len(self._free)

    def sequence_length(self, seq_id: int) -> int:
        """Cached token count for a sequence."""
        return self._lengths[seq_id]

    def block_table(self, seq_id: int) -> tuple[int, ...]:
        """The ordered block ids backing a sequence."""
        return tuple(self._tables[seq_id])

    def _blocks_needed(self, tokens: int) -> int:
        return -(-tokens // self.block_size)

    def allocate(self, seq_id: int, prompt_len: int) -> None:
        """Admit a new sequence with ``prompt_len`` tokens.

        Raises:
            KeyError: If the sequence id is already admitted.
            MemoryError: If not enough free blocks remain; the caller is
                expected to apply its scheduling policy (vLLM preempts).
        """
        if seq_id in self._tables:
            raise KeyError(f"sequence {seq_id} already allocated")
        if prompt_len < 0:
            raise ValueError("prompt_len must be >= 0")
        needed = self._blocks_needed(prompt_len) if prompt_len else 0
        if needed > len(self._free):
            raise MemoryError(
                f"need {needed} blocks for sequence {seq_id}, "
                f"only {len(self._free)} free"
            )
        self._tables[seq_id] = [self._free.pop() for _ in range(needed)]
        self._lengths[seq_id] = prompt_len

    def append_token(self, seq_id: int) -> None:
        """Extend a sequence by one token, growing its table if needed."""
        length = self._lengths[seq_id]
        if self._blocks_needed(length + 1) > len(self._tables[seq_id]):
            if not self._free:
                raise MemoryError(f"no free block to grow sequence {seq_id}")
            self._tables[seq_id].append(self._free.pop())
        self._lengths[seq_id] = length + 1

    def free(self, seq_id: int) -> None:
        """Release all blocks of a finished sequence."""
        blocks = self._tables.pop(seq_id)
        del self._lengths[seq_id]
        self._free.extend(reversed(blocks))

    def utilization(self) -> float:
        """Fraction of allocated block capacity actually holding tokens."""
        if self.allocated_blocks == 0:
            return 0.0
        capacity = self.allocated_blocks * self.block_size
        return sum(self._lengths.values()) / capacity

    # -- checkpoint/restore ---------------------------------------------------

    def to_state(self) -> dict:
        """Plain-dict snapshot of the full allocator state.

        Captures the free list *in pop order* — restoring must hand out
        the same block ids in the same order, or replayed allocations
        diverge from the uninterrupted run.
        """
        return {
            "num_blocks": self.num_blocks,
            "block_size": self.block_size,
            "free": list(self._free),
            "tables": {str(seq_id): list(blocks)
                       for seq_id, blocks in self._tables.items()},
            "lengths": {str(seq_id): length
                        for seq_id, length in self._lengths.items()},
        }

    @classmethod
    def from_state(cls, state: dict) -> "PagedKVCache":
        """Rebuild a cache from :meth:`to_state`, checking invariants.

        Raises:
            repro.state.errors.StateIntegrityError: If the payload
                violates an allocator invariant (duplicate/out-of-range
                blocks, ``free + allocated != total``, table/length
                mismatch).
        """
        from ..state.errors import StateIntegrityError
        from ..state.schema import require

        num_blocks = require(state, "num_blocks", int, "$.cache")
        block_size = require(state, "block_size", int, "$.cache")
        cache = cls(num_blocks=num_blocks, block_size=block_size)
        free = require(state, "free", list, "$.cache")
        tables = require(state, "tables", dict, "$.cache")
        lengths = require(state, "lengths", dict, "$.cache")
        if set(tables) != set(lengths):
            raise StateIntegrityError(
                "cache tables and lengths track different sequences")
        seen: set[int] = set()
        for block in free:
            if not isinstance(block, int) or not 0 <= block < num_blocks:
                raise StateIntegrityError(
                    f"free-list block {block!r} out of range")
            seen.add(block)
        if len(seen) != len(free):
            raise StateIntegrityError("duplicate block in cache free list")
        restored_tables: dict[int, list[int]] = {}
        restored_lengths: dict[int, int] = {}
        for key, blocks in tables.items():
            seq_id = int(key)
            for block in blocks:
                if (not isinstance(block, int)
                        or not 0 <= block < num_blocks or block in seen):
                    raise StateIntegrityError(
                        f"sequence {seq_id} block {block!r} out of range "
                        f"or double-owned")
                seen.add(block)
            length = lengths[key]
            if not isinstance(length, int) or length < 0:
                raise StateIntegrityError(
                    f"sequence {seq_id} has invalid length {length!r}")
            restored_tables[seq_id] = list(blocks)
            restored_lengths[seq_id] = length
        if len(seen) != num_blocks:
            raise StateIntegrityError(
                f"cache accounts for {len(seen)} of {num_blocks} blocks")
        cache._free = [int(block) for block in free]
        cache._tables = restored_tables
        cache._lengths = restored_lengths
        return cache
