"""Operator-level FLOP and byte accounting.

Every experiment in the paper is explained by how much compute and data
movement each transformer operator generates and where that data lives
(streamed weights, activations, growing KV cache).  The :class:`Operator`
record carries exactly those quantities; the execution engine turns them
into time via a roofline model with TEE-specific derates.

Byte traffic is split into three streams because they behave differently
under the memory-subsystem simulation:

* ``weight_bytes`` — model weights streamed once per forward step and
  shared by the whole batch (this sharing is what makes large batches
  compute-bound, Insight 9);
* ``activation_bytes`` — per-token activations, mostly cache-resident;
* ``kv_read_bytes`` / ``kv_write_bytes`` — the KV cache, which grows with
  context and eventually spills the LLC (the Fig. 10 inflection).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum


class OpCategory(str, Enum):
    """Coarse operator class; drives engine selection and cache modelling."""

    GEMM = "gemm"
    ATTENTION = "attention"
    NORM = "norm"
    ELEMENTWISE = "elementwise"
    EMBEDDING = "embedding"
    COMMUNICATION = "communication"


class Phase(str, Enum):
    """Inference phase the operator belongs to."""

    PREFILL = "prefill"
    DECODE = "decode"


@dataclass(frozen=True)
class Operator:
    """One logical operator instance in a forward step.

    Attributes:
        name: Stable operator name (e.g. ``"self_attention"``); the
            trace-based Fig. 7 reproduction groups by this.
        category: Coarse class, see :class:`OpCategory`.
        phase: Prefill or decode.
        layer: Decoder block index, or ``None`` for embedding / head ops.
        flops: Floating-point (or int8 MAC*2) operations.
        weight_bytes: Streamed weight traffic, amortized over the batch.
        activation_bytes: Activation read+write traffic.
        kv_read_bytes: KV-cache bytes read.
        kv_write_bytes: KV-cache bytes appended/written.
    """

    name: str
    category: OpCategory
    phase: Phase
    layer: int | None
    flops: float
    weight_bytes: float = 0.0
    activation_bytes: float = 0.0
    kv_read_bytes: float = 0.0
    kv_write_bytes: float = 0.0

    def __post_init__(self) -> None:
        for field in ("flops", "weight_bytes", "activation_bytes",
                      "kv_read_bytes", "kv_write_bytes"):
            value = getattr(self, field)
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"{self.name}: {field} must be finite and >= 0, got {value}")

    @property
    def bytes_total(self) -> float:
        """All byte traffic of this operator."""
        return (self.weight_bytes + self.activation_bytes
                + self.kv_read_bytes + self.kv_write_bytes)

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte moved; infinity for zero-byte operators."""
        total = self.bytes_total
        if total == 0.0:
            return math.inf
        return self.flops / total

    def scaled(self, factor: float) -> "Operator":
        """A copy with all costs multiplied by ``factor`` (>= 0)."""
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        return Operator(
            name=self.name,
            category=self.category,
            phase=self.phase,
            layer=self.layer,
            flops=self.flops * factor,
            weight_bytes=self.weight_bytes * factor,
            activation_bytes=self.activation_bytes * factor,
            kv_read_bytes=self.kv_read_bytes * factor,
            kv_write_bytes=self.kv_write_bytes * factor,
        )


#: Operator cost fields that vary (at most) affinely with context length.
AFFINE_FIELDS = ("flops", "weight_bytes", "activation_bytes",
                 "kv_read_bytes", "kv_write_bytes")


@dataclass(frozen=True)
class AffineOp:
    """An operator whose cost fields are affine in decode context length.

    During decode every field of every operator is ``base + slope * c``
    in the attended context ``c`` (attention FLOPs and KV reads grow
    linearly; everything else is constant).  Collapsing the per-layer
    operator stream into a handful of affine templates — identical
    layers merge via ``multiplicity`` — is what lets the vectorized
    engine cost a whole generation in one numpy pass.

    Attributes:
        base: Field values at context 0 (also carries name/category).
        slope: Per-context-token field increments (an :class:`Operator`
            reusing its non-negativity validation).
        multiplicity: How many identical instances the step contains
            (``num_layers`` for per-block operators).
    """

    base: Operator
    slope: Operator
    multiplicity: int = 1

    def __post_init__(self) -> None:
        if self.multiplicity < 1:
            raise ValueError("multiplicity must be >= 1")

    @property
    def name(self) -> str:
        return self.base.name

    @property
    def category(self) -> OpCategory:
        return self.base.category

    def flops(self, context):
        """FLOPs at a context length (scalar or numpy array)."""
        return self.base.flops + self.slope.flops * context

    def weight_bytes(self, context):
        return self.base.weight_bytes + self.slope.weight_bytes * context

    def activation_bytes(self, context):
        return (self.base.activation_bytes
                + self.slope.activation_bytes * context)

    def kv_read_bytes(self, context):
        return self.base.kv_read_bytes + self.slope.kv_read_bytes * context

    def kv_write_bytes(self, context):
        return self.base.kv_write_bytes + self.slope.kv_write_bytes * context

    def bytes_total(self, context):
        """All byte traffic at a context length."""
        return (self.weight_bytes(context) + self.activation_bytes(context)
                + self.kv_read_bytes(context) + self.kv_write_bytes(context))


def merge_totals(ops: list[Operator]) -> dict[str, float]:
    """Aggregate FLOPs and byte streams over a list of operators."""
    totals = {"flops": 0.0, "weight_bytes": 0.0, "activation_bytes": 0.0,
              "kv_read_bytes": 0.0, "kv_write_bytes": 0.0}
    for op in ops:
        totals["flops"] += op.flops
        totals["weight_bytes"] += op.weight_bytes
        totals["activation_bytes"] += op.activation_bytes
        totals["kv_read_bytes"] += op.kv_read_bytes
        totals["kv_write_bytes"] += op.kv_write_bytes
    return totals


def group_by_name(ops: list[Operator]) -> dict[str, list[Operator]]:
    """Group operators by name, preserving per-group order."""
    groups: dict[str, list[Operator]] = {}
    for op in ops:
        groups.setdefault(op.name, []).append(op)
    return groups
