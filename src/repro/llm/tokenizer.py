"""A small deterministic tokenizer.

The experiments only need token *counts* and reproducible ids, not a
linguistically meaningful vocabulary, so this is a whitespace/punctuation
word-piece tokenizer with a hash-bucketed vocabulary.  It is shared by the
workload generators and the RAG substrate (where the same tokenization
feeds BM25 document statistics).
"""

from __future__ import annotations

import hashlib
import re

_TOKEN_RE = re.compile(r"[a-z0-9]+|[^\sa-z0-9]")


class HashTokenizer:
    """Deterministic tokenizer mapping words to stable id buckets.

    Ids 0..3 are reserved: pad=0, bos=1, eos=2, unk=3.
    """

    PAD_ID = 0
    BOS_ID = 1
    EOS_ID = 2
    UNK_ID = 3
    _RESERVED = 4

    def __init__(self, vocab_size: int = 32000) -> None:
        if vocab_size <= self._RESERVED:
            raise ValueError(f"vocab_size must exceed {self._RESERVED}")
        self.vocab_size = vocab_size

    def words(self, text: str) -> list[str]:
        """Lowercased word/punctuation pieces of ``text``."""
        return _TOKEN_RE.findall(text.lower())

    def token_id(self, word: str) -> int:
        """Stable id for one word piece."""
        digest = hashlib.blake2b(word.encode("utf-8"), digest_size=8).digest()
        bucket = int.from_bytes(digest, "little") % (self.vocab_size - self._RESERVED)
        return self._RESERVED + bucket

    def encode(self, text: str, add_bos: bool = True) -> list[int]:
        """Token ids for ``text``; empty text encodes to just BOS."""
        ids = [self.token_id(word) for word in self.words(text)]
        if add_bos:
            ids.insert(0, self.BOS_ID)
        return ids

    def count(self, text: str) -> int:
        """Token count excluding special tokens."""
        return len(self.words(text))
