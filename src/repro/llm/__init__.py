"""Transformer substrate: architectures, operator accounting, reference model."""

from .config import (
    BAICHUAN2_7B,
    CROSS_ENCODER,
    FALCON_7B,
    GPTJ_6B,
    LLAMA2_7B,
    LLAMA2_13B,
    LLAMA2_70B,
    LLAMA3_8B,
    QWEN_7B,
    SBERT_BASE,
    VALIDATION_MODELS,
    ModelConfig,
    all_models,
    model_by_name,
    tiny_llama,
)
from .datatypes import BFLOAT16, FLOAT32, INT8, DType, all_dtypes, dtype_by_name
from .graph import BLOCK_OP_NAMES, decode_step_ops, encode_ops, prefill_ops
from .kvcache import KVCacheState, PagedKVCache
from .ops import Operator, OpCategory, Phase, group_by_name, merge_totals
from .quantize import (
    QuantizedTensor,
    int8_matmul,
    quantization_error,
    quantize_per_row,
    to_bfloat16,
)
from .reference import FlopRecorder, ReferenceTransformer
from .sampling import GenerationOutput, beam_decode, greedy_decode
from .sharding import ShardPlan, max_degree, plan_tensor_parallel
from .tokenizer import HashTokenizer

__all__ = [
    "BAICHUAN2_7B", "CROSS_ENCODER", "FALCON_7B", "GPTJ_6B",
    "LLAMA2_7B", "LLAMA2_13B", "LLAMA2_70B", "LLAMA3_8B", "QWEN_7B",
    "SBERT_BASE", "VALIDATION_MODELS", "ModelConfig", "all_models",
    "model_by_name", "tiny_llama",
    "BFLOAT16", "FLOAT32", "INT8", "DType", "all_dtypes", "dtype_by_name",
    "BLOCK_OP_NAMES", "decode_step_ops", "encode_ops", "prefill_ops",
    "KVCacheState", "PagedKVCache",
    "Operator", "OpCategory", "Phase", "group_by_name", "merge_totals",
    "QuantizedTensor", "int8_matmul", "quantization_error",
    "quantize_per_row", "to_bfloat16",
    "FlopRecorder", "ReferenceTransformer",
    "GenerationOutput", "beam_decode", "greedy_decode",
    "ShardPlan", "max_degree", "plan_tensor_parallel",
    "HashTokenizer",
]
