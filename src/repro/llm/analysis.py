"""Analytical model summaries: the roofline numbers behind the figures.

Answers the questions the paper's analysis keeps returning to — how many
bytes does a decode step move, when does a batch become compute-bound,
how fast can hardware possibly serve a model — directly from the
operator accounting, without running the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import ModelConfig
from .datatypes import DType
from .graph import decode_step_ops
from .ops import merge_totals


@dataclass(frozen=True)
class ModelSummary:
    """Static footprint numbers for one (model, dtype) pair."""

    model: str
    dtype: str
    parameters: int
    weight_gb: float
    kv_bytes_per_token: float
    decode_flops_per_token: float
    decode_bytes_per_token: float

    @property
    def decode_intensity(self) -> float:
        """FLOPs per byte of a batch-1 decode step."""
        return self.decode_flops_per_token / self.decode_bytes_per_token


def summarize(model: ModelConfig, dtype: DType,
              context_len: int = 512) -> ModelSummary:
    """Static summary of a model at one datatype."""
    totals = merge_totals(decode_step_ops(model, dtype, 1, context_len))
    bytes_total = (totals["weight_bytes"] + totals["activation_bytes"]
                   + totals["kv_read_bytes"] + totals["kv_write_bytes"])
    return ModelSummary(
        model=model.name,
        dtype=dtype.name,
        parameters=model.num_parameters,
        weight_gb=model.weight_bytes(dtype.bytes) / 1e9,
        kv_bytes_per_token=model.kv_bytes_per_token(dtype.bytes),
        decode_flops_per_token=totals["flops"],
        decode_bytes_per_token=bytes_total,
    )


def arithmetic_intensity(model: ModelConfig, dtype: DType, batch_size: int,
                         context_len: int = 512) -> float:
    """FLOPs per byte of a decode step at a batch size.

    Grows with batch because streamed weights amortize — the quantity
    Insight 9 ties TEE overheads to.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    totals = merge_totals(decode_step_ops(model, dtype, batch_size,
                                          context_len))
    bytes_total = (totals["weight_bytes"] + totals["activation_bytes"]
                   + totals["kv_read_bytes"] + totals["kv_write_bytes"])
    return totals["flops"] / bytes_total


def compute_bound_batch(model: ModelConfig, dtype: DType,
                        flops_per_s: float, bytes_per_s: float,
                        context_len: int = 512,
                        max_batch: int = 4096) -> int | None:
    """Smallest batch at which a decode step turns compute-bound.

    Args:
        flops_per_s: Sustained compute rate of the target machine.
        bytes_per_s: Sustained memory bandwidth of the target machine.

    Returns:
        The crossover batch, or ``None`` if it never crosses within
        ``max_batch`` (KV traffic growth can keep decode memory-bound
        forever at long contexts).
    """
    if flops_per_s <= 0 or bytes_per_s <= 0:
        raise ValueError("rates must be positive")
    machine_balance = flops_per_s / bytes_per_s
    batch = 1
    while batch <= max_batch:
        if arithmetic_intensity(model, dtype, batch,
                                context_len) >= machine_balance:
            return batch
        batch *= 2
    return None


def memory_floor_tok_s(model: ModelConfig, dtype: DType,
                       bytes_per_s: float) -> float:
    """Upper bound on batch-1 decode throughput from weight streaming.

    Every decode token must read the full weights once; no software can
    beat ``bandwidth / weight_bytes`` tokens per second at batch 1.
    """
    if bytes_per_s <= 0:
        raise ValueError("bytes_per_s must be positive")
    return bytes_per_s / model.weight_bytes(dtype.bytes)
