"""Decoder op-graph construction for prefill and decode steps.

:func:`prefill_ops` and :func:`decode_step_ops` emit the operator stream
of one forward step.  The operator names match the per-block layer
categories in the paper's Fig. 7 trace study (input layernorm, QKV
projection, self-attention, output projection, post-attention layernorm,
gate/up projection with SiLU multiply, down projection, residuals).
"""

from __future__ import annotations

import math

from ..memo import MemoCache
from .config import ModelConfig
from .datatypes import DType
from .ops import AFFINE_FIELDS, AffineOp, Operator, OpCategory, Phase

#: Operator names emitted per decoder block, in execution order.
BLOCK_OP_NAMES = (
    "input_layernorm",
    "qkv_proj",
    "rotary_embed",
    "self_attention",
    "o_proj",
    "residual_add",
    "post_attention_layernorm",
    "gate_up_proj",
    "silu_mul",
    "down_proj",
    "residual_add_2",
)


def _norm_op(name: str, phase: Phase, layer: int | None, tokens: float,
             hidden: int, ds: float) -> Operator:
    return Operator(
        name=name, category=OpCategory.NORM, phase=phase, layer=layer,
        flops=5.0 * tokens * hidden,
        weight_bytes=hidden * ds,
        activation_bytes=2.0 * tokens * hidden * ds,
    )


def _decode_attention_op(model: ModelConfig, dtype: DType, layer: int,
                         context_len: float, sequences: float) -> Operator:
    """The one decode-phase operator whose cost depends on context.

    One new token per sequence attends to the full cached context.
    Kept as a standalone builder so :func:`cached_decode_step_ops` can
    materialize per-context graphs from a context-independent skeleton
    with the exact formulas below — the rebuilt operators are
    bit-identical to a direct :func:`decode_step_ops` call.
    """
    h, kv, ds = model.hidden_size, model.kv_dim, dtype.bytes
    attn_flops = 4.0 * sequences * h * context_len
    kv_read = 2.0 * sequences * context_len * kv * ds
    softmax_tokens = sequences * context_len
    return Operator(
        name="self_attention", category=OpCategory.ATTENTION,
        phase=Phase.DECODE, layer=layer,
        flops=attn_flops + 5.0 * model.num_heads * softmax_tokens,
        activation_bytes=2.0 * sequences * h * ds,
        kv_read_bytes=kv_read,
        kv_write_bytes=2.0 * sequences * kv * ds,
    )


def _block_ops(model: ModelConfig, dtype: DType, phase: Phase, layer: int,
               new_tokens: float, context_len: float,
               sequences: float) -> list[Operator]:
    """Operators of one decoder block.

    Args:
        new_tokens: Tokens processed this step across the whole batch
            (``sequences * seq_len`` in prefill, ``sequences`` in decode).
        context_len: Attended context length per sequence.
        sequences: Number of sequences (batch * beams).
    """
    h = model.hidden_size
    kv = model.kv_dim
    i = model.intermediate_size
    ds = dtype.bytes
    ops: list[Operator] = []

    ops.append(_norm_op("input_layernorm", phase, layer, new_tokens, h, ds))

    ops.append(Operator(
        name="qkv_proj", category=OpCategory.GEMM, phase=phase, layer=layer,
        flops=2.0 * new_tokens * h * (h + 2 * kv),
        weight_bytes=(h * h + 2 * h * kv) * ds,
        activation_bytes=new_tokens * (2 * h + 2 * kv) * ds,
    ))

    ops.append(Operator(
        name="rotary_embed", category=OpCategory.ELEMENTWISE, phase=phase,
        layer=layer,
        flops=6.0 * new_tokens * (h + kv),
        activation_bytes=2.0 * new_tokens * (h + kv) * ds,
    ))

    if phase is Phase.PREFILL:
        # Causal attention over the prompt: ~S^2/2 score and context MACs.
        seq_len = new_tokens / sequences
        attn_flops = 2.0 * sequences * h * seq_len * seq_len
        kv_read = 0.0
        softmax_tokens = sequences * seq_len * seq_len / 2.0
        ops.append(Operator(
            name="self_attention", category=OpCategory.ATTENTION, phase=phase,
            layer=layer,
            flops=attn_flops + 5.0 * model.num_heads * softmax_tokens,
            activation_bytes=2.0 * new_tokens * h * ds,
            kv_read_bytes=kv_read,
            kv_write_bytes=2.0 * new_tokens * kv * ds,
        ))
    else:
        ops.append(_decode_attention_op(model, dtype, layer, context_len,
                                        sequences))

    ops.append(Operator(
        name="o_proj", category=OpCategory.GEMM, phase=phase, layer=layer,
        flops=2.0 * new_tokens * h * h,
        weight_bytes=h * h * ds,
        activation_bytes=2.0 * new_tokens * h * ds,
    ))

    ops.append(Operator(
        name="residual_add", category=OpCategory.ELEMENTWISE, phase=phase,
        layer=layer,
        flops=new_tokens * h,
        activation_bytes=3.0 * new_tokens * h * ds,
    ))

    ops.append(_norm_op("post_attention_layernorm", phase, layer, new_tokens, h, ds))

    if model.mlp == "gated_silu":
        ops.append(Operator(
            name="gate_up_proj", category=OpCategory.GEMM, phase=phase,
            layer=layer,
            flops=2.0 * new_tokens * h * 2 * i,
            weight_bytes=2 * h * i * ds,
            activation_bytes=new_tokens * (h + 2 * i) * ds,
        ))
        ops.append(Operator(
            name="silu_mul", category=OpCategory.ELEMENTWISE, phase=phase,
            layer=layer,
            flops=5.0 * new_tokens * i,
            activation_bytes=3.0 * new_tokens * i * ds,
        ))
    else:
        ops.append(Operator(
            name="gate_up_proj", category=OpCategory.GEMM, phase=phase,
            layer=layer,
            flops=2.0 * new_tokens * h * i,
            weight_bytes=h * i * ds,
            activation_bytes=new_tokens * (h + i) * ds,
        ))
        ops.append(Operator(
            name="silu_mul", category=OpCategory.ELEMENTWISE, phase=phase,
            layer=layer,
            flops=8.0 * new_tokens * i,
            activation_bytes=2.0 * new_tokens * i * ds,
        ))

    ops.append(Operator(
        name="down_proj", category=OpCategory.GEMM, phase=phase, layer=layer,
        flops=2.0 * new_tokens * i * h,
        weight_bytes=h * i * ds,
        activation_bytes=new_tokens * (i + h) * ds,
    ))

    ops.append(Operator(
        name="residual_add_2", category=OpCategory.ELEMENTWISE, phase=phase,
        layer=layer,
        flops=new_tokens * h,
        activation_bytes=3.0 * new_tokens * h * ds,
    ))
    return ops


def _head_ops(model: ModelConfig, dtype: DType, phase: Phase,
              logits_tokens: float) -> list[Operator]:
    """Final norm and LM head for the tokens that need logits."""
    h, v, ds = model.hidden_size, model.vocab_size, dtype.bytes
    ops = [_norm_op("final_norm", phase, None, logits_tokens, h, ds)]
    if not model.encoder_only:
        ops.append(Operator(
            name="lm_head", category=OpCategory.GEMM, phase=phase, layer=None,
            flops=2.0 * logits_tokens * h * v,
            weight_bytes=h * v * ds,
            activation_bytes=logits_tokens * (h + v) * ds,
        ))
    return ops


def _embed_op(model: ModelConfig, dtype: DType, phase: Phase,
              tokens: float) -> Operator:
    h, ds = model.hidden_size, dtype.bytes
    return Operator(
        name="embed_tokens", category=OpCategory.EMBEDDING, phase=phase,
        layer=None,
        flops=0.0,
        weight_bytes=tokens * h * ds,
        activation_bytes=tokens * h * ds,
    )


def prefill_ops(model: ModelConfig, dtype: DType, batch_size: int,
                input_len: int, beam_size: int = 1) -> list[Operator]:
    """Operator stream of one prefill over the prompt.

    Beam search shares the prompt forward pass across beams (the KV cache
    is replicated afterwards), so prefill cost scales with ``batch_size``
    only.
    """
    _check_shape(batch_size, input_len, beam_size)
    sequences = float(batch_size)
    tokens = sequences * input_len
    ops = [_embed_op(model, dtype, Phase.PREFILL, tokens)]
    for layer in range(model.num_layers):
        ops.extend(_block_ops(model, dtype, Phase.PREFILL, layer,
                              new_tokens=tokens, context_len=float(input_len),
                              sequences=sequences))
    # Only the last position of each sequence needs logits after prefill.
    ops.extend(_head_ops(model, dtype, Phase.PREFILL, logits_tokens=sequences))
    return ops


def decode_step_ops(model: ModelConfig, dtype: DType, batch_size: int,
                    context_len: int, beam_size: int = 1) -> list[Operator]:
    """Operator stream of one decode step at a given context length."""
    _check_shape(batch_size, context_len, beam_size)
    sequences = float(batch_size * beam_size)
    ops = [_embed_op(model, dtype, Phase.DECODE, sequences)]
    for layer in range(model.num_layers):
        ops.extend(_block_ops(model, dtype, Phase.DECODE, layer,
                              new_tokens=sequences,
                              context_len=float(context_len),
                              sequences=sequences))
    ops.extend(_head_ops(model, dtype, Phase.DECODE, logits_tokens=sequences))
    return ops


def encode_ops(model: ModelConfig, dtype: DType, batch_size: int,
               input_len: int) -> list[Operator]:
    """Operator stream for a BERT-style encoder pass (RAG models)."""
    if not model.encoder_only:
        raise ValueError(f"{model.name} is not an encoder-only model")
    return prefill_ops(model, dtype, batch_size, input_len)


# -- memoized builders -------------------------------------------------------
#
# A sweep recosts the same (model, dtype, batch, length, beams) graph for
# every deployment and every repetition; building one graph allocates
# ~num_layers x 11 Operator records.  The cached builders return shared,
# immutable tuples — callers must not mutate them.

_GRAPH_CACHE = MemoCache("op_graph", maxsize=512)
_CONTEXT_CACHE = MemoCache("op_graph_ctx", maxsize=512)
_AFFINE_CACHE = MemoCache("affine_decode_graph", maxsize=256)

#: Contexts used to extract and validate the affine decode model.
_AFFINE_LO, _AFFINE_HI, _AFFINE_CHECK = 1, 2, 7


def cached_prefill_ops(model: ModelConfig, dtype: DType, batch_size: int,
                       input_len: int, beam_size: int = 1) -> tuple[Operator, ...]:
    """Memoized :func:`prefill_ops`; the returned tuple is shared."""
    key = ("prefill", model, dtype, batch_size, input_len, beam_size)
    return _GRAPH_CACHE.get_or_compute(
        key, lambda: tuple(prefill_ops(model, dtype, batch_size, input_len,
                                       beam_size)))


#: Reference context the decode skeleton is built at.  Any positive
#: value works — every operator except ``self_attention`` is identical
#: across contexts, and the attention ops are rebuilt per call.
_SKELETON_CONTEXT = 1


def cached_decode_step_ops(model: ModelConfig, dtype: DType, batch_size: int,
                           context_len: int, beam_size: int = 1) -> tuple[Operator, ...]:
    """Memoized :func:`decode_step_ops`, bit-identical to the direct call.

    In a decode graph only the per-layer ``self_attention`` operator
    depends on ``context_len``; keying the memo on the context made
    structurally identical graphs miss (a stride-1 context sweep paid
    one full ~``num_layers x 11``-operator build *per context*).  The
    cache therefore stores one context-independent *skeleton* per
    ``(model, dtype, batch, beams)`` and this function materializes the
    requested context by rebuilding just the attention operators with
    the original formulas (:func:`_decode_attention_op`).  Materialized
    per-context tuples sit in a second LRU so repeated identical calls
    still return the same shared object.
    """
    _check_shape(batch_size, context_len, beam_size)

    def materialize() -> tuple[Operator, ...]:
        key = ("decode", model, dtype, batch_size, beam_size)
        skeleton = _GRAPH_CACHE.get_or_compute(
            key, lambda: tuple(decode_step_ops(model, dtype, batch_size,
                                               _SKELETON_CONTEXT, beam_size)))
        if context_len == _SKELETON_CONTEXT:
            return skeleton
        sequences = float(batch_size * beam_size)
        return tuple(
            _decode_attention_op(model, dtype, op.layer, float(context_len),
                                 sequences)
            if op.name == "self_attention" else op
            for op in skeleton)

    return _CONTEXT_CACHE.get_or_compute(
        ("decode", model, dtype, batch_size, context_len, beam_size),
        materialize)


def decode_step_affine(model: ModelConfig, dtype: DType, batch_size: int,
                       beam_size: int = 1) -> tuple[AffineOp, ...]:
    """Affine-in-context model of one decode step, layers collapsed.

    Builds the operator stream at two reference contexts, differences
    the cost fields into ``base + slope * context`` templates, verifies
    the affine model against a third context, and merges identical
    per-layer operators via ``multiplicity``.  The result is cached per
    ``(model, dtype, batch, beams)`` — it is independent of prompt and
    output lengths, so every input-length sweep shares one entry.

    Raises:
        RuntimeError: If some operator field is not affine in context
            (a graph change the vectorized engine cannot represent).
    """
    key = (model, dtype, batch_size, beam_size)
    return _AFFINE_CACHE.get_or_compute(
        key, lambda: _build_decode_affine(model, dtype, batch_size, beam_size))


def _build_decode_affine(model: ModelConfig, dtype: DType, batch_size: int,
                         beam_size: int) -> tuple[AffineOp, ...]:
    lo = cached_decode_step_ops(model, dtype, batch_size, _AFFINE_LO, beam_size)
    hi = cached_decode_step_ops(model, dtype, batch_size, _AFFINE_HI, beam_size)
    check = cached_decode_step_ops(model, dtype, batch_size, _AFFINE_CHECK,
                                   beam_size)
    groups: dict[tuple, AffineOp] = {}
    order: list[tuple] = []
    for op_lo, op_hi, op_check in zip(lo, hi, check):
        bases, slopes = {}, {}
        for field in AFFINE_FIELDS:
            v_lo, v_hi = getattr(op_lo, field), getattr(op_hi, field)
            slope = (v_hi - v_lo) / (_AFFINE_HI - _AFFINE_LO)
            base = v_lo - slope * _AFFINE_LO
            predicted = base + slope * _AFFINE_CHECK
            actual = getattr(op_check, field)
            if not math.isclose(predicted, actual, rel_tol=1e-9, abs_tol=1e-6):
                raise RuntimeError(
                    f"{op_lo.name}.{field} is not affine in context "
                    f"(predicted {predicted}, got {actual}); the vectorized "
                    f"decode engine cannot cost this graph")
            bases[field] = base
            slopes[field] = slope
        key = (op_lo.name, op_lo.category,
               tuple(bases.values()), tuple(slopes.values()))
        if key in groups:
            existing = groups[key]
            groups[key] = AffineOp(base=existing.base, slope=existing.slope,
                                   multiplicity=existing.multiplicity + 1)
        else:
            template = {"name": op_lo.name, "category": op_lo.category,
                        "phase": Phase.DECODE, "layer": op_lo.layer}
            groups[key] = AffineOp(
                base=Operator(**template, **bases),
                slope=Operator(**template, **slopes),
                multiplicity=1,
            )
            order.append(key)
    return tuple(groups[key] for key in order)


def _check_shape(batch_size: int, length: int, beam_size: int) -> None:
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if length < 1:
        raise ValueError(f"sequence length must be >= 1, got {length}")
    if beam_size < 1:
        raise ValueError(f"beam_size must be >= 1, got {beam_size}")
