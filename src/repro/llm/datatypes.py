"""Inference datatypes used throughout the performance model.

The paper evaluates two inference datatypes on CPUs (bfloat16 and int8,
the latter obtained through post-training quantization) and bfloat16 on
GPUs, with float32 appearing only in the framework microbenchmark
(Fig. 3).  A datatype influences three things in the model:

* bytes per element (weight/activation/KV-cache footprint),
* which compute engines can execute it (AMX supports bf16/int8,
  AVX-512 supports fp32/bf16 but has no optimized int8 kernels in IPEX,
  which is the root cause of the paper's 96%/1700% no-AMX int8 numbers),
* accumulation width (int8 accumulates into int32, bf16 into fp32).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DType:
    """An inference datatype.

    Attributes:
        name: Canonical short name, e.g. ``"bf16"``.
        bits: Storage bits per element.
        amx_supported: Whether Intel AMX has native tiles for this type.
        avx_optimized: Whether IPEX ships optimized AVX-512 kernels for
            this type.  ``False`` models the paper's observation that
            int8 without AMX falls back to an unoptimized path.
        cuda_tensor_core: Whether H100 tensor cores accelerate this type.
    """

    name: str
    bits: int
    amx_supported: bool
    avx_optimized: bool
    cuda_tensor_core: bool

    @property
    def bytes(self) -> float:
        """Storage bytes per element (may be fractional for sub-byte types)."""
        return self.bits / 8.0

    def __str__(self) -> str:
        return self.name


FLOAT32 = DType("f32", 32, amx_supported=False, avx_optimized=True, cuda_tensor_core=True)
BFLOAT16 = DType("bf16", 16, amx_supported=True, avx_optimized=True, cuda_tensor_core=True)
INT8 = DType("int8", 8, amx_supported=True, avx_optimized=False, cuda_tensor_core=True)

_REGISTRY = {dt.name: dt for dt in (FLOAT32, BFLOAT16, INT8)}
_ALIASES = {
    "float32": "f32",
    "fp32": "f32",
    "bfloat16": "bf16",
    "i8": "int8",
}


def dtype_by_name(name: str) -> DType:
    """Look up a datatype by name or common alias.

    Raises:
        KeyError: If the name is not a known datatype.
    """
    key = _ALIASES.get(name.lower(), name.lower())
    if key not in _REGISTRY:
        known = sorted(set(_REGISTRY) | set(_ALIASES))
        raise KeyError(f"unknown dtype {name!r}; known: {known}")
    return _REGISTRY[key]


def all_dtypes() -> tuple[DType, ...]:
    """All datatypes the model knows about, in definition order."""
    return (FLOAT32, BFLOAT16, INT8)
