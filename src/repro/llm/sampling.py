"""Greedy and beam-search decoding on the reference transformer.

The paper's throughput experiments use beam sizes of 1 and 4; beam search
multiplies the effective sequence count of every decode step, which is why
:mod:`repro.llm.graph` folds ``beam_size`` into the sequence dimension.
This module provides the functional counterpart so end-to-end examples can
decode real token streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .reference import ReferenceTransformer


@dataclass(frozen=True)
class GenerationOutput:
    """Decoded continuation of one prompt.

    Attributes:
        tokens: Generated token ids (prompt excluded).
        score: Cumulative log-probability of the returned sequence.
    """

    tokens: tuple[int, ...]
    score: float


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def greedy_decode(model: ReferenceTransformer, prompt: list[int],
                  max_new_tokens: int) -> GenerationOutput:
    """Greedy argmax decoding with an incremental KV cache."""
    if max_new_tokens < 1:
        raise ValueError("max_new_tokens must be >= 1")
    cache = model.new_cache()
    logits = model.forward(np.array([prompt]), cache)
    score = 0.0
    tokens: list[int] = []
    step_logits = logits[0, -1]
    for _ in range(max_new_tokens):
        logprobs = _log_softmax(step_logits)
        token = int(np.argmax(logprobs))
        score += float(logprobs[token])
        tokens.append(token)
        step_logits = model.forward(np.array([[token]]), cache)[0, -1]
    return GenerationOutput(tokens=tuple(tokens), score=score)


def beam_decode(model: ReferenceTransformer, prompt: list[int],
                max_new_tokens: int, beam_size: int,
                length_penalty: float = 0.0) -> GenerationOutput:
    """Beam-search decoding.

    Each beam keeps its own KV cache (replicated after the shared prompt
    pass, mirroring how inference frameworks implement beams).

    Args:
        length_penalty: Exponent alpha of the GNMT length normalization;
            0 disables normalization.
    """
    if beam_size < 1:
        raise ValueError("beam_size must be >= 1")
    if beam_size == 1:
        return greedy_decode(model, prompt, max_new_tokens)

    prompt_cache = model.new_cache()
    logits = model.forward(np.array([prompt]), prompt_cache)
    logprobs = _log_softmax(logits[0, -1])
    first = np.argsort(logprobs)[::-1][:beam_size]

    def clone_cache(cache: list[dict]) -> list[dict]:
        return [{"k": entry["k"].copy(), "v": entry["v"].copy()} for entry in cache]

    beams = [
        {"tokens": [int(token)], "score": float(logprobs[token]),
         "cache": clone_cache(prompt_cache)}
        for token in first
    ]
    for _ in range(max_new_tokens - 1):
        candidates = []
        for beam in beams:
            step = model.forward(np.array([[beam["tokens"][-1]]]), beam["cache"])
            step_logprobs = _log_softmax(step[0, -1])
            top = np.argsort(step_logprobs)[::-1][:beam_size]
            for token in top:
                candidates.append((beam, int(token),
                                   beam["score"] + float(step_logprobs[token])))
        candidates.sort(key=lambda item: item[2], reverse=True)
        next_beams = []
        for beam, token, score in candidates[:beam_size]:
            next_beams.append({
                "tokens": beam["tokens"] + [token],
                "score": score,
                "cache": clone_cache(beam["cache"]),
            })
        # Advance the caches of the surviving beams by their chosen token.
        beams = next_beams

    def normalized(beam: dict) -> float:
        if length_penalty == 0.0:
            return beam["score"]
        return beam["score"] / (len(beam["tokens"]) ** length_penalty)

    best = max(beams, key=normalized)
    return GenerationOutput(tokens=tuple(best["tokens"]), score=best["score"])
