"""Model architecture registry.

The paper's primary workload is Llama2 (7B/13B/70B); §III-C additionally
validates Llama3 8B, GPT-J 6B, Falcon 7B, Baichuan2 7B and Qwen 7B, and
the RAG section uses an SBERT-class sentence encoder plus a cross-encoder
reranker.  All of these are dense transformers; the registry captures the
architectural parameters that the operator-level FLOP/byte accounting in
:mod:`repro.llm.ops` needs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of a dense transformer.

    Attributes:
        name: Registry name, e.g. ``"llama2-7b"``.
        num_layers: Number of decoder blocks.
        hidden_size: Model (embedding) dimension.
        num_heads: Attention query heads.
        num_kv_heads: Key/value heads (``< num_heads`` implies GQA/MQA).
        intermediate_size: MLP inner dimension (per branch for gated MLPs).
        vocab_size: Vocabulary size.
        mlp: Either ``"gated_silu"`` (Llama-style gate/up/down) or
            ``"gelu"`` (GPT-J-style two-matrix MLP).
        norm: ``"rmsnorm"`` or ``"layernorm"``.
        max_position: Maximum supported context length.
        tie_embeddings: Whether the LM head shares the embedding matrix.
        encoder_only: True for BERT-style encoders (SBERT, cross-encoder);
            these have no KV-cache decode phase.
    """

    name: str
    num_layers: int
    hidden_size: int
    num_heads: int
    num_kv_heads: int
    intermediate_size: int
    vocab_size: int
    mlp: str = "gated_silu"
    norm: str = "rmsnorm"
    max_position: int = 4096
    tie_embeddings: bool = False
    encoder_only: bool = False

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"{self.name}: hidden_size {self.hidden_size} not divisible "
                f"by num_heads {self.num_heads}"
            )
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError(
                f"{self.name}: num_heads {self.num_heads} not divisible "
                f"by num_kv_heads {self.num_kv_heads}"
            )
        if self.mlp not in ("gated_silu", "gelu"):
            raise ValueError(f"{self.name}: unknown mlp kind {self.mlp!r}")
        if self.norm not in ("rmsnorm", "layernorm"):
            raise ValueError(f"{self.name}: unknown norm kind {self.norm!r}")

    @property
    def head_dim(self) -> int:
        """Dimension of one attention head."""
        return self.hidden_size // self.num_heads

    @property
    def kv_dim(self) -> int:
        """Total K (or V) width: ``num_kv_heads * head_dim``."""
        return self.num_kv_heads * self.head_dim

    @property
    def attention_params(self) -> int:
        """Parameters in one block's attention (q/k/v/o projections)."""
        h = self.hidden_size
        return h * h + 2 * h * self.kv_dim + h * h

    @property
    def mlp_params(self) -> int:
        """Parameters in one block's MLP."""
        h, i = self.hidden_size, self.intermediate_size
        if self.mlp == "gated_silu":
            return 3 * h * i
        return 2 * h * i

    @property
    def block_params(self) -> int:
        """Parameters in one decoder block (norm weights included)."""
        return self.attention_params + self.mlp_params + 2 * self.hidden_size

    @property
    def num_parameters(self) -> int:
        """Total parameter count, embeddings and LM head included."""
        embed = self.vocab_size * self.hidden_size
        head = 0 if (self.tie_embeddings or self.encoder_only) else embed
        return self.num_layers * self.block_params + embed + head + self.hidden_size

    def weight_bytes(self, dtype_bytes: float) -> float:
        """Total weight footprint in bytes at the given element width."""
        return self.num_parameters * dtype_bytes

    def kv_bytes_per_token(self, dtype_bytes: float) -> float:
        """KV-cache bytes appended per sequence token across all layers."""
        return 2.0 * self.kv_dim * self.num_layers * dtype_bytes

    def scaled(self, name: str, num_layers: int) -> "ModelConfig":
        """A copy with a different depth, for building tiny test models."""
        return replace(self, name=name, num_layers=num_layers)


def _cfg(*args: object, **kwargs: object) -> ModelConfig:
    return ModelConfig(*args, **kwargs)  # type: ignore[arg-type]


_MODELS: dict[str, ModelConfig] = {}


def _register(cfg: ModelConfig) -> ModelConfig:
    if cfg.name in _MODELS:
        raise ValueError(f"duplicate model {cfg.name}")
    _MODELS[cfg.name] = cfg
    return cfg


LLAMA2_7B = _register(_cfg("llama2-7b", 32, 4096, 32, 32, 11008, 32000))
LLAMA2_13B = _register(_cfg("llama2-13b", 40, 5120, 40, 40, 13824, 32000))
LLAMA2_70B = _register(_cfg("llama2-70b", 80, 8192, 64, 8, 28672, 32000))
LLAMA3_8B = _register(_cfg("llama3-8b", 32, 4096, 32, 8, 14336, 128256, max_position=8192))
GPTJ_6B = _register(
    _cfg("gptj-6b", 28, 4096, 16, 16, 16384, 50400, mlp="gelu", norm="layernorm", max_position=2048)
)
FALCON_7B = _register(
    _cfg("falcon-7b", 32, 4544, 71, 1, 18176, 65024, mlp="gelu", norm="layernorm", max_position=2048)
)
BAICHUAN2_7B = _register(_cfg("baichuan2-7b", 32, 4096, 32, 32, 11008, 125696))
QWEN_7B = _register(_cfg("qwen-7b", 32, 4096, 32, 32, 11008, 151936, max_position=8192))
SBERT_BASE = _register(
    _cfg(
        "sbert-base", 6, 384, 12, 12, 1536, 30522,
        mlp="gelu", norm="layernorm", max_position=512,
        tie_embeddings=True, encoder_only=True,
    )
)
CROSS_ENCODER = _register(
    _cfg(
        "cross-encoder-minilm", 6, 384, 12, 12, 1536, 30522,
        mlp="gelu", norm="layernorm", max_position=512,
        tie_embeddings=True, encoder_only=True,
    )
)

#: Models used by the §III-C cross-model validation experiment.
VALIDATION_MODELS = (LLAMA3_8B, GPTJ_6B, FALCON_7B, BAICHUAN2_7B, QWEN_7B)


def model_by_name(name: str) -> ModelConfig:
    """Look up a registered model configuration by name."""
    if name not in _MODELS:
        raise KeyError(f"unknown model {name!r}; known: {sorted(_MODELS)}")
    return _MODELS[name]


def all_models() -> tuple[ModelConfig, ...]:
    """All registered model configurations."""
    return tuple(_MODELS.values())


def tiny_llama(num_layers: int = 2, hidden_size: int = 64, num_heads: int = 4,
               num_kv_heads: int | None = None, intermediate_size: int = 128,
               vocab_size: int = 199) -> ModelConfig:
    """A miniature Llama-style config for functional tests.

    The numpy reference transformer (:mod:`repro.llm.reference`) runs real
    forward passes on configs of this size to validate the analytical
    FLOP/byte formulas.
    """
    return ModelConfig(
        name=f"tiny-llama-{num_layers}x{hidden_size}",
        num_layers=num_layers,
        hidden_size=hidden_size,
        num_heads=num_heads,
        num_kv_heads=num_kv_heads if num_kv_heads is not None else num_heads,
        intermediate_size=intermediate_size,
        vocab_size=vocab_size,
        max_position=512,
    )
