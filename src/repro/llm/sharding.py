"""Tensor-parallel weight sharding planner.

Megatron-style sharding splits attention heads and MLP columns across
devices.  The planner computes per-device parameter shards, validates
divisibility constraints, and reports replicated (norm/embedding)
parameters — backing the multi-GPU scale-out model with an exact
placement rather than a uniform 1/N approximation, and exposing the
imbalance that GQA models (few KV heads) create at high degrees.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import ModelConfig


@dataclass(frozen=True)
class ShardPlan:
    """Per-device placement of one model under tensor parallelism.

    Attributes:
        model: Architecture being sharded.
        degree: Tensor-parallel width.
        heads_per_device: Query heads on each device.
        kv_heads_per_device: KV heads on each device (>= 1; KV heads are
            replicated when the degree exceeds their count).
        kv_replication: How many devices hold a copy of each KV head.
        sharded_params_per_device: Parameters split across devices.
        replicated_params: Parameters every device holds (norms,
            embeddings, LM head in the common implementation).
    """

    model: ModelConfig
    degree: int
    heads_per_device: int
    kv_heads_per_device: int
    kv_replication: int
    sharded_params_per_device: int
    replicated_params: int

    @property
    def params_per_device(self) -> int:
        return self.sharded_params_per_device + self.replicated_params

    @property
    def memory_per_device_bytes(self) -> float:
        """Weight bytes per device at a given dtype width is obtained by
        multiplying this count by the dtype's bytes."""
        return float(self.params_per_device)

    @property
    def efficiency(self) -> float:
        """Ideal-fraction of memory saved: 1.0 means perfect 1/N split.

        Replication (norms, embeddings, duplicated KV heads) pushes the
        per-device footprint above ``total/degree``; efficiency is
        ``(total/degree) / params_per_device``.
        """
        ideal = self.model.num_parameters / self.degree
        return ideal / self.params_per_device


def plan_tensor_parallel(model: ModelConfig, degree: int) -> ShardPlan:
    """Compute the tensor-parallel shard plan.

    Raises:
        ValueError: If the degree does not divide the query heads or the
            MLP width (the Megatron divisibility constraints).
    """
    if degree < 1:
        raise ValueError("degree must be >= 1")
    if model.num_heads % degree != 0:
        raise ValueError(
            f"{model.name}: {model.num_heads} heads not divisible by "
            f"degree {degree}")
    if model.intermediate_size % degree != 0:
        raise ValueError(
            f"{model.name}: MLP width {model.intermediate_size} not "
            f"divisible by degree {degree}")

    heads_per_device = model.num_heads // degree
    if model.num_kv_heads >= degree:
        if model.num_kv_heads % degree != 0:
            raise ValueError(
                f"{model.name}: {model.num_kv_heads} KV heads not "
                f"divisible by degree {degree}")
        kv_heads_per_device = model.num_kv_heads // degree
        kv_replication = 1
    else:
        # Fewer KV heads than devices: each KV head is replicated.
        if degree % model.num_kv_heads != 0:
            raise ValueError(
                f"{model.name}: degree {degree} not divisible by "
                f"{model.num_kv_heads} KV heads")
        kv_heads_per_device = 1
        kv_replication = degree // model.num_kv_heads

    h = model.hidden_size
    head_dim = model.head_dim
    q_params = h * heads_per_device * head_dim
    kv_params = 2 * h * kv_heads_per_device * head_dim
    o_params = heads_per_device * head_dim * h
    mlp_per_device = model.mlp_params // degree
    per_layer = q_params + kv_params + o_params + mlp_per_device
    sharded = per_layer * model.num_layers

    embed = model.vocab_size * model.hidden_size
    head = 0 if (model.tie_embeddings or model.encoder_only) else embed
    norms = model.num_layers * 2 * model.hidden_size + model.hidden_size
    replicated = embed + head + norms

    return ShardPlan(
        model=model, degree=degree,
        heads_per_device=heads_per_device,
        kv_heads_per_device=kv_heads_per_device,
        kv_replication=kv_replication,
        sharded_params_per_device=sharded,
        replicated_params=replicated,
    )


def max_degree(model: ModelConfig, limit: int = 64) -> int:
    """Largest valid tensor-parallel degree up to ``limit``."""
    best = 1
    for degree in range(1, limit + 1):
        try:
            plan_tensor_parallel(model, degree)
        except ValueError:
            continue
        best = degree
    return best
