"""Functional numpy reference transformer.

A real Llama-style forward pass (RoPE, GQA, RMSNorm/LayerNorm, gated-SiLU
or GELU MLP, KV cache) on tiny random-weight models.  Its purposes:

* validate the analytical FLOP/byte formulas in :mod:`repro.llm.graph`
  against actually executed matmul shapes (the pass records them),
* provide a genuine inference substrate for the end-to-end examples and
  for the greedy/beam decoding implementation in :mod:`repro.llm.sampling`,
* exercise the int8 weight-only quantization path functionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import ModelConfig
from .quantize import QuantizedTensor, int8_matmul, quantize_per_row


@dataclass
class FlopRecorder:
    """Counts multiply-add FLOPs of executed matmuls by operator name."""

    counts: dict[str, float] = field(default_factory=dict)

    def record(self, name: str, flops: float) -> None:
        self.counts[name] = self.counts.get(name, 0.0) + flops

    @property
    def total(self) -> float:
        return sum(self.counts.values())


class _Linear:
    """A dense layer storable as float32 or weight-only int8."""

    def __init__(self, weight: np.ndarray, quantized: bool) -> None:
        self.out_features, self.in_features = weight.shape
        self._q: QuantizedTensor | None = None
        self._w: np.ndarray | None = None
        if quantized:
            self._q = quantize_per_row(weight)
        else:
            self._w = weight.astype(np.float32)

    def __call__(self, x: np.ndarray, name: str,
                 recorder: FlopRecorder | None) -> np.ndarray:
        if recorder is not None:
            tokens = int(np.prod(x.shape[:-1]))
            recorder.record(name, 2.0 * tokens * self.in_features * self.out_features)
        if self._q is not None:
            flat = x.reshape(-1, self.in_features)
            out = int8_matmul(flat, self._q)
            return out.reshape(*x.shape[:-1], self.out_features)
        return x @ self._w.T


def _rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    variance = np.mean(np.square(x), axis=-1, keepdims=True)
    return x / np.sqrt(variance + eps) * weight


def _layer_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    mean = np.mean(x, axis=-1, keepdims=True)
    variance = np.var(x, axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(variance + eps) * weight


def _silu(x: np.ndarray) -> np.ndarray:
    return x / (1.0 + np.exp(-x))


def _gelu(x: np.ndarray) -> np.ndarray:
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x ** 3)))


def _rope_cache(head_dim: int, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    inv_freq = 1.0 / (10000.0 ** (np.arange(0, head_dim, 2) / head_dim))
    angles = positions[:, None] * inv_freq[None, :]
    return np.cos(angles), np.sin(angles)


def _apply_rope(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Rotate pairs of channels; x has shape (batch, heads, seq, head_dim)."""
    x1 = x[..., 0::2]
    x2 = x[..., 1::2]
    rotated = np.empty_like(x)
    rotated[..., 0::2] = x1 * cos - x2 * sin
    rotated[..., 1::2] = x1 * sin + x2 * cos
    return rotated


class ReferenceTransformer:
    """Random-weight Llama-style model with an incremental KV cache.

    Args:
        config: Architecture to instantiate; keep it tiny (this is numpy).
        seed: Weight initialization seed.
        quantized: Store linear weights as weight-only int8.
    """

    def __init__(self, config: ModelConfig, seed: int = 0,
                 quantized: bool = False) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        h, kv, i, v = (config.hidden_size, config.kv_dim,
                       config.intermediate_size, config.vocab_size)

        def init(out_f: int, in_f: int) -> _Linear:
            scale = 1.0 / np.sqrt(in_f)
            weight = rng.normal(0.0, scale, size=(out_f, in_f))
            return _Linear(weight, quantized)

        self.embed = rng.normal(0.0, 0.02, size=(v, h)).astype(np.float32)
        self.blocks = []
        for _ in range(config.num_layers):
            self.blocks.append({
                "input_norm": np.ones(h, dtype=np.float32),
                "q": init(h, h), "k": init(kv, h), "v": init(kv, h),
                "o": init(h, h),
                "post_norm": np.ones(h, dtype=np.float32),
                "gate": init(i, h) if config.mlp == "gated_silu" else None,
                "up": init(i, h),
                "down": init(h, i),
            })
        self.final_norm = np.ones(h, dtype=np.float32)
        if config.tie_embeddings:
            self.lm_head = _Linear(self.embed, quantized=False)
        else:
            self.lm_head = init(v, h)
        self._norm = _rms_norm if config.norm == "rmsnorm" else _layer_norm

    def new_cache(self) -> list[dict[str, np.ndarray | None]]:
        """An empty KV cache, one {k, v} entry per layer."""
        return [{"k": None, "v": None} for _ in range(self.config.num_layers)]

    def forward(self, token_ids: np.ndarray,
                cache: list[dict[str, np.ndarray | None]] | None = None,
                recorder: FlopRecorder | None = None) -> np.ndarray:
        """Run the model over new tokens, extending ``cache`` in place.

        Args:
            token_ids: int array of shape (batch, new_tokens).
            cache: KV cache from :meth:`new_cache`; ``None`` disables caching.
            recorder: Optional FLOP recorder for validation tests.

        Returns:
            Logits of shape (batch, new_tokens, vocab).
        """
        hidden = self._run_blocks(token_ids, cache, recorder)
        return self.lm_head(hidden, "lm_head", recorder)

    def _run_blocks(self, token_ids: np.ndarray,
                    cache: list[dict[str, np.ndarray | None]] | None = None,
                    recorder: FlopRecorder | None = None) -> np.ndarray:
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError(f"token_ids must be 2-D, got shape {token_ids.shape}")
        if token_ids.min() < 0 or token_ids.max() >= self.config.vocab_size:
            raise ValueError("token id out of vocabulary range")
        cfg = self.config
        batch, new_tokens = token_ids.shape
        past = 0
        if cache is not None and cache[0]["k"] is not None:
            past = cache[0]["k"].shape[2]
        positions = np.arange(past, past + new_tokens, dtype=np.float64)
        cos, sin = _rope_cache(cfg.head_dim, positions)

        hidden = self.embed[token_ids]
        group = cfg.num_heads // cfg.num_kv_heads
        for layer, block in enumerate(self.blocks):
            normed = self._norm(hidden, block["input_norm"])
            q = block["q"](normed, "qkv_proj", recorder)
            k = block["k"](normed, "qkv_proj", recorder)
            vv = block["v"](normed, "qkv_proj", recorder)
            q = q.reshape(batch, new_tokens, cfg.num_heads, cfg.head_dim).transpose(0, 2, 1, 3)
            k = k.reshape(batch, new_tokens, cfg.num_kv_heads, cfg.head_dim).transpose(0, 2, 1, 3)
            vv = vv.reshape(batch, new_tokens, cfg.num_kv_heads, cfg.head_dim).transpose(0, 2, 1, 3)
            if not cfg.encoder_only:
                q = _apply_rope(q, cos, sin)
                k = _apply_rope(k, cos, sin)

            if cache is not None:
                entry = cache[layer]
                if entry["k"] is not None:
                    k = np.concatenate([entry["k"], k], axis=2)
                    vv = np.concatenate([entry["v"], vv], axis=2)
                entry["k"], entry["v"] = k, vv
            context_len = k.shape[2]

            k_full = np.repeat(k, group, axis=1)
            v_full = np.repeat(vv, group, axis=1)
            scores = q @ k_full.transpose(0, 1, 3, 2) / np.sqrt(cfg.head_dim)
            if recorder is not None:
                recorder.record(
                    "self_attention",
                    2.0 * batch * cfg.num_heads * new_tokens * context_len * cfg.head_dim,
                )
            if not cfg.encoder_only:
                query_pos = np.arange(past, past + new_tokens)[:, None]
                key_pos = np.arange(context_len)[None, :]
                scores = np.where(key_pos <= query_pos, scores, -1e30)
            weights = np.exp(scores - scores.max(axis=-1, keepdims=True))
            weights = weights / weights.sum(axis=-1, keepdims=True)
            attended = weights @ v_full
            if recorder is not None:
                recorder.record(
                    "self_attention",
                    2.0 * batch * cfg.num_heads * new_tokens * context_len * cfg.head_dim,
                )
            attended = attended.transpose(0, 2, 1, 3).reshape(batch, new_tokens, cfg.hidden_size)
            hidden = hidden + block["o"](attended, "o_proj", recorder)

            normed = self._norm(hidden, block["post_norm"])
            if cfg.mlp == "gated_silu":
                gate = block["gate"](normed, "gate_up_proj", recorder)
                up = block["up"](normed, "gate_up_proj", recorder)
                mlp = block["down"](_silu(gate) * up, "down_proj", recorder)
            else:
                mlp = block["down"](_gelu(block["up"](normed, "gate_up_proj", recorder)),
                                    "down_proj", recorder)
            hidden = hidden + mlp

        return self._norm(hidden, self.final_norm)

    def encode(self, token_ids: np.ndarray) -> np.ndarray:
        """Mean-pooled final hidden states (SBERT-style sentence embedding).

        Returns:
            Array of shape (batch, hidden_size).
        """
        if not self.config.encoder_only:
            raise ValueError(f"{self.config.name} is not an encoder-only model")
        hidden = self._run_blocks(token_ids, cache=None)
        return hidden.mean(axis=1)
