"""Concrete deployment backends.

Six modes cover the paper's hardware configurations:

* ``baremetal`` — the CPU baseline,
* ``vm`` — a raw KVM VM without security features (several hugepage /
  NUMA-binding variants, Figs. 5-6),
* ``tdx`` — TDX-enabled VM,
* ``sgx`` — Gramine on SGX (bare metal underneath),
* ``gpu`` — raw H100,
* ``cgpu`` — H100 with confidential compute enabled.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import calibration as cal
from ..memsim.numa import NumaPolicy
from .base import Backend, CostProfile, register_backend
from .security import (
    BAREMETAL_SECURITY,
    CGPU_SECURITY,
    GPU_SECURITY,
    SGX_SECURITY,
    TDX_SECURITY,
    VM_SECURITY,
    SecurityProfile,
)


class BaremetalBackend(Backend):
    """Unprotected bare-metal execution (the CPU baseline)."""

    name = "baremetal"
    device = "cpu"
    is_tee = False

    def cost_profile(self) -> CostProfile:
        return CostProfile()

    def security_profile(self) -> SecurityProfile:
        return BAREMETAL_SECURITY


# eq=False keeps identity hashing: backends are registry singletons and
# appear inside Deployment-keyed memo-cache keys (see repro.memo).
@dataclass(eq=False)
class VmBackend(Backend):
    """A raw KVM VM without TEE protections.

    Pays the virtualization tax and nested EPT walks, but no crypto.
    ``numa_bound`` distinguishes the paper's VM B (bindings honoured) from
    VM NB (no binding → interleaved placement).
    """

    numa_bound: bool = True
    variant: str = ""

    def __post_init__(self) -> None:
        self.name = f"vm{('-' + self.variant) if self.variant else ''}"
        self.device = "cpu"
        self.is_tee = False

    def cost_profile(self) -> CostProfile:
        override = None if self.numa_bound else NumaPolicy.INTERLEAVED
        return CostProfile(
            walk_multiplier=cal.EPT_WALK_MULTIPLIER,
            virtualization_tax=cal.VM_VIRTUALIZATION_TAX,
            numa_policy_override=override,
        )

    def security_profile(self) -> SecurityProfile:
        return VM_SECURITY


class TdxBackend(Backend):
    """Intel TDX: a hardened VM TEE.

    On top of the VM costs it pays memory encryption, secure-EPT walks,
    UPI link crypto, and two driver limitations the paper documents:
    NUMA bindings are ignored (Insight 6) and reserved 1 GB hugepages are
    silently replaced by 2 MB THP (Insight 7).
    """

    name = "tdx"
    device = "cpu"
    is_tee = True

    def cost_profile(self) -> CostProfile:
        return CostProfile(
            mem_encryption_derate=cal.MEM_ENCRYPTION_DERATE,
            walk_multiplier=cal.TDX_WALK_MULTIPLIER,
            virtualization_tax=cal.VM_VIRTUALIZATION_TAX + cal.TDX_EXTRA_TAX,
            upi_crypto_derate=cal.UPI_CRYPTO_DERATE,
            numa_policy_override=NumaPolicy.TDX_DEFAULT,
            hugepage_force_thp=True,
        )

    def security_profile(self) -> SecurityProfile:
        return TDX_SECURITY


class SgxBackend(Backend):
    """Intel SGX under the Gramine libOS (process TEE, bare metal host).

    No virtualization tax (runs on bare metal with direct hardware
    access), but memory encryption, enclave exits for non-emulated
    syscalls, EPC capacity limits, and a single unified NUMA node.
    """

    name = "sgx"
    device = "cpu"
    is_tee = True

    def cost_profile(self) -> CostProfile:
        return CostProfile(
            mem_encryption_derate=cal.SGX_MEM_ENCRYPTION_DERATE,
            exit_cost_s=cal.SGX_EXIT_S,
            exits_per_step=cal.SGX_EXITS_PER_STEP,
            upi_crypto_derate=cal.UPI_CRYPTO_DERATE,
            numa_policy_override=NumaPolicy.SINGLE_NODE,
            epc_limited=True,
        )

    def security_profile(self) -> SecurityProfile:
        return SGX_SECURITY


class GpuBackend(Backend):
    """Raw (non-confidential) H100 — the GPU baseline.

    The paper rents VMs, so the raw GPU baseline still sits inside a VM;
    that shared cost cancels in the overhead ratio, so only the residual
    per-step launch cost is modeled.
    """

    name = "gpu"
    device = "gpu"
    is_tee = False

    def cost_profile(self) -> CostProfile:
        return CostProfile(step_fixed_s=cal.GPU_STEP_LAUNCH_S)

    def security_profile(self) -> SecurityProfile:
        return GPU_SECURITY


class CgpuBackend(Backend):
    """H100 with confidential compute: encrypted command submission and
    PCIe bounce-buffer staging; HBM itself stays unencrypted."""

    name = "cgpu"
    device = "gpu"
    is_tee = True

    def cost_profile(self) -> CostProfile:
        return CostProfile(
            step_fixed_s=cal.GPU_STEP_LAUNCH_S + cal.CGPU_STEP_TAX_S,
            bounce_bw=cal.CGPU_BOUNCE_BW,
            gpu_rate_derate=cal.CGPU_RATE_DERATE,
        )

    def security_profile(self) -> SecurityProfile:
        return CGPU_SECURITY


class CgpuB100Backend(Backend):
    """Projected B100-class confidential GPU (§V-D3).

    Closes H100's security gaps — HBM and NVLink encryption — at the
    price of a memory-path protection cost the paper expects to be
    non-negligible.  Not measured by the paper (CC-mode B100s were not
    rentable); this backend encodes the projection.
    """

    name = "cgpu-b100"
    device = "gpu"
    is_tee = True

    def cost_profile(self) -> CostProfile:
        return CostProfile(
            step_fixed_s=cal.GPU_STEP_LAUNCH_S + cal.CGPU_STEP_TAX_S,
            bounce_bw=cal.CGPU_BOUNCE_BW,
            gpu_rate_derate=cal.CGPU_RATE_DERATE,
            mem_encryption_derate=cal.B100_HBM_ENCRYPTION_DERATE,
        )

    def security_profile(self) -> SecurityProfile:
        from .security import B100_SECURITY
        return B100_SECURITY


BAREMETAL = register_backend(BaremetalBackend())
VM = register_backend(VmBackend(numa_bound=True))
VM_UNBOUND = register_backend(VmBackend(numa_bound=False, variant="unbound"))
TDX = register_backend(TdxBackend())
SGX = register_backend(SgxBackend())
GPU = register_backend(GpuBackend())
CGPU = register_backend(CgpuBackend())
CGPU_B100 = register_backend(CgpuB100Backend())
