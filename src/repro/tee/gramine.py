"""Gramine manifest generation and parsing (functional).

The paper deploys SGX through the Gramine libOS, configured by a Manifest
file declaring the enclave size, thread count, entrypoint, trusted and
encrypted files, and the attestation key provisioning (Fig. 2 shows an
excerpt).  This module builds, renders, parses and validates such
manifests so the released configuration is executable, testable code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..memsim.pages import GB, MB


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


@dataclass
class GramineManifest:
    """A Gramine-SGX manifest.

    Attributes:
        entrypoint: Binary executed inside the enclave.
        enclave_size_bytes: SGX enclave size; must be a power of two
            (Gramine requirement).  The paper uses the largest EPC-backed
            size possible to avoid paging (§IV-A).
        max_threads: TCS slots; must cover the inference thread pool.
        trusted_files: Integrity-protected (measured) files.
        encrypted_files: Confidentiality-protected files (model weights).
        allowed_files: Unprotected passthrough files.
        remote_attestation: ``"dcap"`` or ``"none"``.
        env: Environment variables passed through to the enclave.
        preheat_enclave: Touch all pages at startup (EPC warmup).
    """

    entrypoint: str
    enclave_size_bytes: int = 64 * GB
    max_threads: int = 128
    trusted_files: list[str] = field(default_factory=list)
    encrypted_files: list[str] = field(default_factory=list)
    allowed_files: list[str] = field(default_factory=list)
    remote_attestation: str = "dcap"
    env: dict[str, str] = field(default_factory=dict)
    preheat_enclave: bool = True

    def validate(self) -> None:
        """Check manifest invariants Gramine enforces at build time.

        Raises:
            ValueError: On any violated invariant.
        """
        if not self.entrypoint:
            raise ValueError("entrypoint must be set")
        if not _is_power_of_two(self.enclave_size_bytes):
            raise ValueError(
                f"enclave size must be a power of two, got {self.enclave_size_bytes}")
        if self.enclave_size_bytes < 256 * MB:
            raise ValueError("enclave size below Gramine's practical minimum")
        if self.max_threads < 1:
            raise ValueError("max_threads must be >= 1")
        if self.remote_attestation not in ("dcap", "none"):
            raise ValueError(f"unknown attestation mode {self.remote_attestation!r}")
        overlap = set(self.trusted_files) & set(self.encrypted_files)
        if overlap:
            raise ValueError(f"files cannot be both trusted and encrypted: {sorted(overlap)}")
        overlap = (set(self.trusted_files) | set(self.encrypted_files)) & set(self.allowed_files)
        if overlap:
            raise ValueError(f"protected files cannot also be allowed: {sorted(overlap)}")

    def render(self) -> str:
        """Render to Gramine's TOML-style manifest syntax."""
        self.validate()
        size_g = self.enclave_size_bytes // GB
        size_str = f'"{size_g}G"' if size_g * GB == self.enclave_size_bytes \
            else f'"{self.enclave_size_bytes // MB}M"'
        lines = [
            f'libos.entrypoint = "{self.entrypoint}"',
            'loader.log_level = "error"',
            f"sgx.enclave_size = {size_str}",
            f"sgx.max_threads = {self.max_threads}",
            f"sgx.remote_attestation = \"{self.remote_attestation}\"",
            f"sgx.preheat_enclave = {str(self.preheat_enclave).lower()}",
        ]
        for key, value in sorted(self.env.items()):
            lines.append(f'loader.env.{key} = "{value}"')
        for section, files in (("trusted_files", self.trusted_files),
                               ("allowed_files", self.allowed_files)):
            for path in files:
                lines.append(f'sgx.{section}[[]] = "file:{path}"')
        for path in self.encrypted_files:
            lines.append(f'fs.mounts[[]] = {{ type = "encrypted", path = "{path}", '
                         f'uri = "file:{path}", key_name = "_sgx_mrenclave" }}')
        return "\n".join(lines) + "\n"


def parse_manifest(text: str) -> GramineManifest:
    """Parse a manifest rendered by :meth:`GramineManifest.render`.

    Round-trip property: ``parse_manifest(m.render())`` equals ``m``.
    """
    manifest = GramineManifest(entrypoint="")
    manifest.preheat_enclave = False
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.partition(" = ")
        value = value.strip()
        if key == "libos.entrypoint":
            manifest.entrypoint = value.strip('"')
        elif key == "sgx.enclave_size":
            size = value.strip('"')
            unit = {"G": GB, "M": MB}[size[-1]]
            manifest.enclave_size_bytes = int(size[:-1]) * unit
        elif key == "sgx.max_threads":
            manifest.max_threads = int(value)
        elif key == "sgx.remote_attestation":
            manifest.remote_attestation = value.strip('"')
        elif key == "sgx.preheat_enclave":
            manifest.preheat_enclave = value == "true"
        elif key.startswith("loader.env."):
            manifest.env[key.removeprefix("loader.env.")] = value.strip('"')
        elif key == "sgx.trusted_files[[]]":
            manifest.trusted_files.append(value.strip('"').removeprefix("file:"))
        elif key == "sgx.allowed_files[[]]":
            manifest.allowed_files.append(value.strip('"').removeprefix("file:"))
        elif key == "fs.mounts[[]]":
            path = value.split('path = "')[1].split('"')[0]
            manifest.encrypted_files.append(path)
    manifest.validate()
    return manifest


def inference_manifest(model_path: str, enclave_size_bytes: int = 64 * GB,
                       threads: int = 128) -> GramineManifest:
    """The manifest shape the paper uses for Llama inference under Gramine.

    Python + PyTorch + IPEX inside the enclave; the model weights are an
    encrypted mount keyed to the enclave measurement; the interpreter and
    libraries are trusted (measured) files.
    """
    return GramineManifest(
        entrypoint="/usr/bin/python3",
        enclave_size_bytes=enclave_size_bytes,
        max_threads=threads,
        trusted_files=[
            "/usr/bin/python3",
            "/usr/lib/python3.10/",
            "/usr/lib/x86_64-linux-gnu/",
            "/opt/ipex/",
            "/app/run_inference.py",
        ],
        encrypted_files=[model_path],
        allowed_files=["/tmp/results/"],
        env={"OMP_NUM_THREADS": str(threads // 2), "LD_PRELOAD": "libtcmalloc.so"},
    )
