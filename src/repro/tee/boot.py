"""Phased confidential cold-start lifecycle (the attestation tax).

The fleet simulator originally priced cold starts as one opaque
``boot_latency_s`` constant.  Real confidential boot is a *sequence* —
the measurements on Hopper cGPUs (Zhu et al.) and IBM's cGPU study
both show attestation and encrypted weight load dominating TEE
startup.  This module makes each stage a first-class, separately
priced phase::

    PROVISIONING -> ATTESTING -> KEY_RELEASE -> MODEL_DECRYPT
                 -> WEIGHT_LOAD -> (live)

* :class:`BootProfile` carries the per-TEE latency terms: instance
  provisioning, quote generation + verification (TDX quote, SGX DCAP,
  cGPU SPDM/attestation), KMS secure-key-release round trips, and the
  decrypt/load throughputs that scale with the served model's weight
  bytes (:meth:`repro.llm.config.ModelConfig.weight_bytes`).
* :class:`BootSequence` freezes the profile against one model into
  concrete phase durations and answers the questions the fleet layer
  asks: total boot latency, which phase an instant falls in, and how
  long a restart from a given phase takes (an ``attestation_failure``
  mid-boot re-enters at ``ATTESTING``; provisioning is never repaid).

Everything is a pure function of the profile and the model bytes — no
randomness, no clocks — so phased boots keep fleet runs bit-
reproducible and both fleet engines (stepped and ``engine="event"``)
agree by construction.  A spec with no profile keeps the legacy
constant path untouched; :func:`constant_profile` expresses any legacy
constant as a degenerate single-phase sequence for differential
testing (``attest.legacy_constant_parity``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..llm.config import ModelConfig
from ..llm.datatypes import DType

#: Timed boot phases, in lifecycle order.
PROVISIONING = "provisioning"
ATTESTING = "attesting"
KEY_RELEASE = "key_release"
MODEL_DECRYPT = "model_decrypt"
WEIGHT_LOAD = "weight_load"
BOOT_PHASES = (PROVISIONING, ATTESTING, KEY_RELEASE, MODEL_DECRYPT,
               WEIGHT_LOAD)

#: Terminal pseudo-phase: the boot sequence has completed.
PHASE_LIVE = "live"


@dataclass(frozen=True)
class BootProfile:
    """Per-TEE cold-start latency terms.

    Attributes:
        kind: Replica kind the profile describes (``tdx``, ``cgpu``...).
        provision_s: Infrastructure allocation: VM/TD create, guest
            kernel, serving runtime start.  The only phase a non-TEE
            instance pays besides loading weights.
        quote_s: Evidence generation plus verifier round trip — TDX
            TDREPORT+quote, SGX DCAP, or the cGPU SPDM session and
            GPU/CPU-TEE evidence bundle.  Zero for non-TEE kinds.
        kms_round_trip_s: Latency of one secure-key-release round trip
            to the KMS/HSM.
        kms_round_trips: Round trips before the wrapped model key is
            released (policy check, release, unwrap).
        decrypt_gbps: Model decrypt throughput (GB/s) once the key is
            released; ``None`` means the model is stored in plaintext
            and the decrypt phase is skipped entirely.
        load_gbps: Weight load/copy throughput (GB/s) into the serving
            address space (EPC paging for SGX, encrypted-PCIe bounce
            buffers for cGPU); ``None`` loads instantly (degenerate
            profiles only).
    """

    kind: str
    provision_s: float = 0.0
    quote_s: float = 0.0
    kms_round_trip_s: float = 0.0
    kms_round_trips: int = 0
    decrypt_gbps: float | None = None
    load_gbps: float | None = None

    def __post_init__(self) -> None:
        for name in ("provision_s", "quote_s", "kms_round_trip_s"):
            value = getattr(self, name)
            # NaN passes a plain `< 0` comparison, so finiteness is explicit.
            if not math.isfinite(value) or value < 0:
                raise ValueError(f"{name} must be finite and >= 0")
        if self.kms_round_trips < 0:
            raise ValueError("kms_round_trips must be >= 0")
        for name in ("decrypt_gbps", "load_gbps"):
            value = getattr(self, name)
            if value is not None and (not math.isfinite(value)
                                      or value <= 0):
                raise ValueError(f"{name} must be finite and > 0, or None")

    def fingerprint(self) -> dict:
        """Identity of the latency terms, for snapshot integrity checks."""
        return {
            "kind": self.kind,
            "provision_s": self.provision_s,
            "quote_s": self.quote_s,
            "kms_round_trip_s": self.kms_round_trip_s,
            "kms_round_trips": self.kms_round_trips,
            "decrypt_gbps": self.decrypt_gbps,
            "load_gbps": self.load_gbps,
        }

    def phase_durations(self, model_bytes: float) -> tuple[float, ...]:
        """Seconds spent in each of :data:`BOOT_PHASES` for a model.

        The byte-proportional phases divide by throughput in GB/s; the
        key-release phase only exists when there is a key to release
        (an encrypted model).
        """
        if not math.isfinite(model_bytes) or model_bytes < 0:
            raise ValueError("model_bytes must be finite and >= 0")
        decrypt_s = (model_bytes / (self.decrypt_gbps * 1e9)
                     if self.decrypt_gbps is not None else 0.0)
        release_s = (self.kms_round_trips * self.kms_round_trip_s
                     if self.decrypt_gbps is not None else 0.0)
        load_s = (model_bytes / (self.load_gbps * 1e9)
                  if self.load_gbps is not None else 0.0)
        return (self.provision_s, self.quote_s, release_s, decrypt_s,
                load_s)

    def sequence(self, model: ModelConfig, dtype: DType) -> "BootSequence":
        """Freeze this profile against a served model's weight bytes."""
        return BootSequence(
            kind=self.kind,
            durations=self.phase_durations(model.weight_bytes(dtype.bytes)))


@dataclass(frozen=True)
class BootSequence:
    """A profile frozen against one model: concrete phase durations.

    The sequence is anchored *backwards* from readiness: given a
    replica's ``ready_s``, phase windows are
    ``[ready - total, ready)`` split by the durations.  Anchoring on
    readiness (rather than provisioning) means a boot stretched by a
    queued ``boot_failure`` penalty, or restarted mid-way from
    ``ATTESTING``, still maps every remaining instant to exactly one
    phase — the extra time parks in the earliest phase.
    """

    kind: str
    durations: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.durations) != len(BOOT_PHASES):
            raise ValueError(
                f"need {len(BOOT_PHASES)} phase durations, "
                f"got {len(self.durations)}")
        for phase, duration in zip(BOOT_PHASES, self.durations):
            if not math.isfinite(duration) or duration < 0:
                raise ValueError(f"{phase} duration must be finite and >= 0")

    @property
    def total_s(self) -> float:
        """Provision-to-ready latency: the exact sum of the phases."""
        return sum(self.durations)

    def duration_of(self, phase: str) -> float:
        """Seconds the sequence spends in ``phase``."""
        return self.durations[_phase_index(phase)]

    def remaining_from(self, phase: str) -> float:
        """Boot time left when (re)entering the sequence at ``phase``.

        ``remaining_from(PROVISIONING)`` is the full boot; an
        ``attestation_failure`` restart pays
        ``remaining_from(ATTESTING)`` — everything except the already-
        provisioned instance.
        """
        return sum(self.durations[_phase_index(phase):])

    def phase_at_remaining(self, remaining_s: float) -> str:
        """The phase underway with ``remaining_s`` left before ready.

        Phase windows are half-open on the ready side: with exactly one
        load-phase worth of time left the instance is loading weights;
        with zero left it is live.  Time beyond the nominal total
        (penalty-stretched boots) parks in :data:`PROVISIONING`.
        Zero-length phases own no instants, so any instant lands in
        exactly one phase.
        """
        if remaining_s <= 0:
            return PHASE_LIVE
        for phase, duration in zip(reversed(BOOT_PHASES),
                                   reversed(self.durations)):
            if remaining_s <= duration:
                return phase
            remaining_s -= duration
        return PROVISIONING

    def phase_at(self, now_s: float, ready_s: float) -> str:
        """The phase underway at ``now_s`` for a boot ready at ``ready_s``."""
        return self.phase_at_remaining(ready_s - now_s)

    def schedule(self, ready_s: float) -> tuple[tuple[str, float, float], ...]:
        """Nominal ``(phase, start_s, end_s)`` windows ending at ``ready_s``.

        Windows are contiguous, non-overlapping and in lifecycle order;
        the last window ends exactly at ``ready_s`` and the first
        starts at ``ready_s - total_s``.
        """
        windows = []
        start = ready_s - self.total_s
        for phase, duration in zip(BOOT_PHASES, self.durations):
            windows.append((phase, start, start + duration))
            start += duration
        return tuple(windows)

    def to_state(self) -> dict:
        """Plain-dict snapshot (JSON-serializable)."""
        return {"kind": self.kind, "durations": list(self.durations)}


def _phase_index(phase: str) -> int:
    try:
        return BOOT_PHASES.index(phase)
    except ValueError:
        raise ValueError(f"unknown boot phase {phase!r}; expected one of "
                         f"{BOOT_PHASES}") from None


# -- per-TEE default profiles -------------------------------------------------

#: Cold-start latency terms per replica kind.  CPU TEE terms follow the
#: TDX-quote / SGX-DCAP measurements the paper's deployments rely on;
#: the cGPU terms follow the Hopper confidential-computing studies
#: (SPDM session + GPU evidence dominates the quote, encrypted-PCIe
#: bounce buffers throttle the load).  Non-TEE kinds pay provisioning
#: and a plaintext weight load only.
DEFAULT_PROFILES: dict[str, BootProfile] = {
    "baremetal": BootProfile("baremetal", provision_s=2.0, load_gbps=5.0),
    "vm": BootProfile("vm", provision_s=6.0, load_gbps=5.0),
    "gpu": BootProfile("gpu", provision_s=12.0, load_gbps=8.0),
    "tdx": BootProfile("tdx", provision_s=8.0, quote_s=2.0,
                       kms_round_trip_s=0.4, kms_round_trips=3,
                       decrypt_gbps=1.5, load_gbps=2.5),
    "sgx": BootProfile("sgx", provision_s=10.0, quote_s=3.0,
                       kms_round_trip_s=0.4, kms_round_trips=3,
                       decrypt_gbps=1.0, load_gbps=1.2),
    "cgpu": BootProfile("cgpu", provision_s=12.0, quote_s=5.0,
                        kms_round_trip_s=0.5, kms_round_trips=4,
                        decrypt_gbps=4.0, load_gbps=3.0),
}


def boot_profile(kind: str, **overrides: object) -> BootProfile:
    """The default profile for a replica kind, with optional overrides.

    Raises:
        ValueError: For kinds without a default profile.
    """
    try:
        base = DEFAULT_PROFILES[kind]
    except KeyError:
        raise ValueError(
            f"no default boot profile for kind {kind!r}; expected one of "
            f"{tuple(DEFAULT_PROFILES)}") from None
    if not overrides:
        return base
    terms = base.fingerprint()
    unknown = set(overrides) - set(terms)
    if unknown:
        raise ValueError(f"unknown boot profile terms {sorted(unknown)}")
    terms.update(overrides)
    return BootProfile(**terms)  # type: ignore[arg-type]


def constant_profile(kind: str, total_s: float) -> BootProfile:
    """A degenerate profile reproducing a legacy boot constant.

    All of ``total_s`` lands in :data:`PROVISIONING`; every other
    phase is zero-length.  A fleet built on constant profiles is
    bit-identical to one using the legacy ``boot_latency_s`` constants
    (the ``attest.legacy_constant_parity`` audit check pins this).
    """
    if not math.isfinite(total_s) or total_s < 0:
        raise ValueError("total_s must be finite and >= 0")
    return BootProfile(kind, provision_s=total_s)


# -- the attestation tax ------------------------------------------------------

#: TEE kinds the boot-breakdown table covers.
TAX_TEE_KINDS = ("tdx", "sgx", "cgpu")

#: Kinds the fleet-scale tax rows re-run (the headline cost rivals).
TAX_FLEET_KINDS = ("tdx", "cgpu")

#: Fleet sizes of the capacity headline (the smallest fleets meeting
#: the 2 s p99 TTFT SLO on the golden capacity trace under instant
#: boots — pinned by ``golden.fleet_capacity``).
CAPACITY_PLAN_REPLICAS = {"tdx": 3, "cgpu": 1}

#: Canonical column order of :func:`attest_tax_row`.
TAX_ROW_FIELDS = ("kind", "scenario", "boot_s", "reattest_s",
                  "legacy_usd_per_mtok", "phased_usd_per_mtok",
                  "tax_usd_per_mtok", "legacy_p99_ttft_s",
                  "phased_p99_ttft_s", "tax_p99_ttft_s",
                  "legacy_slo_attainment", "phased_slo_attainment")


def boot_breakdown(kinds: tuple[str, ...] = TAX_TEE_KINDS,
                   model: ModelConfig | None = None,
                   dtype: DType | None = None) -> list[dict]:
    """Per-phase boot seconds per TEE kind for one served model."""
    model = model or _served_model("tdx")[0]
    dtype = dtype or _served_model("tdx")[1]
    rows = []
    for kind in kinds:
        sequence = boot_profile(kind).sequence(model, dtype)
        row = {"kind": kind, "model": model.name}
        row.update({phase: duration for phase, duration
                    in zip(BOOT_PHASES, sequence.durations)})
        row["total_s"] = sequence.total_s
        row["reattest_s"] = sequence.remaining_from(ATTESTING)
        rows.append(row)
    return rows


def _tax_fleet(kind: str, phased: bool, scenario: str, engine: str):
    """Build one scenario fleet, phased or legacy-instant boots."""
    from ..faults.resilience import RetryPolicy
    from ..faults.schedule import mtbf_schedule
    from ..fleet.cluster import fixed_fleet
    from ..fleet.replica import replica_spec

    boot = boot_profile(kind) if phased else None
    spec = replica_spec(kind, max_batch=16, kv_capacity_tokens=65536,
                        boot=boot)
    if scenario == "capacity":
        return fixed_fleet(spec, CAPACITY_PLAN_REPLICAS[kind], engine=engine)
    if scenario != "chaos":
        raise ValueError(f"unknown attest-tax scenario {scenario!r}")
    schedule = mtbf_schedule([0], mtbf_s=12.0, horizon_s=40.0, seed=7)
    retry = RetryPolicy(timeout_s=20.0, max_attempts=4, seed=7)
    return fixed_fleet(spec, 1, faults=schedule, retry_policy=retry,
                       engine=engine)


def _tax_stream(scenario: str, engine: str):
    """The scenario's request stream (headline traces, seeded)."""
    from ..fleet.arrivals import poisson_arrivals, trace_replay
    from ..validate.fleet import CAPACITY_TRACE

    if scenario == "capacity":
        requests = trace_replay(list(CAPACITY_TRACE))
    else:
        requests = poisson_arrivals(36, rate_per_s=1.5, mean_prompt=128,
                                    mean_output=64, seed=7)
    if engine == "event":
        from ..fleet.table import RequestTable
        return RequestTable.from_requests(requests)
    return requests


def attest_tax_row(kind: str, scenario: str, slo_ttft_s: float = 2.0,
                   engine: str = "stepped") -> dict:
    """One (kind, scenario) cell: legacy vs phased boots, same stream.

    The *tax* columns are the deltas a phased confidential boot adds
    over the legacy instant-boot headline: dollars per million tokens
    and p99 TTFT.
    """
    sequence = boot_profile(kind).sequence(
        *_served_model(kind))
    legacy = _tax_fleet(kind, False, scenario, engine).run(
        _tax_stream(scenario, engine))
    phased = _tax_fleet(kind, True, scenario, engine).run(
        _tax_stream(scenario, engine))
    return {
        "kind": kind,
        "scenario": scenario,
        "boot_s": sequence.total_s,
        "reattest_s": sequence.remaining_from(ATTESTING),
        "legacy_usd_per_mtok": legacy.usd_per_mtok,
        "phased_usd_per_mtok": phased.usd_per_mtok,
        "tax_usd_per_mtok": phased.usd_per_mtok - legacy.usd_per_mtok,
        "legacy_p99_ttft_s": legacy.ttft_percentile(99.0),
        "phased_p99_ttft_s": phased.ttft_percentile(99.0),
        "tax_p99_ttft_s": (phased.ttft_percentile(99.0)
                           - legacy.ttft_percentile(99.0)),
        "legacy_slo_attainment": legacy.slo_attainment(slo_ttft_s),
        "phased_slo_attainment": phased.slo_attainment(slo_ttft_s),
    }


def _served_model(kind: str):
    """Model/dtype a tax fleet serves (the paper's serving default)."""
    from ..llm.config import LLAMA2_7B
    from ..llm.datatypes import BFLOAT16
    del kind  # every headline fleet serves the same model today
    return LLAMA2_7B, BFLOAT16


def attest_tax_sweep(kinds: tuple[str, ...] = TAX_FLEET_KINDS,
                     scenarios: tuple[str, ...] = ("capacity", "chaos"),
                     slo_ttft_s: float = 2.0,
                     engine: str = "stepped") -> list[dict]:
    """The attestation-tax table: every (kind, scenario) cell.

    Deterministic and seeded end to end; the ``golden.attest_tax``
    audit check snapshots this series.
    """
    return [attest_tax_row(kind, scenario, slo_ttft_s, engine)
            for scenario in scenarios for kind in kinds]
