"""Security property matrix (Table I).

Captures the qualitative security comparison the paper summarizes in
Table I: what hardware state is protected (memory, scale-up links), what
software must be trusted (application, OS, VM), and development cost.
Values use a three-level scale mirroring the paper's full / partial / no
support glyphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Support(str, Enum):
    """Three-level support scale (Table I legend)."""

    FULL = "full"
    PARTIAL = "partial"
    NONE = "none"

    @property
    def glyph(self) -> str:
        return {"full": "#", "partial": "=", "none": "."}[self.value]


@dataclass(frozen=True)
class SecurityProfile:
    """Security properties of one deployment mode.

    Attributes:
        name: Backend name.
        memory_encrypted: DRAM (or HBM) protection level.  H100 leaves
            HBM unencrypted — the paper's headline cGPU security gap.
        scale_up_protected: Socket/GPU interconnect protection.  UPI is
            transparently encrypted on CPUs; NVLink is not on H100.
        app_trusted: Whether the application must be trusted (always —
            the TEE protects it but cannot vet it).
        os_trusted: Trust required in an OS layer (SGX needs only a
            libOS → partial; TDX/cGPU trust the whole guest OS).
        vm_trusted: Trust required in a VM/hypervisor-adjacent stack.
        attestable: Remote attestation support.
        development_cost: Porting effort (Table I "Development" row);
            higher is worse.  SGX requires manifests and libOS quirks,
            TDX runs stock OS images, cGPU runs unmodified CUDA.
    """

    name: str
    memory_encrypted: Support
    scale_up_protected: Support
    app_trusted: Support
    os_trusted: Support
    vm_trusted: Support
    attestable: bool
    development_cost: int

    def __post_init__(self) -> None:
        if not 0 <= self.development_cost <= 3:
            raise ValueError("development_cost must be in [0, 3]")

    @property
    def tcb_size_rank(self) -> int:
        """Relative trusted-computing-base size (smaller is better).

        Counts the trust levels over the software rows: a full-trust row
        adds 2, partial adds 1.
        """
        score = 0
        for level in (self.app_trusted, self.os_trusted, self.vm_trusted):
            score += {"full": 2, "partial": 1, "none": 0}[level.value]
        return score

    def stricter_than(self, other: "SecurityProfile") -> bool:
        """True if this mode dominates ``other`` on hardware protections
        and does not trust more software.

        Used for Insight 11: CPU TEEs are 'more secure' than H100 cGPUs
        because they encrypt memory and protect the scale-up links.
        """
        order = {Support.NONE: 0, Support.PARTIAL: 1, Support.FULL: 2}
        hw_geq = (order[self.memory_encrypted] >= order[other.memory_encrypted]
                  and order[self.scale_up_protected] >= order[other.scale_up_protected])
        hw_gt = (order[self.memory_encrypted] > order[other.memory_encrypted]
                 or order[self.scale_up_protected] > order[other.scale_up_protected])
        return hw_geq and hw_gt and self.tcb_size_rank <= other.tcb_size_rank


#: No-protection baseline rows for completeness.
BAREMETAL_SECURITY = SecurityProfile(
    name="baremetal",
    memory_encrypted=Support.NONE,
    scale_up_protected=Support.NONE,
    app_trusted=Support.FULL,
    os_trusted=Support.FULL,
    vm_trusted=Support.FULL,
    attestable=False,
    development_cost=0,
)

VM_SECURITY = SecurityProfile(
    name="vm",
    memory_encrypted=Support.NONE,
    scale_up_protected=Support.NONE,
    app_trusted=Support.FULL,
    os_trusted=Support.FULL,
    vm_trusted=Support.FULL,
    attestable=False,
    development_cost=0,
)

SGX_SECURITY = SecurityProfile(
    name="sgx",
    memory_encrypted=Support.FULL,
    scale_up_protected=Support.FULL,
    app_trusted=Support.FULL,
    os_trusted=Support.PARTIAL,   # only the Gramine libOS is trusted
    vm_trusted=Support.NONE,
    attestable=True,
    development_cost=3,
)

TDX_SECURITY = SecurityProfile(
    name="tdx",
    memory_encrypted=Support.FULL,
    scale_up_protected=Support.FULL,
    app_trusted=Support.FULL,
    os_trusted=Support.FULL,      # whole guest OS inside the trust boundary
    vm_trusted=Support.FULL,
    attestable=True,
    development_cost=1,
)

CGPU_SECURITY = SecurityProfile(
    name="cgpu",
    memory_encrypted=Support.NONE,      # H100 HBM is unencrypted
    scale_up_protected=Support.NONE,    # NVLink unprotected in CC mode
    app_trusted=Support.FULL,
    os_trusted=Support.FULL,
    vm_trusted=Support.FULL,            # requires a host CPU TEE (CVM)
    attestable=True,
    development_cost=0,
)

GPU_SECURITY = SecurityProfile(
    name="gpu",
    memory_encrypted=Support.NONE,
    scale_up_protected=Support.NONE,
    app_trusted=Support.FULL,
    os_trusted=Support.FULL,
    vm_trusted=Support.FULL,
    attestable=False,
    development_cost=0,
)

B100_SECURITY = SecurityProfile(
    name="cgpu-b100",
    memory_encrypted=Support.FULL,
    scale_up_protected=Support.FULL,
    app_trusted=Support.FULL,
    os_trusted=Support.FULL,
    vm_trusted=Support.FULL,
    attestable=True,
    development_cost=0,
)
