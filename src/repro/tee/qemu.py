"""QEMU / libvirt configuration for TDX guests (functional).

Using TDX requires defining the VM precisely: boot firmware (TDVF), the
``tdx-guest`` confidential-guest object, virtual-to-physical core
mapping, memory backing (hugepages), and NUMA bindings (which the TDX
KVM driver then ignores, Insight 6 — we still generate the correct
binding so the configuration artifact matches the paper's released one).
Full-disk encryption of the guest image is the user's job under TDX; the
LUKS plan generator covers that (§III-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memsim.pages import GB, HugepagePolicy


@dataclass(frozen=True)
class TdxVmConfig:
    """One TDX (or plain KVM) guest definition.

    Attributes:
        name: Domain name.
        vcpus: Virtual CPU count.
        memory_bytes: Guest RAM.
        tdx_enabled: Confidential guest vs plain VM.
        hugepages: Requested memory backing.
        numa_nodes: Host NUMA nodes to bind guest memory to (empty =
            no binding, the paper's VM NB).
        cpu_pin: vCPU → physical core pinning ranges per socket.
        disk_image: Guest image path.
        luks_encrypted: Whether the image is LUKS-protected.
    """

    name: str
    vcpus: int
    memory_bytes: int
    tdx_enabled: bool = True
    hugepages: HugepagePolicy = HugepagePolicy.RESERVED_1G
    numa_nodes: tuple[int, ...] = ()
    cpu_pin: tuple[str, ...] = ()
    disk_image: str = "/var/lib/libvirt/images/guest.qcow2"
    luks_encrypted: bool = True

    def validate(self) -> None:
        """Raise ValueError on an impossible guest definition."""
        if self.vcpus < 1:
            raise ValueError("vcpus must be >= 1")
        if self.memory_bytes < GB:
            raise ValueError("guests below 1 GiB are not practical for LLMs")
        if self.tdx_enabled and not self.luks_encrypted:
            raise ValueError(
                "TDX does not protect storage; enable LUKS for the image "
                "(paper §III-B: users must protect the filesystem)")

    def qemu_args(self) -> list[str]:
        """The QEMU command line for this guest."""
        self.validate()
        mem_g = self.memory_bytes // GB
        args = [
            "qemu-system-x86_64",
            "-name", self.name,
            "-machine", "q35,kernel-irqchip=split"
                        + (",confidential-guest-support=tdx0" if self.tdx_enabled else ""),
            "-smp", str(self.vcpus),
            "-m", f"{mem_g}G",
            "-accel", "kvm",
            "-cpu", "host,-kvm-steal-time",
            "-nographic",
        ]
        if self.tdx_enabled:
            args += ["-object", "tdx-guest,id=tdx0",
                     "-bios", "/usr/share/qemu/OVMF_TDX.fd"]
        if self.hugepages is not HugepagePolicy.BASE_4K:
            size = "1G" if self.hugepages is HugepagePolicy.RESERVED_1G else "2M"
            policy = (f",host-nodes={'-'.join(map(str, self.numa_nodes))},policy=bind"
                      if self.numa_nodes else "")
            args += ["-object",
                     f"memory-backend-file,id=mem0,size={mem_g}G,"
                     f"mem-path=/dev/hugepages-{size},share=on{policy}",
                     "-numa", "node,memdev=mem0"]
        drive = f"file={self.disk_image},if=virtio"
        if self.luks_encrypted:
            drive += ",encrypt.format=luks,encrypt.key-secret=sec0"
            args += ["-object", "secret,id=sec0,file=/etc/guest.key"]
        args += ["-drive", drive]
        return args

    def libvirt_xml(self) -> str:
        """A libvirt domain definition equivalent to :meth:`qemu_args`."""
        self.validate()
        mem_kib = self.memory_bytes // 1024
        hugepage_elem = ""
        if self.hugepages is not HugepagePolicy.BASE_4K:
            size_kib = self.hugepages.page_bytes // 1024
            nodeset = (f' nodeset="{",".join(map(str, self.numa_nodes))}"'
                       if self.numa_nodes else "")
            hugepage_elem = (f"    <hugepages><page size='{size_kib}'"
                             f" unit='KiB'{nodeset}/></hugepages>\n")
        launch = ("  <launchSecurity type='tdx'/>\n" if self.tdx_enabled else "")
        pins = "".join(
            f"    <vcpupin vcpu='{index}' cpuset='{pin}'/>\n"
            for index, pin in enumerate(self.cpu_pin)
        )
        return (
            "<domain type='kvm'>\n"
            f"  <name>{self.name}</name>\n"
            f"  <memory unit='KiB'>{mem_kib}</memory>\n"
            f"  <vcpu>{self.vcpus}</vcpu>\n"
            "  <memoryBacking>\n" + hugepage_elem + "  </memoryBacking>\n"
            "  <cputune>\n" + pins + "  </cputune>\n"
            + launch +
            "  <os><type arch='x86_64' machine='q35'>hvm</type></os>\n"
            "</domain>\n"
        )


def paper_tdx_guest(cpu_cores: int, memory_gib: int,
                    sockets: tuple[int, ...] = (0,)) -> TdxVmConfig:
    """The guest shape used in the paper's TDX experiments.

    One vCPU per physical core (hyperthreads hidden — exposing them only
    added noise, §IV-A), memory bound to the sockets in use, 1 GB
    hugepages requested (TDX will silently downgrade them), LUKS image.
    """
    if cpu_cores < 1 or memory_gib < 1:
        raise ValueError("cpu_cores and memory_gib must be >= 1")
    pin_ranges = tuple(
        f"{socket * cpu_cores}-{(socket + 1) * cpu_cores - 1}" for socket in sockets
    )
    return TdxVmConfig(
        name=f"tdx-llm-{cpu_cores}c",
        vcpus=cpu_cores * len(sockets),
        memory_bytes=memory_gib * GB,
        numa_nodes=sockets,
        cpu_pin=pin_ranges,
    )


@dataclass(frozen=True)
class LuksPlan:
    """A LUKS2 full-disk-encryption plan for a TDX guest image.

    TDX protects memory, not storage; the paper uses LUKS for the guest
    filesystem.  The plan is a validated sequence of setup steps.
    """

    device: str
    cipher: str = "aes-xts-plain64"
    key_bits: int = 512
    pbkdf: str = "argon2id"

    def validate(self) -> None:
        if not self.device.startswith("/dev/"):
            raise ValueError(f"device must be a block device path, got {self.device!r}")
        if self.cipher not in ("aes-xts-plain64", "aes-cbc-essiv:sha256"):
            raise ValueError(f"unsupported cipher {self.cipher!r}")
        if self.key_bits not in (256, 512):
            raise ValueError("key_bits must be 256 or 512")

    def commands(self) -> list[str]:
        """The cryptsetup command sequence."""
        self.validate()
        return [
            f"cryptsetup luksFormat --type luks2 --cipher {self.cipher} "
            f"--key-size {self.key_bits} --pbkdf {self.pbkdf} {self.device}",
            f"cryptsetup open {self.device} guest_root",
            "mkfs.ext4 /dev/mapper/guest_root",
        ]
