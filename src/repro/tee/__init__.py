"""TEE substrate: backends, security matrix, configuration tooling."""

from .attestation import AttestationService, Quote, RelyingParty, measure
from .boot import (
    BOOT_PHASES,
    DEFAULT_PROFILES,
    BootProfile,
    BootSequence,
    boot_profile,
    constant_profile,
)
from .backends import (
    BAREMETAL,
    CGPU,
    CGPU_B100,
    GPU,
    SGX,
    TDX,
    VM,
    VM_UNBOUND,
    BaremetalBackend,
    CgpuBackend,
    GpuBackend,
    SgxBackend,
    TdxBackend,
    VmBackend,
)
from .base import (
    Backend,
    CostProfile,
    MechanismToggles,
    all_backends,
    backend_by_name,
    register_backend,
)
from .gramine import GramineManifest, inference_manifest, parse_manifest
from .qemu import LuksPlan, TdxVmConfig, paper_tdx_guest
from .threats import (
    THREATS,
    Asset,
    Attacker,
    Threat,
    coverage,
    coverage_score,
    mitigates,
    uncovered,
)
from .security import (
    B100_SECURITY,
    BAREMETAL_SECURITY,
    CGPU_SECURITY,
    GPU_SECURITY,
    SGX_SECURITY,
    TDX_SECURITY,
    VM_SECURITY,
    SecurityProfile,
    Support,
)

__all__ = [
    "AttestationService", "Quote", "RelyingParty", "measure",
    "BOOT_PHASES", "DEFAULT_PROFILES", "BootProfile", "BootSequence",
    "boot_profile", "constant_profile",
    "BAREMETAL", "CGPU", "CGPU_B100", "GPU", "SGX", "TDX", "VM", "VM_UNBOUND",
    "BaremetalBackend", "CgpuBackend", "GpuBackend", "SgxBackend",
    "TdxBackend", "VmBackend",
    "Backend", "CostProfile", "MechanismToggles", "all_backends",
    "backend_by_name", "register_backend",
    "GramineManifest", "inference_manifest", "parse_manifest",
    "LuksPlan", "TdxVmConfig", "paper_tdx_guest",
    "B100_SECURITY", "BAREMETAL_SECURITY", "CGPU_SECURITY", "GPU_SECURITY",
    "SGX_SECURITY", "TDX_SECURITY", "VM_SECURITY",
    "SecurityProfile", "Support",
    "THREATS", "Asset", "Attacker", "Threat", "coverage",
    "coverage_score", "mitigates", "uncovered",
]
