"""TEE backend abstraction.

A backend bundles everything the execution engine must know about one
deployment mode: the mechanism-level cost profile (bandwidth derates,
walk multipliers, exit costs, launch taxes) and the security profile used
for Table I.  Backends are registered by name so experiment configs can
reference them as strings.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..memsim.numa import NumaPolicy
from ..memsim.pages import HugepagePolicy
from .security import SecurityProfile


@dataclass(frozen=True)
class CostProfile:
    """Mechanism-level cost parameters of one deployment mode.

    All rates and taxes default to the free (bare-metal) values; each
    backend overrides the mechanisms it actually pays for.

    Attributes:
        mem_encryption_derate: DRAM bandwidth fraction lost to inline
            memory encryption/integrity.
        walk_multiplier: Page-walk cost multiplier (EPT nested walks).
        virtualization_tax: Fractional slowdown applied to every step.
        exit_cost_s: Cost of one enclave/TD exit.
        exits_per_step: Synchronous exits per inference step.
        upi_crypto_derate: Socket-interconnect bandwidth lost to crypto.
        numa_policy_override: Placement policy forced by the backend
            (TDX ignores bindings; SGX sees one node), or ``None`` to
            honour the requested policy.
        hugepage_force_thp: Backend silently downgrades reserved 1 GB
            pages to 2 MB THP (TDX, Insight 7).
        epc_limited: Working set constrained by the SGX EPC.
        step_fixed_s: Fixed cost added to every forward step (cGPU
            encrypted command submission).
        bounce_bw: Encrypted host-device staging bandwidth (cGPU), or
            ``None`` when transfers are unprotected.
        gpu_rate_derate: Proportional GPU execution-rate loss in CC mode
            (encrypted scheduling/doorbell path); applies to compute and
            HBM bandwidth alike, keeping the Fig. 11 overhead floor.
    """

    mem_encryption_derate: float = 0.0
    walk_multiplier: float = 1.0
    virtualization_tax: float = 0.0
    exit_cost_s: float = 0.0
    exits_per_step: float = 0.0
    upi_crypto_derate: float = 0.0
    numa_policy_override: NumaPolicy | None = None
    hugepage_force_thp: bool = False
    epc_limited: bool = False
    step_fixed_s: float = 0.0
    bounce_bw: float | None = None
    gpu_rate_derate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.mem_encryption_derate < 1.0:
            raise ValueError("mem_encryption_derate must be in [0, 1)")
        if self.walk_multiplier < 1.0:
            raise ValueError("walk_multiplier must be >= 1")
        if self.virtualization_tax < 0.0:
            raise ValueError("virtualization_tax must be >= 0")


class Backend(ABC):
    """One deployment mode (bare metal, VM, TDX, SGX, GPU, cGPU)."""

    #: Registry name; subclasses set this.
    name: str = ""
    #: ``"cpu"`` or ``"gpu"``.
    device: str = "cpu"
    #: Whether this mode provides TEE protection.
    is_tee: bool = False

    @abstractmethod
    def cost_profile(self) -> CostProfile:
        """Mechanism costs this mode pays."""

    @abstractmethod
    def security_profile(self) -> SecurityProfile:
        """Security properties for the Table I comparison."""

    def resolve_numa_policy(self, requested: NumaPolicy) -> NumaPolicy:
        """The placement policy that actually takes effect."""
        override = self.cost_profile().numa_policy_override
        return override if override is not None else requested

    def resolve_hugepages(self, requested: HugepagePolicy) -> HugepagePolicy:
        """The page backing that actually takes effect."""
        if (self.cost_profile().hugepage_force_thp
                and requested is HugepagePolicy.RESERVED_1G):
            return HugepagePolicy.TRANSPARENT_2M
        return requested

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


_BACKENDS: dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Add a backend instance to the global registry."""
    if not backend.name:
        raise ValueError("backend must define a name")
    if backend.name in _BACKENDS:
        raise ValueError(f"duplicate backend {backend.name!r}")
    _BACKENDS[backend.name] = backend
    return backend


def backend_by_name(name: str) -> Backend:
    """Look up a registered backend."""
    if name not in _BACKENDS:
        raise KeyError(f"unknown backend {name!r}; known: {sorted(_BACKENDS)}")
    return _BACKENDS[name]


def all_backends() -> dict[str, Backend]:
    """Snapshot of the backend registry."""
    return dict(_BACKENDS)


@dataclass(frozen=True)
class MechanismToggles:
    """Ablation switches for the mechanism-level costs.

    The ablation benchmarks disable one mechanism at a time to quantify
    its contribution (DESIGN.md, "ablation benches").
    """

    memory_encryption: bool = True
    nested_walks: bool = True
    virtualization_tax: bool = True
    upi_crypto: bool = True
    enclave_exits: bool = True
    step_fixed: bool = True

    def apply(self, profile: CostProfile) -> CostProfile:
        """A profile with the disabled mechanisms zeroed out."""
        return CostProfile(
            mem_encryption_derate=(profile.mem_encryption_derate
                                   if self.memory_encryption else 0.0),
            walk_multiplier=profile.walk_multiplier if self.nested_walks else 1.0,
            virtualization_tax=(profile.virtualization_tax
                                if self.virtualization_tax else 0.0),
            exit_cost_s=profile.exit_cost_s if self.enclave_exits else 0.0,
            exits_per_step=profile.exits_per_step if self.enclave_exits else 0.0,
            upi_crypto_derate=(profile.upi_crypto_derate
                               if self.upi_crypto else 0.0),
            numa_policy_override=profile.numa_policy_override,
            hugepage_force_thp=profile.hugepage_force_thp,
            epc_limited=profile.epc_limited,
            step_fixed_s=profile.step_fixed_s if self.step_fixed else 0.0,
            bounce_bw=profile.bounce_bw,
            gpu_rate_derate=(profile.gpu_rate_derate
                             if self.memory_encryption else 0.0),
        )
