"""Remote attestation workflow (functional simulation).

TEEs let users verify what runs inside the enclave before releasing
secrets (model decryption keys, prompts).  This module simulates the
complete DCAP-style flow the paper's deployments rely on:

1. the platform **measures** the enclave/TD (hash of code + config),
2. the hardware signs a **quote** over the measurement with a
   platform-bound key that chains to the vendor root,
3. the relying party **verifies** the chain and compares the measurement
   against the expected value, then
4. releases the **secrets** over a channel bound to the quote.

Keys here are HMAC-based stand-ins for ECDSA — the control flow, the
failure modes, and the measurement discipline are what the tests cover.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

_VENDOR_ROOT_KEY = b"repro-vendor-root-key-v1"


def measure(artifacts: dict[str, bytes]) -> str:
    """Deterministic measurement over named artifacts (MRENCLAVE-style).

    Artifacts are hashed in name order so the measurement is independent
    of dict insertion order.
    """
    digest = hashlib.sha384()
    for name in sorted(artifacts):
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(artifacts[name])
        digest.update(b"\x01")
    return digest.hexdigest()


@dataclass(frozen=True)
class Quote:
    """A signed attestation quote.

    Attributes:
        measurement: Enclave/TD measurement being attested.
        platform_id: Identifies the attesting platform (FMSPC-style).
        report_data: Caller-chosen binding data (e.g. a key-exchange
            public key hash).
        signature: Platform signature over all of the above.
    """

    measurement: str
    platform_id: str
    report_data: str
    signature: str


class AttestationService:
    """The platform side: provisioned platforms produce quotes."""

    def __init__(self) -> None:
        self._platform_keys: dict[str, bytes] = {}

    def provision_platform(self, platform_id: str) -> None:
        """Derive and install a platform attestation key from the root."""
        key = hmac.new(_VENDOR_ROOT_KEY, platform_id.encode(), hashlib.sha256).digest()
        self._platform_keys[platform_id] = key

    def revoke_platform(self, platform_id: str) -> None:
        """Drop a platform's attestation key (TCB recovery / compromise).

        A revoked platform cannot quote until re-provisioned — the
        failure mode behind the fleet simulator's attestation faults.
        """
        self._platform_keys.pop(platform_id, None)

    def provisioned(self, platform_id: str) -> bool:
        """Whether the platform currently holds an attestation key."""
        return platform_id in self._platform_keys

    def generate_quote(self, platform_id: str, measurement: str,
                       report_data: str = "") -> Quote:
        """Sign a quote; the platform must have been provisioned.

        Raises:
            KeyError: For unprovisioned platforms (models a machine
                without valid DCAP collateral).
        """
        if platform_id not in self._platform_keys:
            raise KeyError(f"platform {platform_id!r} not provisioned")
        payload = f"{measurement}|{platform_id}|{report_data}".encode()
        signature = hmac.new(self._platform_keys[platform_id], payload,
                             hashlib.sha256).hexdigest()
        return Quote(measurement=measurement, platform_id=platform_id,
                     report_data=report_data, signature=signature)


class RelyingParty:
    """The verifier side: checks quotes and releases secrets."""

    def __init__(self, expected_measurement: str) -> None:
        self.expected_measurement = expected_measurement
        self._secrets: dict[str, bytes] = {}

    def register_secret(self, name: str, value: bytes) -> None:
        self._secrets[name] = value

    def verify(self, quote: Quote) -> bool:
        """Check the signature chain and the expected measurement."""
        platform_key = hmac.new(_VENDOR_ROOT_KEY, quote.platform_id.encode(),
                                hashlib.sha256).digest()
        payload = f"{quote.measurement}|{quote.platform_id}|{quote.report_data}".encode()
        expected_sig = hmac.new(platform_key, payload, hashlib.sha256).hexdigest()
        if not hmac.compare_digest(expected_sig, quote.signature):
            return False
        return quote.measurement == self.expected_measurement

    def release_secret(self, name: str, quote: Quote) -> bytes:
        """Release a secret to a successfully attested enclave.

        Raises:
            PermissionError: If verification fails.
            KeyError: If the secret does not exist.
        """
        if not self.verify(quote):
            raise PermissionError("attestation failed: secret not released")
        return self._secrets[name]
