"""Threat taxonomy (paper Fig. 1 and §I-II).

The paper motivates TEEs with concrete attacks that cloud providers,
cluster administrators, and co-tenants can mount on LLM deployments:
stealing weights or user prompts from memory or storage, tampering with
inference results, and snooping interconnects.  This module encodes the
taxonomy and evaluates which deployment mode mitigates which attack,
backing the examples' security advice with checkable logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .base import Backend, backend_by_name
from .security import SecurityProfile, Support


class Attacker(str, Enum):
    """Who mounts the attack (the paper's privileged-adversary model)."""

    CLOUD_PROVIDER = "cloud-provider"
    HOST_ADMIN = "host-admin"
    CO_TENANT = "co-tenant"
    NETWORK = "network"


class Asset(str, Enum):
    """What the attack targets."""

    MODEL_WEIGHTS = "model-weights"
    USER_PROMPTS = "user-prompts"
    INFERENCE_INTEGRITY = "inference-integrity"


@dataclass(frozen=True)
class Threat:
    """One attack vector from the paper's motivation.

    Attributes:
        name: Short identifier.
        attacker: Adversary class.
        asset: What is stolen or corrupted.
        vector: The technical channel.
        requires: Which security property mitigates it — a predicate on
            the deployment's :class:`SecurityProfile` (and device flags).
    """

    name: str
    attacker: Attacker
    asset: Asset
    vector: str
    description: str


#: The attack catalogue.  Mitigation logic lives in :func:`mitigates`.
THREATS: tuple[Threat, ...] = (
    Threat("memory-scrape", Attacker.HOST_ADMIN, Asset.MODEL_WEIGHTS,
           "dram-read",
           "Dump guest DRAM (or cold-boot/DMA) to steal weights and KV "
           "state."),
    Threat("prompt-snoop", Attacker.CLOUD_PROVIDER, Asset.USER_PROMPTS,
           "dram-read",
           "Read user prompts and generations out of inference memory."),
    Threat("hypervisor-tamper", Attacker.CLOUD_PROVIDER,
           Asset.INFERENCE_INTEGRITY, "memory-write",
           "Flip weights/activations from the hypervisor to steer "
           "model outputs."),
    Threat("storage-theft", Attacker.HOST_ADMIN, Asset.MODEL_WEIGHTS,
           "disk-read",
           "Copy the model from the VM image or attached volume."),
    Threat("interconnect-snoop", Attacker.HOST_ADMIN, Asset.USER_PROMPTS,
           "link-probe",
           "Probe the socket/accelerator interconnect for activations "
           "in flight."),
    Threat("accelerator-memory-scrape", Attacker.HOST_ADMIN,
           Asset.MODEL_WEIGHTS, "hbm-read",
           "Read weights out of (unencrypted) accelerator HBM."),
    Threat("fake-enclave", Attacker.CLOUD_PROVIDER, Asset.MODEL_WEIGHTS,
           "impersonation",
           "Present a look-alike environment to obtain the model "
           "decryption key."),
)


def mitigates(backend: Backend, threat: Threat) -> bool:
    """Whether a deployment mode mitigates a threat.

    Encodes the paper's Table I logic: DRAM attacks need memory
    encryption; link probing needs protected scale-up; HBM scraping is
    only covered when the accelerator encrypts its memory; storage and
    impersonation need attestation-gated provisioning (all TEE modes in
    this repo pair attestation with encrypted weights at rest).
    """
    profile: SecurityProfile = backend.security_profile()
    if threat.vector in ("dram-read", "memory-write"):
        if backend.device == "gpu":
            # Host-side state of a cGPU lives in the companion CVM; the
            # GPU's own HBM is the separate hbm-read vector.
            return backend.is_tee
        return profile.memory_encrypted is Support.FULL
    if threat.vector == "hbm-read":
        if backend.device != "gpu":
            return profile.memory_encrypted is Support.FULL
        return profile.memory_encrypted is Support.FULL
    if threat.vector == "link-probe":
        return profile.scale_up_protected is Support.FULL
    if threat.vector == "disk-read":
        # All our TEE deployments pair attestation with encrypted
        # weights at rest (LUKS for TDX, Gramine encrypted mounts for
        # SGX, CVM-disk for cGPU).
        return profile.attestable
    if threat.vector == "impersonation":
        return profile.attestable
    raise ValueError(f"unknown threat vector {threat.vector!r}")


def coverage(backend_name: str) -> dict[str, bool]:
    """Threat-by-threat mitigation map for a backend."""
    backend = backend_by_name(backend_name)
    return {threat.name: mitigates(backend, threat) for threat in THREATS}


def coverage_score(backend_name: str) -> float:
    """Fraction of catalogued threats the backend mitigates."""
    values = coverage(backend_name)
    return sum(values.values()) / len(values)


def uncovered(backend_name: str) -> tuple[Threat, ...]:
    """Threats the backend leaves open (the residual risk list)."""
    backend = backend_by_name(backend_name)
    return tuple(threat for threat in THREATS
                 if not mitigates(backend, threat))
