"""Hybrid host-offloaded GPU inference (§V-D1).

When a model does not fit the GPU, part of the weights live in host
memory and stream over PCIe every decode step.  Prior work the paper
cites shows AMX CPUs already beat offloaded GPUs; under confidential
compute the gap widens because the stream crosses the encrypted bounce
buffer (~9 GB/s effective instead of ~44 GB/s raw PCIe).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import calibration as cal
from ..engine.placement import Workload
from ..hardware.gpu import GpuSpec, H100_NVL

#: Sustained fraction of raw PCIe bandwidth for bulk weight streaming.
PCIE_STREAM_EFFICIENCY = 0.80


@dataclass(frozen=True)
class OffloadResult:
    """One offloaded configuration's decode estimate."""

    host_fraction: float
    confidential: bool
    gpu_step_s: float
    transfer_s: float

    @property
    def step_s(self) -> float:
        """PCIe prefetch overlaps GPU compute; the slower side rules."""
        return max(self.gpu_step_s, self.transfer_s)

    @property
    def throughput_tok_s(self) -> float:
        return 1.0 / self.step_s

    @property
    def transfer_bound(self) -> bool:
        return self.transfer_s > self.gpu_step_s


def required_host_fraction(workload: Workload, gpu: GpuSpec = H100_NVL,
                           kv_context: int | None = None) -> float:
    """Weight fraction that must live in host memory for the workload."""
    weights = workload.model.weight_bytes(workload.dtype.bytes)
    context = kv_context if kv_context is not None else (
        workload.input_tokens + workload.output_tokens)
    kv = (workload.sequences * context
          * workload.model.kv_bytes_per_token(workload.dtype.bytes))
    spill = weights + kv - gpu.hbm_bytes
    if spill <= 0:
        return 0.0
    return min(1.0, spill / weights)


def simulate_offloaded(workload: Workload, host_fraction: float,
                       confidential: bool,
                       gpu: GpuSpec = H100_NVL) -> OffloadResult:
    """Estimate a decode step with ``host_fraction`` of weights offloaded.

    Per step the resident fraction is served from HBM and the offloaded
    fraction streams over PCIe (through the bounce buffer when
    confidential).

    Raises:
        ValueError: If host_fraction is outside [0, 1].
    """
    if not 0.0 <= host_fraction <= 1.0:
        raise ValueError("host_fraction must be in [0, 1]")
    weights = workload.model.weight_bytes(workload.dtype.bytes)
    context = workload.input_tokens + workload.output_tokens // 2
    kv = (workload.sequences * context
          * workload.model.kv_bytes_per_token(workload.dtype.bytes))

    hbm_bw = gpu.hbm_bw * cal.FRAMEWORK_MEM_EFF["vllm-gpu"]
    resident_bytes = weights * (1.0 - host_fraction) + kv
    gpu_step = resident_bytes / hbm_bw
    if confidential:
        gpu_step += cal.CGPU_STEP_TAX_S

    pcie_bw = (cal.CGPU_BOUNCE_BW if confidential
               else gpu.pcie.bandwidth_bytes_s * PCIE_STREAM_EFFICIENCY)
    transfer = weights * host_fraction / pcie_bw
    return OffloadResult(host_fraction=host_fraction,
                         confidential=confidential,
                         gpu_step_s=gpu_step, transfer_s=transfer)
