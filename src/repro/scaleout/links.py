"""Inter-device links available to confidential deployments.

§V-D3/4: H100 NVLink is unprotected in CC mode, so confidential
multi-GPU traffic must route through the host CPU (no RDMA/GPUDirect),
capping throughput at ~3 GB/s vs ~40 GB/s non-confidential.  Across
hosts, a network protection scheme such as IPsec is required on top of
both CPUs and GPUs, costing up to 90% of raw network throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..hardware.gpu import GpuSpec
from ..hardware.interconnect import (
    CONFIDENTIAL_GPU_ROUTED_BW,
    NONCONFIDENTIAL_GPU_ROUTED_BW,
)

#: Throughput fraction surviving IPsec protection (paper cites up to 90%
#: overhead for confidential network traffic [25]).
IPSEC_EFFICIENCY = 0.53

#: Raw scale-out network between hosts (200 Gb/s class).
NETWORK_RAW_BW = 25e9


class LinkKind(str, Enum):
    """Which physical path carries inter-device traffic."""

    NVLINK = "nvlink"
    CPU_ROUTED = "cpu-routed"
    NETWORK = "network"


@dataclass(frozen=True)
class EffectiveLink:
    """A usable inter-device channel for a given security posture."""

    kind: LinkKind
    bandwidth_bytes_s: float
    latency_s: float
    confidential_ok: bool


def gpu_link(gpu: GpuSpec, confidential: bool,
             same_host: bool = True) -> EffectiveLink:
    """The best link between two GPUs under the security posture.

    Confidential H100s cannot use NVLink (unprotected) and fall back to
    CPU-routed copies; B100-class parts with protected NVLink keep it.
    Across hosts, traffic needs IPsec when confidential.
    """
    if not same_host:
        bandwidth = NETWORK_RAW_BW * (IPSEC_EFFICIENCY if confidential else 1.0)
        return EffectiveLink(LinkKind.NETWORK, bandwidth, 5e-6, True)
    if not confidential:
        return EffectiveLink(LinkKind.NVLINK, gpu.nvlink.bandwidth_bytes_s,
                             gpu.nvlink.latency_s, True)
    if gpu.nvlink_protected:
        # B100-class: NVLink carries encryption, stays usable.
        return EffectiveLink(LinkKind.NVLINK,
                             gpu.nvlink.bandwidth_bytes_s * 0.92,
                             gpu.nvlink.latency_s, True)
    return EffectiveLink(LinkKind.CPU_ROUTED, CONFIDENTIAL_GPU_ROUTED_BW,
                         20e-6, True)


def routed_bandwidth(confidential: bool) -> float:
    """CPU-routed GPU-to-GPU bandwidth for the security posture."""
    return (CONFIDENTIAL_GPU_ROUTED_BW if confidential
            else NONCONFIDENTIAL_GPU_ROUTED_BW)


def degrade(link: EffectiveLink, bandwidth_factor: float) -> EffectiveLink:
    """The same link with only ``bandwidth_factor`` of its bandwidth.

    Models a partially failed interconnect (flapping UPI lane, IPsec
    renegotiation storm, congested CPU-routed path) for fault-injection
    studies.
    """
    if not 0 < bandwidth_factor <= 1:
        raise ValueError("bandwidth_factor must be in (0, 1]")
    return EffectiveLink(link.kind,
                         link.bandwidth_bytes_s * bandwidth_factor,
                         link.latency_s, link.confidential_ok)


def link_slowdown_factor(bandwidth_factor: float,
                         comm_share: float) -> float:
    """Step-time multiplier when a link keeps ``bandwidth_factor`` of
    its bandwidth and ``comm_share`` of step time is interconnect-bound.

    Amdahl over the communication fraction: the compute share is
    unaffected, the communication share inflates by ``1/factor``.
    """
    if not 0 < bandwidth_factor <= 1:
        raise ValueError("bandwidth_factor must be in (0, 1]")
    if not 0 <= comm_share <= 1:
        raise ValueError("comm_share must be in [0, 1]")
    return 1.0 + comm_share * (1.0 / bandwidth_factor - 1.0)
