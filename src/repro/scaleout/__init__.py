"""Scale-out substrate: multi-GPU parallelism, links, hybrid offload."""

from .comm import (
    CommVolume,
    Parallelism,
    pipeline_parallel_volume,
    tensor_parallel_volume,
    volume_for,
)
from .links import (
    IPSEC_EFFICIENCY,
    NETWORK_RAW_BW,
    EffectiveLink,
    LinkKind,
    degrade,
    gpu_link,
    link_slowdown_factor,
    routed_bandwidth,
)
from .multigpu import (
    MultiGpuResult,
    confidential_scaling_penalty,
    fits,
    simulate_multi_gpu,
)
from .offload import (
    PCIE_STREAM_EFFICIENCY,
    OffloadResult,
    required_host_fraction,
    simulate_offloaded,
)

__all__ = [
    "CommVolume", "Parallelism", "pipeline_parallel_volume",
    "tensor_parallel_volume", "volume_for",
    "IPSEC_EFFICIENCY", "NETWORK_RAW_BW", "EffectiveLink", "LinkKind",
    "degrade", "gpu_link", "link_slowdown_factor", "routed_bandwidth",
    "MultiGpuResult", "confidential_scaling_penalty", "fits",
    "simulate_multi_gpu",
    "PCIE_STREAM_EFFICIENCY", "OffloadResult", "required_host_fraction",
    "simulate_offloaded",
]
