"""Multi-GPU inference under (non-)confidential interconnects.

Models the §V-D4 scale-up/scale-out discussion: sharding a model over
several H100s shrinks per-device weight/KV traffic, but confidential
mode forbids NVLink and routes the tensor-parallel all-reduces through
the host at ~3 GB/s, which throttles exactly the throughput-hungry
patterns the paper names.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.placement import Deployment, GpuPlacement, Workload
from ..frameworks.base import VLLM_GPU
from ..hardware.gpu import GpuSpec, H100_NVL
from ..llm.graph import decode_step_ops
from ..tee.base import backend_by_name
from .comm import Parallelism, volume_for
from .links import EffectiveLink, gpu_link


@dataclass(frozen=True)
class MultiGpuResult:
    """One multi-GPU configuration's decode-phase estimate.

    Attributes:
        devices: GPU count.
        confidential: Security posture.
        link: The inter-device channel actually used.
        step_s: Decode-step time (compute/memory + communication).
        comm_s: Communication share of the step.
        throughput_tok_s: User tokens per second in steady decode.
    """

    devices: int
    confidential: bool
    link: EffectiveLink
    step_s: float
    comm_s: float
    throughput_tok_s: float

    @property
    def comm_fraction(self) -> float:
        return self.comm_s / self.step_s if self.step_s else 0.0


def fits(workload: Workload, gpu: GpuSpec, devices: int) -> bool:
    """Whether weights + KV fit the aggregate HBM of ``devices`` GPUs."""
    weights = workload.model.weight_bytes(workload.dtype.bytes)
    context = workload.input_tokens + workload.output_tokens
    kv = (workload.sequences * context
          * workload.model.kv_bytes_per_token(workload.dtype.bytes))
    return weights + kv <= devices * gpu.hbm_bytes


def simulate_multi_gpu(workload: Workload, devices: int,
                       confidential: bool, gpu: GpuSpec = H100_NVL,
                       parallelism: Parallelism = Parallelism.TENSOR,
                       context_len: int | None = None) -> MultiGpuResult:
    """Estimate a sharded decode step on ``devices`` GPUs.

    Compute and memory scale with the shard (1/devices of weights, KV
    and FLOPs per device); communication is priced on the best link the
    security posture allows.

    Raises:
        ValueError: If the model does not fit the aggregate HBM, or
            devices < 1.
    """
    if devices < 1:
        raise ValueError("devices must be >= 1")
    if not fits(workload, gpu, devices):
        raise ValueError(
            f"{workload.model.name} does not fit {devices}x {gpu.name}")
    context = context_len if context_len is not None else (
        workload.input_tokens + workload.output_tokens // 2)

    backend = backend_by_name("cgpu" if confidential else "gpu")
    deployment = Deployment(placement=GpuPlacement(gpu=gpu), backend=backend,
                            framework=VLLM_GPU)
    from ..engine.roofline import GpuCostModel, WorkingSets
    model = GpuCostModel(deployment)
    ops = decode_step_ops(workload.model, workload.dtype,
                          workload.batch_size, context, workload.beam_size)
    sharded = [op.scaled(1.0 / devices) for op in ops]
    sets = WorkingSets(weights=0.0, kv=0.0, activations=0.0)
    step = model.step_cost(sharded, sets, workload.dtype)

    link = gpu_link(gpu, confidential)
    volume = volume_for(parallelism, workload.model, workload.dtype,
                        devices, tokens_per_step=float(workload.sequences))
    comm_s = (volume.bytes_per_step / link.bandwidth_bytes_s
              + volume.messages_per_step * link.latency_s)
    step_s = step.total_s + comm_s
    return MultiGpuResult(
        devices=devices,
        confidential=confidential,
        link=link,
        step_s=step_s,
        comm_s=comm_s,
        throughput_tok_s=workload.batch_size / step_s,
    )


def confidential_scaling_penalty(workload: Workload, devices: int,
                                 gpu: GpuSpec = H100_NVL) -> float:
    """Throughput fraction lost by going confidential at a device count.

    The §V-D4 headline: CPU-routed 3 GB/s copies (vs NVLink) cost
    throughput-hungry parallel patterns most of their scaling.
    """
    plain = simulate_multi_gpu(workload, devices, confidential=False,
                               gpu=gpu)
    secure = simulate_multi_gpu(workload, devices, confidential=True,
                                gpu=gpu)
    return 1.0 - secure.throughput_tok_s / plain.throughput_tok_s
