"""Communication-volume models for parallel transformer inference.

§V-D4 discusses scaling confidential LLMs beyond one device: tensor
parallelism all-reduces activations twice per decoder block, pipeline
parallelism ships boundary activations between stages.  Volumes here
feed the link models in :mod:`repro.scaleout.links` to price a step's
communication under (non-)confidential interconnects.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..llm.config import ModelConfig
from ..llm.datatypes import DType


class Parallelism(str, Enum):
    """How a model is split across devices."""

    TENSOR = "tensor"
    PIPELINE = "pipeline"


@dataclass(frozen=True)
class CommVolume:
    """Bytes a device exchanges during one forward step.

    Attributes:
        bytes_per_step: Payload this device sends (and receives) per step.
        messages_per_step: Synchronization points (latency-bound count).
    """

    bytes_per_step: float
    messages_per_step: int


def tensor_parallel_volume(model: ModelConfig, dtype: DType, degree: int,
                           tokens_per_step: float) -> CommVolume:
    """Per-device all-reduce volume for Megatron-style tensor parallelism.

    Each decoder block all-reduces the attention output and the MLP
    output: 2 all-reduces per layer over ``tokens * hidden`` elements.
    A ring all-reduce moves ``2 * (d-1)/d`` of the payload per device.

    Raises:
        ValueError: For degree < 1 or non-positive token counts.
    """
    if degree < 1:
        raise ValueError("degree must be >= 1")
    if tokens_per_step <= 0:
        raise ValueError("tokens_per_step must be positive")
    if degree == 1:
        return CommVolume(0.0, 0)
    payload = tokens_per_step * model.hidden_size * dtype.bytes
    ring_factor = 2.0 * (degree - 1) / degree
    allreduces = 2 * model.num_layers
    return CommVolume(
        bytes_per_step=allreduces * payload * ring_factor,
        messages_per_step=allreduces * 2 * (degree - 1),
    )


def pipeline_parallel_volume(model: ModelConfig, dtype: DType, stages: int,
                             tokens_per_step: float) -> CommVolume:
    """Per-device boundary-activation volume for pipeline parallelism.

    Each stage boundary ships ``tokens * hidden`` activations once per
    microbatch step (we charge one microbatch per decode step).
    """
    if stages < 1:
        raise ValueError("stages must be >= 1")
    if tokens_per_step <= 0:
        raise ValueError("tokens_per_step must be positive")
    if stages == 1:
        return CommVolume(0.0, 0)
    payload = tokens_per_step * model.hidden_size * dtype.bytes
    return CommVolume(bytes_per_step=payload, messages_per_step=1)


def volume_for(parallelism: Parallelism, model: ModelConfig, dtype: DType,
               degree: int, tokens_per_step: float) -> CommVolume:
    """Dispatch on the parallelism kind."""
    if parallelism is Parallelism.TENSOR:
        return tensor_parallel_volume(model, dtype, degree, tokens_per_step)
    return pipeline_parallel_volume(model, dtype, degree, tokens_per_step)
