"""Vectorized decode-cost engine.

Every decode-step operator cost is affine in the attended context length
(attention FLOPs and KV reads grow linearly, everything else is
constant), and the roofline model maps those fields to time through
closed-form algebra.  :class:`DecodeCostEngine` therefore costs *all*
decode steps of a generation in one numpy pass over the context vector
instead of rebuilding ``num_layers x 11`` operators and re-running the
scalar roofline per costed token.

Engines are memoized per ``(deployment, model, dtype, batch, beams)`` —
independent of prompt and output lengths — so input-length sweeps and
repeated experiments share one instance.  The scalar per-token loop in
:mod:`repro.engine.simulator` remains the reference implementation;
parity between the two paths is enforced by the engine test suite.
"""

from __future__ import annotations

import numpy as np

from ..llm.graph import decode_step_affine
from ..llm.ops import Phase
from ..memo import MemoCache
from .placement import CpuPlacement, Deployment, Workload, weight_footprint
from .roofline import WorkingSetsVec, cost_model_for, gpu_io_bytes

_ENGINE_CACHE = MemoCache("decode_cost_engine", maxsize=256)


class DecodeCostEngine:
    """Precomputed vectorized decode-cost curve for one workload shape.

    The engine depends on the workload only through its *shape* (model,
    dtype, batch, beams) — never on prompt or output lengths — so one
    instance serves every generation of that shape on the deployment.
    """

    def __init__(self, workload: Workload, deployment: Deployment) -> None:
        self.deployment = deployment
        self.dtype = workload.dtype
        self.model = cost_model_for(deployment)
        self.affine_ops = decode_step_affine(
            workload.model, workload.dtype, workload.batch_size,
            workload.beam_size)
        self.kv_bytes_per_context = (
            workload.sequences
            * workload.model.kv_bytes_per_token(workload.dtype.bytes))
        self.weight_set = weight_footprint(workload, deployment.framework)
        self.is_gpu = not isinstance(deployment.placement, CpuPlacement)
        self.io_bytes = (gpu_io_bytes(workload, Phase.DECODE)
                         if self.is_gpu else 0.0)

    def working_sets(self, contexts: np.ndarray) -> WorkingSetsVec:
        """Per-stream working sets at every context (mirrors the scalar
        ``_working_sets``: KV grows with context, activations follow the
        op totals, weights are fixed)."""
        c = np.asarray(contexts, dtype=float)
        activations = np.zeros_like(c)
        for aff in self.affine_ops:
            activations = activations \
                + aff.multiplicity * aff.activation_bytes(c)
        return WorkingSetsVec(weights=self.weight_set,
                              kv=self.kv_bytes_per_context * c,
                              activations=activations)

    def step_costs(self, contexts: np.ndarray) -> np.ndarray:
        """Total decode-step seconds at each context, one numpy pass."""
        c = np.asarray(contexts, dtype=float)
        sets = self.working_sets(c)
        return self.model.step_costs_vec(self.affine_ops, c, sets,
                                         self.dtype, io_bytes=self.io_bytes)


def decode_cost_engine(workload: Workload,
                       deployment: Deployment) -> DecodeCostEngine:
    """Memoized engine lookup (cache ``decode_cost_engine``)."""
    key = (deployment, workload.model, workload.dtype,
           workload.batch_size, workload.beam_size)
    return _ENGINE_CACHE.get_or_compute(
        key, lambda: DecodeCostEngine(workload, deployment))
