"""Step traces and the per-block layer breakdown (Fig. 7).

The paper instruments TDX inference with per-layer traces, parses them,
and reports the duration and overhead of each decoder-block layer.  We
reproduce the pipeline: the simulator emits :class:`TraceEvent` records,
and the aggregation here computes per-layer means, shares of block time,
and TDX-over-baseline overheads per layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..llm.graph import BLOCK_OP_NAMES
from ..llm.ops import Phase
from .roofline import StepCost


@dataclass(frozen=True)
class TraceEvent:
    """One timed operator instance."""

    name: str
    layer: int | None
    phase: Phase
    duration_s: float


def events_from_step(step: StepCost, phase: Phase) -> list[TraceEvent]:
    """Flatten a costed step into trace events.

    Durations include the step's tax multiplier, as a wall-clock trace
    would observe it.
    """
    return [
        TraceEvent(name=cost.op.name, layer=cost.op.layer, phase=phase,
                   duration_s=cost.total_s * step.tax_multiplier)
        for cost in step.op_costs
    ]


@dataclass(frozen=True)
class LayerStat:
    """Aggregated timing of one decoder-block layer kind."""

    name: str
    mean_duration_s: float
    total_duration_s: float
    share_of_block: float


def block_layer_summary(events: list[TraceEvent]) -> dict[str, LayerStat]:
    """Per-layer-kind stats over the decoder blocks of a trace.

    Embedding/head ops (``layer is None``) are excluded — the paper
    observes decoder blocks take 99.9% of the time.
    """
    durations: dict[str, list[float]] = {}
    for event in events:
        if event.layer is None:
            continue
        durations.setdefault(event.name, []).append(event.duration_s)
    block_total = sum(sum(values) for values in durations.values())
    if block_total == 0.0:
        raise ValueError("trace contains no decoder-block events")
    summary = {}
    for name, values in durations.items():
        total = sum(values)
        summary[name] = LayerStat(
            name=name,
            mean_duration_s=total / len(values),
            total_duration_s=total,
            share_of_block=total / block_total,
        )
    return summary


def decoder_block_share(events: list[TraceEvent]) -> float:
    """Fraction of step time spent inside decoder blocks.

    The paper reports 99.9%, the remainder being embedding and the final
    normalization (the LM head is part of generation bookkeeping there;
    we count it as outside the blocks too).
    """
    block = sum(e.duration_s for e in events if e.layer is not None)
    total = sum(e.duration_s for e in events)
    if total == 0.0:
        raise ValueError("empty trace")
    return block / total


def layer_overheads(tee_events: list[TraceEvent],
                    baseline_events: list[TraceEvent]) -> dict[str, float]:
    """Per-layer-kind overhead of a TEE trace over a baseline trace.

    Returns:
        Mapping from layer name to fractional overhead
        (``tee/baseline - 1``), ordered like :data:`BLOCK_OP_NAMES`.
    """
    tee = block_layer_summary(tee_events)
    base = block_layer_summary(baseline_events)
    overheads = {}
    for name in BLOCK_OP_NAMES:
        if name in tee and name in base and base[name].total_duration_s > 0:
            overheads[name] = (tee[name].total_duration_s
                               / base[name].total_duration_s - 1.0)
    return overheads
