"""Execution engine: roofline cost model, generation simulator, traces."""

from .placement import (
    CpuPlacement,
    Deployment,
    GpuPlacement,
    Workload,
    weight_footprint,
)
from .roofline import (
    CpuCostModel,
    GpuCostModel,
    OpCost,
    StepCost,
    WorkingSets,
    cost_model_for,
)
from .simulator import GenerationResult, simulate_encode, simulate_generation
from .trace import (
    LayerStat,
    TraceEvent,
    block_layer_summary,
    decoder_block_share,
    events_from_step,
    layer_overheads,
)

__all__ = [
    "CpuPlacement", "Deployment", "GpuPlacement", "Workload",
    "weight_footprint",
    "CpuCostModel", "GpuCostModel", "OpCost", "StepCost", "WorkingSets",
    "cost_model_for",
    "GenerationResult", "simulate_encode", "simulate_generation",
    "LayerStat", "TraceEvent", "block_layer_summary", "decoder_block_share",
    "events_from_step", "layer_overheads",
]
