"""Execution engine: roofline cost model, generation simulator, traces."""

from .placement import (
    CpuPlacement,
    Deployment,
    GpuPlacement,
    Workload,
    weight_footprint,
)
from .roofline import (
    CpuCostModel,
    GpuCostModel,
    OpCost,
    StepCost,
    WorkingSets,
    WorkingSetsVec,
    cost_model_for,
    gpu_io_bytes,
)
from .simulator import (
    ENGINES,
    GenerationResult,
    decode_step_cost,
    prefill_step_cost,
    simulate_encode,
    simulate_generation,
)
from .vectorized import DecodeCostEngine, decode_cost_engine
from .trace import (
    LayerStat,
    TraceEvent,
    block_layer_summary,
    decoder_block_share,
    events_from_step,
    layer_overheads,
)

__all__ = [
    "CpuPlacement", "Deployment", "GpuPlacement", "Workload",
    "weight_footprint",
    "CpuCostModel", "GpuCostModel", "OpCost", "StepCost", "WorkingSets",
    "WorkingSetsVec", "cost_model_for", "gpu_io_bytes",
    "ENGINES", "GenerationResult", "decode_step_cost", "prefill_step_cost",
    "simulate_encode", "simulate_generation",
    "DecodeCostEngine", "decode_cost_engine",
    "LayerStat", "TraceEvent", "block_layer_summary", "decoder_block_share",
    "events_from_step", "layer_overheads",
]
