"""Calibration constants.

Every constant is an *effective* value chosen so the simulator lands in
the band the paper reports for the corresponding anchor experiment; the
anchor is cited next to each constant.  EXPERIMENTS.md records the
paper-vs-measured comparison per experiment.

None of these constants encode results directly — they parameterize
mechanisms (bandwidth derates, walk costs, launch taxes) and the shapes
of the sweeps emerge from the mechanism models in :mod:`repro.engine`,
:mod:`repro.memsim` and :mod:`repro.tee`.
"""

from __future__ import annotations

# --- Memory encryption -----------------------------------------------------
#: DRAM bandwidth fraction lost to inline memory encryption + integrity
#: metadata on TDX/SGX parts.  Anchor: Fig. 4 single-socket overheads of
#: 4.8-10.7% on a largely memory-bound decode.
MEM_ENCRYPTION_DERATE = 0.042

#: UPI bandwidth fraction lost to the socket-interconnect crypto unit.
#: Anchor: Fig. 6 two-socket TDX overheads (12.1-23.8%) vs its 4-10%
#: single-socket band.
UPI_CRYPTO_DERATE = 0.06

# --- Virtualization --------------------------------------------------------
#: Fractional slowdown of a plain (non-TDX) KVM VM: interrupt/exit costs,
#: vCPU scheduling jitter.  Anchor: Fig. 4 VM overhead 1.82-5.38%.
VM_VIRTUALIZATION_TAX = 0.022

#: Extra virtualization tax TDX adds over a plain VM (TD-exit costs,
#: SEPT management).  Anchor: "TDX adds overhead of 3.02-7.01% over VM".
TDX_EXTRA_TAX = 0.008

#: EPT nested-walk multiplier for a plain VM guest (2-D page walk, walk
#: caches included).
EPT_WALK_MULTIPLIER = 2.2

#: TDX secure-EPT walk multiplier (adds SEPT integrity checks).
TDX_WALK_MULTIPLIER = 2.4

# --- SGX -------------------------------------------------------------------
#: Cost of one synchronous enclave exit/entry (EEXIT/EENTER + cache
#: effects) under Gramine.
SGX_EXIT_S = 6.0e-6

#: Gramine-intercepted syscalls that still require a real enclave exit,
#: per inference step (most are emulated inside the enclave).
SGX_EXITS_PER_STEP = 40.0

#: SGX memory-encryption derate; same MEE generation as TDX.
SGX_MEM_ENCRYPTION_DERATE = 0.048

# --- cGPU (H100 CC) --------------------------------------------------------
#: Fixed confidential-compute tax per forward step: encrypted command
#: buffer submission + CC kernel-launch path.  Anchor: Fig. 11 overheads
#: of 7.5% shrinking to 4.4% as batch/input grow.
CGPU_STEP_TAX_S = 260e-6

#: Effective bounce-buffer throughput for encrypted PCIe transfers
#: (AES-GCM staging); raw PCIe 5.0 x16 sustains ~55 GB/s.
CGPU_BOUNCE_BW = 9e9

#: vLLM CUDA-graph replay: residual launch overhead per step, raw GPU.
GPU_STEP_LAUNCH_S = 30e-6

#: Proportional execution-rate loss in CC mode (encrypted doorbells,
#: protected scheduling path).  Keeps the Fig. 11 overhead floor at
#: ~4% even for large, well-amortized steps.
CGPU_RATE_DERATE = 0.035

#: Projected HBM bandwidth loss from B100-class memory encryption.  The
#: paper could not measure CC-mode B100s but expects "a non-negligible
#: overhead" since memory encryption is a significant CPU-TEE cost; we
#: project the CPU-measured derate onto HBM.
B100_HBM_ENCRYPTION_DERATE = 0.05

# --- Framework efficiencies (Fig. 3 anchor) --------------------------------
#: Model FLOP utilization by (framework, engine): the fraction of the
#: engine's peak issue rate an inference stack sustains on LLM GEMMs.
#: AMX MFU is intentionally modest — decode-shape GEMMs cannot keep TMUL
#: tiles fed from L2 — which is exactly what makes the Fig. 12 workload
#: compute-bound until ~32 cores.  Anchors: Fig. 3 ordering (IPEX
#: fastest, vLLM ~1.5x, HF ~2x slower), Fig. 8 AMX advantage (1-4% when
#: memory-bound, hundreds of % when compute-bound), Fig. 12 knee.
FRAMEWORK_MFU: dict[tuple[str, str], float] = {
    ("ipex", "amx"): 0.15,
    ("ipex", "avx512"): 0.35,
    ("vllm-cpu", "avx512"): 0.26,
    ("hf", "avx512"): 0.17,
    ("llamacpp", "avx512"): 0.22,
    ("vllm-gpu", "cuda_tensor"): 0.55,
}

#: Sustained fraction of hardware memory bandwidth by framework.
FRAMEWORK_MEM_EFF: dict[str, float] = {
    "ipex": 0.82,
    "vllm-cpu": 0.55,
    "hf": 0.41,
    "llamacpp": 0.45,
    "vllm-gpu": 0.72,
}

# --- Parallel scaling ------------------------------------------------------
#: Serial fraction of a decode step for Amdahl-style core scaling.
#: Anchor: Fig. 12 — compute-bound until ~32 cores, then memory-bound.
CPU_SERIAL_FRACTION = 0.015

#: Per-socket memory bandwidth share reachable by N cores: a single core
#: cannot saturate the socket; saturation at roughly one core per DDR5
#: channel.  Anchor: Fig. 12 cost curves (small-core configs must stay
#: bandwidth-viable for CPU TEEs to undercut cGPUs at batch 1).
CORES_TO_SATURATE_BW = 8

# --- int8 AVX fallback (Fig. 8 anchor) -------------------------------------
#: Memory-traffic inflation of the no-AMX int8 path: weights are
#: dequantized through fp32 temporaries that spill.
INT8_FALLBACK_TRAFFIC_INFLATION = 4.0

#: On multi-socket runs the fallback path loses NUMA locality entirely
#: and is effectively UPI-bound.  Anchor: +1700% latency (two sockets).
INT8_FALLBACK_REMOTE_FRACTION = 0.85

# --- Noise (violin plots, outliers) ----------------------------------------
#: Lognormal sigma of per-token latency jitter on bare metal.
BASE_NOISE_SIGMA = 0.015

#: Extra jitter under a TEE (memory-encryption variability).
TEE_NOISE_SIGMA = 0.035

#: Probability of an encryption-stall outlier per token in a TEE; the
#: paper excludes Z>3 outliers amounting to ~0.64% of samples.
TEE_OUTLIER_PROBABILITY = 0.0064

#: Outlier magnitude: multiplier applied to the token latency.
TEE_OUTLIER_SCALE = 6.0

# --- Allocator -------------------------------------------------------------
#: Memory-pressure inflation without TCMalloc (glibc malloc): extra page
#: churn raises translation and paging traffic (paper §IV-D).
DEFAULT_ALLOCATOR_TRAFFIC_INFLATION = 1.06
