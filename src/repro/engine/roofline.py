"""Roofline cost model with TEE mechanism derates.

Per operator the model computes a compute time (engine issue rate x MFU x
Amdahl-scaled cores), a memory time (DRAM-visible traffic over the
effective bandwidth after NUMA mixing, link crypto, and memory-encryption
derates), and two non-overlapped adders: page-walk time (TLB misses x
walk cost, nested-walk multiplier under virtualization) and EPC paging
(SGX).  Step-level costs add enclave exits, fixed launch/CC taxes, and
the virtualization tax.

This is where every mechanism from :mod:`repro.memsim` and
:mod:`repro.tee` meets the operator stream from :mod:`repro.llm`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..hardware.engines import (
    AVX512_RATES,
    Engine,
    best_cpu_engine,
    is_fallback_path,
)
from ..llm.datatypes import DType
from ..llm.ops import AffineOp, Operator, OpCategory, Phase
from ..memsim.cache import CacheModel
from ..memsim.epc import EPC_FAULT_S, paging_fraction_vec, paging_overhead_s
from ..memsim.numa import (
    NumaPolicy,
    effective_bandwidth,
    remote_fraction,
    sub_numa_misplacement,
)
from ..memsim.pages import PAGE_4K, HugepagePolicy
from ..memsim.tlb import (
    WalkModel,
    streaming_miss_rate,
    streaming_miss_rate_vec,
    translation_time,
)
from . import calibration as cal
from .placement import CpuPlacement, Deployment, GpuPlacement, Workload

#: Fraction of THP-managed memory actually backed by 2 MB pages; the
#: rest fragments to 4 KB (why reserved 1 GB pages still win, Fig. 6).
THP_COVERAGE = 0.75

#: Fraction of page-walk latency that cannot be hidden by the hardware
#: walkers overlapping with data streaming.
WALK_SERIAL_FRACTION = 0.03

#: Bandwidth bonus SNC gives a NUMA-aware (non-TEE) workload.
SNC_BANDWIDTH_BONUS = 1.05

#: Scheduling tax when hyperthreads are exposed to the guest (PyTorch
#: pins to first logical threads; siblings only add interference).
HYPERTHREAD_TAX = 0.03


@dataclass(frozen=True)
class WorkingSets:
    """Per-stream working sets of one forward step (bytes)."""

    weights: float
    kv: float
    activations: float


@dataclass(frozen=True)
class WorkingSetsVec:
    """Per-stream working sets across many contexts at once.

    The vectorized decode path evaluates one step cost per entry of a
    context vector; ``kv`` and ``activations`` are arrays aligned with
    that vector while ``weights`` is context-independent.
    """

    weights: float
    kv: np.ndarray
    activations: np.ndarray


def gpu_io_bytes(workload: Workload, phase: Phase) -> float:
    """Host-device bytes staged through the (bounce) buffer per step."""
    if phase is Phase.PREFILL:
        return workload.sequences * workload.input_tokens * 4.0 + 4096.0
    return workload.sequences * 8.0 + 1024.0


@dataclass(frozen=True)
class OpCost:
    """Cost breakdown of one operator."""

    op: Operator
    compute_s: float
    memory_s: float
    translation_s: float
    paging_s: float

    @property
    def total_s(self) -> float:
        """Compute/memory overlap; translation and paging do not overlap."""
        return max(self.compute_s, self.memory_s) + self.translation_s + self.paging_s


@dataclass(frozen=True)
class StepCost:
    """Cost of one full forward step."""

    op_costs: tuple[OpCost, ...]
    exits_s: float
    fixed_s: float
    tax_multiplier: float

    @property
    def total_s(self) -> float:
        raw = sum(cost.total_s for cost in self.op_costs) + self.exits_s
        return raw * self.tax_multiplier + self.fixed_s

    @property
    def compute_s(self) -> float:
        return sum(cost.compute_s for cost in self.op_costs)

    @property
    def memory_s(self) -> float:
        return sum(cost.memory_s for cost in self.op_costs)

    def is_compute_bound(self) -> bool:
        """Whether aggregate compute time exceeds aggregate memory time."""
        return self.compute_s > self.memory_s


class CpuCostModel:
    """Operator cost model for CPU deployments."""

    def __init__(self, deployment: Deployment) -> None:
        if not isinstance(deployment.placement, CpuPlacement):
            raise TypeError("CpuCostModel needs a CpuPlacement")
        self.deployment = deployment
        self.placement = deployment.placement
        self.backend = deployment.backend
        self.framework = deployment.framework
        self.profile = deployment.toggles.apply(self.backend.cost_profile())
        self.cpu = self.placement.cpu
        self.numa_policy = self.backend.resolve_numa_policy(self.placement.numa_policy)
        self.hugepages = self.backend.resolve_hugepages(self.placement.hugepages)
        self.amx_available = (self.placement.amx_enabled
                              and self.framework.amx_capable)
        self.llc = CacheModel(self.cpu.llc_bytes_per_socket
                              * self.placement.sockets_used)
        self.walk = WalkModel(self.cpu.page_walk_s, self.profile.walk_multiplier)

    # -- compute ------------------------------------------------------------

    def _engine_for(self, op: Operator, dtype: DType) -> tuple[Engine, float]:
        if op.category in (OpCategory.GEMM, OpCategory.ATTENTION):
            return best_cpu_engine(dtype, self.amx_available)
        # Vector ops run on AVX-512 regardless of the matrix engine.
        rate = AVX512_RATES.rate_for(dtype)
        if rate == 0.0:
            rate = AVX512_RATES.rates["f32"]
        return Engine.AVX512, rate

    def _compute_time(self, op: Operator, dtype: DType) -> float:
        if op.flops == 0.0:
            return 0.0
        engine, rate = self._engine_for(op, dtype)
        mfu = self.framework.mfu(engine)
        per_core = rate * self.cpu.clock_hz * mfu
        cores = self.placement.cores
        serial = cal.CPU_SERIAL_FRACTION
        single_core_s = op.flops / per_core
        return single_core_s * (serial + (1.0 - serial) / cores)

    # -- memory -------------------------------------------------------------

    def _remote_fraction(self, fallback: bool) -> float:
        if fallback and self.placement.sockets_used > 1:
            return cal.INT8_FALLBACK_REMOTE_FRACTION
        return remote_fraction(self.numa_policy, self.placement.sockets_used)

    def effective_bw(self, fallback: bool = False) -> float:
        """Post-derate DRAM bandwidth visible to the workload."""
        per_socket = self.cpu.mem_bw_per_socket
        saturation = min(1.0, self.placement.cores_per_socket
                         / cal.CORES_TO_SATURATE_BW)
        single_node = (self.numa_policy is NumaPolicy.SINGLE_NODE
                       and self.placement.sockets_used > 1)
        if single_node:
            # SGX exposes one unified node: every byte lives on (at most)
            # one socket's DRAM, so the local side is a single socket and
            # the other socket's cores pull everything over UPI.
            base = per_socket * saturation
        else:
            base = per_socket * self.placement.sockets_used * saturation
        clusters = self.placement.snc_clusters
        if clusters > 1 and not self.backend.is_tee:
            base *= SNC_BANDWIDTH_BONUS
        cluster_penalty = sub_numa_misplacement(clusters, self.backend.is_tee)
        bw = effective_bandwidth(
            base, self.cpu.upi, self._remote_fraction(fallback),
            upi_crypto_derate=(self.profile.upi_crypto_derate
                               if self.placement.sockets_used > 1 else 0.0),
            cluster_penalty=cluster_penalty,
        )
        bw *= (1.0 - self.profile.mem_encryption_derate)
        return bw * self.framework.memory_efficiency()

    def _weight_traffic(self, op: Operator, dtype: DType, fallback: bool) -> float:
        traffic = op.weight_bytes
        if self.framework.weight_bytes_per_param is not None:
            traffic *= self.framework.weight_bytes_per_param / dtype.bytes
        if fallback:
            traffic *= cal.INT8_FALLBACK_TRAFFIC_INFLATION
        return traffic

    def _dram_traffic(self, op: Operator, sets: WorkingSets, dtype: DType,
                      fallback: bool) -> dict[str, float]:
        """DRAM-visible bytes per stream after LLC filtering."""
        allocator = 1.0 if self.placement.tcmalloc \
            else cal.DEFAULT_ALLOCATOR_TRAFFIC_INFLATION
        weights = self._weight_traffic(op, dtype, fallback)
        return {
            "weights": self.llc.dram_bytes(weights, sets.weights),
            "kv": self.llc.dram_bytes(op.kv_read_bytes + op.kv_write_bytes,
                                      sets.kv) * allocator,
            "activations": self.llc.dram_bytes(op.activation_bytes,
                                               sets.activations) * allocator,
        }

    # -- translation & paging -----------------------------------------------

    def _page_mix(self) -> list[tuple[int, float]]:
        """(page size, traffic fraction) pairs under the active policy."""
        if self.hugepages is HugepagePolicy.RESERVED_1G:
            return [(HugepagePolicy.RESERVED_1G.page_bytes, 1.0)]
        if self.hugepages is HugepagePolicy.TRANSPARENT_2M:
            return [
                (HugepagePolicy.TRANSPARENT_2M.page_bytes, THP_COVERAGE),
                (PAGE_4K, 1.0 - THP_COVERAGE),
            ]
        return [(PAGE_4K, 1.0)]

    def _translation_time(self, dram: dict[str, float],
                          sets: WorkingSets) -> float:
        per_core_divisor = max(1, self.placement.cores)
        stream_sets = {"weights": sets.weights, "kv": sets.kv,
                       "activations": sets.activations}
        total = 0.0
        for page_bytes, fraction in self._page_mix():
            entries = self.cpu.tlb.entries_for(page_bytes)
            for stream, traffic in dram.items():
                per_core_ws = stream_sets[stream] * fraction / per_core_divisor
                miss = streaming_miss_rate(per_core_ws, page_bytes, entries)
                total += translation_time(traffic * fraction, page_bytes,
                                          miss, self.walk)
        return total * WALK_SERIAL_FRACTION

    def _paging_time(self, dram: dict[str, float], sets: WorkingSets) -> float:
        if not self.profile.epc_limited:
            return 0.0
        epc = self.cpu.sgx_epc_per_socket * self.placement.sockets_used
        working_set = sets.weights + sets.kv + sets.activations
        return paging_overhead_s(sum(dram.values()), working_set, epc)

    # -- public API ----------------------------------------------------------

    def op_cost(self, op: Operator, sets: WorkingSets, dtype: DType) -> OpCost:
        """Cost one operator under the deployment's mechanisms."""
        fallback = is_fallback_path(dtype, self.amx_available)
        dram = self._dram_traffic(op, sets, dtype, fallback)
        bw = self.effective_bw(fallback)
        return OpCost(
            op=op,
            compute_s=self._compute_time(op, dtype),
            memory_s=sum(dram.values()) / bw,
            translation_s=self._translation_time(dram, sets),
            paging_s=self._paging_time(dram, sets),
        )

    def step_cost(self, ops: list[Operator], sets: WorkingSets,
                  dtype: DType) -> StepCost:
        """Cost a full forward step (all operators + step-level terms).

        Repeated decoder blocks emit operators that differ only in
        ``name``/``layer``; the cost model reads neither, so identical
        (category, flops, bytes) operators are costed once and the
        component times reused — each still wrapped in its own
        :class:`OpCost` so per-layer traces group correctly.
        """
        tax = 1.0 + self.profile.virtualization_tax
        if self.placement.expose_hyperthreads:
            tax += HYPERTHREAD_TAX
        memo: dict[tuple, OpCost] = {}
        op_costs = []
        for op in ops:
            key = (op.category, op.flops, op.weight_bytes,
                   op.activation_bytes, op.kv_read_bytes, op.kv_write_bytes)
            hit = memo.get(key)
            if hit is None:
                hit = memo[key] = self.op_cost(op, sets, dtype)
            elif hit.op is not op:
                hit = OpCost(op=op, compute_s=hit.compute_s,
                             memory_s=hit.memory_s,
                             translation_s=hit.translation_s,
                             paging_s=hit.paging_s)
            op_costs.append(hit)
        return StepCost(
            op_costs=tuple(op_costs),
            exits_s=self.profile.exit_cost_s * self.profile.exits_per_step,
            fixed_s=self.profile.step_fixed_s,
            tax_multiplier=tax,
        )

    def step_costs_vec(self, affine_ops: Sequence[AffineOp],
                       contexts: np.ndarray, sets: WorkingSetsVec,
                       dtype: DType, io_bytes: float = 0.0) -> np.ndarray:
        """Total step seconds at every context in one numpy pass.

        Mirrors :meth:`step_cost` term for term (same traffic filtering,
        translation and paging formulas, same accumulation order per
        stream) over an affine operator set; parity with the scalar path
        is enforced by the engine test suite to <1e-9 relative error.
        """
        del io_bytes  # CPU steps have no host-device staging
        c = np.asarray(contexts, dtype=float)
        fallback = is_fallback_path(dtype, self.amx_available)
        bw = self.effective_bw(fallback)
        allocator = 1.0 if self.placement.tcmalloc \
            else cal.DEFAULT_ALLOCATOR_TRAFFIC_INFLATION
        serial = cal.CPU_SERIAL_FRACTION
        amdahl = serial + (1.0 - serial) / self.placement.cores

        # Per-stream translation coefficients: seconds of page-walk time
        # per DRAM-visible byte of the stream, summed over the page mix.
        per_core_divisor = max(1, self.placement.cores)
        stream_sets = {"weights": sets.weights, "kv": sets.kv,
                       "activations": sets.activations}
        walk_coeff = {stream: 0.0 for stream in stream_sets}
        for page_bytes, fraction in self._page_mix():
            entries = self.cpu.tlb.entries_for(page_bytes)
            for stream, stream_ws in stream_sets.items():
                per_core_ws = np.asarray(stream_ws, dtype=float) \
                    * fraction / per_core_divisor
                miss = streaming_miss_rate_vec(per_core_ws, page_bytes,
                                               entries)
                walk_coeff[stream] = (walk_coeff[stream]
                                      + fraction / page_bytes * miss
                                      * self.walk.walk_s)

        # EPC paging: seconds per DRAM-visible byte (SGX only).
        paging_coeff = 0.0
        if self.profile.epc_limited:
            epc = self.cpu.sgx_epc_per_socket * self.placement.sockets_used
            ws_total = sets.weights + sets.kv + sets.activations
            paging_coeff = (paging_fraction_vec(ws_total, epc)
                            / PAGE_4K * EPC_FAULT_S)

        total = np.zeros_like(c)
        for aff in affine_ops:
            if aff.base.flops == 0.0 and aff.slope.flops == 0.0:
                compute = np.zeros_like(c)
            else:
                engine, rate = self._engine_for(aff.base, dtype)
                per_core = rate * self.cpu.clock_hz * self.framework.mfu(engine)
                compute = aff.flops(c) / per_core * amdahl
            weight_traffic = (self._weight_traffic(aff.base, dtype, fallback)
                              + self._weight_traffic(aff.slope, dtype,
                                                     fallback) * c)
            dram_w = self.llc.dram_bytes_vec(weight_traffic, sets.weights)
            dram_kv = self.llc.dram_bytes_vec(
                aff.kv_read_bytes(c) + aff.kv_write_bytes(c),
                sets.kv) * allocator
            dram_act = self.llc.dram_bytes_vec(aff.activation_bytes(c),
                                               sets.activations) * allocator
            memory = (dram_w + dram_kv + dram_act) / bw
            translation = (dram_w * walk_coeff["weights"]
                           + dram_kv * walk_coeff["kv"]
                           + dram_act * walk_coeff["activations"]) \
                * WALK_SERIAL_FRACTION
            paging = (dram_w + dram_kv + dram_act) * paging_coeff
            total = total + aff.multiplicity * (
                np.maximum(compute, memory) + translation + paging)

        tax = 1.0 + self.profile.virtualization_tax
        if self.placement.expose_hyperthreads:
            tax += HYPERTHREAD_TAX
        exits = self.profile.exit_cost_s * self.profile.exits_per_step
        return (total + exits) * tax + self.profile.step_fixed_s


class GpuCostModel:
    """Operator cost model for (confidential) GPU deployments."""

    def __init__(self, deployment: Deployment) -> None:
        if not isinstance(deployment.placement, GpuPlacement):
            raise TypeError("GpuCostModel needs a GpuPlacement")
        self.deployment = deployment
        self.gpu = deployment.placement.gpu
        self.backend = deployment.backend
        self.framework = deployment.framework
        self.profile = deployment.toggles.apply(self.backend.cost_profile())

    def op_cost(self, op: Operator, sets: WorkingSets, dtype: DType) -> OpCost:
        """Cost one operator; HBM traffic pays no encryption derate on
        H100 (its HBM is unprotected — a security gap, not a cost)."""
        del sets  # GPU HBM is not LLC-filtered at these working sets
        derate = 1.0 - self.profile.gpu_rate_derate
        rate = (self.gpu.peak_flops(dtype)
                * self.framework.mfu(Engine.CUDA_TENSOR) * derate)
        bw = self.gpu.hbm_bw * self.framework.memory_efficiency() * derate
        # B100-class parts encrypt HBM; the paper projects a CPU-like
        # memory-encryption cost onto that path (§V-D3).
        bw *= 1.0 - self.profile.mem_encryption_derate
        return OpCost(
            op=op,
            compute_s=op.flops / rate,
            memory_s=op.bytes_total / bw,
            translation_s=0.0,
            paging_s=0.0,
        )

    def _bounce_time(self, io_bytes: float) -> float:
        if self.profile.bounce_bw is None or io_bytes <= 0.0:
            return 0.0
        return self.gpu.pcie.latency_s + io_bytes / self.profile.bounce_bw

    def step_cost(self, ops: list[Operator], sets: WorkingSets, dtype: DType,
                  io_bytes: float = 0.0) -> StepCost:
        """Cost a forward step including launch tax and PCIe staging."""
        fixed = self.profile.step_fixed_s + self._bounce_time(io_bytes)
        return StepCost(
            op_costs=tuple(self.op_cost(op, sets, dtype) for op in ops),
            exits_s=0.0,
            fixed_s=fixed,
            tax_multiplier=1.0,
        )

    def step_costs_vec(self, affine_ops: Sequence[AffineOp],
                       contexts: np.ndarray, sets: WorkingSetsVec,
                       dtype: DType, io_bytes: float = 0.0) -> np.ndarray:
        """Total step seconds at every context in one numpy pass.

        Mirrors :meth:`step_cost`/:meth:`op_cost` over an affine operator
        set; GPU ops pay no translation or paging terms.
        """
        del sets  # GPU HBM is not LLC-filtered at these working sets
        c = np.asarray(contexts, dtype=float)
        derate = 1.0 - self.profile.gpu_rate_derate
        rate = (self.gpu.peak_flops(dtype)
                * self.framework.mfu(Engine.CUDA_TENSOR) * derate)
        bw = self.gpu.hbm_bw * self.framework.memory_efficiency() * derate
        bw *= 1.0 - self.profile.mem_encryption_derate
        total = np.zeros_like(c)
        for aff in affine_ops:
            total = total + aff.multiplicity * np.maximum(
                aff.flops(c) / rate, aff.bytes_total(c) / bw)
        return total + self.profile.step_fixed_s + self._bounce_time(io_bytes)


def cost_model_for(deployment: Deployment) -> CpuCostModel | GpuCostModel:
    """Instantiate the matching cost model for a deployment."""
    if isinstance(deployment.placement, CpuPlacement):
        return CpuCostModel(deployment)
    return GpuCostModel(deployment)
