"""End-to-end generation simulation.

Runs a workload through a deployment: one prefill step plus one decode
step per output token (context growing as the KV cache fills), with
per-token latency noise and the TEE outlier process the paper filters
with a Z-score (§III-D).  Decode-step costs are recomputed every
``context_stride`` tokens (costs vary smoothly with context length) to
keep sweeps fast; ``context_stride=1`` gives the exact per-step model.

Two execution engines produce the clean decode trajectory:

* ``"vectorized"`` (the default via ``"auto"``) — the
  :mod:`repro.engine.vectorized` decode-cost engine computes every
  costed step in one numpy pass and memoizes the per-shape cost curve;
* ``"loop"`` — the original per-token reference loop, kept as the
  ground truth the vectorized path is tested against.

Both engines draw identical noise for a given seed, and memoized step
costs are bit-identical to uncached ones (the caches store the computed
values, they do not approximate them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..llm.graph import cached_decode_step_ops, cached_prefill_ops
from ..llm.ops import Operator, Phase, merge_totals
from ..memo import MemoCache
from . import calibration as cal
from .placement import CpuPlacement, Deployment, Workload, weight_footprint
from .roofline import (
    CpuCostModel,
    GpuCostModel,
    StepCost,
    WorkingSets,
    cost_model_for,
    gpu_io_bytes,
)
from .trace import TraceEvent, events_from_step
from .vectorized import decode_cost_engine

#: Valid values of ``simulate_generation``'s ``engine`` argument.
ENGINES = ("auto", "vectorized", "loop")

_PREFILL_COST_CACHE = MemoCache("prefill_step_cost", maxsize=256)
_DECODE_COST_CACHE = MemoCache("decode_step_cost", maxsize=2048)


@dataclass(frozen=True)
class GenerationResult:
    """Outcome of one simulated generation run.

    Attributes:
        workload: The workload that ran.
        backend_name: Deployment backend.
        framework_name: Deployment framework.
        prefill_s: Time of the prompt pass (first-token latency).
        decode_clean_s: Noise-free per-step decode times.
        decode_noisy_s: Per-step decode times with jitter and TEE
            outliers (what a measurement harness would observe).
        prefill_step: Costed prefill step (for traces).
        sample_decode_step: Costed mid-generation decode step.
    """

    workload: Workload
    backend_name: str
    framework_name: str
    prefill_s: float
    decode_clean_s: np.ndarray
    decode_noisy_s: np.ndarray
    prefill_step: StepCost | None
    sample_decode_step: StepCost | None

    @property
    def decode_time_s(self) -> float:
        """Total noise-free decode time."""
        return float(self.decode_clean_s.sum())

    @property
    def total_time_s(self) -> float:
        """Prefill + decode (noise-free)."""
        return self.prefill_s + self.decode_time_s

    @property
    def throughput_tok_s(self) -> float:
        """User-visible tokens per second, first token included (Fig. 12)."""
        return self.workload.user_tokens / self.total_time_s

    @property
    def decode_throughput_tok_s(self) -> float:
        """Steady-state generation throughput (Figs. 4, 9, 10)."""
        return self.workload.user_tokens / self.decode_time_s

    @property
    def next_token_latency_s(self) -> float:
        """Mean noise-free time to the next token."""
        return float(self.decode_clean_s.mean())

    @property
    def latency_samples_s(self) -> np.ndarray:
        """Observed per-token latencies (noisy; feed to metrics filters)."""
        return self.decode_noisy_s

    def decode_trace(self) -> list[TraceEvent]:
        """Trace events of the sampled decode step.

        Raises:
            ValueError: If the run was simulated without step recording.
        """
        if self.sample_decode_step is None:
            raise ValueError("run was simulated with record_steps=False")
        return events_from_step(self.sample_decode_step, Phase.DECODE)


def _working_sets(workload: Workload, deployment: Deployment,
                  context_len: int, ops: list[Operator]) -> WorkingSets:
    totals = merge_totals(ops)
    kv_ws = (workload.sequences * context_len
             * workload.model.kv_bytes_per_token(workload.dtype.bytes))
    return WorkingSets(
        weights=weight_footprint(workload, deployment.framework),
        kv=kv_ws,
        activations=totals["activation_bytes"],
    )


def _noise(rng: np.random.Generator, clean: np.ndarray, is_tee: bool) -> np.ndarray:
    sigma = cal.BASE_NOISE_SIGMA + (cal.TEE_NOISE_SIGMA if is_tee else 0.0)
    jitter = np.exp(rng.normal(0.0, sigma, size=clean.shape) - sigma * sigma / 2.0)
    noisy = clean * jitter
    if is_tee:
        outliers = rng.random(clean.shape) < cal.TEE_OUTLIER_PROBABILITY
        scales = 1.0 + rng.exponential(cal.TEE_OUTLIER_SCALE - 1.0,
                                       size=clean.shape)
        noisy = np.where(outliers, noisy * scales, noisy)
    return noisy


def prefill_step_cost(workload: Workload, deployment: Deployment,
                      model: CpuCostModel | GpuCostModel | None = None) -> StepCost:
    """Costed prefill step, memoized per (deployment, workload shape)."""
    key = (deployment, workload.model, workload.dtype, workload.batch_size,
           workload.input_tokens, workload.beam_size)

    def build() -> StepCost:
        cost_model = model or cost_model_for(deployment)
        ops = list(cached_prefill_ops(
            workload.model, workload.dtype, workload.batch_size,
            workload.input_tokens, workload.beam_size))
        sets = _working_sets(workload, deployment, workload.input_tokens, ops)
        if isinstance(deployment.placement, CpuPlacement):
            return cost_model.step_cost(ops, sets, workload.dtype)
        return cost_model.step_cost(
            ops, sets, workload.dtype,
            io_bytes=gpu_io_bytes(workload, Phase.PREFILL))

    return _PREFILL_COST_CACHE.get_or_compute(key, build)


def decode_step_cost(workload: Workload, deployment: Deployment,
                     context: int,
                     model: CpuCostModel | GpuCostModel | None = None) -> StepCost:
    """Costed decode step at one context, memoized per shape + context."""
    key = (deployment, workload.model, workload.dtype, workload.batch_size,
           workload.beam_size, context)

    def build() -> StepCost:
        cost_model = model or cost_model_for(deployment)
        ops = list(cached_decode_step_ops(
            workload.model, workload.dtype, workload.batch_size, context,
            workload.beam_size))
        sets = _working_sets(workload, deployment, context, ops)
        if isinstance(deployment.placement, CpuPlacement):
            return cost_model.step_cost(ops, sets, workload.dtype)
        return cost_model.step_cost(
            ops, sets, workload.dtype,
            io_bytes=gpu_io_bytes(workload, Phase.DECODE))

    return _DECODE_COST_CACHE.get_or_compute(key, build)


def _decode_clean_vectorized(workload: Workload, deployment: Deployment,
                             stride: int) -> np.ndarray:
    """Clean per-token decode times via the vectorized cost engine.

    Reproduces the stride cadence of the reference loop exactly: costs
    are evaluated at contexts ``input + k*stride`` and held for the
    following ``stride`` tokens.
    """
    engine = decode_cost_engine(workload, deployment)
    costed_contexts = workload.input_tokens + np.arange(
        0, workload.output_tokens, stride)
    step_costs = engine.step_costs(costed_contexts)
    return np.repeat(step_costs, stride)[:workload.output_tokens]


def _decode_clean_loop(workload: Workload, deployment: Deployment,
                       model: CpuCostModel | GpuCostModel,
                       stride: int) -> np.ndarray:
    """Clean per-token decode times via the scalar reference loop."""
    clean = np.empty(workload.output_tokens)
    cached_step: StepCost | None = None
    for step_index in range(workload.output_tokens):
        if step_index % stride == 0 or cached_step is None:
            context = workload.input_tokens + step_index
            cached_step = decode_step_cost(workload, deployment, context,
                                           model)
        clean[step_index] = cached_step.total_s
    return clean


def simulate_generation(workload: Workload, deployment: Deployment,
                        seed: int = 0, context_stride: int | None = None,
                        record_steps: bool = False,
                        engine: str = "auto") -> GenerationResult:
    """Simulate one generation run.

    Args:
        workload: What to run.
        deployment: Where and how to run it.
        seed: Noise RNG seed.
        context_stride: Recompute decode-step cost every this many
            tokens (``None`` picks ``output_tokens // 32``, at least 1).
        record_steps: Keep the costed prefill and a mid-generation decode
            step for trace analysis (Fig. 7).  The sampled step is costed
            exactly at its own context without disturbing the
            stride-cadence clean trajectory, so toggling this flag never
            changes the simulated times.
        engine: ``"vectorized"`` (numpy pass over the context vector),
            ``"loop"`` (scalar reference loop), or ``"auto"`` (currently
            the vectorized engine).

    Raises:
        ValueError: If the workload cannot run on the deployment (dtype
            unsupported, model does not fit, ...), or for an unknown
            engine.
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    deployment.validate_workload(workload)
    model = cost_model_for(deployment)

    prefill = prefill_step_cost(workload, deployment, model)

    if context_stride is not None and context_stride < 1:
        raise ValueError("context_stride must be >= 1")
    stride = context_stride or max(1, workload.output_tokens // 32)

    if engine == "loop":
        clean = _decode_clean_loop(workload, deployment, model, stride)
    else:
        clean = _decode_clean_vectorized(workload, deployment, stride)

    sample_step: StepCost | None = None
    if record_steps:
        sample_index = workload.output_tokens // 2
        sample_step = decode_step_cost(
            workload, deployment, workload.input_tokens + sample_index, model)

    rng = np.random.default_rng(seed)
    noisy = _noise(rng, clean, deployment.backend.is_tee)
    return GenerationResult(
        workload=workload,
        backend_name=deployment.backend.name,
        framework_name=deployment.framework.name,
        prefill_s=prefill.total_s,
        decode_clean_s=clean,
        decode_noisy_s=noisy,
        prefill_step=prefill if record_steps else None,
        sample_decode_step=sample_step,
    )


def simulate_encode(workload: Workload, deployment: Deployment,
                    seed: int = 0) -> float:
    """Time one encoder (BERT-style) forward pass, noise included.

    Used by the RAG substrate for SBERT/cross-encoder scoring cost.
    """
    deployment.validate_workload(workload)
    if not workload.model.encoder_only:
        raise ValueError(f"{workload.model.name} is not an encoder-only model")
    # An encoder pass is a prefill over the prompt (see encode_ops), so
    # it shares the memoized prefill step-cost cache.
    step = prefill_step_cost(workload, deployment)
    rng = np.random.default_rng(seed)
    return float(_noise(rng, np.array([step.total_s]),
                        deployment.backend.is_tee)[0])
