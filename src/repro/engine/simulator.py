"""End-to-end generation simulation.

Runs a workload through a deployment: one prefill step plus one decode
step per output token (context growing as the KV cache fills), with
per-token latency noise and the TEE outlier process the paper filters
with a Z-score (§III-D).  Decode-step costs are recomputed every
``context_stride`` tokens (costs vary smoothly with context length) to
keep sweeps fast; ``context_stride=1`` gives the exact per-step model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..llm.graph import decode_step_ops, encode_ops, prefill_ops
from ..llm.ops import Operator, Phase, merge_totals
from . import calibration as cal
from .placement import CpuPlacement, Deployment, Workload, weight_footprint
from .roofline import StepCost, WorkingSets, cost_model_for
from .trace import TraceEvent, events_from_step


@dataclass(frozen=True)
class GenerationResult:
    """Outcome of one simulated generation run.

    Attributes:
        workload: The workload that ran.
        backend_name: Deployment backend.
        framework_name: Deployment framework.
        prefill_s: Time of the prompt pass (first-token latency).
        decode_clean_s: Noise-free per-step decode times.
        decode_noisy_s: Per-step decode times with jitter and TEE
            outliers (what a measurement harness would observe).
        prefill_step: Costed prefill step (for traces).
        sample_decode_step: Costed mid-generation decode step.
    """

    workload: Workload
    backend_name: str
    framework_name: str
    prefill_s: float
    decode_clean_s: np.ndarray
    decode_noisy_s: np.ndarray
    prefill_step: StepCost | None
    sample_decode_step: StepCost | None

    @property
    def decode_time_s(self) -> float:
        """Total noise-free decode time."""
        return float(self.decode_clean_s.sum())

    @property
    def total_time_s(self) -> float:
        """Prefill + decode (noise-free)."""
        return self.prefill_s + self.decode_time_s

    @property
    def throughput_tok_s(self) -> float:
        """User-visible tokens per second, first token included (Fig. 12)."""
        return self.workload.user_tokens / self.total_time_s

    @property
    def decode_throughput_tok_s(self) -> float:
        """Steady-state generation throughput (Figs. 4, 9, 10)."""
        return self.workload.user_tokens / self.decode_time_s

    @property
    def next_token_latency_s(self) -> float:
        """Mean noise-free time to the next token."""
        return float(self.decode_clean_s.mean())

    @property
    def latency_samples_s(self) -> np.ndarray:
        """Observed per-token latencies (noisy; feed to metrics filters)."""
        return self.decode_noisy_s

    def decode_trace(self) -> list[TraceEvent]:
        """Trace events of the sampled decode step.

        Raises:
            ValueError: If the run was simulated without step recording.
        """
        if self.sample_decode_step is None:
            raise ValueError("run was simulated with record_steps=False")
        return events_from_step(self.sample_decode_step, Phase.DECODE)


def _working_sets(workload: Workload, deployment: Deployment,
                  context_len: int, ops: list[Operator]) -> WorkingSets:
    totals = merge_totals(ops)
    kv_ws = (workload.sequences * context_len
             * workload.model.kv_bytes_per_token(workload.dtype.bytes))
    return WorkingSets(
        weights=weight_footprint(workload, deployment.framework),
        kv=kv_ws,
        activations=totals["activation_bytes"],
    )


def _gpu_io_bytes(workload: Workload, phase: Phase) -> float:
    """Host-device bytes staged through the (bounce) buffer per step."""
    if phase is Phase.PREFILL:
        return workload.sequences * workload.input_tokens * 4.0 + 4096.0
    return workload.sequences * 8.0 + 1024.0


def _noise(rng: np.random.Generator, clean: np.ndarray, is_tee: bool) -> np.ndarray:
    sigma = cal.BASE_NOISE_SIGMA + (cal.TEE_NOISE_SIGMA if is_tee else 0.0)
    jitter = np.exp(rng.normal(0.0, sigma, size=clean.shape) - sigma * sigma / 2.0)
    noisy = clean * jitter
    if is_tee:
        outliers = rng.random(clean.shape) < cal.TEE_OUTLIER_PROBABILITY
        scales = 1.0 + rng.exponential(cal.TEE_OUTLIER_SCALE - 1.0,
                                       size=clean.shape)
        noisy = np.where(outliers, noisy * scales, noisy)
    return noisy


def simulate_generation(workload: Workload, deployment: Deployment,
                        seed: int = 0, context_stride: int | None = None,
                        record_steps: bool = False) -> GenerationResult:
    """Simulate one generation run.

    Args:
        workload: What to run.
        deployment: Where and how to run it.
        seed: Noise RNG seed.
        context_stride: Recompute decode-step cost every this many
            tokens (``None`` picks ``output_tokens // 32``, at least 1).
        record_steps: Keep the costed prefill and a mid-generation decode
            step for trace analysis (Fig. 7).

    Raises:
        ValueError: If the workload cannot run on the deployment (dtype
            unsupported, model does not fit, ...).
    """
    deployment.validate_workload(workload)
    model = cost_model_for(deployment)
    dtype = workload.dtype
    is_gpu = not isinstance(deployment.placement, CpuPlacement)

    pre_ops = prefill_ops(workload.model, dtype, workload.batch_size,
                          workload.input_tokens, workload.beam_size)
    pre_sets = _working_sets(workload, deployment, workload.input_tokens, pre_ops)
    if is_gpu:
        prefill = model.step_cost(pre_ops, pre_sets, dtype,
                                  io_bytes=_gpu_io_bytes(workload, Phase.PREFILL))
    else:
        prefill = model.step_cost(pre_ops, pre_sets, dtype)

    if context_stride is not None and context_stride < 1:
        raise ValueError("context_stride must be >= 1")
    stride = context_stride or max(1, workload.output_tokens // 32)

    clean = np.empty(workload.output_tokens)
    cached_step: StepCost | None = None
    sample_step: StepCost | None = None
    sample_index = workload.output_tokens // 2
    for step_index in range(workload.output_tokens):
        context = workload.input_tokens + step_index
        needs_exact = record_steps and step_index == sample_index
        if step_index % stride == 0 or cached_step is None or needs_exact:
            ops = decode_step_ops(workload.model, dtype, workload.batch_size,
                                  context, workload.beam_size)
            sets = _working_sets(workload, deployment, context, ops)
            if is_gpu:
                cached_step = model.step_cost(
                    ops, sets, dtype,
                    io_bytes=_gpu_io_bytes(workload, Phase.DECODE))
            else:
                cached_step = model.step_cost(ops, sets, dtype)
        if needs_exact:
            sample_step = cached_step
        clean[step_index] = cached_step.total_s

    rng = np.random.default_rng(seed)
    noisy = _noise(rng, clean, deployment.backend.is_tee)
    return GenerationResult(
        workload=workload,
        backend_name=deployment.backend.name,
        framework_name=deployment.framework.name,
        prefill_s=prefill.total_s,
        decode_clean_s=clean,
        decode_noisy_s=noisy,
        prefill_step=prefill if record_steps else None,
        sample_decode_step=sample_step,
    )


def simulate_encode(workload: Workload, deployment: Deployment,
                    seed: int = 0) -> float:
    """Time one encoder (BERT-style) forward pass, noise included.

    Used by the RAG substrate for SBERT/cross-encoder scoring cost.
    """
    deployment.validate_workload(workload)
    model = cost_model_for(deployment)
    ops = encode_ops(workload.model, workload.dtype, workload.batch_size,
                     workload.input_tokens)
    sets = _working_sets(workload, deployment, workload.input_tokens, ops)
    if isinstance(deployment.placement, CpuPlacement):
        step = model.step_cost(ops, sets, workload.dtype)
    else:
        step = model.step_cost(ops, sets, workload.dtype,
                               io_bytes=_gpu_io_bytes(workload, Phase.PREFILL))
    rng = np.random.default_rng(seed)
    return float(_noise(rng, np.array([step.total_s]),
                        deployment.backend.is_tee)[0])
