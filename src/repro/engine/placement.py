"""Workload and placement descriptions.

A :class:`Workload` says *what* runs (model, dtype, batch, input/output
lengths, beam); a placement says *where and how* (which system, how many
cores/sockets, AMX on or off, NUMA/hugepage policies, allocator, SNC).
Together with a TEE backend and a framework they form a
:class:`Deployment`, the unit the simulator executes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..hardware.cpu import CpuSpec
from ..hardware.gpu import GpuSpec
from ..llm.config import ModelConfig
from ..llm.datatypes import DType
from ..memsim.numa import NumaPolicy
from ..memsim.pages import HugepagePolicy
from ..frameworks.base import Framework
from ..tee.base import Backend, MechanismToggles


@dataclass(frozen=True)
class Workload:
    """One inference workload.

    Attributes:
        model: Transformer architecture.
        dtype: Inference datatype.
        batch_size: Independent sequences per step.
        input_tokens: Prompt length.
        output_tokens: Generated tokens per sequence.
        beam_size: Beam width (multiplies decode-step sequence count).
    """

    model: ModelConfig
    dtype: DType
    batch_size: int = 1
    input_tokens: int = 1024
    output_tokens: int = 128
    beam_size: int = 1

    def __post_init__(self) -> None:
        # Checked per-dimension: NaN slips through a min()-based guard
        # because any comparison against NaN is False.
        for field_name in ("batch_size", "input_tokens", "output_tokens",
                           "beam_size"):
            value = getattr(self, field_name)
            if not math.isfinite(value) or value < 1:
                raise ValueError(
                    f"workload {field_name} must be finite and >= 1")
        if not self.model.encoder_only:
            total = self.input_tokens + self.output_tokens
            if total > self.model.max_position:
                raise ValueError(
                    f"{self.model.name} supports {self.model.max_position} "
                    f"positions, workload needs {total}")

    @property
    def sequences(self) -> int:
        """Concurrent sequences during decode (batch * beams)."""
        return self.batch_size * self.beam_size

    @property
    def user_tokens(self) -> int:
        """Tokens delivered to users (beams collapse to one output)."""
        return self.batch_size * self.output_tokens

    def with_(self, **changes: object) -> "Workload":
        """A modified copy (sweep helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class CpuPlacement:
    """CPU resource assignment.

    Attributes:
        cpu: The CPU system.
        sockets_used: Sockets the workload spans.
        cores_per_socket_used: Cores used per socket (``None`` = all).
        amx_enabled: Whether AMX tiles are available to the framework.
        numa_policy: Requested placement policy (backends may override).
        hugepages: Requested page backing (TDX downgrades 1G to THP).
        snc_clusters: Sub-NUMA clustering domains per socket (1 = off).
        tcmalloc: Use TCMalloc instead of glibc malloc (§IV-D).
        expose_hyperthreads: Expose the second logical thread to the
            guest (adds noise and scheduling tax, §IV-A).
    """

    cpu: CpuSpec
    sockets_used: int = 1
    cores_per_socket_used: int | None = None
    amx_enabled: bool = True
    numa_policy: NumaPolicy = NumaPolicy.BOUND
    hugepages: HugepagePolicy = HugepagePolicy.TRANSPARENT_2M
    snc_clusters: int = 1
    tcmalloc: bool = True
    expose_hyperthreads: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.sockets_used <= self.cpu.sockets:
            raise ValueError(
                f"sockets_used must be in [1, {self.cpu.sockets}]")
        cores = self.cores_per_socket_used
        if cores is not None and not 1 <= cores <= self.cpu.cores_per_socket:
            raise ValueError(
                f"cores_per_socket_used must be in [1, {self.cpu.cores_per_socket}]")
        if self.snc_clusters < 1:
            raise ValueError("snc_clusters must be >= 1")

    @property
    def cores(self) -> int:
        """Total physical cores in use."""
        per_socket = (self.cores_per_socket_used
                      if self.cores_per_socket_used is not None
                      else self.cpu.cores_per_socket)
        return per_socket * self.sockets_used

    @property
    def cores_per_socket(self) -> int:
        return self.cores // self.sockets_used

    def with_(self, **changes: object) -> "CpuPlacement":
        """A modified copy (sweep helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class GpuPlacement:
    """GPU resource assignment (single device, as in the paper)."""

    gpu: GpuSpec

    def with_(self, **changes: object) -> "GpuPlacement":
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class Deployment:
    """A complete execution environment: placement + backend + framework."""

    placement: CpuPlacement | GpuPlacement
    backend: Backend
    framework: Framework
    toggles: MechanismToggles = field(default_factory=MechanismToggles)

    def __post_init__(self) -> None:
        placement_device = "cpu" if isinstance(self.placement, CpuPlacement) else "gpu"
        if self.backend.device != placement_device:
            raise ValueError(
                f"backend {self.backend.name!r} is a {self.backend.device} "
                f"backend but the placement is {placement_device}")
        if self.framework.device != placement_device:
            raise ValueError(
                f"framework {self.framework.name!r} targets "
                f"{self.framework.device}, placement is {placement_device}")

    def validate_workload(self, workload: Workload) -> None:
        """Reject impossible workload/deployment combinations."""
        if not self.framework.supports(workload.dtype):
            raise ValueError(
                f"{self.framework.name} does not support {workload.dtype.name}")
        if isinstance(self.placement, GpuPlacement):
            weight_bytes = weight_footprint(workload, self.framework)
            context = workload.input_tokens + workload.output_tokens
            kv_bytes = (workload.sequences * context
                        * workload.model.kv_bytes_per_token(workload.dtype.bytes))
            if weight_bytes + kv_bytes > self.placement.gpu.hbm_bytes:
                raise ValueError(
                    f"{workload.model.name} ({weight_bytes / 1e9:.0f} GB weights "
                    f"+ {kv_bytes / 1e9:.0f} GB KV) does not fit "
                    f"{self.placement.gpu.name} HBM")
        else:
            weight_bytes = weight_footprint(workload, self.framework)
            capacity = (self.placement.cpu.mem_per_socket_bytes
                        * self.placement.sockets_used)
            if weight_bytes > capacity:
                raise ValueError(
                    f"{workload.model.name} weights exceed the memory of "
                    f"{self.placement.sockets_used} socket(s)")


def weight_footprint(workload: Workload, framework: Framework) -> float:
    """Weight footprint honouring framework dtype overrides (llama.cpp)."""
    per_param = (framework.weight_bytes_per_param
                 if framework.weight_bytes_per_param is not None
                 else workload.dtype.bytes)
    return workload.model.num_parameters * per_param
