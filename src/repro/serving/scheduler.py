"""Continuous-batching serving simulation.

The paper's GPU experiments run vLLM, whose scheduler forms decode
batches dynamically from an arriving request stream and manages KV
memory in pages, preempting (and recomputing) requests when blocks run
out.  This module implements that serving loop over the repository's
substrates: admission and preemption run against the functional
:class:`~repro.llm.kvcache.PagedKVCache`, and step durations come from
the same TEE-aware cost model as every other experiment — so serving
SLAs (TTFT, end-to-end latency) can be compared across bare metal, TDX,
and (c)GPU deployments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..engine.placement import Deployment
from ..engine.roofline import WorkingSets, cost_model_for
from ..llm.config import ModelConfig
from ..llm.datatypes import DType
from ..llm.graph import decode_step_ops, prefill_ops
from ..llm.kvcache import PagedKVCache


@dataclass(frozen=True)
class ServeRequest:
    """One request in the arrival stream."""

    request_id: int
    arrival_s: float
    prompt_tokens: int
    output_tokens: int

    def __post_init__(self) -> None:
        # NaN passes a plain `< 0` comparison, so finiteness is explicit.
        if not math.isfinite(self.arrival_s) or self.arrival_s < 0:
            raise ValueError("arrival_s must be finite and >= 0")
        for field_name in ("prompt_tokens", "output_tokens"):
            value = getattr(self, field_name)
            if not math.isfinite(value) or value < 1:
                raise ValueError(f"{field_name} must be finite and >= 1")


@dataclass
class RequestOutcome:
    """Lifecycle record of one served request."""

    request: ServeRequest
    first_token_s: float = 0.0
    finish_s: float = 0.0
    preemptions: int = 0

    @property
    def ttft_s(self) -> float:
        """Time to first token (queueing + prefill)."""
        return self.first_token_s - self.request.arrival_s

    @property
    def e2e_s(self) -> float:
        """End-to-end latency."""
        return self.finish_s - self.request.arrival_s


@dataclass(frozen=True)
class ServingReport:
    """Aggregate serving metrics."""

    outcomes: tuple[RequestOutcome, ...]
    makespan_s: float
    total_preemptions: int
    mean_batch_occupancy: float

    @property
    def throughput_tok_s(self) -> float:
        tokens = sum(o.request.output_tokens for o in self.outcomes)
        return tokens / self.makespan_s if self.makespan_s else 0.0

    def ttft_percentile(self, percentile: float) -> float:
        return _percentile([o.ttft_s for o in self.outcomes], percentile)

    def e2e_percentile(self, percentile: float) -> float:
        return _percentile([o.e2e_s for o in self.outcomes], percentile)


def _percentile(values: list[float], percentile: float) -> float:
    if not values:
        raise ValueError("no values")
    if not 0.0 <= percentile <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                int(round(percentile / 100.0 * (len(ordered) - 1))))
    return ordered[index]


@dataclass
class _Running:
    request: ServeRequest
    outcome: RequestOutcome
    generated: int = 0


class ContinuousBatchingScheduler:
    """vLLM-style continuous batching over a paged KV cache.

    Args:
        deployment: Where the model serves (any backend).
        model: Served architecture.
        dtype: Serving datatype.
        kv_capacity_tokens: Total KV pool size in tokens.
        block_size: Paged-KV block granularity in tokens.
        max_batch: Scheduler cap on concurrent sequences.
    """

    def __init__(self, deployment: Deployment, model: ModelConfig,
                 dtype: DType, kv_capacity_tokens: int = 65536,
                 block_size: int = 16, max_batch: int = 64) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.deployment = deployment
        self.model = model
        self.dtype = dtype
        self.max_batch = max_batch
        self.block_size = block_size
        self.cache = PagedKVCache(
            num_blocks=max(1, kv_capacity_tokens // block_size),
            block_size=block_size)
        self._cost_model = cost_model_for(deployment)
        self._step_cache: dict[tuple[int, int], float] = {}

    # -- cost helpers ---------------------------------------------------------

    def _sets(self, batch: int, context: int) -> WorkingSets:
        weights = self.model.weight_bytes(self.dtype.bytes)
        kv = batch * context * self.model.kv_bytes_per_token(self.dtype.bytes)
        return WorkingSets(weights=weights, kv=kv, activations=64e6)

    def _decode_step_s(self, batch: int, context: int) -> float:
        context_bucket = max(16, (context // 64) * 64)
        key = (batch, context_bucket)
        if key not in self._step_cache:
            ops = decode_step_ops(self.model, self.dtype, batch,
                                  context_bucket)
            step = self._cost_model.step_cost(
                ops, self._sets(batch, context_bucket), self.dtype)
            self._step_cache[key] = step.total_s
        return self._step_cache[key]

    def _prefill_s(self, prompt_tokens: int) -> float:
        ops = prefill_ops(self.model, self.dtype, 1, prompt_tokens)
        step = self._cost_model.step_cost(
            ops, self._sets(1, prompt_tokens), self.dtype)
        return step.total_s

    # -- serving loop -----------------------------------------------------------

    def run(self, requests: list[ServeRequest]) -> ServingReport:
        """Serve a request stream to completion.

        Raises:
            ValueError: If any single request cannot ever fit the KV pool.
        """
        if not requests:
            raise ValueError("no requests")
        for request in requests:
            needed = request.prompt_tokens + request.output_tokens
            if needed > self.cache.num_blocks * self.block_size:
                raise ValueError(
                    f"request {request.request_id} needs {needed} KV tokens, "
                    f"pool holds {self.cache.num_blocks * self.block_size}")

        waiting = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        outcomes = {r.request_id: RequestOutcome(request=r) for r in requests}
        running: list[_Running] = []
        clock = 0.0
        preemptions = 0
        occupancy_samples: list[int] = []

        while waiting or running:
            # Admit arrived requests while memory and batch slots allow.
            while (waiting and len(running) < self.max_batch
                   and waiting[0].arrival_s <= clock):
                request = waiting[0]
                try:
                    self.cache.allocate(request.request_id,
                                        request.prompt_tokens)
                except MemoryError:
                    break
                waiting.pop(0)
                clock += self._prefill_s(request.prompt_tokens)
                outcome = outcomes[request.request_id]
                outcome.first_token_s = clock
                running.append(_Running(request=request, outcome=outcome))

            if not running:
                # Idle until the next arrival.
                clock = max(clock, waiting[0].arrival_s)
                continue

            # One decode step for the whole batch.
            contexts = [r.request.prompt_tokens + r.generated
                        for r in running]
            mean_context = int(sum(contexts) / len(contexts))
            occupancy_samples.append(len(running))
            clock += self._decode_step_s(len(running), max(1, mean_context))

            finished: list[_Running] = []
            preempted_ids: set[int] = set()

            def preempt_youngest() -> _Running:
                victim = running[-1]
                self.cache.free(victim.request.request_id)
                victim.outcome.preemptions += 1
                victim.generated = 0
                running.remove(victim)
                waiting.insert(0, victim.request)
                preempted_ids.add(victim.request.request_id)
                return victim

            for entry in list(running):
                if entry.request.request_id in preempted_ids:
                    continue
                appended = False
                while not appended:
                    try:
                        self.cache.append_token(entry.request.request_id)
                        appended = True
                    except MemoryError:
                        # Preempt the youngest sequence; vLLM recomputes
                        # it from scratch on re-admission.
                        victim = preempt_youngest()
                        preemptions += 1
                        if victim is entry:
                            break
                if not appended:
                    continue
                entry.generated += 1
                if entry.generated >= entry.request.output_tokens:
                    finished.append(entry)
            for entry in finished:
                entry.outcome.finish_s = clock
                self.cache.free(entry.request.request_id)
                running.remove(entry)

        ordered = tuple(outcomes[r.request_id] for r in requests)
        mean_occupancy = (sum(occupancy_samples) / len(occupancy_samples)
                          if occupancy_samples else 0.0)
        return ServingReport(outcomes=ordered, makespan_s=clock,
                             total_preemptions=preemptions,
                             mean_batch_occupancy=mean_occupancy)


def poisson_stream(count: int, rate_per_s: float, mean_prompt: int = 256,
                   mean_output: int = 96, seed: int = 0) -> list[ServeRequest]:
    """A deterministic Poisson-like arrival stream for serving studies."""
    import random
    if count < 1 or rate_per_s <= 0:
        raise ValueError("count >= 1 and positive rate required")
    rng = random.Random(seed)
    clock = 0.0
    requests = []
    for request_id in range(count):
        clock += rng.expovariate(rate_per_s)
        prompt = max(16, int(rng.lognormvariate(0.0, 0.5) * mean_prompt))
        output = max(8, int(rng.lognormvariate(0.0, 0.4) * mean_output))
        requests.append(ServeRequest(request_id=request_id, arrival_s=clock,
                                     prompt_tokens=prompt,
                                     output_tokens=output))
    return requests
