"""Continuous-batching serving simulation.

The paper's GPU experiments run vLLM, whose scheduler forms decode
batches dynamically from an arriving request stream and manages KV
memory in pages, preempting (and recomputing) requests when blocks run
out.  This module implements that serving loop over the repository's
substrates: admission and preemption run against the functional
:class:`~repro.llm.kvcache.PagedKVCache`, and step durations come from
the same TEE-aware cost model as every other experiment — so serving
SLAs (TTFT, end-to-end latency) can be compared across bare metal, TDX,
and (c)GPU deployments.

The scheduler is *incrementally steppable*: the fleet simulator
(:mod:`repro.fleet`) drives many replicas against a shared clock via
:meth:`ContinuousBatchingScheduler.submit` and
:meth:`ContinuousBatchingScheduler.step`, while :meth:`~
ContinuousBatchingScheduler.run` remains the single-replica
run-to-completion entry point (a thin wrapper over ``step``; its output
is pinned bit-identical to the pre-refactor loop by
``repro.validate``'s ``serving.legacy_loop_parity`` check).

Admission policy (head-of-line).  By default admission is strict FCFS:
the admission loop ``break``s on the first queued request whose KV
allocation fails, even if a *smaller* request queued behind it would
fit — exactly vLLM's default behavior, which trades utilization for
no-starvation.  Passing ``admission_lookahead=k`` relaxes this: after a
head-of-line allocation failure the scheduler scans up to ``k`` further
already-arrived requests and admits the first that fits (bounded
out-of-order admission; the head request keeps its queue position).

Multi-tenancy.  Passing a :class:`~repro.serving.admission.TenancyConfig`
arms per-tenant policy: weighted-fair-queueing admission (SCFQ virtual
finish tags; see :mod:`repro.serving.admission`) and per-tenant KV
isolation (hard partition via admission-time worst-case reservation, or
cross-request shared-prefix pinning with hit/miss accounting).  With no
config the scheduler executes the exact pre-tenancy instruction
sequence, so unarmed runs stay bit-identical to earlier releases.
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass


from ..engine.placement import Deployment
from ..llm.config import ModelConfig
from ..llm.datatypes import DType
from ..llm.kvcache import PagedKVCache
from .admission import TenancyConfig, prefix_seq_id
from .stepcost import StepCostTable


@dataclass(frozen=True)
class ServeRequest:
    """One request in the arrival stream.

    ``priority`` orders graceful degradation: when a degraded fleet must
    shed load (:mod:`repro.faults`), lower-priority requests go first.
    It does not affect scheduling order on a healthy fleet.

    ``tenant_id`` attributes the request to a tenant for fair-share
    admission, KV isolation and billing (0 = the anonymous default
    tenant, preserving pre-tenancy behavior).
    """

    request_id: int
    arrival_s: float
    prompt_tokens: int
    output_tokens: int
    priority: int = 0
    tenant_id: int = 0

    def __post_init__(self) -> None:
        # NaN passes a plain `< 0` comparison, so finiteness is explicit.
        if not math.isfinite(self.arrival_s) or self.arrival_s < 0:
            raise ValueError("arrival_s must be finite and >= 0")
        for field_name in ("prompt_tokens", "output_tokens"):
            value = getattr(self, field_name)
            if not math.isfinite(value) or value < 1:
                raise ValueError(f"{field_name} must be finite and >= 1")
        if not math.isfinite(self.priority):
            raise ValueError("priority must be finite")
        if not math.isfinite(self.tenant_id) or self.tenant_id < 0:
            raise ValueError("tenant_id must be finite and >= 0")

    def to_state(self) -> dict:
        """Plain-dict snapshot of this request (JSON-serializable)."""
        return {
            "request_id": self.request_id,
            "arrival_s": self.arrival_s,
            "prompt_tokens": self.prompt_tokens,
            "output_tokens": self.output_tokens,
            "priority": self.priority,
            "tenant_id": self.tenant_id,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ServeRequest":
        """Rebuild a request, mapping guard failures to ``StateValueError``."""
        from ..state.errors import StateError, StateValueError
        from ..state.schema import require
        try:
            return cls(
                request_id=require(state, "request_id", int, "$.request"),
                arrival_s=require(state, "arrival_s", float, "$.request"),
                prompt_tokens=require(state, "prompt_tokens", int,
                                      "$.request"),
                output_tokens=require(state, "output_tokens", int,
                                      "$.request"),
                priority=require(state, "priority", int, "$.request"),
                # Lenient: pre-tenancy snapshots have no tenant column.
                tenant_id=int(state.get("tenant_id", 0)),
            )
        except StateError:
            raise
        except ValueError as error:
            # The __post_init__ finiteness guards fire on NaN/negative
            # payload values; surface them as the structured taxonomy.
            raise StateValueError(
                f"invalid request payload: {error}") from error


@dataclass
class RequestOutcome:
    """Lifecycle record of one served request."""

    request: ServeRequest
    first_token_s: float = 0.0
    finish_s: float = 0.0
    preemptions: int = 0

    @property
    def ttft_s(self) -> float:
        """Time to first token (queueing + prefill)."""
        return self.first_token_s - self.request.arrival_s

    @property
    def e2e_s(self) -> float:
        """End-to-end latency."""
        return self.finish_s - self.request.arrival_s

    def to_state(self) -> dict:
        """Plain-dict snapshot of this lifecycle record."""
        return {
            "request": self.request.to_state(),
            "first_token_s": self.first_token_s,
            "finish_s": self.finish_s,
            "preemptions": self.preemptions,
        }

    @classmethod
    def from_state(cls, state: dict) -> "RequestOutcome":
        from ..state.schema import require
        return cls(
            request=ServeRequest.from_state(
                require(state, "request", dict, "$.outcome")),
            first_token_s=require(state, "first_token_s", float, "$.outcome"),
            finish_s=require(state, "finish_s", float, "$.outcome"),
            preemptions=require(state, "preemptions", int, "$.outcome"),
        )


@dataclass(frozen=True)
class ServingReport:
    """Aggregate serving metrics.

    Attributes:
        outcomes: Per-request lifecycle records, in submission order.
        start_s: When serving work first existed — the earliest arrival.
            The wall-clock timeline of the outcomes is absolute, so the
            serving window is ``[start_s, start_s + makespan_s]``.
        makespan_s: Busy window from the first arrival to the last
            completion.  Measuring from the first *arrival* (not from
            clock 0) keeps throughput honest when the stream starts
            late: idle lead time before any work exists is not
            serving time.
        total_preemptions: Preempt-and-recompute events across the run.
        mean_batch_occupancy: Mean decode-batch size over all steps.
    """

    outcomes: tuple[RequestOutcome, ...]
    makespan_s: float
    total_preemptions: int
    mean_batch_occupancy: float
    start_s: float = 0.0

    @property
    def end_s(self) -> float:
        """Absolute completion time of the last request."""
        return self.start_s + self.makespan_s

    @property
    def throughput_tok_s(self) -> float:
        tokens = sum(o.request.output_tokens for o in self.outcomes)
        return tokens / self.makespan_s if self.makespan_s else 0.0

    def ttft_percentile(self, percentile: float) -> float:
        return _percentile([o.ttft_s for o in self.outcomes], percentile)

    def e2e_percentile(self, percentile: float) -> float:
        return _percentile([o.e2e_s for o in self.outcomes], percentile)


def _percentile(values: list[float], percentile: float) -> float:
    """Linearly interpolated percentile (numpy's default method).

    Nearest-rank rounding returns an endpoint for the median of two
    values, skewing small-sample TTFT/e2e percentiles; interpolation
    matches ``numpy.percentile`` exactly.
    """
    if not values:
        raise ValueError("no values")
    if not 0.0 <= percentile <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    rank = percentile / 100.0 * (len(ordered) - 1)
    lower = int(math.floor(rank))
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


@dataclass
class _Running:
    request: ServeRequest
    outcome: RequestOutcome
    generated: int = 0


class ContinuousBatchingScheduler:
    """vLLM-style continuous batching over a paged KV cache.

    The scheduler is a state machine over (waiting, running, clock):
    :meth:`submit` enqueues requests, :meth:`step` advances the
    admission/decode/preemption loop up to a time horizon (the fleet
    simulator's shared-clock contract), and :meth:`run` serves a whole
    stream to completion in one call.

    Args:
        deployment: Where the model serves (any backend).
        model: Served architecture.
        dtype: Serving datatype.
        kv_capacity_tokens: Total KV pool size in tokens.
        block_size: Paged-KV block granularity in tokens.
        max_batch: Scheduler cap on concurrent sequences.
        admission_lookahead: How many queued, already-arrived requests
            to scan past a head-of-line KV-allocation failure (0 =
            strict FCFS, the vLLM default; see module docstring).
        tenancy: Optional multi-tenant policy (WFQ admission and/or KV
            isolation); ``None`` keeps the pre-tenancy behavior exactly.
    """

    def __init__(self, deployment: Deployment, model: ModelConfig,
                 dtype: DType, kv_capacity_tokens: int = 65536,
                 block_size: int = 16, max_batch: int = 64,
                 admission_lookahead: int = 0,
                 tenancy: TenancyConfig | None = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if admission_lookahead < 0:
            raise ValueError("admission_lookahead must be >= 0")
        self.deployment = deployment
        self.model = model
        self.dtype = dtype
        self.max_batch = max_batch
        self.block_size = block_size
        self.admission_lookahead = admission_lookahead
        self.tenancy = tenancy
        self.admission = tenancy.admission if tenancy else "fcfs"
        self.kv_isolation = tenancy.kv_isolation if tenancy else "shared"
        self._wfq = self.admission == "wfq"
        self.cache = PagedKVCache(
            num_blocks=max(1, kv_capacity_tokens // block_size),
            block_size=block_size)
        self._costs = StepCostTable.shared(deployment, model, dtype)
        self._time_scale = 1.0
        self._reset()

    def _reset(self) -> None:
        # Unpin any shared prefixes left from a previous run() so the
        # block pool starts whole (guarded: __init__ calls _reset before
        # the tenancy attributes exist).
        for tenant_id in getattr(self, "_prefix_resident", ()):
            self.cache.free(prefix_seq_id(tenant_id))
        self._waiting: list[ServeRequest] = []
        self._running: list[_Running] = []
        self._outcomes: dict[int, RequestOutcome] = {}
        self._order: list[int] = []
        self._clock = 0.0
        self._preemptions = 0
        self._occupancy: list[int] = []
        self._first_arrival: float | None = None
        # Tenancy runtime state (inert when unarmed).
        self._wfq_v = 0.0
        self._wfq_fin: dict[int, float] = {}
        self._wfq_tag: dict[int, float] = {}
        self._prefix_resident: dict[int, int] = {}
        self._prefix_hits = 0
        self._prefix_misses = 0
        self._kv_reserved: dict[int, tuple[int, int]] = {}
        if self.tenancy is not None and self.kv_isolation == "partition":
            self._tenant_budget_cap = self.tenancy.partition_budgets(
                self.cache.num_blocks)
            self._tenant_budget = dict(self._tenant_budget_cap)
        else:
            self._tenant_budget_cap = {}
            self._tenant_budget = {}

    # -- cost helpers ---------------------------------------------------------
    # Both delegate to the shared StepCostTable so the columnar twin
    # charges bit-identical durations (see repro.serving.stepcost).

    def _decode_step_s(self, batch: int, context: int) -> float:
        return self._costs.decode_step_s(batch, context)

    def _prefill_s(self, prompt_tokens: int) -> float:
        return self._costs.prefill_s(prompt_tokens)

    # -- steppable state machine ----------------------------------------------

    @property
    def clock_s(self) -> float:
        """The replica's local wall clock."""
        return self._clock

    @property
    def outstanding(self) -> int:
        """Requests admitted or queued but not yet finished."""
        return len(self._waiting) + len(self._running)

    @property
    def queue_depth(self) -> int:
        """Requests waiting for admission."""
        return len(self._waiting)

    @property
    def kv_free_fraction(self) -> float:
        """Fraction of the KV block pool currently free."""
        return self.cache.free_blocks / self.cache.num_blocks

    @property
    def idle(self) -> bool:
        """No admitted or queued work."""
        return not self._waiting and not self._running

    @property
    def preemptions(self) -> int:
        """Preempt-and-recompute events so far."""
        return self._preemptions

    def advance_clock_to(self, now_s: float) -> None:
        """Move the local clock forward to ``now_s`` (never backward).

        The fleet uses this to floor a freshly booted replica's clock at
        its readiness time so held-back requests cannot be served in
        the past (and to skip a hung replica's stall window); it never
        rewinds time.
        """
        if math.isfinite(now_s):
            self._clock = max(self._clock, now_s)

    @property
    def time_scale(self) -> float:
        """Wall-time multiplier on every step (1.0 = nominal speed)."""
        return self._time_scale

    @time_scale.setter
    def time_scale(self, scale: float) -> None:
        """Set the step-duration multiplier (fault-injection hook).

        A degraded replica (``repro.faults`` slowdown or interconnect
        cut) runs every prefill/decode step ``scale`` times slower.  The
        nominal value 1.0 is applied via an exact no-op so fault-free
        runs stay bit-identical.
        """
        if not math.isfinite(scale) or scale <= 0:
            raise ValueError("time_scale must be finite and positive")
        self._time_scale = scale

    def _scaled(self, step_s: float) -> float:
        # Guarded so the nominal path performs no float op at all.
        if self._time_scale != 1.0:
            return step_s * self._time_scale
        return step_s

    def _check_fits(self, request: ServeRequest) -> None:
        needed = request.prompt_tokens + request.output_tokens
        if needed > self.cache.num_blocks * self.block_size:
            raise ValueError(
                f"request {request.request_id} needs {needed} KV tokens, "
                f"pool holds {self.cache.num_blocks * self.block_size}")
        if self.kv_isolation == "partition":
            cap = self._tenant_budget_cap.get(request.tenant_id)
            if cap is None:
                raise ValueError(
                    f"tenant {request.tenant_id} has no KV partition on "
                    f"this replica")
            worst_case = -(-needed // self.block_size)
            if worst_case > cap:
                raise ValueError(
                    f"request {request.request_id} needs {worst_case} "
                    f"blocks, tenant {request.tenant_id} partition holds "
                    f"{cap}")

    def _wfq_key(self, request: ServeRequest) -> tuple[float, float, int]:
        """Waiting-queue sort key under WFQ: (finish tag, arrival, id)."""
        return (self._wfq_tag[request.request_id], request.arrival_s,
                request.request_id)

    def submit(self, request: ServeRequest) -> None:
        """Enqueue one request for service (fleet/step entry point).

        Raises:
            ValueError: If the request cannot ever fit the KV pool or
                reuses an id still in flight.
        """
        self._check_fits(request)
        if request.request_id in self._outcomes:
            raise ValueError(f"request id {request.request_id} already "
                             "submitted to this replica")
        self._outcomes[request.request_id] = RequestOutcome(request=request)
        self._order.append(request.request_id)
        if self._wfq:
            # SCFQ tag: chain on the tenant's previous virtual finish,
            # floored at the global virtual clock.
            start = max(self._wfq_fin.get(request.tenant_id, 0.0),
                        self._wfq_v)
            tag = start + ((request.prompt_tokens + request.output_tokens)
                           / self.tenancy.weight_of(request.tenant_id))
            self._wfq_fin[request.tenant_id] = tag
            self._wfq_tag[request.request_id] = tag
            insort(self._waiting, request, key=self._wfq_key)
        else:
            insort(self._waiting, request,
                   key=lambda r: (r.arrival_s, r.request_id))
        if self._first_arrival is None or request.arrival_s < self._first_arrival:
            self._first_arrival = request.arrival_s

    def _forget(self, request_id: int) -> None:
        """Drop all bookkeeping for an unfinished request."""
        self._outcomes.pop(request_id, None)
        self._wfq_tag.pop(request_id, None)
        if request_id in self._order:
            self._order.remove(request_id)

    def cancel(self, request_id: int) -> tuple[ServeRequest, int] | None:
        """Withdraw an unfinished request (fleet timeout/retry hook).

        Removes the request from the waiting queue or the running batch,
        frees its KV blocks, and erases its outcome record so the fleet
        may resubmit it here or elsewhere.  Finished or unknown requests
        are left untouched.

        Returns:
            ``(request, tokens_generated)`` for the cancelled request —
            the generated count is the work wasted by the cancellation —
            or ``None`` if the request is not in flight here.
        """
        for index, request in enumerate(self._waiting):
            if request.request_id == request_id:
                self._waiting.pop(index)
                self._forget(request_id)
                return request, 0
        for entry in self._running:
            if entry.request.request_id == request_id:
                self._release_kv(request_id)
                self._running.remove(entry)
                self._forget(request_id)
                return entry.request, entry.generated
        return None

    def evacuate(self) -> list[tuple[ServeRequest, int]]:
        """Abort all in-flight work (replica crash hook).

        Empties the waiting queue and the running batch, freeing every
        KV allocation, and erases the outcome records of the evacuated
        requests (completed outcomes are kept).  The fleet requeues the
        evacuated requests elsewhere; tokens already generated by the
        running batch are lost and reported as wasted work.

        Returns:
            ``(request, tokens_generated)`` pairs in deterministic
            order: waiting queue first, then the running batch.
        """
        evacuated = [(request, 0) for request in self._waiting]
        for entry in self._running:
            self._release_kv(entry.request.request_id)
            evacuated.append((entry.request, entry.generated))
        self._waiting.clear()
        self._running.clear()
        for request, _ in evacuated:
            self._forget(request.request_id)
        # A crashed replica loses its pinned shared prefixes too.
        for tenant_id in self._prefix_resident:
            self.cache.free(prefix_seq_id(tenant_id))
        self._prefix_resident.clear()
        return evacuated

    def estimated_ttft_s(self, request: ServeRequest, now: float) -> float:
        """Deterministic TTFT estimate if ``request`` were routed here now.

        Counts the replica's clock lead over ``now``, the prefill work
        queued ahead of the request, and the request's own prefill —
        the quantity the cost/SLO-aware router compares against the
        TTFT SLO.  An underestimate under decode contention, but
        monotone in queue depth, which is what routing needs.
        """
        backlog = max(0.0, self._clock - now)
        backlog += self._scaled(sum(self._prefill_s(r.prompt_tokens)
                                    for r in self._waiting))
        return backlog + self._scaled(self._prefill_s(request.prompt_tokens))

    # -- KV isolation ---------------------------------------------------------

    def _kv_allocate(self, request: ServeRequest) -> None:
        """Allocate KV memory for an admitted request per isolation mode.

        Raises:
            MemoryError: If the request does not fit *right now* (the
                admission loop's signal to stop or look ahead).
        """
        if self.kv_isolation == "shared":
            self.cache.allocate(request.request_id, request.prompt_tokens)
            return
        tenant_id = request.tenant_id
        if self.kv_isolation == "partition":
            # Reserve the worst case up front: decode growth can then
            # never fail, so a partitioned replica never preempts and
            # tenants cannot evict each other.
            reserve = -(-(request.prompt_tokens + request.output_tokens)
                        // self.block_size)
            budget = self._tenant_budget[tenant_id]
            if reserve > budget:
                raise MemoryError(
                    f"tenant {tenant_id} partition has {budget} free "
                    f"blocks, request needs {reserve}")
            self.cache.allocate(request.request_id, request.prompt_tokens)
            self._tenant_budget[tenant_id] = budget - reserve
            self._kv_reserved[request.request_id] = (tenant_id, reserve)
            return
        # shared-prefix: the tenant's common prefix is pinned once under
        # a pseudo sequence id; requests allocate only their suffix.
        prefix = self.tenancy.prefix_of(tenant_id)
        usable = min(prefix, request.prompt_tokens - 1)
        if usable <= 0:
            self.cache.allocate(request.request_id, request.prompt_tokens)
            return
        suffix = request.prompt_tokens - usable
        suffix_blocks = -(-suffix // self.block_size)
        if tenant_id in self._prefix_resident:
            if suffix_blocks > self.cache.free_blocks:
                raise MemoryError(
                    f"need {suffix_blocks} blocks for request "
                    f"{request.request_id} suffix, only "
                    f"{self.cache.free_blocks} free")
            self.cache.allocate(request.request_id, suffix)
            self._prefix_hits += 1
            return
        prefix_blocks = -(-prefix // self.block_size)
        if prefix_blocks + suffix_blocks > self.cache.free_blocks:
            raise MemoryError(
                f"need {prefix_blocks + suffix_blocks} blocks to pin "
                f"tenant {tenant_id}'s prefix and admit request "
                f"{request.request_id}, only {self.cache.free_blocks} free")
        self.cache.allocate(prefix_seq_id(tenant_id), prefix)
        self.cache.allocate(request.request_id, suffix)
        self._prefix_resident[tenant_id] = prefix_blocks
        self._prefix_misses += 1

    def _release_kv(self, request_id: int) -> None:
        """Free a request's KV blocks and return any partition reserve."""
        self.cache.free(request_id)
        reserved = self._kv_reserved.pop(request_id, None)
        if reserved is not None:
            tenant_id, blocks = reserved
            self._tenant_budget[tenant_id] += blocks

    @property
    def prefix_hits(self) -> int:
        """Admissions that reused a resident shared prefix."""
        return self._prefix_hits

    @property
    def prefix_misses(self) -> int:
        """Admissions that had to pin a tenant's shared prefix."""
        return self._prefix_misses

    # -- admission ------------------------------------------------------------

    def _admit(self) -> None:
        """Admit arrived requests per policy while memory/slots allow."""
        if self._wfq:
            self._admit_wfq()
        else:
            self._admit_fcfs()

    def _admit_fcfs(self) -> None:
        """Admit arrived requests while memory and batch slots allow."""
        while (self._waiting and len(self._running) < self.max_batch
               and self._waiting[0].arrival_s <= self._clock):
            request = self._waiting[0]
            admitted_index = 0
            try:
                self._kv_allocate(request)
            except MemoryError:
                # Head-of-line blocking: strict FCFS stops here.  With
                # lookahead, scan a bounded window of arrived requests
                # for one that fits right now.
                admitted_index = -1
                for index in range(1, 1 + min(self.admission_lookahead,
                                              len(self._waiting) - 1)):
                    candidate = self._waiting[index]
                    if candidate.arrival_s > self._clock:
                        break
                    try:
                        self._kv_allocate(candidate)
                    except MemoryError:
                        continue
                    request = candidate
                    admitted_index = index
                    break
                if admitted_index < 0:
                    break
            self._waiting.pop(admitted_index)
            self._clock += self._scaled(self._prefill_s(request.prompt_tokens))
            outcome = self._outcomes[request.request_id]
            outcome.first_token_s = self._clock
            self._running.append(_Running(request=request, outcome=outcome))

    def _admit_wfq(self) -> None:
        """WFQ admission: serve arrived requests in virtual-finish order.

        The queue is tag-ordered, not arrival-ordered, so the head may
        not have arrived yet while a later entry has; the scan skips
        unarrived entries (they cost no lookahead budget) and treats the
        first arrived entry as the head of line.  On its allocation
        failure, ``admission_lookahead`` further *arrived* candidates
        are tried, exactly mirroring the FCFS window.
        """
        while self._waiting and len(self._running) < self.max_batch:
            head_index = -1
            for index, candidate in enumerate(self._waiting):
                if candidate.arrival_s <= self._clock:
                    head_index = index
                    break
            if head_index < 0:
                break  # nothing has arrived yet
            request = self._waiting[head_index]
            admitted_index = head_index
            try:
                self._kv_allocate(request)
            except MemoryError:
                admitted_index = -1
                scanned = 0
                for index in range(head_index + 1, len(self._waiting)):
                    if scanned >= self.admission_lookahead:
                        break
                    candidate = self._waiting[index]
                    if candidate.arrival_s > self._clock:
                        continue
                    scanned += 1
                    try:
                        self._kv_allocate(candidate)
                    except MemoryError:
                        continue
                    request = candidate
                    admitted_index = index
                    break
                if admitted_index < 0:
                    break
            self._waiting.pop(admitted_index)
            self._clock += self._scaled(self._prefill_s(request.prompt_tokens))
            # Advance the virtual clock to the admitted tag so freshly
            # tagged tenants start no earlier than the service frontier.
            tag = self._wfq_tag[request.request_id]
            if tag > self._wfq_v:
                self._wfq_v = tag
            outcome = self._outcomes[request.request_id]
            outcome.first_token_s = self._clock
            self._running.append(_Running(request=request, outcome=outcome))

    def _decode_once(self) -> list[RequestOutcome]:
        """One decode step for the whole batch; returns new finishes."""
        running = self._running
        contexts = [r.request.prompt_tokens + r.generated for r in running]
        mean_context = int(sum(contexts) / len(contexts))
        self._occupancy.append(len(running))
        self._clock += self._scaled(
            self._decode_step_s(len(running), max(1, mean_context)))

        finished: list[_Running] = []
        preempted_ids: set[int] = set()

        def preempt_youngest() -> _Running:
            victim = running[-1]
            self._release_kv(victim.request.request_id)
            victim.outcome.preemptions += 1
            victim.generated = 0
            running.remove(victim)
            if self._wfq:
                # The victim keeps its tag: it re-queues at its original
                # virtual position, not at the head.
                insort(self._waiting, victim.request, key=self._wfq_key)
            else:
                self._waiting.insert(0, victim.request)
            preempted_ids.add(victim.request.request_id)
            return victim

        for entry in list(running):
            if entry.request.request_id in preempted_ids:
                continue
            appended = False
            while not appended:
                try:
                    self.cache.append_token(entry.request.request_id)
                    appended = True
                except MemoryError:
                    # Preempt the youngest sequence; vLLM recomputes
                    # it from scratch on re-admission.
                    victim = preempt_youngest()
                    self._preemptions += 1
                    if victim is entry:
                        break
            if not appended:
                continue
            entry.generated += 1
            if entry.generated >= entry.request.output_tokens:
                finished.append(entry)
        results = []
        for entry in finished:
            entry.outcome.finish_s = self._clock
            self._release_kv(entry.request.request_id)
            running.remove(entry)
            results.append(entry.outcome)
        return results

    def step(self, until_s: float | None = None) -> list[RequestOutcome]:
        """Advance the serving loop up to a time horizon.

        Repeats admission/decode iterations while work exists and the
        local clock is below ``until_s`` (``None`` = run to completion).
        A decode or prefill step in flight at the horizon completes —
        steps are not preemptible — so the clock may end slightly past
        ``until_s``.  When the replica is idle, the clock jumps to the
        next arrival but never past the horizon (an idle replica's
        clock stays put so later submissions are not delayed).

        Returns:
            Outcomes of requests that finished during this call.
        """
        finished: list[RequestOutcome] = []
        while self._waiting or self._running:
            if until_s is not None and self._clock >= until_s:
                break
            if (not self._running and until_s is not None
                    and self._next_arrival_s() > until_s):
                break  # only future work remains in this horizon
            self._admit()
            if not self._running:
                # Idle until the next arrival.
                self._clock = max(self._clock, self._next_arrival_s())
                continue
            finished.extend(self._decode_once())
        return finished

    def _next_arrival_s(self) -> float:
        """Earliest arrival among waiting requests.

        Under FCFS the queue is arrival-ordered so the head suffices;
        under WFQ the queue is tag-ordered and must be scanned.
        """
        if self._wfq:
            return min(r.arrival_s for r in self._waiting)
        return self._waiting[0].arrival_s

    def report(self) -> ServingReport:
        """Aggregate metrics of everything served so far.

        Raises:
            ValueError: If nothing was ever submitted.
        """
        if not self._order:
            raise ValueError("no requests")
        ordered = tuple(self._outcomes[request_id]
                        for request_id in self._order)
        mean_occupancy = (sum(self._occupancy) / len(self._occupancy)
                          if self._occupancy else 0.0)
        start = self._first_arrival or 0.0
        return ServingReport(outcomes=ordered,
                             makespan_s=self._clock - start,
                             total_preemptions=self._preemptions,
                             mean_batch_occupancy=mean_occupancy,
                             start_s=start)

    # -- checkpoint/restore ---------------------------------------------------

    def config_fingerprint(self) -> dict:
        """Identity of the scheduler's configuration, for restore checks.

        The runtime state below only replays bit-identically on a
        scheduler built from the *same* configuration; the fingerprint
        lets :meth:`from_state` refuse a mismatched host early.
        """
        fingerprint = {
            "model": self.model.name,
            "dtype": self.dtype.name,
            "max_batch": self.max_batch,
            "block_size": self.block_size,
            "admission_lookahead": self.admission_lookahead,
            "num_blocks": self.cache.num_blocks,
        }
        # Key added only when armed: unarmed fingerprints (and thus
        # pre-tenancy snapshots) stay byte-compatible.
        if self.tenancy is not None:
            fingerprint["tenancy"] = self.tenancy.fingerprint()
        return fingerprint

    def _tenancy_state(self) -> dict:
        """Snapshot of the tenancy runtime (WFQ clocks, budgets, pins)."""
        return {
            "wfq_v": self._wfq_v,
            "wfq_fin": {str(tenant_id): fin
                        for tenant_id, fin in self._wfq_fin.items()},
            "wfq_tags": {str(request_id): tag
                         for request_id, tag in self._wfq_tag.items()},
            "tenant_budget": {str(tenant_id): budget
                              for tenant_id, budget
                              in self._tenant_budget.items()},
            "reserved": {str(request_id): [tenant_id, blocks]
                         for request_id, (tenant_id, blocks)
                         in self._kv_reserved.items()},
            "prefix_resident": {str(tenant_id): blocks
                                for tenant_id, blocks
                                in self._prefix_resident.items()},
            "prefix_hits": self._prefix_hits,
            "prefix_misses": self._prefix_misses,
        }

    def _restore_tenancy(self, payload: dict) -> None:
        """Install a :meth:`_tenancy_state` payload (post-restore)."""
        from ..state.errors import StateIntegrityError
        from ..state.schema import require, require_finite

        self._wfq_v = require_finite(payload, "wfq_v", "$.scheduler.tenancy")
        self._wfq_fin = {int(k): float(v) for k, v in
                         require(payload, "wfq_fin", dict,
                                 "$.scheduler.tenancy").items()}
        self._wfq_tag = {int(k): float(v) for k, v in
                         require(payload, "wfq_tags", dict,
                                 "$.scheduler.tenancy").items()}
        self._tenant_budget = {int(k): int(v) for k, v in
                               require(payload, "tenant_budget", dict,
                                       "$.scheduler.tenancy").items()}
        self._kv_reserved = {int(k): (int(v[0]), int(v[1])) for k, v in
                             require(payload, "reserved", dict,
                                     "$.scheduler.tenancy").items()}
        self._prefix_resident = {int(k): int(v) for k, v in
                                 require(payload, "prefix_resident", dict,
                                         "$.scheduler.tenancy").items()}
        self._prefix_hits = require(payload, "prefix_hits", int,
                                    "$.scheduler.tenancy")
        self._prefix_misses = require(payload, "prefix_misses", int,
                                      "$.scheduler.tenancy")
        if self._wfq:
            for request in self._waiting:
                if request.request_id not in self._wfq_tag:
                    raise StateIntegrityError(
                        f"waiting request {request.request_id} has no "
                        f"WFQ tag in the snapshot")

    def to_state(self) -> dict:
        """Plain-dict snapshot of the serving state machine.

        Requests are serialized once (inside their outcome records);
        the waiting queue and running batch reference them by id, which
        also lets restore re-establish the ``_Running.outcome is
        _outcomes[id]`` aliasing that finish times are written through.
        Derived memo caches (``_step_cache``/``_prefill_cache``) are
        rebuilt lazily and deliberately not captured.  When tenancy is
        armed the payload additionally carries the WFQ virtual clocks,
        per-tenant budgets and shared-prefix residency (absent when
        unarmed, keeping pre-tenancy snapshots byte-compatible).
        """
        if self.tenancy is not None:
            return {**self._base_state(),
                    "tenancy": self._tenancy_state()}
        return self._base_state()

    def _base_state(self) -> dict:
        return {
            "config": self.config_fingerprint(),
            "clock_s": self._clock,
            "preemptions": self._preemptions,
            "occupancy": list(self._occupancy),
            "first_arrival_s": self._first_arrival,
            "time_scale": self._time_scale,
            "order": list(self._order),
            "outcomes": {str(request_id): outcome.to_state()
                         for request_id, outcome in self._outcomes.items()},
            "waiting": [request.request_id for request in self._waiting],
            "running": [{"request_id": entry.request.request_id,
                         "generated": entry.generated}
                        for entry in self._running],
            "cache": self.cache.to_state(),
        }

    def from_state(self, state: dict) -> None:
        """Install a :meth:`to_state` snapshot into this scheduler.

        The scheduler must have been freshly built from the same
        configuration the snapshot was taken on.

        Raises:
            repro.state.errors.StateIntegrityError: If the snapshot's
                config fingerprint does not match this scheduler, or
                waiting/running entries reference unknown requests.
        """
        from ..state.errors import StateIntegrityError
        from ..state.schema import require

        config = require(state, "config", dict, "$.scheduler")
        mine = self.config_fingerprint()
        if config != mine:
            diverged = sorted(key for key in set(config) | set(mine)
                              if config.get(key) != mine.get(key))
            raise StateIntegrityError(
                f"scheduler snapshot was taken on a different "
                f"configuration (mismatched: {diverged})")

        outcomes: dict[int, RequestOutcome] = {}
        for key, payload in require(state, "outcomes", dict,
                                    "$.scheduler").items():
            outcomes[int(key)] = RequestOutcome.from_state(payload)
        waiting: list[ServeRequest] = []
        for request_id in require(state, "waiting", list, "$.scheduler"):
            if request_id not in outcomes:
                raise StateIntegrityError(
                    f"waiting request {request_id} has no outcome record")
            waiting.append(outcomes[request_id].request)
        running: list[_Running] = []
        for entry in require(state, "running", list, "$.scheduler"):
            request_id = require(entry, "request_id", int,
                                 "$.scheduler.running")
            if request_id not in outcomes:
                raise StateIntegrityError(
                    f"running request {request_id} has no outcome record")
            running.append(_Running(
                request=outcomes[request_id].request,
                outcome=outcomes[request_id],
                generated=require(entry, "generated", int,
                                  "$.scheduler.running")))

        self.cache = PagedKVCache.from_state(
            require(state, "cache", dict, "$.scheduler"))
        for entry in running:
            if entry.request.request_id not in self.cache._tables:
                raise StateIntegrityError(
                    f"running request {entry.request.request_id} has no "
                    f"KV allocation in the restored cache")
        self._outcomes = outcomes
        self._order = [int(request_id) for request_id
                       in require(state, "order", list, "$.scheduler")]
        self._waiting = waiting
        self._running = running
        self._clock = require(state, "clock_s", float, "$.scheduler")
        self._preemptions = require(state, "preemptions", int, "$.scheduler")
        self._occupancy = [int(n) for n in require(state, "occupancy", list,
                                                   "$.scheduler")]
        first = state.get("first_arrival_s")
        self._first_arrival = None if first is None else float(first)
        self._time_scale = require(state, "time_scale", float, "$.scheduler")
        if self.tenancy is not None:
            self._restore_tenancy(require(state, "tenancy", dict,
                                          "$.scheduler"))

    # -- serving loop -----------------------------------------------------------

    def run(self, requests: list[ServeRequest]) -> ServingReport:
        """Serve a request stream to completion.

        A thin wrapper over :meth:`step`: validates the whole stream,
        installs it as the waiting queue, and steps to completion.
        Per-request timelines are bit-identical to the pre-steppable
        run-to-completion loop (pinned by ``repro.validate``).

        Raises:
            ValueError: If any single request cannot ever fit the KV pool.
        """
        if not requests:
            raise ValueError("no requests")
        for request in requests:
            self._check_fits(request)

        self._reset()
        if self._wfq:
            # WFQ tags chain per tenant in submission order, so the
            # stream is submitted individually in arrival order (the
            # order the fleet would deliver it).
            for request in sorted(requests,
                                  key=lambda r: (r.arrival_s, r.request_id)):
                self.submit(request)
        else:
            self._waiting = sorted(requests,
                                   key=lambda r: (r.arrival_s, r.request_id))
            self._outcomes = {r.request_id: RequestOutcome(request=r)
                              for r in requests}
            self._order = [r.request_id for r in requests]
            self._first_arrival = min(r.arrival_s for r in requests)
        self.step(None)
        return self.report()


def poisson_stream(count: int, rate_per_s: float, mean_prompt: int = 256,
                   mean_output: int = 96, seed: int = 0) -> list[ServeRequest]:
    """A deterministic Poisson-like arrival stream for serving studies."""
    import random
    if count < 1 or rate_per_s <= 0:
        raise ValueError("count >= 1 and positive rate required")
    rng = random.Random(seed)
    clock = 0.0
    requests = []
    for request_id in range(count):
        clock += rng.expovariate(rate_per_s)
        prompt = max(16, int(rng.lognormvariate(0.0, 0.5) * mean_prompt))
        output = max(8, int(rng.lognormvariate(0.0, 0.4) * mean_output))
        requests.append(ServeRequest(request_id=request_id, arrival_s=clock,
                                     prompt_tokens=prompt,
                                     output_tokens=output))
    return requests
