"""Columnar continuous-batching scheduler (the event core's replica engine).

A bit-exact twin of
:class:`~repro.serving.scheduler.ContinuousBatchingScheduler` that
stores request state in parallel columns keyed by submission slot
instead of per-request ``ServeRequest``/``RequestOutcome`` objects:

* arrival / prompt / output / priority / first-token / finish /
  preemption-count live in append-only ``array`` columns,
* the running batch is a set of parallel Python lists (ids, prompts,
  generated counts, held KV blocks),
* the paged KV cache collapses to block *counts* (a free counter plus
  per-sequence held counts) — block identities never influence the
  object scheduler's behavior, only availability does.

Every float operation (prefill/decode charging, clock advancement,
preemption cascade order, admission lookahead scan) transcribes the
object scheduler exactly, and step durations come from the shared
:class:`~repro.serving.stepcost.StepCostTable`, so per-request
timelines are **bit-identical** — pinned by the
``fleet.event_core_parity`` audit family and the serving-level parity
tests.  The payoff is constant factors: no object allocation per
request, no exception-driven KV probing, and O(in-flight) live dict
state, which is what lets the fleet's event engine push ≥1M requests
through a single run.

API differences from the object scheduler (both deliberate):

* :meth:`step` returns finished request *ids*, not outcome objects —
  the fleet event core reads the timeline columns directly via
  :meth:`finished_triple` and materializes objects only on demand.
* :meth:`to_state` uses a columnar-native schema and the config
  fingerprint carries ``"engine": "columnar"``, so snapshots never
  restore across engines.
"""

from __future__ import annotations

import math
from array import array
from bisect import insort

from ..engine.placement import Deployment
from ..llm.config import ModelConfig
from ..llm.datatypes import DType
from .admission import TenancyConfig
from .scheduler import RequestOutcome, ServeRequest, ServingReport
from .stepcost import StepCostTable


class ColumnarScheduler:
    """vLLM-style continuous batching over columnar request state.

    Constructor arguments match
    :class:`~repro.serving.scheduler.ContinuousBatchingScheduler`
    exactly; see that class for the scheduling policy (strict-FCFS
    admission with optional bounded lookahead, preempt-youngest with
    full recompute, optional :class:`TenancyConfig` arming WFQ
    admission and per-tenant KV isolation).
    """

    def __init__(self, deployment: Deployment, model: ModelConfig,
                 dtype: DType, kv_capacity_tokens: int = 65536,
                 block_size: int = 16, max_batch: int = 64,
                 admission_lookahead: int = 0,
                 tenancy: TenancyConfig | None = None) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if admission_lookahead < 0:
            raise ValueError("admission_lookahead must be >= 0")
        self.deployment = deployment
        self.model = model
        self.dtype = dtype
        self.max_batch = max_batch
        self.block_size = block_size
        self.admission_lookahead = admission_lookahead
        self.tenancy = tenancy
        self.admission = tenancy.admission if tenancy else "fcfs"
        self.kv_isolation = tenancy.kv_isolation if tenancy else "shared"
        self._wfq = self.admission == "wfq"
        self.num_blocks = max(1, kv_capacity_tokens // block_size)
        self._costs = StepCostTable.shared(deployment, model, dtype)
        self._time_scale = 1.0
        self._reset()

    def _reset(self) -> None:
        # Append-only per-request columns, indexed by submission slot.
        self._col_id = array("q")
        self._col_arrival = array("d")
        self._col_prompt = array("l")
        self._col_output = array("l")
        self._col_priority = array("l")
        self._col_tenant = array("l")
        self._col_first = array("d")
        self._col_finish = array("d")
        self._col_preempt = array("l")
        self._slot: dict[int, int] = {}   # live request id -> slot
        self._dead: set[int] = set()      # forgotten/released slots
        # Waiting queue: (arrival_s, request_id) tuples under FCFS,
        # (wfq_tag, arrival_s, request_id) under WFQ — either way the
        # request id is entry[-1] and the arrival entry[-2].  Sorted,
        # except that FCFS preemptions re-enter at the head, as in the
        # object twin.
        self._waiting: list[tuple] = []
        # Running batch as parallel lists.  ``_run_kvlen`` is the KV
        # length the sequence was admitted with — the prompt, or just
        # the suffix under shared-prefix isolation — the basis of the
        # block-boundary test during decode.
        self._run_ids: list[int] = []
        self._run_prompt: list[int] = []
        self._run_output: list[int] = []
        self._run_gen: list[int] = []
        self._run_blocks: list[int] = []
        self._run_slot: list[int] = []
        self._run_kvlen: list[int] = []
        self._free_blocks = self.num_blocks
        self._ctx_total = 0               # sum(prompt + generated) over batch
        self._clock = 0.0
        self._preemptions = 0
        self._occ_sum = 0
        self._occ_count = 0
        self._first_arrival: float | None = None
        # Tenancy runtime state (inert when unarmed); mirrors the
        # object scheduler field-for-field.
        self._wfq_v = 0.0
        self._wfq_fin: dict[int, float] = {}
        self._wfq_tag: dict[int, float] = {}
        self._prefix_resident: dict[int, int] = {}
        self._prefix_hits = 0
        self._prefix_misses = 0
        self._kv_reserved: dict[int, tuple[int, int]] = {}
        if self.tenancy is not None and self.kv_isolation == "partition":
            self._tenant_budget_cap = self.tenancy.partition_budgets(
                self.num_blocks)
            self._tenant_budget = dict(self._tenant_budget_cap)
        else:
            self._tenant_budget_cap = {}
            self._tenant_budget = {}

    # -- introspection (object-scheduler-compatible surface) ------------------

    @property
    def clock_s(self) -> float:
        """The replica's local wall clock."""
        return self._clock

    @property
    def outstanding(self) -> int:
        """Requests admitted or queued but not yet finished."""
        return len(self._waiting) + len(self._run_ids)

    @property
    def queue_depth(self) -> int:
        """Requests waiting for admission."""
        return len(self._waiting)

    @property
    def kv_free_fraction(self) -> float:
        """Fraction of the KV block pool currently free."""
        return self._free_blocks / self.num_blocks

    @property
    def idle(self) -> bool:
        """No admitted or queued work."""
        return not self._waiting and not self._run_ids

    @property
    def preemptions(self) -> int:
        """Preempt-and-recompute events so far."""
        return self._preemptions

    def advance_clock_to(self, now_s: float) -> None:
        """Move the local clock forward to ``now_s`` (never backward)."""
        if math.isfinite(now_s):
            self._clock = max(self._clock, now_s)

    @property
    def time_scale(self) -> float:
        """Wall-time multiplier on every step (1.0 = nominal speed)."""
        return self._time_scale

    @time_scale.setter
    def time_scale(self, scale: float) -> None:
        if not math.isfinite(scale) or scale <= 0:
            raise ValueError("time_scale must be finite and positive")
        self._time_scale = scale

    def _scaled(self, step_s: float) -> float:
        # Guarded so the nominal path performs no float op at all.
        if self._time_scale != 1.0:
            return step_s * self._time_scale
        return step_s

    # -- request materialization ----------------------------------------------

    def _request_at(self, slot: int) -> ServeRequest:
        return ServeRequest(request_id=self._col_id[slot],
                            arrival_s=self._col_arrival[slot],
                            prompt_tokens=self._col_prompt[slot],
                            output_tokens=self._col_output[slot],
                            priority=self._col_priority[slot],
                            tenant_id=self._col_tenant[slot])

    def request(self, request_id: int) -> ServeRequest:
        """Materialize the live request with this id (value-equal copy)."""
        return self._request_at(self._slot[request_id])

    def output_tokens(self, request_id: int) -> int:
        """Output-token target of a live request (fleet accounting hook)."""
        return self._col_output[self._slot[request_id]]

    def finished_triple(self, request_id: int) -> tuple[float, float, int]:
        """``(first_token_s, finish_s, preemptions)`` of a live record."""
        slot = self._slot[request_id]
        return (self._col_first[slot], self._col_finish[slot],
                self._col_preempt[slot])

    def release(self, request_id: int) -> None:
        """Drop the live record of a *finished* request.

        The fleet event core copies the timeline triple into its own
        columns as finishes surface, then releases the id here so the
        scheduler's live dict stays O(in-flight) over a 1M-request run.
        The append-only columns retain the slot (cheap: a few plain
        scalars), it just no longer appears in :meth:`report`.
        """
        self._forget(request_id)

    # -- admission ------------------------------------------------------------

    def _check_fits(self, request: ServeRequest) -> None:
        needed = request.prompt_tokens + request.output_tokens
        if needed > self.num_blocks * self.block_size:
            raise ValueError(
                f"request {request.request_id} needs {needed} KV tokens, "
                f"pool holds {self.num_blocks * self.block_size}")
        if self.kv_isolation == "partition":
            cap = self._tenant_budget_cap.get(request.tenant_id)
            if cap is None:
                raise ValueError(
                    f"tenant {request.tenant_id} has no KV partition on "
                    f"this replica")
            worst_case = -(-needed // self.block_size)
            if worst_case > cap:
                raise ValueError(
                    f"request {request.request_id} needs {worst_case} "
                    f"blocks, tenant {request.tenant_id} partition holds "
                    f"{cap}")

    def submit(self, request: ServeRequest) -> None:
        """Enqueue one request for service (fleet/step entry point).

        Raises:
            ValueError: If the request cannot ever fit the KV pool or
                reuses an id still in flight.
        """
        self._check_fits(request)
        if request.request_id in self._slot:
            raise ValueError(f"request id {request.request_id} already "
                             "submitted to this replica")
        slot = len(self._col_id)
        self._col_id.append(request.request_id)
        self._col_arrival.append(request.arrival_s)
        self._col_prompt.append(request.prompt_tokens)
        self._col_output.append(request.output_tokens)
        self._col_priority.append(request.priority)
        self._col_tenant.append(request.tenant_id)
        self._col_first.append(0.0)
        self._col_finish.append(0.0)
        self._col_preempt.append(0)
        self._slot[request.request_id] = slot
        if self._wfq:
            # SCFQ tag, transcribed from the object twin float-for-float.
            start = max(self._wfq_fin.get(request.tenant_id, 0.0),
                        self._wfq_v)
            tag = start + ((request.prompt_tokens + request.output_tokens)
                           / self.tenancy.weight_of(request.tenant_id))
            self._wfq_fin[request.tenant_id] = tag
            self._wfq_tag[request.request_id] = tag
            insort(self._waiting,
                   (tag, request.arrival_s, request.request_id))
        else:
            insort(self._waiting, (request.arrival_s, request.request_id))
        if (self._first_arrival is None
                or request.arrival_s < self._first_arrival):
            self._first_arrival = request.arrival_s

    def _forget(self, request_id: int) -> None:
        """Drop all live bookkeeping for a request."""
        self._wfq_tag.pop(request_id, None)
        slot = self._slot.pop(request_id, None)
        if slot is not None:
            self._dead.add(slot)

    def _release_reserve(self, request_id: int) -> None:
        """Return a partition-mode worst-case reservation, if any."""
        reserved = self._kv_reserved.pop(request_id, None)
        if reserved is not None:
            tenant_id, blocks = reserved
            self._tenant_budget[tenant_id] += blocks

    def cancel(self, request_id: int) -> tuple[ServeRequest, int] | None:
        """Withdraw an unfinished request (fleet timeout/retry hook)."""
        for index, entry in enumerate(self._waiting):
            if entry[-1] == request_id:
                request = self.request(request_id)
                self._waiting.pop(index)
                self._forget(request_id)
                return request, 0
        for index, rid in enumerate(self._run_ids):
            if rid == request_id:
                request = self.request(request_id)
                generated = self._run_gen[index]
                self._free_blocks += self._run_blocks[index]
                self._release_reserve(request_id)
                self._ctx_total -= self._run_prompt[index] + generated
                self._remove_running(index)
                self._forget(request_id)
                return request, generated
        return None

    def evacuate(self) -> list[tuple[ServeRequest, int]]:
        """Abort all in-flight work (replica crash hook)."""
        evacuated = [(self.request(entry[-1]), 0)
                     for entry in self._waiting]
        for index, rid in enumerate(self._run_ids):
            self._free_blocks += self._run_blocks[index]
            self._release_reserve(rid)
            evacuated.append((self.request(rid), self._run_gen[index]))
        self._waiting.clear()
        del self._run_ids[:]
        del self._run_prompt[:]
        del self._run_output[:]
        del self._run_gen[:]
        del self._run_blocks[:]
        del self._run_slot[:]
        del self._run_kvlen[:]
        self._ctx_total = 0
        for request, _ in evacuated:
            self._forget(request.request_id)
        # A crashed replica loses its pinned shared prefixes too.
        for blocks in self._prefix_resident.values():
            self._free_blocks += blocks
        self._prefix_resident.clear()
        return evacuated

    def _remove_running(self, index: int) -> None:
        del self._run_ids[index]
        del self._run_prompt[index]
        del self._run_output[index]
        del self._run_gen[index]
        del self._run_blocks[index]
        del self._run_slot[index]
        del self._run_kvlen[index]

    def estimated_ttft_s(self, request: ServeRequest, now: float) -> float:
        """Deterministic TTFT estimate if ``request`` were routed here now."""
        prefill_s = self._costs.prefill_s
        prompts = self._col_prompt
        slots = self._slot
        backlog = max(0.0, self._clock - now)
        backlog += self._scaled(sum(prefill_s(prompts[slots[entry[-1]]])
                                    for entry in self._waiting))
        return backlog + self._scaled(prefill_s(request.prompt_tokens))

    @property
    def prefix_hits(self) -> int:
        """Admissions that reused a resident shared prefix."""
        return self._prefix_hits

    @property
    def prefix_misses(self) -> int:
        """Admissions that had to pin a tenant's shared prefix."""
        return self._prefix_misses

    def _admit(self) -> None:
        """Admit arrived requests per policy while memory/slots allow."""
        if self.tenancy is None:
            self._admit_default()
        elif self._wfq:
            self._admit_wfq()
        else:
            self._admit_fcfs_tenant()

    def _admit_default(self) -> None:
        """Unarmed FCFS fast path — the pre-tenancy loop, untouched."""
        waiting = self._waiting
        block_size = self.block_size
        while (waiting and len(self._run_ids) < self.max_batch
               and waiting[0][0] <= self._clock):
            _, rid = waiting[0]
            admitted_index = 0
            slot = self._slot[rid]
            prompt = self._col_prompt[slot]
            needed = -(-prompt // block_size)
            if needed > self._free_blocks:
                # Head-of-line blocking: strict FCFS stops here.  With
                # lookahead, scan a bounded window of arrived requests
                # for one that fits right now.
                admitted_index = -1
                for index in range(1, 1 + min(self.admission_lookahead,
                                              len(waiting) - 1)):
                    c_arrival, c_rid = waiting[index]
                    if c_arrival > self._clock:
                        break
                    c_slot = self._slot[c_rid]
                    c_prompt = self._col_prompt[c_slot]
                    c_needed = -(-c_prompt // block_size)
                    if c_needed > self._free_blocks:
                        continue
                    rid, slot = c_rid, c_slot
                    prompt, needed = c_prompt, c_needed
                    admitted_index = index
                    break
                if admitted_index < 0:
                    break
            self._free_blocks -= needed
            waiting.pop(admitted_index)
            self._start_running(rid, slot, prompt, needed, prompt)

    def _start_running(self, rid: int, slot: int, prompt: int,
                       blocks: int, kvlen: int) -> None:
        """Charge prefill and move an admitted request into the batch."""
        self._clock += self._scaled(self._costs.prefill_s(prompt))
        self._col_first[slot] = self._clock
        self._run_ids.append(rid)
        self._run_prompt.append(prompt)
        self._run_output.append(self._col_output[slot])
        self._run_gen.append(0)
        self._run_blocks.append(blocks)
        self._run_slot.append(slot)
        self._run_kvlen.append(kvlen)
        self._ctx_total += prompt

    def _kv_admit(self, rid: int, slot: int) -> tuple[int, int] | None:
        """Columnar twin of the object scheduler's ``_kv_allocate``.

        Returns ``(blocks_taken, kvlen)`` on success (the free counter
        already debited), or ``None`` if the request does not fit right
        now — the same decisions, in the same order, as the object
        engine's cache-backed path.
        """
        block_size = self.block_size
        prompt = self._col_prompt[slot]
        if self.kv_isolation == "shared":
            needed = -(-prompt // block_size)
            if needed > self._free_blocks:
                return None
            self._free_blocks -= needed
            return needed, prompt
        tenant_id = self._col_tenant[slot]
        if self.kv_isolation == "partition":
            reserve = -(-(prompt + self._col_output[slot]) // block_size)
            budget = self._tenant_budget[tenant_id]
            if reserve > budget:
                return None
            needed = -(-prompt // block_size)
            self._free_blocks -= needed
            self._tenant_budget[tenant_id] = budget - reserve
            self._kv_reserved[rid] = (tenant_id, reserve)
            return needed, prompt
        # shared-prefix
        prefix = self.tenancy.prefix_of(tenant_id)
        usable = min(prefix, prompt - 1)
        if usable <= 0:
            needed = -(-prompt // block_size)
            if needed > self._free_blocks:
                return None
            self._free_blocks -= needed
            return needed, prompt
        suffix = prompt - usable
        suffix_blocks = -(-suffix // block_size)
        if tenant_id in self._prefix_resident:
            if suffix_blocks > self._free_blocks:
                return None
            self._free_blocks -= suffix_blocks
            self._prefix_hits += 1
            return suffix_blocks, suffix
        prefix_blocks = -(-prefix // block_size)
        if prefix_blocks + suffix_blocks > self._free_blocks:
            return None
        self._free_blocks -= prefix_blocks + suffix_blocks
        self._prefix_resident[tenant_id] = prefix_blocks
        self._prefix_misses += 1
        return suffix_blocks, suffix

    def _admit_fcfs_tenant(self) -> None:
        """FCFS admission with tenancy KV isolation armed."""
        waiting = self._waiting
        while (waiting and len(self._run_ids) < self.max_batch
               and waiting[0][0] <= self._clock):
            rid = waiting[0][-1]
            admitted_index = 0
            slot = self._slot[rid]
            taken = self._kv_admit(rid, slot)
            if taken is None:
                admitted_index = -1
                for index in range(1, 1 + min(self.admission_lookahead,
                                              len(waiting) - 1)):
                    entry = waiting[index]
                    if entry[-2] > self._clock:
                        break
                    c_rid = entry[-1]
                    c_slot = self._slot[c_rid]
                    taken = self._kv_admit(c_rid, c_slot)
                    if taken is None:
                        continue
                    rid, slot = c_rid, c_slot
                    admitted_index = index
                    break
                if admitted_index < 0:
                    break
            waiting.pop(admitted_index)
            blocks, kvlen = taken
            self._start_running(rid, slot, self._col_prompt[slot],
                                blocks, kvlen)

    def _admit_wfq(self) -> None:
        """WFQ admission: serve arrived requests in virtual-finish order.

        Transcribes the object scheduler's ``_admit_wfq`` — scan for
        the first arrived entry in tag order, bounded lookahead over
        further *arrived* candidates on its allocation failure.
        """
        waiting = self._waiting
        while waiting and len(self._run_ids) < self.max_batch:
            head_index = -1
            for index, entry in enumerate(waiting):
                if entry[-2] <= self._clock:
                    head_index = index
                    break
            if head_index < 0:
                break  # nothing has arrived yet
            rid = waiting[head_index][-1]
            admitted_index = head_index
            slot = self._slot[rid]
            taken = self._kv_admit(rid, slot)
            if taken is None:
                admitted_index = -1
                scanned = 0
                for index in range(head_index + 1, len(waiting)):
                    if scanned >= self.admission_lookahead:
                        break
                    entry = waiting[index]
                    if entry[-2] > self._clock:
                        continue
                    scanned += 1
                    c_rid = entry[-1]
                    c_slot = self._slot[c_rid]
                    taken = self._kv_admit(c_rid, c_slot)
                    if taken is None:
                        continue
                    rid, slot = c_rid, c_slot
                    admitted_index = index
                    break
                if admitted_index < 0:
                    break
            waiting.pop(admitted_index)
            blocks, kvlen = taken
            self._start_running(rid, slot, self._col_prompt[slot],
                                blocks, kvlen)
            tag = self._wfq_tag[rid]
            if tag > self._wfq_v:
                self._wfq_v = tag

    # -- decode ----------------------------------------------------------------

    def _decode_once(self) -> list[int]:
        """One decode step for the whole batch; returns finished ids."""
        run_ids = self._run_ids
        run_gen = self._run_gen
        run_prompt = self._run_prompt
        run_blocks = self._run_blocks
        run_kvlen = self._run_kvlen
        batch = len(run_ids)
        mean_context = int(self._ctx_total / batch)
        self._occ_sum += batch
        self._occ_count += 1
        self._clock += self._scaled(
            self._costs.decode_step_s(batch, max(1, mean_context)))

        block_size = self.block_size
        preempted: set[int] = set()
        finished: list[tuple[int, int]] = []  # (index, request_id)

        def preempt_youngest() -> int:
            victim_id = run_ids.pop()
            victim_prompt = run_prompt.pop()
            self._run_output.pop()
            victim_gen = run_gen.pop()
            self._free_blocks += run_blocks.pop()
            victim_slot = self._run_slot.pop()
            run_kvlen.pop()
            self._release_reserve(victim_id)
            self._col_preempt[victim_slot] += 1
            self._ctx_total -= victim_prompt + victim_gen
            if self._wfq:
                # The victim keeps its tag: it re-queues at its
                # original virtual position, not at the head.
                insort(self._waiting,
                       (self._wfq_tag[victim_id],
                        self._col_arrival[victim_slot], victim_id))
            else:
                self._waiting.insert(0, (self._col_arrival[victim_slot],
                                         victim_id))
            preempted.add(victim_id)
            return victim_id

        # In-loop removals only pop from the tail, so an entry that
        # survives keeps its index — the snapshot index stays valid.
        for index, rid in enumerate(list(run_ids)):
            if rid in preempted:
                continue
            generated = run_gen[index]
            kvlen = run_kvlen[index]
            appended = False
            while not appended:
                if (kvlen + generated) % block_size == 0:
                    # The next token crosses a block boundary.
                    if self._free_blocks == 0:
                        # Preempt the youngest sequence; vLLM recomputes
                        # it from scratch on re-admission.
                        victim_id = preempt_youngest()
                        self._preemptions += 1
                        if victim_id == rid:
                            break
                        continue
                    self._free_blocks -= 1
                    run_blocks[index] += 1
                generated += 1
                run_gen[index] = generated
                self._ctx_total += 1
                appended = True
            if not appended:
                continue
            if generated >= self._run_output[index]:
                finished.append((index, rid))

        if not finished:
            return []
        results: list[int] = []
        for index, rid in finished:
            if index >= len(run_ids) or run_ids[index] != rid:
                # The object twin would crash here too (double-free on a
                # preempted-after-finish entry); it cannot arise because
                # a finished entry holds its blocks until this cleanup.
                raise RuntimeError("finished entry vanished mid-step")
            slot = self._run_slot[index]
            self._col_finish[slot] = self._clock
            self._free_blocks += run_blocks[index]
            self._release_reserve(rid)
            self._ctx_total -= run_prompt[index] + run_gen[index]
            results.append(rid)
        for index, _ in reversed(finished):
            self._remove_running(index)
        return results

    def step(self, until_s: float | None = None) -> list[int]:
        """Advance the serving loop up to a time horizon.

        Identical semantics to the object scheduler's ``step`` — the
        clock may overshoot ``until_s`` by one non-preemptible step —
        but returns the *ids* of requests that finished during this
        call (read their timelines via :meth:`finished_triple`).
        """
        finished: list[int] = []
        while self._waiting or self._run_ids:
            if until_s is not None and self._clock >= until_s:
                break
            if (not self._run_ids and until_s is not None
                    and self._next_arrival_s() > until_s):
                break  # only future work remains in this horizon
            self._admit()
            if not self._run_ids:
                # Idle until the next arrival.
                arrival = self._next_arrival_s()
                if arrival > self._clock:
                    self._clock = arrival
                continue
            finished.extend(self._decode_once())
        return finished

    def _next_arrival_s(self) -> float:
        """Earliest arrival among waiting requests.

        Under FCFS the queue is arrival-ordered so the head suffices;
        under WFQ the queue is tag-ordered and must be scanned.
        """
        if self._wfq:
            return min(entry[-2] for entry in self._waiting)
        return self._waiting[0][0]

    def report(self) -> ServingReport:
        """Aggregate metrics of everything served so far.

        Materializes transient :class:`RequestOutcome` objects from the
        columns (value-equal to the object scheduler's records).
        """
        outcomes = tuple(
            RequestOutcome(request=self._request_at(slot),
                           first_token_s=self._col_first[slot],
                           finish_s=self._col_finish[slot],
                           preemptions=self._col_preempt[slot])
            for slot in range(len(self._col_id))
            if slot not in self._dead)
        if not outcomes:
            raise ValueError("no requests")
        mean_occupancy = (self._occ_sum / self._occ_count
                          if self._occ_count else 0.0)
        start = self._first_arrival or 0.0
        return ServingReport(outcomes=outcomes,
                             makespan_s=self._clock - start,
                             total_preemptions=self._preemptions,
                             mean_batch_occupancy=mean_occupancy,
                             start_s=start)

    def run(self, requests: list[ServeRequest]) -> ServingReport:
        """Serve a request stream to completion (single-replica mode)."""
        if not requests:
            raise ValueError("no requests")
        for request in requests:
            self._check_fits(request)
        self._reset()
        if self._wfq:
            # WFQ tags chain per tenant in submission order; submit in
            # arrival order exactly as the object twin's run() does.
            ordered = sorted(requests,
                             key=lambda r: (r.arrival_s, r.request_id))
        else:
            ordered = requests
        for request in ordered:
            if request.request_id in self._slot:
                raise ValueError(f"request id {request.request_id} already "
                                 "submitted to this replica")
            self.submit(request)
        self.step(None)
        return self.report()

    # -- checkpoint/restore ---------------------------------------------------

    def config_fingerprint(self) -> dict:
        """Configuration identity, for restore checks.

        Carries ``"engine": "columnar"`` on top of the object
        scheduler's keys so a snapshot taken under one engine refuses
        to restore under the other (their runtime schemas differ).
        """
        fingerprint = {
            "engine": "columnar",
            "model": self.model.name,
            "dtype": self.dtype.name,
            "max_batch": self.max_batch,
            "block_size": self.block_size,
            "admission_lookahead": self.admission_lookahead,
            "num_blocks": self.num_blocks,
        }
        # Key added only when armed: unarmed fingerprints (and thus
        # pre-tenancy snapshots) stay byte-compatible.
        if self.tenancy is not None:
            fingerprint["tenancy"] = self.tenancy.fingerprint()
        return fingerprint

    def to_state(self) -> dict:
        """Plain-dict snapshot of the columnar state machine."""
        state = {
            "config": self.config_fingerprint(),
            "clock_s": self._clock,
            "preemptions": self._preemptions,
            "occ_sum": self._occ_sum,
            "occ_count": self._occ_count,
            "first_arrival_s": self._first_arrival,
            "time_scale": self._time_scale,
            "free_blocks": self._free_blocks,
            "columns": {
                "id": list(self._col_id),
                "arrival": list(self._col_arrival),
                "prompt": list(self._col_prompt),
                "output": list(self._col_output),
                "priority": list(self._col_priority),
                "tenant": list(self._col_tenant),
                "first": list(self._col_first),
                "finish": list(self._col_finish),
                "preempt": list(self._col_preempt),
            },
            "dead": sorted(self._dead),
            "waiting": [list(entry) for entry in self._waiting],
            "running": [{"request_id": self._run_ids[i],
                         "generated": self._run_gen[i],
                         "blocks": self._run_blocks[i],
                         "slot": self._run_slot[i],
                         "kv_tokens": self._run_kvlen[i]}
                        for i in range(len(self._run_ids))],
        }
        if self.tenancy is not None:
            state["tenancy"] = {
                "wfq_v": self._wfq_v,
                "wfq_fin": {str(tenant_id): fin
                            for tenant_id, fin in self._wfq_fin.items()},
                "wfq_tags": {str(request_id): tag
                             for request_id, tag in self._wfq_tag.items()},
                "tenant_budget": {str(tenant_id): budget
                                  for tenant_id, budget
                                  in self._tenant_budget.items()},
                "reserved": {str(request_id): [tenant_id, blocks]
                             for request_id, (tenant_id, blocks)
                             in self._kv_reserved.items()},
                "prefix_resident": {str(tenant_id): blocks
                                    for tenant_id, blocks
                                    in self._prefix_resident.items()},
                "prefix_hits": self._prefix_hits,
                "prefix_misses": self._prefix_misses,
            }
        return state

    def from_state(self, state: dict) -> None:
        """Install a :meth:`to_state` snapshot into this scheduler.

        Raises:
            repro.state.errors.StateIntegrityError: If the snapshot's
                config fingerprint does not match this scheduler or its
                internal invariants do not hold.
        """
        from ..state.errors import StateIntegrityError
        from ..state.schema import require

        config = require(state, "config", dict, "$.scheduler")
        mine = self.config_fingerprint()
        if config != mine:
            diverged = sorted(key for key in set(config) | set(mine)
                              if config.get(key) != mine.get(key))
            raise StateIntegrityError(
                f"scheduler snapshot was taken on a different "
                f"configuration (mismatched: {diverged})")

        columns = require(state, "columns", dict, "$.scheduler")
        cols = {name: require(columns, name, list, "$.scheduler.columns")
                for name in ("id", "arrival", "prompt", "output", "priority",
                             "first", "finish", "preempt")}
        length = len(cols["id"])
        # Lenient: pre-tenancy snapshots have no tenant column.
        cols["tenant"] = (require(columns, "tenant", list,
                                  "$.scheduler.columns")
                          if "tenant" in columns else [0] * length)
        if any(len(values) != length for values in cols.values()):
            raise StateIntegrityError("ragged columnar snapshot")
        dead = {int(slot) for slot in require(state, "dead", list,
                                              "$.scheduler")}
        if any(slot < 0 or slot >= length for slot in dead):
            raise StateIntegrityError("dead slot out of range")
        slot_map: dict[int, int] = {}
        for slot in range(length):
            if slot in dead:
                continue
            rid = int(cols["id"][slot])
            if rid in slot_map:
                raise StateIntegrityError(
                    f"request {rid} is live in two slots")
            slot_map[rid] = slot

        expected_width = 3 if self._wfq else 2
        waiting: list[tuple] = []
        for pair in require(state, "waiting", list, "$.scheduler"):
            if len(pair) != expected_width:
                raise StateIntegrityError(
                    f"waiting entry width {len(pair)} does not match the "
                    f"{self.admission!r} admission policy")
            rid = int(pair[-1])
            if rid not in slot_map:
                raise StateIntegrityError(
                    f"waiting request {rid} has no live column slot")
            if self._wfq:
                waiting.append((float(pair[0]), float(pair[1]), rid))
            else:
                waiting.append((float(pair[0]), rid))
        run_ids: list[int] = []
        run_gen: list[int] = []
        run_blocks: list[int] = []
        run_slot: list[int] = []
        run_kvlen: list[int] = []
        for entry in require(state, "running", list, "$.scheduler"):
            rid = require(entry, "request_id", int, "$.scheduler.running")
            if rid not in slot_map:
                raise StateIntegrityError(
                    f"running request {rid} has no live column slot")
            run_ids.append(rid)
            run_gen.append(require(entry, "generated", int,
                                   "$.scheduler.running"))
            run_blocks.append(require(entry, "blocks", int,
                                      "$.scheduler.running"))
            slot = require(entry, "slot", int, "$.scheduler.running")
            run_slot.append(slot)
            # Lenient: pre-tenancy snapshots carry no kv_tokens (the
            # KV length always equalled the prompt).
            run_kvlen.append(int(entry.get("kv_tokens",
                                           cols["prompt"][slot])))
        tenancy_payload = None
        pinned_blocks = 0
        if self.tenancy is not None:
            tenancy_payload = require(state, "tenancy", dict, "$.scheduler")
            pinned_blocks = sum(
                int(blocks) for blocks in
                require(tenancy_payload, "prefix_resident", dict,
                        "$.scheduler.tenancy").values())
        free_blocks = require(state, "free_blocks", int, "$.scheduler")
        if free_blocks + sum(run_blocks) + pinned_blocks != self.num_blocks:
            raise StateIntegrityError(
                "KV block conservation violated in snapshot")

        self._col_id = array("q", (int(v) for v in cols["id"]))
        self._col_arrival = array("d", (float(v) for v in cols["arrival"]))
        self._col_prompt = array("l", (int(v) for v in cols["prompt"]))
        self._col_output = array("l", (int(v) for v in cols["output"]))
        self._col_priority = array("l", (int(v) for v in cols["priority"]))
        self._col_tenant = array("l", (int(v) for v in cols["tenant"]))
        self._col_first = array("d", (float(v) for v in cols["first"]))
        self._col_finish = array("d", (float(v) for v in cols["finish"]))
        self._col_preempt = array("l", (int(v) for v in cols["preempt"]))
        self._slot = slot_map
        self._dead = dead
        self._waiting = waiting
        self._run_ids = run_ids
        self._run_prompt = [self._col_prompt[s] for s in run_slot]
        self._run_output = [self._col_output[s] for s in run_slot]
        self._run_gen = run_gen
        self._run_blocks = run_blocks
        self._run_slot = run_slot
        self._run_kvlen = run_kvlen
        self._free_blocks = free_blocks
        self._ctx_total = sum(self._run_prompt) + sum(run_gen)
        self._clock = require(state, "clock_s", float, "$.scheduler")
        self._preemptions = require(state, "preemptions", int, "$.scheduler")
        self._occ_sum = require(state, "occ_sum", int, "$.scheduler")
        self._occ_count = require(state, "occ_count", int, "$.scheduler")
        first = state.get("first_arrival_s")
        self._first_arrival = None if first is None else float(first)
        self._time_scale = require(state, "time_scale", float, "$.scheduler")
        if tenancy_payload is not None:
            self._restore_tenancy(tenancy_payload)

    def _restore_tenancy(self, payload: dict) -> None:
        """Install a tenancy runtime payload (post-restore)."""
        from ..state.errors import StateIntegrityError
        from ..state.schema import require, require_finite

        self._wfq_v = require_finite(payload, "wfq_v", "$.scheduler.tenancy")
        self._wfq_fin = {int(k): float(v) for k, v in
                         require(payload, "wfq_fin", dict,
                                 "$.scheduler.tenancy").items()}
        self._wfq_tag = {int(k): float(v) for k, v in
                         require(payload, "wfq_tags", dict,
                                 "$.scheduler.tenancy").items()}
        self._tenant_budget = {int(k): int(v) for k, v in
                               require(payload, "tenant_budget", dict,
                                       "$.scheduler.tenancy").items()}
        self._kv_reserved = {int(k): (int(v[0]), int(v[1])) for k, v in
                             require(payload, "reserved", dict,
                                     "$.scheduler.tenancy").items()}
        self._prefix_resident = {int(k): int(v) for k, v in
                                 require(payload, "prefix_resident", dict,
                                         "$.scheduler.tenancy").items()}
        self._prefix_hits = require(payload, "prefix_hits", int,
                                    "$.scheduler.tenancy")
        self._prefix_misses = require(payload, "prefix_misses", int,
                                      "$.scheduler.tenancy")
        if self._wfq:
            for entry in self._waiting:
                if entry[-1] not in self._wfq_tag:
                    raise StateIntegrityError(
                        f"waiting request {entry[-1]} has no WFQ tag in "
                        f"the snapshot")
