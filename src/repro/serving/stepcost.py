"""Shared, memoized step-duration table for serving schedulers.

Both serving cores — the object-per-request
:class:`~repro.serving.scheduler.ContinuousBatchingScheduler` and the
columnar :class:`~repro.serving.columnar.ColumnarScheduler` — must
charge *bit-identical* durations for the same (batch, context) decode
step and the same prompt prefill, or the event/stepped fleet parity
contract breaks.  Extracting the computation (and its memo keys) into
one class makes that equivalence structural instead of accidental:
there is exactly one code path that turns a step shape into seconds.

The numbers themselves are unchanged from the original in-scheduler
helpers: decode contexts are bucketed to 64-token multiples (floored at
16) before the cost model runs, and prefill is keyed on the exact
prompt length.
"""

from __future__ import annotations

from ..engine.placement import Deployment
from ..engine.roofline import WorkingSets, cost_model_for
from ..llm.config import ModelConfig
from ..llm.datatypes import DType
from ..llm.graph import decode_step_ops, prefill_ops
from ..memo import MemoCache

#: Shared tables by (deployment, model, dtype): a fleet of identical
#: replicas costs each unique prompt length once, not once per replica.
_SHARED_TABLES = MemoCache("step_cost_table", maxsize=32)


class StepCostTable:
    """Memoized decode-step and prefill durations for one deployment.

    Args:
        deployment: Where the model serves (any backend).
        model: Served architecture.
        dtype: Serving datatype.
    """

    def __init__(self, deployment: Deployment, model: ModelConfig,
                 dtype: DType) -> None:
        self.deployment = deployment
        self.model = model
        self.dtype = dtype
        self._cost_model = cost_model_for(deployment)
        self._step_cache: dict[tuple[int, int], float] = {}
        self._prefill_cache: dict[int, float] = {}

    @classmethod
    def shared(cls, deployment: Deployment, model: ModelConfig,
               dtype: DType) -> "StepCostTable":
        """The process-wide table for this configuration.

        Identical configurations (by value) share one memo, so a fleet
        of same-spec replicas never costs the same step shape twice.
        Falls back to a private table if the configuration is
        unhashable.
        """
        try:
            return _SHARED_TABLES.get_or_compute(
                (deployment, model, dtype),
                lambda: cls(deployment, model, dtype))
        except TypeError:
            return cls(deployment, model, dtype)

    @staticmethod
    def context_bucket(context: int) -> int:
        """Bucket a decode context to the memoized 64-token grid."""
        return max(16, (context // 64) * 64)

    def _sets(self, batch: int, context: int) -> WorkingSets:
        weights = self.model.weight_bytes(self.dtype.bytes)
        kv = batch * context * self.model.kv_bytes_per_token(self.dtype.bytes)
        return WorkingSets(weights=weights, kv=kv, activations=64e6)

    def decode_step_s(self, batch: int, context: int) -> float:
        """Duration of one decode step at ``batch`` sequences."""
        context_bucket = max(16, (context // 64) * 64)
        key = (batch, context_bucket)
        cached = self._step_cache.get(key)
        if cached is None:
            ops = decode_step_ops(self.model, self.dtype, batch,
                                  context_bucket)
            step = self._cost_model.step_cost(
                ops, self._sets(batch, context_bucket), self.dtype)
            cached = self._step_cache[key] = step.total_s
        return cached

    def prefill_s(self, prompt_tokens: int) -> float:
        """Duration of a single-sequence prefill of ``prompt_tokens``."""
        cached = self._prefill_cache.get(prompt_tokens)
        if cached is None:
            ops = prefill_ops(self.model, self.dtype, 1, prompt_tokens)
            step = self._cost_model.step_cost(
                ops, self._sets(1, prompt_tokens), self.dtype)
            cached = self._prefill_cache[prompt_tokens] = step.total_s
        return cached
