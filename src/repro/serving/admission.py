"""Multi-tenant admission and KV-isolation policy configuration.

:class:`TenancyConfig` is the single value object that arms tenancy in
both scheduler engines (:mod:`repro.serving.scheduler` and
:mod:`repro.serving.columnar`).  It lives in the serving layer — not in
:mod:`repro.tenancy` — because the schedulers must consume it without
importing the higher tenancy plane (tenancy -> fleet -> serving is the
only allowed direction).

Admission policies
------------------

``fcfs``
    Strict arrival-order admission — the pre-tenancy behavior, kept
    byte-identical when tenancy is unarmed.

``wfq``
    Start-time-clocked weighted fair queueing (SCFQ).  Each request is
    tagged at submission with a *virtual finish time*::

        start  = max(fin[tenant], V)
        finish = start + (prompt_tokens + output_tokens) / weight[tenant]

    where ``fin[tenant]`` chains the tenant's previous tag and ``V`` is
    the scheduler's global virtual clock, advanced to the tag of every
    admitted request.  The waiting queue is ordered by
    ``(finish_tag, arrival_s, request_id)``; admission scans that order
    for the first *already-arrived* request.  Tags are assigned once at
    submission and survive preemption, so a preempted request re-queues
    at its original virtual position.

KV isolation modes
------------------

``shared``
    One pool, first-come-first-allocated — the pre-tenancy behavior.

``partition``
    Hard per-tenant block budgets.  A tenant's budget is reserved
    worst-case at admission (``ceil((prompt + output) / block_size)``
    blocks), which makes decode-time growth infallible: a partitioned
    scheduler can never preempt, so the noisy-neighbor channel through
    the KV pool is closed entirely.

``shared-prefix``
    Cross-request prefix sharing: each tenant may pin a common prompt
    prefix (RAG system prompt, few-shot header) once; subsequent
    requests allocate only their suffix and count as prefix *hits*.
    The first request of a tenant pays the pin and counts as a *miss*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

ADMISSION_POLICIES = ("fcfs", "wfq")
KV_ISOLATION_MODES = ("shared", "partition", "shared-prefix")


@dataclass(frozen=True)
class TenancyConfig:
    """Per-replica tenancy policy (admission + KV isolation).

    Attributes:
        admission: One of :data:`ADMISSION_POLICIES`.
        weights: ``(tenant_id, weight)`` pairs for WFQ; tenants absent
            from the table get weight 1.0.
        kv_isolation: One of :data:`KV_ISOLATION_MODES`.
        prefix_tokens: ``(tenant_id, tokens)`` pairs: the shared prompt
            prefix each tenant pins under ``shared-prefix`` isolation.
        partition_shares: ``(tenant_id, share)`` pairs: each tenant's
            fraction of the KV block pool under ``partition`` isolation.
            Shares must sum to at most 1.  Unknown tenants cannot be
            served by a partitioned replica.
    """

    admission: str = "fcfs"
    weights: tuple[tuple[int, float], ...] = ()
    kv_isolation: str = "shared"
    prefix_tokens: tuple[tuple[int, int], ...] = ()
    partition_shares: tuple[tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        if self.admission not in ADMISSION_POLICIES:
            raise ValueError(f"admission must be one of {ADMISSION_POLICIES},"
                             f" got {self.admission!r}")
        if self.kv_isolation not in KV_ISOLATION_MODES:
            raise ValueError(f"kv_isolation must be one of "
                             f"{KV_ISOLATION_MODES}, got "
                             f"{self.kv_isolation!r}")
        for label, pairs in (("weights", self.weights),
                             ("prefix_tokens", self.prefix_tokens),
                             ("partition_shares", self.partition_shares)):
            seen: set[int] = set()
            for tenant_id, value in pairs:
                if tenant_id < 0:
                    raise ValueError(f"{label}: tenant ids must be >= 0")
                if tenant_id in seen:
                    raise ValueError(f"{label}: duplicate tenant "
                                     f"{tenant_id}")
                seen.add(tenant_id)
                if not math.isfinite(value) or value <= 0:
                    raise ValueError(
                        f"{label}: value for tenant {tenant_id} must be "
                        f"finite and positive, got {value!r}")
        if self.kv_isolation == "partition":
            if not self.partition_shares:
                raise ValueError(
                    "partition isolation requires partition_shares")
            total = sum(share for _, share in self.partition_shares)
            if total > 1.0 + 1e-9:
                raise ValueError(
                    f"partition_shares sum to {total}, must be <= 1")
        # Frozen dataclass: stash lookup maps via object.__setattr__.
        # They are derived, so eq/hash over the declared fields stays
        # the identity of the policy.
        object.__setattr__(self, "_weight_map", dict(self.weights))
        object.__setattr__(self, "_prefix_map", dict(self.prefix_tokens))

    def weight_of(self, tenant_id: int) -> float:
        """WFQ weight for a tenant (1.0 when not configured)."""
        return self._weight_map.get(tenant_id, 1.0)

    def prefix_of(self, tenant_id: int) -> int:
        """Pinned shared-prefix length for a tenant (0 = no sharing)."""
        return self._prefix_map.get(tenant_id, 0)

    def partition_budgets(self, num_blocks: int) -> dict[int, int]:
        """Integral per-tenant block budgets under ``partition`` mode.

        Budgets are carved with a cumulative-floor scheme — tenant *i*
        gets ``floor(cum_i * N) - floor(cum_{i-1} * N)`` blocks over
        shares sorted by tenant id — so the budgets are deterministic
        and always sum to at most ``num_blocks`` regardless of float
        rounding in the shares.
        """
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        budgets: dict[int, int] = {}
        cumulative = 0.0
        previous_floor = 0
        for tenant_id, share in sorted(self.partition_shares):
            cumulative += share
            current_floor = min(num_blocks, math.floor(cumulative * num_blocks))
            budgets[tenant_id] = current_floor - previous_floor
            previous_floor = current_floor
        return budgets

    def fingerprint(self) -> dict:
        """JSON-stable identity of this policy (for config fingerprints).

        Emits lists (not tuples) so the value survives a JSON round
        trip unchanged — snapshot restore compares fingerprints with
        plain ``==``.
        """
        return {
            "admission": self.admission,
            "weights": [[int(t), float(w)] for t, w in self.weights],
            "kv_isolation": self.kv_isolation,
            "prefix_tokens": [[int(t), int(p)]
                              for t, p in self.prefix_tokens],
            "partition_shares": [[int(t), float(s)]
                                 for t, s in self.partition_shares],
        }

    def to_state(self) -> dict:
        """Snapshot payload (same shape as :meth:`fingerprint`)."""
        return self.fingerprint()

    @classmethod
    def from_state(cls, state: dict) -> "TenancyConfig":
        """Rebuild a policy from :meth:`to_state`."""
        from ..state.errors import StateError, StateValueError
        from ..state.schema import require
        try:
            return cls(
                admission=require(state, "admission", str, "$.tenancy"),
                weights=tuple((int(t), float(w)) for t, w in
                              require(state, "weights", list, "$.tenancy")),
                kv_isolation=require(state, "kv_isolation", str, "$.tenancy"),
                prefix_tokens=tuple(
                    (int(t), int(p)) for t, p in
                    require(state, "prefix_tokens", list, "$.tenancy")),
                partition_shares=tuple(
                    (int(t), float(s)) for t, s in
                    require(state, "partition_shares", list, "$.tenancy")),
            )
        except StateError:
            raise
        except (TypeError, ValueError) as error:
            raise StateValueError(
                f"invalid tenancy payload: {error}") from error


def prefix_seq_id(tenant_id: int) -> int:
    """Pseudo sequence id pinning a tenant's shared prefix in the cache.

    Real request ids are non-negative, so negative ids can never
    collide; ``-(tenant_id + 1)`` keeps tenant 0 distinct from any
    request.
    """
    return -(tenant_id + 1)
