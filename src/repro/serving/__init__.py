"""Serving substrate: continuous batching over a paged KV cache."""

from .admission import (
    ADMISSION_POLICIES,
    KV_ISOLATION_MODES,
    TenancyConfig,
)
from .columnar import ColumnarScheduler
from .scheduler import (
    ContinuousBatchingScheduler,
    RequestOutcome,
    ServeRequest,
    ServingReport,
    poisson_stream,
)
from .stepcost import StepCostTable

__all__ = [
    "ADMISSION_POLICIES", "ColumnarScheduler",
    "ContinuousBatchingScheduler", "KV_ISOLATION_MODES", "RequestOutcome",
    "ServeRequest", "ServingReport", "StepCostTable", "TenancyConfig",
    "poisson_stream",
]
