"""Serving substrate: continuous batching over a paged KV cache."""

from .scheduler import (
    ContinuousBatchingScheduler,
    RequestOutcome,
    ServeRequest,
    ServingReport,
    poisson_stream,
)

__all__ = [
    "ContinuousBatchingScheduler", "RequestOutcome", "ServeRequest",
    "ServingReport", "poisson_stream",
]
