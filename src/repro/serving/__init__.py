"""Serving substrate: continuous batching over a paged KV cache."""

from .columnar import ColumnarScheduler
from .scheduler import (
    ContinuousBatchingScheduler,
    RequestOutcome,
    ServeRequest,
    ServingReport,
    poisson_stream,
)
from .stepcost import StepCostTable

__all__ = [
    "ColumnarScheduler", "ContinuousBatchingScheduler", "RequestOutcome",
    "ServeRequest", "ServingReport", "StepCostTable", "poisson_stream",
]
