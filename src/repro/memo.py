"""Process-wide memoization caches with hit/miss accounting.

The simulator's hot paths (op-graph construction, step costing, the
vectorized decode-cost engine) recompute identical values across sweeps,
figures and tests.  :class:`MemoCache` gives those paths a small, bounded
LRU memo with hit/miss counters; every cache registers itself in a global
registry so :mod:`repro.core.profiling` can report and reset the whole
set at once.

This module is deliberately dependency-free (no imports from elsewhere
in :mod:`repro`) so any layer — ``llm``, ``engine``, ``core`` — can use
it without import cycles.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time statistics of one :class:`MemoCache`."""

    name: str
    hits: int
    misses: int
    size: int
    maxsize: int
    evictions: int

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 before any lookup)."""
        total = self.lookups
        return self.hits / total if total else 0.0


#: Global registry of live caches, keyed by cache name.
_REGISTRY: dict[str, "MemoCache"] = {}


class MemoCache:
    """A bounded LRU memo cache with hit/miss counters.

    Values are computed once per key via :meth:`get_or_compute` and must
    be treated as immutable by callers — entries are shared across every
    consumer for the life of the process.

    Args:
        name: Registry name (must be unique per process).
        maxsize: Entry bound; least-recently-used entries are evicted.
    """

    def __init__(self, name: str, maxsize: int = 1024) -> None:
        if not name:
            raise ValueError("cache name must be non-empty")
        if name in _REGISTRY:
            raise ValueError(f"duplicate cache name {name!r}")
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        _REGISTRY[name] = self

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get_or_compute(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on miss."""
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            self.hits += 1
            return entries[key]
        self.misses += 1
        value = factory()
        entries[key] = value
        if len(entries) > self.maxsize:
            entries.popitem(last=False)
            self.evictions += 1
        return value

    def clear(self, reset_counters: bool = True) -> None:
        """Drop every entry (and, by default, the counters)."""
        self._entries.clear()
        if reset_counters:
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> CacheStats:
        """Snapshot the current counters."""
        return CacheStats(name=self.name, hits=self.hits, misses=self.misses,
                          size=len(self._entries), maxsize=self.maxsize,
                          evictions=self.evictions)


def registered_caches() -> dict[str, MemoCache]:
    """All caches created in this process, by name."""
    return dict(_REGISTRY)


def all_cache_stats() -> dict[str, CacheStats]:
    """Statistics for every registered cache."""
    return {name: cache.stats() for name, cache in _REGISTRY.items()}


def clear_all_caches(reset_counters: bool = True) -> None:
    """Clear every registered cache (tests, benchmarks, workers)."""
    for cache in _REGISTRY.values():
        cache.clear(reset_counters=reset_counters)
