"""Per-tenant billing: an exact partition of the fleet bill.

The fleet bill (:attr:`repro.fleet.report.FleetReport.cost_usd`) is a
float sum of per-replica instance-hour charges.  Splitting it
proportionally among tenants in floats would leak or mint fractional
cents; invoices must *partition* the bill exactly.  This module
attributes the bill in integer cents with the largest-remainder
method: every tenant gets the floor of its proportional share, and the
leftover cents go to the tenants with the largest fractional
remainders (ties broken toward the lower tenant id).  The per-tenant
ledgers therefore always sum to ``round(total_usd * 100)`` — the
invariant the ``tenancy.billing_conservation`` audit check pins across
fault and spill regimes.
"""

from __future__ import annotations

import math


def partition_bill_cents(total_usd: float,
                         tokens_by_tenant: dict[int, int]) -> dict[int, int]:
    """Split a fleet bill into per-tenant integer cents, exactly.

    Attribution is proportional to each tenant's completed (good)
    tokens.  Tenants with zero tokens are billed zero — except when
    *no* tenant produced tokens, in which case the bill is split
    evenly (everyone shared the idle fleet).

    Args:
        total_usd: The fleet bill (must be finite and >= 0).
        tokens_by_tenant: Good tokens per tenant id.

    Returns:
        Cents per tenant id, summing to ``round(total_usd * 100)``.
    """
    if not math.isfinite(total_usd) or total_usd < 0:
        raise ValueError("total_usd must be finite and >= 0")
    if not tokens_by_tenant:
        raise ValueError("tokens_by_tenant must not be empty")
    if any(tokens < 0 for tokens in tokens_by_tenant.values()):
        raise ValueError("token counts must be >= 0")
    total_cents = round(total_usd * 100)
    tenants = sorted(tokens_by_tenant)
    total_tokens = sum(tokens_by_tenant.values())
    if total_tokens == 0:
        # Idle fleet: even split, remainder cents to the lowest ids.
        base, leftover = divmod(total_cents, len(tenants))
        return {tenant: base + (1 if rank < leftover else 0)
                for rank, tenant in enumerate(tenants)}
    shares = {tenant: total_cents * tokens_by_tenant[tenant] / total_tokens
              for tenant in tenants}
    cents = {tenant: math.floor(shares[tenant]) for tenant in tenants}
    leftover = total_cents - sum(cents.values())
    # Largest fractional remainder first; ties toward the lower id.
    by_remainder = sorted(tenants,
                          key=lambda t: (-(shares[t] - cents[t]), t))
    for tenant in by_remainder[:leftover]:
        cents[tenant] += 1
    return cents
