"""Tenant populations: who shares the confidential fleet, and how much.

A :class:`TenantSpec` describes one customer of a multi-tenant serving
plane — its arrival process, request-size distribution, WFQ weight,
priority class, and TTFT SLO.  A :class:`TenantPopulation` composes
several specs into one deterministic request stream: each tenant draws
from its own seeded RNG (so adding or removing a tenant never perturbs
the others' requests), and the per-tenant streams are merged by
``(arrival_s, tenant_id, local_index)`` with global request ids
assigned in merge order.

Both engines consume the same population: :meth:`~TenantPopulation
.stream` materializes :class:`~repro.serving.scheduler.ServeRequest`
objects for the stepped engine and :meth:`~TenantPopulation.table`
builds the value-equal columnar :class:`~repro.fleet.table
.RequestTable` for the event engine — from the *same* per-tenant draw
lists, merged by an ``np.lexsort`` over the same keys, so the two
views are bit-identical by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from ..fleet.arrivals import (
    ARRIVAL_KINDS,
    _diurnal_times,
    _mmpp_times,
    _poisson_times,
    _sample_sizes,
)
from ..fleet.table import RequestTable
from ..serving.admission import TenancyConfig
from ..serving.scheduler import ServeRequest


def _tenant_seed(seed: int, tenant_id: int) -> int:
    """Derived per-tenant RNG seed (stable under population edits)."""
    return (seed * 1_000_003 + 7919 * (tenant_id + 1)) % (2 ** 63)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a shared serving plane.

    Attributes:
        tenant_id: Population-unique id (>= 0).
        name: Human label for reports.
        requests: Requests this tenant submits over the run.
        rate_per_s: Tenant arrival rate (``mmpp`` reads it as the calm
            rate with a 3x burst, matching
            :func:`repro.fleet.arrivals.make_arrivals`).
        arrival: One of :data:`repro.fleet.arrivals.ARRIVAL_KINDS`.
        mean_prompt: Mean prompt length (lognormal sizes).
        mean_output: Mean output length.
        weight: WFQ weight (relative service share).
        priority: Scheduler priority class (lower sheds last).
        slo_ttft_s: Per-tenant TTFT target for SLO attainment.
        prefix_tokens: Shared prompt prefix pinned under
            ``shared-prefix`` KV isolation (0 = none).
    """

    tenant_id: int
    name: str
    requests: int
    rate_per_s: float
    arrival: str = "poisson"
    mean_prompt: int = 256
    mean_output: int = 96
    weight: float = 1.0
    priority: int = 0
    slo_ttft_s: float = 2.0
    prefix_tokens: int = 0

    def __post_init__(self) -> None:
        if self.tenant_id < 0:
            raise ValueError("tenant_id must be >= 0")
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(f"unknown arrival kind {self.arrival!r}; "
                             f"expected one of {ARRIVAL_KINDS}")
        if self.mean_prompt < 1 or self.mean_output < 1:
            raise ValueError("mean sizes must be >= 1")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.slo_ttft_s <= 0:
            raise ValueError("slo_ttft_s must be positive")
        if self.prefix_tokens < 0:
            raise ValueError("prefix_tokens must be >= 0")


def _tenant_draws(spec: TenantSpec, seed: int,
                  ) -> tuple[list[float], list[int], list[int]]:
    """One tenant's (arrivals, prompts, outputs) from its own RNG.

    Uses the same ``_*_times`` generators and ``_sample_sizes`` shape
    as :mod:`repro.fleet.arrivals` (arrival instants first, then
    sizes), so a single-tenant population reproduces ``make_arrivals``
    exactly when seeded identically.
    """
    rng = random.Random(_tenant_seed(seed, spec.tenant_id))
    if spec.arrival == "poisson":
        times = _poisson_times(spec.requests, spec.rate_per_s, rng)
    elif spec.arrival == "mmpp":
        times = _mmpp_times(spec.requests, spec.rate_per_s,
                            3.0 * spec.rate_per_s, 20.0, 5.0, rng)
    else:
        times = _diurnal_times(spec.requests, spec.rate_per_s, 240.0, 4.0,
                               rng)
    prompts, outputs = [], []
    for _ in times:
        prompt, output = _sample_sizes(rng, spec.mean_prompt,
                                       spec.mean_output)
        prompts.append(prompt)
        outputs.append(output)
    return times, prompts, outputs


@dataclass(frozen=True)
class TenantPopulation:
    """A deterministic multi-tenant workload.

    Attributes:
        tenants: The tenant specs (unique ids, any order).
        seed: Base seed; each tenant derives its own stream seed so
            populations compose without RNG cross-talk.
    """

    tenants: tuple[TenantSpec, ...]
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("population needs at least one tenant")
        ids = [spec.tenant_id for spec in self.tenants]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate tenant ids in population")

    # -- lookups --------------------------------------------------------------

    def spec_of(self, tenant_id: int) -> TenantSpec:
        for spec in self.tenants:
            if spec.tenant_id == tenant_id:
                return spec
        raise KeyError(f"no tenant {tenant_id} in population")

    @property
    def tenant_ids(self) -> tuple[int, ...]:
        return tuple(sorted(spec.tenant_id for spec in self.tenants))

    @property
    def total_requests(self) -> int:
        return sum(spec.requests for spec in self.tenants)

    # -- stream twins ---------------------------------------------------------

    def _merged(self) -> list[tuple[float, int, int]]:
        """Merge order as (arrival, tenant, local) triples, sorted."""
        keys = []
        for spec in sorted(self.tenants, key=lambda s: s.tenant_id):
            times, _, _ = _tenant_draws(spec, self.seed)
            keys.extend((arrival, spec.tenant_id, local)
                        for local, arrival in enumerate(times))
        keys.sort()
        return keys

    def stream(self) -> list[ServeRequest]:
        """The merged request stream for the stepped engine."""
        draws = {spec.tenant_id: _tenant_draws(spec, self.seed)
                 for spec in self.tenants}
        priorities = {spec.tenant_id: spec.priority for spec in self.tenants}
        requests = []
        for request_id, (arrival, tenant_id, local) in enumerate(
                self._merged()):
            _, prompts, outputs = draws[tenant_id]
            requests.append(ServeRequest(
                request_id=request_id, arrival_s=arrival,
                prompt_tokens=prompts[local], output_tokens=outputs[local],
                priority=priorities[tenant_id], tenant_id=tenant_id))
        return requests

    def table(self) -> RequestTable:
        """The bit-identical columnar twin for the event engine.

        Merges the same per-tenant draw lists with a stable
        ``np.lexsort`` over ``(arrival, tenant, local)`` — the exact
        key order :meth:`stream` sorts by — then assigns global ids
        0..n-1 in merge order.
        """
        arrivals, tenants, locals_, prompts, outputs, priorities = (
            [], [], [], [], [], [])
        for spec in sorted(self.tenants, key=lambda s: s.tenant_id):
            times, tenant_prompts, tenant_outputs = _tenant_draws(
                spec, self.seed)
            arrivals.extend(times)
            tenants.extend([spec.tenant_id] * len(times))
            locals_.extend(range(len(times)))
            prompts.extend(tenant_prompts)
            outputs.extend(tenant_outputs)
            priorities.extend([spec.priority] * len(times))
        order = np.lexsort((np.asarray(locals_, dtype=np.int64),
                            np.asarray(tenants, dtype=np.int64),
                            np.asarray(arrivals, dtype=np.float64)))
        return RequestTable(
            request_id=np.arange(len(order), dtype=np.int64),
            arrival_s=np.asarray(arrivals, dtype=np.float64)[order],
            prompt_tokens=np.asarray(prompts, dtype=np.int64)[order],
            output_tokens=np.asarray(outputs, dtype=np.int64)[order],
            priority=np.asarray(priorities, dtype=np.int64)[order],
            tenant_id=np.asarray(tenants, dtype=np.int64)[order])

    # -- policy builder -------------------------------------------------------

    def tenancy_config(self, admission: str = "wfq",
                       kv_isolation: str = "shared") -> TenancyConfig:
        """The serving-layer policy this population implies.

        WFQ weights come from the specs; ``shared-prefix`` pins each
        tenant's configured prefix; ``partition`` carves the KV pool
        weight-proportionally (weights normalized to shares).
        """
        ordered = sorted(self.tenants, key=lambda s: s.tenant_id)
        weights = tuple((spec.tenant_id, spec.weight) for spec in ordered)
        prefixes = tuple((spec.tenant_id, spec.prefix_tokens)
                         for spec in ordered if spec.prefix_tokens > 0)
        shares: tuple[tuple[int, float], ...] = ()
        if kv_isolation == "partition":
            total = sum(spec.weight for spec in ordered)
            shares = tuple((spec.tenant_id, spec.weight / total)
                           for spec in ordered)
        return TenancyConfig(admission=admission, weights=weights,
                             kv_isolation=kv_isolation,
                             prefix_tokens=prefixes,
                             partition_shares=shares)

    def solo(self, tenant_id: int) -> "TenantPopulation":
        """A single-tenant population with identical per-tenant draws.

        The derived seed depends only on ``(seed, tenant_id)``, so the
        solo run replays exactly the requests this tenant submits in
        the shared run — the baseline for noisy-neighbor inflation.
        """
        return TenantPopulation((self.spec_of(tenant_id),), seed=self.seed)


def whale_mix(total_requests: int = 200, rate_per_s: float = 6.0,
              seed: int = 0, prefix_tokens: int = 0) -> TenantPopulation:
    """The paper-style heavy-tailed tenant mix: one whale, a long tail.

    The whale submits ~60% of all requests with 2x-sized prompts and a
    4x WFQ weight (it pays for priority); a mid-size tenant takes ~25%;
    three minnows split the rest at the default weight but a tighter
    SLO.  Request volume across tenants is Zipf-like — the regime where
    FCFS lets the whale starve the tail and WFQ is supposed to matter.
    """
    if total_requests < 20:
        raise ValueError("total_requests must be >= 20")
    whale = int(total_requests * 0.60)
    mid = int(total_requests * 0.25)
    minnow = max(1, (total_requests - whale - mid) // 3)
    return TenantPopulation(tenants=(
        TenantSpec(tenant_id=0, name="whale", requests=whale,
                   rate_per_s=rate_per_s * 0.60, arrival="mmpp",
                   mean_prompt=512, mean_output=128, weight=4.0,
                   priority=0, slo_ttft_s=4.0, prefix_tokens=prefix_tokens),
        TenantSpec(tenant_id=1, name="mid", requests=mid,
                   rate_per_s=rate_per_s * 0.25, mean_prompt=256,
                   mean_output=96, weight=2.0, priority=1, slo_ttft_s=2.0,
                   prefix_tokens=prefix_tokens),
        TenantSpec(tenant_id=2, name="minnow-a", requests=minnow,
                   rate_per_s=rate_per_s * 0.05, mean_prompt=128,
                   mean_output=64, priority=2, slo_ttft_s=1.5),
        TenantSpec(tenant_id=3, name="minnow-b", requests=minnow,
                   rate_per_s=rate_per_s * 0.05, mean_prompt=128,
                   mean_output=64, priority=2, slo_ttft_s=1.5),
        TenantSpec(tenant_id=4, name="minnow-c", requests=minnow,
                   rate_per_s=rate_per_s * 0.05, mean_prompt=128,
                   mean_output=64, priority=2, slo_ttft_s=1.5),
    ), seed=seed)
