"""One-call multi-tenant fleet runs and the noisy-neighbor metric.

:func:`run_tenant_fleet` wires a :class:`~repro.tenancy.population
.TenantPopulation` through the whole stack: it builds the population's
:class:`~repro.serving.admission.TenancyConfig`, arms it on a priced
:class:`~repro.fleet.replica.ReplicaSpec`, runs the fleet on the
requested engine (stepped engines consume the object stream, event
engines the bit-identical columnar table), and returns the per-tenant
:class:`~repro.tenancy.report.TenancyReport`.

:func:`noisy_neighbor_inflation` is the interference metric the
headline experiment plots: each tenant's shared-fleet p99 TTFT divided
by its p99 TTFT on the same fleet *alone* (same derived RNG, so the
solo run replays exactly the tenant's shared-run requests).  1.0 means
perfect isolation; large values mean the tenant is paying for its
neighbors' load.
"""

from __future__ import annotations

from ..faults.injector import FaultInjector, FaultSchedule
from ..faults.resilience import DegradationPolicy, RetryPolicy
from ..fleet.cluster import DEFAULT_TICK_S, fixed_fleet
from ..fleet.replica import ReplicaSpec, replica_spec
from .population import TenantPopulation
from .report import TenancyReport, tenant_breakdown


def run_tenant_fleet(population: TenantPopulation,
                     kind: str = "tdx",
                     count: int = 2,
                     engine: str = "stepped",
                     admission: str = "wfq",
                     kv_isolation: str = "shared",
                     tick_s: float = DEFAULT_TICK_S,
                     faults: FaultSchedule | FaultInjector | None = None,
                     retry_policy: RetryPolicy | None = None,
                     degradation: DegradationPolicy | None = None,
                     **spec_overrides: object) -> TenancyReport:
    """Run a tenant population on a homogeneous confidential fleet.

    Args:
        population: Who shares the fleet.
        kind: Replica kind (``tdx``, ``cgpu``, ...).
        count: Fixed fleet size.
        engine: ``stepped`` or ``event`` (bit-identical reports).
        admission: ``fcfs`` or ``wfq`` (population weights apply).
        kv_isolation: ``shared``, ``partition``, or ``shared-prefix``.
        tick_s: Fleet tick.
        faults: Optional fault schedule/injector.
        retry_policy: Optional resilience policy (required by faults).
        degradation: Optional degradation/spill policy.
        **spec_overrides: Forwarded to :func:`replica_spec` (e.g.
            ``max_batch``, ``kv_capacity_tokens``).
    """
    tenancy = population.tenancy_config(admission=admission,
                                        kv_isolation=kv_isolation)
    spec = replica_spec(kind, tenancy=tenancy, **spec_overrides)
    return run_on_spec(population, spec, count=count, engine=engine,
                       tick_s=tick_s, faults=faults,
                       retry_policy=retry_policy, degradation=degradation)


def run_on_spec(population: TenantPopulation, spec: ReplicaSpec,
                count: int = 2, engine: str = "stepped",
                tick_s: float = DEFAULT_TICK_S,
                faults: FaultSchedule | FaultInjector | None = None,
                retry_policy: RetryPolicy | None = None,
                degradation: DegradationPolicy | None = None,
                ) -> TenancyReport:
    """Run a population on an explicit (already-armed) spec."""
    fleet = fixed_fleet(spec, count, tick_s=tick_s, faults=faults,
                        retry_policy=retry_policy, degradation=degradation,
                        engine=engine)
    requests = (population.table() if engine == "event"
                else population.stream())
    report = fleet.run(requests)
    return tenant_breakdown(report, population)


def noisy_neighbor_inflation(population: TenantPopulation,
                             kind: str = "tdx", count: int = 2,
                             engine: str = "stepped",
                             admission: str = "wfq",
                             kv_isolation: str = "shared",
                             **spec_overrides: object,
                             ) -> dict[int, float | None]:
    """Per-tenant p99-TTFT inflation of the shared fleet vs running solo.

    For each tenant: run the whole population together, then run that
    tenant alone on an identical fleet (same spec, same derived RNG, so
    the solo stream replays the tenant's shared-run requests exactly),
    and divide the shared p99 TTFT by the solo p99 TTFT.  ``None``
    marks tenants that completed no requests in either run.
    """
    shared = run_tenant_fleet(population, kind=kind, count=count,
                              engine=engine, admission=admission,
                              kv_isolation=kv_isolation, **spec_overrides)
    inflation: dict[int, float | None] = {}
    for tenant_id in population.tenant_ids:
        shared_p99 = shared.usage_of(tenant_id).ttft_p99_s
        solo = run_tenant_fleet(population.solo(tenant_id), kind=kind,
                                count=count, engine=engine,
                                admission=admission,
                                kv_isolation=kv_isolation, **spec_overrides)
        solo_p99 = solo.usage_of(tenant_id).ttft_p99_s
        if shared_p99 is None or solo_p99 is None or solo_p99 <= 0:
            inflation[tenant_id] = None
        else:
            inflation[tenant_id] = shared_p99 / solo_p99
    return inflation
