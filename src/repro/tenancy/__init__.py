"""Multi-tenant confidential serving plane.

Who shares a confidential fleet, how fairly it is scheduled, and what
each tenant pays: tenant populations with heavy-tailed mixes
(:mod:`repro.tenancy.population`), exact-partition billing
(:mod:`repro.tenancy.billing`), per-tenant SLO/fairness reports
(:mod:`repro.tenancy.report`), and one-call fleet runs plus the
noisy-neighbor interference metric (:mod:`repro.tenancy.simulate`).
The underlying admission and KV-isolation policies live in
:mod:`repro.serving.admission` so both scheduler engines can consume
them directly.
"""

from .billing import partition_bill_cents
from .population import TenantPopulation, TenantSpec, whale_mix
from .report import TenancyReport, TenantUsage, tenant_breakdown
from .simulate import (
    noisy_neighbor_inflation,
    run_on_spec,
    run_tenant_fleet,
)

__all__ = [
    "TenancyReport", "TenantPopulation", "TenantSpec", "TenantUsage",
    "noisy_neighbor_inflation", "partition_bill_cents", "run_on_spec",
    "run_tenant_fleet", "tenant_breakdown", "whale_mix",
]
