"""Per-tenant slice of a fleet report: SLOs, fairness, and invoices.

:func:`tenant_breakdown` splits a
:class:`~repro.fleet.report.FleetReport` by tenant into
:class:`TenantUsage` rows — latency percentiles against each tenant's
own SLO, shed counts, and an integer-cent invoice that exactly
partitions the fleet bill (:mod:`repro.tenancy.billing`).  The split
is engine-agnostic and bit-identical: stepped-engine reports walk
:class:`~repro.serving.scheduler.RequestOutcome` objects with the
scalar percentile, event-engine reports mask the
:class:`~repro.fleet.table.ColumnarOutcomes` columns and use the
vectorized twin — the same doubles either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fleet.report import FleetReport, _percentile_array
from ..fleet.table import ColumnarOutcomes
from ..serving.scheduler import _percentile
from .billing import partition_bill_cents
from .population import TenantPopulation


@dataclass(frozen=True)
class TenantUsage:
    """One tenant's outcome summary over a shared-fleet run.

    Latency fields are ``None`` when the tenant completed no requests;
    ``slo_attainment`` counts shed requests as misses, mirroring
    :meth:`repro.fleet.report.FleetReport.slo_attainment`.
    """

    tenant_id: int
    name: str
    requests: int
    shed: int
    tokens_out: int
    preemptions: int
    slo_ttft_s: float
    ttft_p50_s: float | None
    ttft_p99_s: float | None
    e2e_p99_s: float | None
    slo_attainment: float | None
    bill_cents: int

    @property
    def submitted(self) -> int:
        return self.requests + self.shed

    @property
    def usd_per_mtok(self) -> float | None:
        """Invoice dollars per million good tokens (None if idle)."""
        if not self.tokens_out:
            return None
        return self.bill_cents / 100.0 / self.tokens_out * 1e6

    def to_dict(self) -> dict:
        return {
            "tenant_id": self.tenant_id,
            "name": self.name,
            "requests": self.requests,
            "shed": self.shed,
            "tokens_out": self.tokens_out,
            "preemptions": self.preemptions,
            "slo_ttft_s": self.slo_ttft_s,
            "ttft_p50_s": self.ttft_p50_s,
            "ttft_p99_s": self.ttft_p99_s,
            "e2e_p99_s": self.e2e_p99_s,
            "slo_attainment": self.slo_attainment,
            "bill_cents": self.bill_cents,
            "usd_per_mtok": self.usd_per_mtok,
        }


@dataclass(frozen=True)
class TenancyReport:
    """A fleet report refracted through its tenant population."""

    fleet: FleetReport
    tenants: tuple[TenantUsage, ...]

    @property
    def total_bill_cents(self) -> int:
        """Sum of tenant invoices == ``round(fleet.cost_usd * 100)``."""
        return sum(usage.bill_cents for usage in self.tenants)

    @property
    def prefix_hits(self) -> int:
        return sum(usage.prefix_hits for usage in self.fleet.replicas)

    @property
    def prefix_misses(self) -> int:
        return sum(usage.prefix_misses for usage in self.fleet.replicas)

    def usage_of(self, tenant_id: int) -> TenantUsage:
        for usage in self.tenants:
            if usage.tenant_id == tenant_id:
                return usage
        raise KeyError(f"no tenant {tenant_id} in report")

    def ttft_p99_spread(self) -> float | None:
        """Max/min ratio of per-tenant p99 TTFT — the fairness number.

        1.0 means every tenant sees the same tail latency; large values
        mean somebody is eating the queueing delay.  ``None`` when
        fewer than two tenants completed requests.
        """
        values = [usage.ttft_p99_s for usage in self.tenants
                  if usage.ttft_p99_s is not None]
        if len(values) < 2 or min(values) <= 0:
            return None
        return max(values) / min(values)

    def to_dict(self) -> dict:
        return {
            "fleet": self.fleet.to_dict(),
            "tenants": [usage.to_dict() for usage in self.tenants],
            "total_bill_cents": self.total_bill_cents,
            "prefix_hits": self.prefix_hits,
            "prefix_misses": self.prefix_misses,
            "ttft_p99_spread": self.ttft_p99_spread(),
        }


def _columnar_slices(outcomes: ColumnarOutcomes, tenant_id: int) -> dict:
    mask = outcomes.tenant_id == tenant_id
    count = int(np.count_nonzero(mask))
    if not count:
        return {"requests": 0, "tokens_out": 0, "preemptions": 0,
                "ttft": None, "e2e": None}
    return {
        "requests": count,
        "tokens_out": int(outcomes.output_tokens[mask].sum()),
        "preemptions": int(outcomes.preemptions[mask].sum()),
        "ttft": outcomes.ttft_values()[mask],
        "e2e": outcomes.e2e_values()[mask],
    }


def _object_slices(outcomes, tenant_id: int) -> dict:
    mine = [o for o in outcomes if o.request.tenant_id == tenant_id]
    if not mine:
        return {"requests": 0, "tokens_out": 0, "preemptions": 0,
                "ttft": None, "e2e": None}
    return {
        "requests": len(mine),
        "tokens_out": sum(o.request.output_tokens for o in mine),
        "preemptions": sum(o.preemptions for o in mine),
        "ttft": [o.ttft_s for o in mine],
        "e2e": [o.e2e_s for o in mine],
    }


def tenant_breakdown(report: FleetReport,
                     population: TenantPopulation) -> TenancyReport:
    """Split a fleet report into per-tenant usage rows.

    The invoice column partitions ``report.cost_usd`` exactly (integer
    cents, largest-remainder over good tokens); percentile math uses
    the scalar/vectorized twins so stepped and event reports break down
    bit-identically.
    """
    columnar = isinstance(report.outcomes, ColumnarOutcomes)
    shed_by_tenant: dict[int, int] = {}
    for shed in report.shed:
        shed_by_tenant[shed.request.tenant_id] = (
            shed_by_tenant.get(shed.request.tenant_id, 0) + 1)
    slices = {}
    for spec in sorted(population.tenants, key=lambda s: s.tenant_id):
        if columnar:
            slices[spec.tenant_id] = _columnar_slices(report.outcomes,
                                                      spec.tenant_id)
        else:
            slices[spec.tenant_id] = _object_slices(report.outcomes,
                                                    spec.tenant_id)
    invoices = partition_bill_cents(
        report.cost_usd,
        {tenant_id: data["tokens_out"]
         for tenant_id, data in slices.items()})
    usages = []
    for spec in sorted(population.tenants, key=lambda s: s.tenant_id):
        data = slices[spec.tenant_id]
        shed = shed_by_tenant.get(spec.tenant_id, 0)
        ttft_p50 = ttft_p99 = e2e_p99 = attainment = None
        if data["requests"]:
            if columnar:
                ttft_p50 = _percentile_array(data["ttft"], 50)
                ttft_p99 = _percentile_array(data["ttft"], 99)
                e2e_p99 = _percentile_array(data["e2e"], 99)
                met = int(np.count_nonzero(data["ttft"] <= spec.slo_ttft_s))
            else:
                ttft_p50 = _percentile(data["ttft"], 50)
                ttft_p99 = _percentile(data["ttft"], 99)
                e2e_p99 = _percentile(data["e2e"], 99)
                met = sum(1 for value in data["ttft"]
                          if value <= spec.slo_ttft_s)
            attainment = met / (data["requests"] + shed)
        elif shed:
            attainment = 0.0
        usages.append(TenantUsage(
            tenant_id=spec.tenant_id, name=spec.name,
            requests=data["requests"], shed=shed,
            tokens_out=data["tokens_out"],
            preemptions=data["preemptions"],
            slo_ttft_s=spec.slo_ttft_s,
            ttft_p50_s=ttft_p50, ttft_p99_s=ttft_p99, e2e_p99_s=e2e_p99,
            slo_attainment=attainment,
            bill_cents=invoices[spec.tenant_id]))
    return TenancyReport(fleet=report, tenants=tuple(usages))
