"""Crash-safe sweep runner: write-ahead journal + watchdog supervision.

A sweep is a grid of :class:`GridPoint` entries, each naming a
registered point runner (:mod:`repro.state.points`) and its JSON
parameters.  :class:`SweepRunner` executes the grid against a *run
directory* with these guarantees:

* **Durability** — every completed point is appended to
  ``results.jsonl`` with flush+fsync *before* the runner moves on
  (write-ahead journaling: the row is on disk or the point is not
  done).  A SIGKILL can at worst tear the final line, which resume
  tolerates; any earlier corruption raises
  :class:`~repro.state.errors.StateJournalError`.
* **Resumability** — reopening the directory skips completed and
  quarantined points and honors group pruning, so a killed sweep
  continues where it stopped and the merged journal is byte-identical
  to an uninterrupted run's.
* **Progress under mid-point kills** — long points periodically write
  simulator snapshots (``snapshots/point_<index>.json``); on retry or
  resume the point continues from its last checkpoint instead of
  restarting from zero (restart-from-zero being the expensive failure
  mode TEE boot/attestation costs make worse).
* **Supervision** — with ``point_timeout_s`` set, each point runs in a
  forked watchdog child; a hung point is terminated, retried with the
  seeded backoff of :class:`~repro.faults.resilience.RetryPolicy`
  (keyed by point index, so delays are deterministic), and after
  ``max_attempts`` failures quarantined (``quarantine.jsonl``) so one
  pathological config degrades the sweep instead of killing it.

Run directory layout::

    run_dir/
      spec.json          # the SweepSpec (atomic write, checked on open)
      results.jsonl      # WAL: {"index", "key", "row"} per completed point
      quarantine.jsonl   # {"index", "key", "error", "attempts"} per give-up
      snapshots/         # point_<index>.json mid-point checkpoints
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from .errors import (
    StateIntegrityError,
    StateJournalError,
    StateSchemaError,
    StateValueError,
)
from .schema import (
    read_json,
    require,
    require_finite,
    validate_payload,
    write_json_atomic,
)

#: File names inside a run directory.
SPEC_FILE = "spec.json"
RESULTS_FILE = "results.jsonl"
QUARANTINE_FILE = "quarantine.jsonl"
SNAPSHOT_DIR = "snapshots"


@dataclass(frozen=True)
class GridPoint:
    """One grid point: a named runner plus its parameters.

    Attributes:
        index: Position in the sweep (contiguous from 0; execution and
            journal order).
        key: Human-readable unique label, e.g. ``"tdx/mtbf_6"``.
        runner: Registered point-runner name
            (:func:`repro.state.points.point_runner`).
        params: JSON-serializable parameters handed to the runner.
        group: Prune group — when the sweep's ``prune_field`` is set
            and an earlier completed point of the same group set that
            row field truthy, later points of the group are skipped
            (how capacity curves early-stop per kind).
    """

    index: int
    key: str
    runner: str
    params: dict = field(default_factory=dict)
    group: str = ""

    def to_state(self) -> dict:
        return {"index": self.index, "key": self.key, "runner": self.runner,
                "params": self.params, "group": self.group}

    @classmethod
    def from_state(cls, state: dict) -> "GridPoint":
        return cls(
            index=require(state, "index", int, "$.point"),
            key=require(state, "key", str, "$.point"),
            runner=require(state, "runner", str, "$.point"),
            params=require(state, "params", dict, "$.point"),
            group=require(state, "group", str, "$.point"),
        )


@dataclass(frozen=True)
class SweepSpec:
    """A full sweep: the grid plus runner/supervision configuration.

    Attributes:
        points: The grid, in execution order.
        prune_field: Row field that prunes the rest of a group once
            truthy (``None`` disables pruning).
        checkpoint_every_s: Simulated-seconds cadence of mid-point
            snapshots (0 disables them).
        point_timeout_s: Wall-clock budget per point attempt; ``None``
            runs points in-process with no watchdog.
        max_attempts: Attempts per point before quarantine.
        retry_seed: Seed of the deterministic retry backoff.
    """

    points: tuple[GridPoint, ...]
    prune_field: str | None = None
    checkpoint_every_s: float = 0.0
    point_timeout_s: float | None = None
    max_attempts: int = 3
    retry_seed: int = 0

    def __post_init__(self) -> None:
        if not self.points:
            raise StateSchemaError("a sweep needs at least one grid point")
        for slot, point in enumerate(self.points):
            if point.index != slot:
                raise StateSchemaError(
                    f"grid indices must be contiguous from 0: slot {slot} "
                    f"holds index {point.index}")
        keys = [point.key for point in self.points]
        if len(set(keys)) != len(keys):
            raise StateSchemaError("grid point keys must be unique")
        if self.checkpoint_every_s < 0:
            raise StateValueError("checkpoint_every_s must be >= 0")
        if self.point_timeout_s is not None and self.point_timeout_s <= 0:
            raise StateValueError("point_timeout_s must be positive")
        if self.max_attempts < 1:
            raise StateValueError("max_attempts must be >= 1")
        # Grid params must survive a JSON round-trip exactly.
        validate_payload([point.params for point in self.points], "$.points")

    def to_state(self) -> dict:
        return {
            "points": [point.to_state() for point in self.points],
            "prune_field": self.prune_field,
            "checkpoint_every_s": self.checkpoint_every_s,
            "point_timeout_s": self.point_timeout_s,
            "max_attempts": self.max_attempts,
            "retry_seed": self.retry_seed,
        }

    @classmethod
    def from_state(cls, state: dict) -> "SweepSpec":
        prune = state.get("prune_field")
        if prune is not None and not isinstance(prune, str):
            raise StateSchemaError("$.spec.prune_field must be str or null")
        return cls(
            points=tuple(GridPoint.from_state(payload) for payload
                         in require(state, "points", list, "$.spec")),
            prune_field=prune,
            checkpoint_every_s=require_finite(
                state, "checkpoint_every_s", "$.spec", minimum=0.0),
            point_timeout_s=require_finite(
                state, "point_timeout_s", "$.spec", optional=True),
            max_attempts=require(state, "max_attempts", int, "$.spec"),
            retry_seed=require(state, "retry_seed", int, "$.spec"),
        )


class PointContext:
    """Checkpoint facilities handed to a point runner.

    A runner calls :meth:`resume_payload` once to pick up a mid-point
    snapshot left by a killed/timed-out attempt, and
    :meth:`checkpoint` at its own cadence (gated by
    :attr:`checkpoint_every_s`) to leave one.
    """

    def __init__(self, snapshot_path: Path,
                 checkpoint_every_s: float) -> None:
        self.snapshot_path = Path(snapshot_path)
        self.checkpoint_every_s = checkpoint_every_s

    def resume_payload(self) -> dict | None:
        """The point's last checkpoint, if one survives on disk."""
        if not self.snapshot_path.exists():
            return None
        from .checkpoint import read_snapshot
        return read_snapshot(self.snapshot_path)

    def checkpoint(self, payload: dict) -> None:
        """Durably write the point's current snapshot (atomic)."""
        from .checkpoint import write_snapshot
        self.snapshot_path.parent.mkdir(parents=True, exist_ok=True)
        write_snapshot(self.snapshot_path, payload)

    def clear(self) -> None:
        """Drop the point's snapshot (called after the WAL row lands)."""
        try:
            self.snapshot_path.unlink()
        except FileNotFoundError:
            pass


def _append_jsonl(path: Path, record: dict) -> None:
    """WAL append: one JSON line, flushed and fsynced before returning."""
    line = json.dumps(record, sort_keys=True, allow_nan=False)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def read_journal(path: Path) -> list[dict]:
    """Parse a WAL, tolerating exactly one torn *final* line.

    A SIGKILL mid-append can leave a partial last line; that is
    recoverable and silently dropped.  An unparsable line anywhere
    else means real corruption and raises
    :class:`~repro.state.errors.StateJournalError`.
    """
    if not Path(path).exists():
        return []
    text = Path(path).read_text(encoding="utf-8")
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    records: list[dict] = []
    for number, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            if number == len(lines) - 1:
                break  # torn tail from a mid-append kill: recoverable
            raise StateJournalError(
                f"journal {path} corrupt at line {number + 1} "
                f"(not the torn tail): {error}") from error
        if not isinstance(record, dict):
            raise StateJournalError(
                f"journal {path} line {number + 1} is not a JSON object")
        records.append(record)
    return records


class SweepRunner:
    """Execute a :class:`SweepSpec` against a durable run directory.

    Build with :meth:`create` (new or matching directory) or
    :meth:`open` (existing directory).  :meth:`run` then executes
    whatever the journal says is still missing.
    """

    def __init__(self, run_dir: Path, spec: SweepSpec) -> None:
        self.run_dir = Path(run_dir)
        self.spec = spec

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(cls, run_dir: Path, spec: SweepSpec) -> "SweepRunner":
        """Initialize (or idempotently reopen) a run directory.

        Raises:
            StateIntegrityError: If the directory already holds a
                *different* sweep spec — resuming someone else's run
                would interleave incompatible rows.
        """
        run_dir = Path(run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)
        (run_dir / SNAPSHOT_DIR).mkdir(exist_ok=True)
        spec_path = run_dir / SPEC_FILE
        payload = spec.to_state()
        if spec_path.exists():
            existing = read_json(spec_path)
            if existing != json.loads(json.dumps(payload)):
                raise StateIntegrityError(
                    f"{run_dir} already holds a different sweep spec; "
                    f"pick a fresh run directory")
        else:
            write_json_atomic(spec_path, payload)
        return cls(run_dir, spec)

    @classmethod
    def open(cls, run_dir: Path) -> "SweepRunner":
        """Reopen an existing run directory from its persisted spec."""
        run_dir = Path(run_dir)
        spec_path = run_dir / SPEC_FILE
        if not spec_path.exists():
            raise StateSchemaError(
                f"{run_dir} is not a sweep run directory (no {SPEC_FILE})")
        payload = read_json(spec_path)
        if not isinstance(payload, dict):
            raise StateSchemaError(f"{spec_path} does not hold a JSON object")
        return cls(run_dir, SweepSpec.from_state(payload))

    # -- journal views --------------------------------------------------------

    @property
    def results_path(self) -> Path:
        return self.run_dir / RESULTS_FILE

    @property
    def quarantine_path(self) -> Path:
        return self.run_dir / QUARANTINE_FILE

    def completed(self) -> dict[int, dict]:
        """Completed rows by point index, from the WAL."""
        rows: dict[int, dict] = {}
        for record in read_journal(self.results_path):
            index = require(record, "index", int, "$.journal")
            if index in rows:
                raise StateJournalError(
                    f"journal holds duplicate rows for point {index}")
            if not 0 <= index < len(self.spec.points):
                raise StateJournalError(
                    f"journal row for unknown point {index}")
            rows[index] = require(record, "row", dict, "$.journal")
        return rows

    def quarantined(self) -> dict[int, dict]:
        """Quarantined points by index (error + attempt count)."""
        entries: dict[int, dict] = {}
        for record in read_journal(self.quarantine_path):
            entries[require(record, "index", int, "$.quarantine")] = record
        return entries

    def pending(self) -> list[GridPoint]:
        """Points still to run, in order, honoring pruning/quarantine."""
        done = self.completed()
        bad = self.quarantined()
        pruned_groups = self._pruned_groups(done)
        return [point for point in self.spec.points
                if point.index not in done and point.index not in bad
                and (point.group not in pruned_groups)]

    def _pruned_groups(self, done: dict[int, dict]) -> dict[str, int]:
        """Groups already satisfied: group -> index of the pruning row.

        A point is pruned only by an *earlier* point of its group, so
        execution order and resume order agree.
        """
        field_name = self.spec.prune_field
        if field_name is None:
            return {}
        pruned: dict[str, int] = {}
        for index, row in sorted(done.items()):
            point = self.spec.points[index]
            if not point.group:
                continue
            if point.group in pruned:
                continue
            if row.get(field_name):
                pruned[point.group] = index
        return pruned

    def _snapshot_path(self, point: GridPoint) -> Path:
        return self.run_dir / SNAPSHOT_DIR / f"point_{point.index}.json"

    # -- execution ------------------------------------------------------------

    def _run_point_inline(self, point: GridPoint) -> dict:
        from .points import resolve_point_runner
        runner = resolve_point_runner(point.runner)
        context = PointContext(self._snapshot_path(point),
                               self.spec.checkpoint_every_s)
        row = runner(dict(point.params), context)
        if not isinstance(row, dict):
            raise StateSchemaError(
                f"point runner {point.runner!r} returned "
                f"{type(row).__name__}, expected a dict row")
        validate_payload(row, f"$.row[{point.key}]")
        return row

    def _run_point_watched(self, point: GridPoint, timeout_s: float) -> dict:
        """Run one point in a forked child under a wall-clock watchdog.

        The child writes its row to a scratch file via atomic rename;
        the parent joins with a timeout and terminates a hung child.
        Fork keeps the child's view of the spec identical to the
        parent's without re-importing anything.
        """
        import multiprocessing

        scratch = self.run_dir / SNAPSHOT_DIR / f".row_{point.index}.json"
        try:
            scratch.unlink()
        except FileNotFoundError:
            pass

        def target() -> None:
            row = self._run_point_inline(point)
            write_json_atomic(scratch, row)

        context = multiprocessing.get_context("fork")
        child = context.Process(target=target, daemon=True)
        child.start()
        child.join(timeout_s)
        if child.is_alive():
            child.terminate()
            child.join()
            raise TimeoutError(
                f"point {point.key} exceeded its {timeout_s:g}s budget")
        if child.exitcode != 0:
            raise RuntimeError(
                f"point {point.key} crashed (exit code {child.exitcode})")
        if not scratch.exists():
            raise RuntimeError(
                f"point {point.key} exited cleanly but wrote no row")
        row = read_json(scratch)
        scratch.unlink()
        if not isinstance(row, dict):
            raise StateSchemaError(
                f"point {point.key} wrote a non-object row")
        return row

    def run(self, max_points: int | None = None,
            on_row: Callable[[GridPoint, dict], None] | None = None,
            sleep: Callable[[float], None] = time.sleep) -> dict[int, dict]:
        """Execute pending points; return all completed rows by index.

        Args:
            max_points: Stop after completing this many *new* points
                (``None`` = run the whole grid).  Used by crash tests
                and smoke variants.
            on_row: Streaming callback fired after each new row is
                durably journaled.
            sleep: Injectable backoff sleep (tests pass a recorder).
        """
        from ..faults.resilience import RetryPolicy

        retry = RetryPolicy(timeout_s=max(self.spec.point_timeout_s or 1.0,
                                          1e-9),
                            max_attempts=self.spec.max_attempts,
                            seed=self.spec.retry_seed)
        done = self.completed()
        bad = self.quarantined()
        pruned = self._pruned_groups(done)
        fresh = 0
        for point in self.spec.points:
            if max_points is not None and fresh >= max_points:
                break
            if point.index in done or point.index in bad:
                continue
            if point.group and point.group in pruned:
                continue
            row: dict | None = None
            failure: Exception | None = None
            for attempt in range(1, self.spec.max_attempts + 1):
                try:
                    if self.spec.point_timeout_s is None:
                        row = self._run_point_inline(point)
                    else:
                        row = self._run_point_watched(
                            point, self.spec.point_timeout_s)
                    break
                except (StateJournalError, KeyboardInterrupt):
                    raise
                except Exception as error:  # noqa: BLE001 - supervised
                    failure = error
                    if attempt < self.spec.max_attempts:
                        sleep(retry.backoff_s(point.index, attempt))
            if row is None:
                _append_jsonl(self.quarantine_path, {
                    "index": point.index, "key": point.key,
                    "error": f"{type(failure).__name__}: {failure}",
                    "attempts": self.spec.max_attempts,
                })
                bad[point.index] = {"index": point.index}
                continue
            # WAL first, then cleanup: the row is durable before the
            # point's checkpoint is dropped, so a kill between the two
            # re-reads a completed point and simply skips it.
            _append_jsonl(self.results_path, {
                "index": point.index, "key": point.key, "row": row,
            })
            PointContext(self._snapshot_path(point),
                         self.spec.checkpoint_every_s).clear()
            done[point.index] = row
            fresh += 1
            if self.spec.prune_field and point.group \
                    and point.group not in pruned \
                    and row.get(self.spec.prune_field):
                pruned[point.group] = point.index
            if on_row is not None:
                on_row(point, row)
        return done
