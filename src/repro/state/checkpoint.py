"""Top-level snapshot/restore API for the fleet simulator.

:func:`snapshot` freezes a :class:`~repro.fleet.cluster.FleetSimulator`
— idle or mid-run — into a versioned, validated, JSON-serializable
payload; :func:`restore` installs such a payload into a *freshly
built* simulator constructed with the same arguments.  Resuming the
run then replays the exact instruction sequence of the uninterrupted
run, so the final :class:`~repro.fleet.report.FleetReport` is
bit-identical (pinned by the ``state.resume_parity`` audit check).

Why restore-into-fresh rather than rebuild-from-payload: a
:class:`~repro.fleet.replica.ReplicaSpec` closes over a full
:class:`~repro.engine.placement.Deployment` (hardware model, price
catalog, framework toggles) that is cheap to reconstruct from code but
hostile to serialize.  The payload therefore carries only *runtime*
state plus per-layer config fingerprints; restore checks every
fingerprint and refuses a simulator whose construction differs from
the one snapshotted (:class:`~repro.state.errors.StateIntegrityError`).

All determinism sources are already pure or pregenerated — arrival
streams are materialized lists, fault schedules are seeded tuples, and
retry jitter is a pure function of ``(seed, request_id, retry)`` — so
no live RNG object ever needs to be captured.
"""

from __future__ import annotations

from pathlib import Path

from .errors import StateSchemaError
from .schema import (
    CURRENT_STATE_VERSION,
    negotiate,
    read_json,
    require,
    validate_payload,
    write_json_atomic,
)

#: Payload discriminator for fleet snapshots.
FLEET_SNAPSHOT_KIND = "fleet_simulator"


def snapshot(sim) -> dict:
    """Freeze a fleet simulator into a versioned, validated payload.

    Args:
        sim: A :class:`~repro.fleet.cluster.FleetSimulator`, idle or
            mid-run (between :meth:`begin_run` and :meth:`finish_run`).

    Returns:
        ``{"state_version": ..., "kind": "fleet_simulator",
        "state": ...}`` — plain dicts/lists/scalars, strict-JSON safe.

    Raises:
        StateValueError: If the captured state somehow carries a
            non-finite value (validated before the payload escapes).
    """
    payload = {
        "state_version": CURRENT_STATE_VERSION,
        "kind": FLEET_SNAPSHOT_KIND,
        "state": sim.to_state(),
    }
    validate_payload(payload)
    return payload


def restore(sim, payload: dict) -> None:
    """Install a :func:`snapshot` payload into a fresh simulator.

    Negotiates the payload's ``state_version`` (applying registered
    migrations), validates the payload, and hands the inner state to
    :meth:`FleetSimulator.from_state`.

    Raises:
        StateVersionError: If the version cannot be negotiated.
        StateSchemaError: If the payload is malformed or not a fleet
            snapshot.
        StateIntegrityError: If ``sim`` was not built with the same
            configuration the snapshot was taken under.
    """
    payload = negotiate(payload)
    validate_payload(payload)
    kind = require(payload, "kind", str, "$")
    if kind != FLEET_SNAPSHOT_KIND:
        raise StateSchemaError(
            f"payload is a {kind!r} snapshot, expected "
            f"{FLEET_SNAPSHOT_KIND!r}")
    sim.from_state(require(payload, "state", dict, "$"))


def write_snapshot(path: Path, payload: dict) -> None:
    """Durably write a snapshot payload (atomic temp-file + rename)."""
    validate_payload(payload)
    write_json_atomic(Path(path), payload)


def read_snapshot(path: Path) -> dict:
    """Load a snapshot payload written by :func:`write_snapshot`."""
    payload = read_json(Path(path))
    if not isinstance(payload, dict):
        raise StateSchemaError(
            f"snapshot file {path} does not hold a JSON object")
    return payload
