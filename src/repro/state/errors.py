"""Structured error taxonomy for the checkpoint/restore layer.

Every failure mode of :mod:`repro.state` raises a subclass of
:class:`StateError` so callers (the sweep runner, the CLIs, the audit
checks) can distinguish *what went wrong* without parsing messages:

* :class:`StateSchemaError` — a payload is structurally malformed
  (missing keys, wrong types, not a plain JSON-serializable dict).
* :class:`StateVersionError` — a payload carries a ``state_version``
  this build cannot restore (unknown, or newer than supported) and no
  registered migration bridges the gap.
* :class:`StateValueError` — a payload or sweep grid spec contains a
  non-finite or out-of-range value (NaN/inf smuggled through JSON
  round-trips, negative token counts, ...), mirroring the
  ``ServeRequest``/``Workload`` finiteness guards.
* :class:`StateIntegrityError` — a payload is well-formed but does not
  match the object it is being restored into (wrong replica spec,
  wrong tick, mismatched fault schedule, broken KV-cache invariant).
* :class:`StateJournalError` — a sweep run directory's write-ahead
  journal is unreadable beyond the torn-final-line case a SIGKILL can
  legitimately leave behind.

All of them subclass :class:`ValueError` so pre-existing generic
handlers keep working.

This module is dependency-free (stdlib only) so any layer — serving,
fleet, faults — can import it without cycles.
"""

from __future__ import annotations


class StateError(ValueError):
    """Base class for all checkpoint/restore failures."""


class StateSchemaError(StateError):
    """A snapshot payload or sweep spec is structurally malformed."""


class StateVersionError(StateError):
    """A payload's ``state_version`` cannot be restored by this build."""


class StateValueError(StateError):
    """A payload or grid spec carries a non-finite/out-of-range value."""


class StateIntegrityError(StateError):
    """A payload does not match the object it is restored into."""


class StateJournalError(StateError):
    """A sweep write-ahead journal is corrupt beyond a torn tail line."""
