"""Snapshot schema: versioning, migrations, and payload validation.

A snapshot payload is a plain dict of JSON primitives:

.. code-block:: python

    {"state_version": 1, "kind": "fleet_simulator", "state": {...}}

``state_version`` names the schema of the whole payload.  Restoring
negotiates the version first (:func:`negotiate`): payloads newer than
:data:`CURRENT_STATE_VERSION` are refused outright, older payloads are
upgraded through the registered migration chain
(:func:`register_migration`), and a same-version hook — the no-op
v1→v1 migration — always runs so the negotiation path is exercised on
every restore, not only on the rare upgrade.

Validation (:func:`validate_payload`) walks the payload and rejects
anything that is not JSON-serializable scalar data plus any non-finite
float — NaN/inf cannot round-trip through strict JSON, so letting one
into a checkpoint would make the WAL unreadable on resume.  The same
walker validates sweep grid specs.

This module depends only on the stdlib and :mod:`repro.state.errors`,
so every simulation layer can use its helpers without import cycles.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Callable

from .errors import (
    StateSchemaError,
    StateValueError,
    StateVersionError,
)

#: Version written by this build's ``snapshot()``.
CURRENT_STATE_VERSION = 1

#: Versions this build can *restore from* (after migration).
SUPPORTED_STATE_VERSIONS = (1,)

_MIGRATIONS: dict[int, Callable[[dict], dict]] = {}


def register_migration(from_version: int) -> Callable:
    """Register a migration applied to payloads at ``from_version``.

    For ``from_version < CURRENT_STATE_VERSION`` the hook must return a
    payload with a strictly larger ``state_version``; for
    ``from_version == CURRENT_STATE_VERSION`` it is a same-version
    normalization hook run once per restore (the v1→v1 no-op below).
    """

    def install(func: Callable[[dict], dict]) -> Callable[[dict], dict]:
        if from_version in _MIGRATIONS:
            raise ValueError(f"duplicate migration from v{from_version}")
        _MIGRATIONS[from_version] = func
        return func

    return install


@register_migration(1)
def _migrate_v1_to_v1(payload: dict) -> dict:
    """No-op v1→v1 migration: current payloads pass through unchanged.

    Exists so the negotiation machinery runs on every restore and so
    the first real migration (v1→v2) has a worked example to replace.
    """
    return payload


def negotiate(payload: dict) -> dict:
    """Bring a payload to :data:`CURRENT_STATE_VERSION` or refuse.

    Raises:
        StateSchemaError: If the payload is not a dict or lacks an
            integer ``state_version``.
        StateVersionError: If the version is newer than supported or no
            migration chain reaches the current version.
    """
    if not isinstance(payload, dict):
        raise StateSchemaError(
            f"snapshot payload must be a dict, got {type(payload).__name__}")
    version = payload.get("state_version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise StateSchemaError(
            "snapshot payload lacks an integer 'state_version' "
            f"(got {version!r})")
    if version > CURRENT_STATE_VERSION:
        raise StateVersionError(
            f"snapshot state_version {version} is newer than this build "
            f"supports (max {CURRENT_STATE_VERSION}); upgrade the code or "
            f"regenerate the snapshot")
    while version < CURRENT_STATE_VERSION:
        hook = _MIGRATIONS.get(version)
        if hook is None:
            raise StateVersionError(
                f"snapshot state_version {version} is not restorable: no "
                f"migration registered from v{version} toward "
                f"v{CURRENT_STATE_VERSION} "
                f"(supported: {SUPPORTED_STATE_VERSIONS})")
        payload = hook(payload)
        new_version = payload.get("state_version")
        if not isinstance(new_version, int) or new_version <= version:
            raise StateVersionError(
                f"migration from v{version} did not advance the payload "
                f"(got state_version {new_version!r})")
        version = new_version
    hook = _MIGRATIONS.get(CURRENT_STATE_VERSION)
    if hook is not None:
        payload = hook(payload)
    return payload


def validate_payload(value: object, path: str = "$") -> None:
    """Reject payloads that are not finite, JSON-serializable data.

    Walks dicts/lists/tuples recursively; every leaf must be ``None``,
    ``bool``, ``int``, ``str``, or a *finite* ``float``.

    Raises:
        StateSchemaError: On non-string keys or non-JSON types.
        StateValueError: On NaN/±inf floats, naming the offending path.
    """
    if value is None or isinstance(value, (bool, str)):
        return
    if isinstance(value, int):
        return
    if isinstance(value, float):
        if not math.isfinite(value):
            raise StateValueError(
                f"non-finite value {value!r} at {path}; snapshots must be "
                f"strict-JSON serializable")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise StateSchemaError(
                    f"non-string key {key!r} at {path}; snapshot dicts "
                    f"must be JSON objects")
            validate_payload(item, f"{path}.{key}")
        return
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            validate_payload(item, f"{path}[{index}]")
        return
    raise StateSchemaError(
        f"non-JSON value of type {type(value).__name__} at {path}")


def require(mapping: object, key: str, types: type | tuple[type, ...],
            path: str) -> object:
    """Fetch a required, type-checked field from a state dict.

    ``float`` expectations accept ``int`` (JSON does not distinguish
    ``1`` from ``1.0``); ``bool`` never satisfies a numeric expectation.

    Raises:
        StateSchemaError: On a missing key or wrong type.
    """
    if not isinstance(mapping, dict):
        raise StateSchemaError(
            f"expected a dict at {path}, got {type(mapping).__name__}")
    if key not in mapping:
        raise StateSchemaError(f"missing required key {key!r} at {path}")
    value = mapping[key]
    expected = types if isinstance(types, tuple) else (types,)
    if float in expected and isinstance(value, int) \
            and not isinstance(value, bool):
        return float(value)
    if isinstance(value, bool) and bool not in expected:
        raise StateSchemaError(
            f"{path}.{key} must be {expected}, got bool")
    if not isinstance(value, expected):
        raise StateSchemaError(
            f"{path}.{key} must be {tuple(t.__name__ for t in expected)}, "
            f"got {type(value).__name__}")
    return value


def require_finite(mapping: dict, key: str, path: str, *,
                   minimum: float | None = None,
                   optional: bool = False) -> float | None:
    """Fetch a required finite float field, optionally bounded below.

    Raises:
        StateValueError: On non-finite or below-minimum values.
    """
    if optional and mapping.get(key) is None:
        return None
    value = require(mapping, key, float, path)
    assert isinstance(value, float)
    if not math.isfinite(value):
        raise StateValueError(f"{path}.{key} must be finite, got {value!r}")
    if minimum is not None and value < minimum:
        raise StateValueError(
            f"{path}.{key} must be >= {minimum:g}, got {value!r}")
    return value


# -- atomic JSON file helpers -------------------------------------------------

def write_json_atomic(path: Path, payload: object) -> None:
    """Write JSON durably: temp file + fsync + atomic rename.

    A SIGKILL at any instant leaves either the old file or the new one,
    never a torn mix — the contract the snapshot files and the sweep
    spec rely on.  ``allow_nan=False`` turns any smuggled NaN/inf into
    an error at write time rather than an unreadable file at resume.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def read_json(path: Path) -> object:
    """Load a JSON file written by :func:`write_json_atomic`.

    Raises:
        StateSchemaError: On unparseable content.
    """
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise StateSchemaError(f"unreadable JSON at {path}: {error}") from error
