"""Deterministic checkpoint/restore and crash-safe resumable sweeps.

Two subsystems share this package:

* **Snapshots** (:mod:`repro.state.checkpoint`) — every stateful
  simulation component exposes versioned, JSON-serializable
  ``to_state()/from_state()``; :func:`snapshot`/:func:`restore` freeze
  and revive a whole :class:`~repro.fleet.cluster.FleetSimulator`
  mid-run with bit-identical replay (pinned by the ``state`` audit
  family).
* **Resumable sweeps** (:mod:`repro.state.runner`) — a write-ahead-
  journaled grid runner that persists each completed point and
  periodic snapshots to a run directory, survives SIGKILL, resumes
  skipping completed work, and supervises each point with a watchdog
  (timeout, seeded-backoff retry, quarantine).

The error taxonomy (:mod:`repro.state.errors`) and schema helpers
(:mod:`repro.state.schema`) are imported eagerly — they are
dependency-free, so any layer can use them.  Everything that touches
:mod:`repro.fleet`/:mod:`repro.faults` resolves lazily to avoid import
cycles (those packages' components import the error taxonomy).
"""

from .errors import (
    StateError,
    StateIntegrityError,
    StateJournalError,
    StateSchemaError,
    StateValueError,
    StateVersionError,
)
from .schema import (
    CURRENT_STATE_VERSION,
    SUPPORTED_STATE_VERSIONS,
    negotiate,
    register_migration,
    validate_payload,
)

#: Lazily resolved: these modules import repro.fleet / repro.faults,
#: whose components import repro.state.errors (cycle otherwise).
_LAZY_EXPORTS = {
    "snapshot": "checkpoint",
    "restore": "checkpoint",
    "write_snapshot": "checkpoint",
    "read_snapshot": "checkpoint",
    "FLEET_SNAPSHOT_KIND": "checkpoint",
    "GridPoint": "runner",
    "SweepSpec": "runner",
    "SweepRunner": "runner",
    "PointContext": "runner",
    "point_runner": "points",
    "resolve_point_runner": "points",
    "chaos_grid": "points",
    "capacity_grid": "points",
    "attest_grid": "points",
}

__all__ = [
    "CURRENT_STATE_VERSION",
    "SUPPORTED_STATE_VERSIONS",
    "StateError",
    "StateIntegrityError",
    "StateJournalError",
    "StateSchemaError",
    "StateValueError",
    "StateVersionError",
    "negotiate",
    "register_migration",
    "validate_payload",
    *sorted(_LAZY_EXPORTS),
]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        from importlib import import_module
        module = import_module(f".{module_name}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
