"""Registered point runners and grid builders for resumable sweeps.

A *point runner* is a function ``(params, context) -> row`` executing
one grid point of a sweep: it rebuilds its workload deterministically
from JSON ``params``, optionally resumes a mid-point simulator
checkpoint via the :class:`~repro.state.runner.PointContext`, and
returns the same JSON row the monolithic sweep function would have
produced — so a resumed, interrupted, or watchdog-supervised run
merges into output byte-identical to an uninterrupted one.

Runners are looked up by name (the name is what ``spec.json``
persists), so a resumed process needs no pickled callables — just this
registry.
"""

from __future__ import annotations

from typing import Callable

from .errors import StateSchemaError
from .runner import GridPoint, PointContext, SweepSpec
from .schema import require, require_finite

#: name -> runner registry, populated by :func:`point_runner`.
_POINT_RUNNERS: dict[str, Callable[[dict, PointContext], dict]] = {}


def point_runner(name: str):
    """Register a point runner under a stable, persistable name."""
    def decorate(func: Callable[[dict, PointContext], dict]):
        if name in _POINT_RUNNERS:
            raise StateSchemaError(f"point runner {name!r} already registered")
        _POINT_RUNNERS[name] = func
        return func
    return decorate


def resolve_point_runner(name: str) -> Callable[[dict, PointContext], dict]:
    """Look up a registered runner; unknown names fail with the roster."""
    try:
        return _POINT_RUNNERS[name]
    except KeyError:
        known = ", ".join(sorted(_POINT_RUNNERS)) or "<none>"
        raise StateSchemaError(
            f"unknown point runner {name!r} (registered: {known})") from None


def _run_checkpointed(fleet, requests, context: PointContext):
    """Drive a fleet to completion with periodic durable checkpoints.

    Resumes from the point's snapshot when one survives a crash,
    otherwise starts fresh; either way the tick sequence — and hence
    the report — is bit-identical to ``fleet.run(requests)``.
    Checkpoint cadence is measured on the *simulated* clock so the
    snapshot points (and thus the on-disk artifacts) are deterministic
    too.
    """
    from .checkpoint import restore, snapshot

    payload = context.resume_payload()
    if payload is not None:
        restore(fleet, payload)
    else:
        fleet.begin_run(requests)
    last_checkpoint_s = fleet.run_clock_s
    while fleet.run_active:
        fleet.run_tick()
        if (context.checkpoint_every_s > 0 and fleet.run_active
                and fleet.run_clock_s - last_checkpoint_s
                >= context.checkpoint_every_s):
            context.checkpoint(snapshot(fleet))
            last_checkpoint_s = fleet.run_clock_s
    return fleet.finish_run()


@point_runner("chaos_mtbf")
def run_chaos_mtbf_point(params: dict, context: PointContext) -> dict:
    """One ``(kind, mtbf)`` cell of :func:`repro.faults.sweep.mtbf_sweep`.

    Params mirror the sweep's arguments for a single cell; ``mtbf_s``
    is ``None`` for the fault-free anchor.  The row matches
    :func:`repro.faults.sweep.iter_mtbf_rows` exactly.
    """
    from ..faults.sweep import chaos_fleet, sweep_row
    from ..fleet.arrivals import poisson_arrivals

    kind = require(params, "kind", str, "$.params")
    mtbf_s = require_finite(params, "mtbf_s", "$.params", optional=True)
    requests = poisson_arrivals(
        require(params, "num_requests", int, "$.params"),
        require_finite(params, "rate_rps", "$.params", minimum=1e-12),
        require(params, "mean_prompt", int, "$.params"),
        require(params, "mean_output", int, "$.params"),
        seed=require(params, "seed", int, "$.params"))
    fleet = chaos_fleet(
        kind,
        replicas=require(params, "replicas", int, "$.params"),
        mtbf_s=mtbf_s,
        horizon_s=require_finite(params, "horizon_s", "$.params"),
        seed=require(params, "seed", int, "$.params"),
        timeout_s=require_finite(params, "timeout_s", "$.params"))
    report = _run_checkpointed(fleet, requests, context)
    return sweep_row(kind, mtbf_s, report,
                     require_finite(params, "slo_ttft_s", "$.params"))


@point_runner("fleet_capacity")
def run_fleet_capacity_point(params: dict, context: PointContext) -> dict:
    """One fleet size of a capacity curve (:mod:`repro.fleet.planner`).

    ``params["trace"] == "capacity"`` replays the pinned golden
    capacity trace; otherwise the trace is generated from the params
    via :func:`repro.fleet.arrivals.make_arrivals`.  The row is
    :meth:`~repro.fleet.planner.CapacityPoint.to_dict`.
    """
    from ..fleet.planner import evaluate_fleet
    from ..fleet.replica import replica_spec

    kind = require(params, "kind", str, "$.params")
    count = require(params, "replicas", int, "$.params")
    slo_ttft_s = require_finite(params, "slo_ttft_s", "$.params",
                                minimum=1e-12)
    spec = replica_spec(kind, max_batch=16, kv_capacity_tokens=65536)
    trace = params.get("trace")
    if trace == "capacity":
        from ..fleet.arrivals import trace_replay
        from ..validate.fleet import CAPACITY_TRACE
        requests = trace_replay(list(CAPACITY_TRACE))
    elif trace is None:
        from ..fleet.arrivals import make_arrivals
        requests = make_arrivals(
            require(params, "arrivals", str, "$.params"),
            require(params, "num_requests", int, "$.params"),
            require_finite(params, "rate_rps", "$.params", minimum=1e-12),
            require(params, "mean_prompt", int, "$.params"),
            require(params, "mean_output", int, "$.params"),
            seed=require(params, "seed", int, "$.params"))
    else:
        raise StateSchemaError(
            f"$.params.trace must be 'capacity' or absent, got {trace!r}")
    point, _ = evaluate_fleet(spec, count, requests, slo_ttft_s)
    del context  # capacity cells finish in one tick loop; no mid-point saves
    return point.to_dict()


@point_runner("attest_tax")
def run_attest_tax_point(params: dict, context: PointContext) -> dict:
    """One ``(kind, scenario)`` cell of the attestation-tax table.

    The row matches :func:`repro.tee.boot.attest_tax_row` exactly —
    legacy instant-boot vs phased confidential-boot twins of the same
    headline fleet, same stream, with the $/Mtok and p99-TTFT deltas.
    """
    from ..tee.boot import attest_tax_row

    del context  # each cell pairs two short runs; no mid-point saves
    return attest_tax_row(
        require(params, "kind", str, "$.params"),
        require(params, "scenario", str, "$.params"),
        require_finite(params, "slo_ttft_s", "$.params", minimum=1e-12),
        engine=require(params, "engine", str, "$.params"))


def chaos_grid(kinds: tuple[str, ...] | None = None,
               mtbf_grid_s: tuple[float | None, ...] | None = None,
               num_requests: int = 36, rate_rps: float = 1.5,
               mean_prompt: int = 128, mean_output: int = 64,
               replicas: int = 1, seed: int = 7, slo_ttft_s: float = 2.0,
               timeout_s: float = 20.0, horizon_s: float = 40.0,
               checkpoint_every_s: float = 0.0,
               point_timeout_s: float | None = None) -> SweepSpec:
    """The :func:`~repro.faults.sweep.mtbf_sweep` grid as a SweepSpec.

    Defaults match the sweep's defaults, so running this spec to
    completion journals exactly the rows of ``mtbf_sweep()`` — the
    property the kill-and-resume audit pins against the
    ``golden.chaos_mtbf`` snapshot.
    """
    from ..faults.sweep import DEFAULT_KINDS, DEFAULT_MTBF_GRID_S

    kinds = DEFAULT_KINDS if kinds is None else kinds
    mtbf_grid_s = DEFAULT_MTBF_GRID_S if mtbf_grid_s is None else mtbf_grid_s
    points = []
    for kind in kinds:
        for mtbf_s in mtbf_grid_s:
            label = "none" if mtbf_s is None else f"{mtbf_s:g}"
            points.append(GridPoint(
                index=len(points), key=f"{kind}/mtbf_{label}",
                runner="chaos_mtbf",
                params={"kind": kind, "mtbf_s": mtbf_s,
                        "num_requests": num_requests, "rate_rps": rate_rps,
                        "mean_prompt": mean_prompt,
                        "mean_output": mean_output, "replicas": replicas,
                        "seed": seed, "slo_ttft_s": slo_ttft_s,
                        "timeout_s": timeout_s, "horizon_s": horizon_s},
                group=kind))
    return SweepSpec(points=tuple(points),
                     checkpoint_every_s=checkpoint_every_s,
                     point_timeout_s=point_timeout_s)


def capacity_grid(kinds: tuple[str, ...] = ("tdx", "cgpu"),
                  max_replicas: int = 8, slo_ttft_s: float = 2.0,
                  trace: str = "capacity",
                  point_timeout_s: float | None = None) -> SweepSpec:
    """A per-kind capacity curve grid with SLO-met pruning.

    ``prune_field="meets_slo"`` with ``group=kind`` reproduces
    :func:`~repro.fleet.planner.capacity_plan`'s early stop: once a
    fleet size meets the SLO, the kind's larger sizes are skipped —
    including across a crash/resume boundary.
    """
    if trace != "capacity":
        raise StateSchemaError("capacity_grid currently pins the golden "
                               "capacity trace; pass trace='capacity'")
    points = []
    for kind in kinds:
        for count in range(1, max_replicas + 1):
            points.append(GridPoint(
                index=len(points), key=f"{kind}/replicas_{count}",
                runner="fleet_capacity",
                params={"kind": kind, "replicas": count,
                        "slo_ttft_s": slo_ttft_s, "trace": trace},
                group=kind))
    return SweepSpec(points=tuple(points), prune_field="meets_slo",
                     point_timeout_s=point_timeout_s)


def attest_grid(kinds: tuple[str, ...] | None = None,
                scenarios: tuple[str, ...] = ("capacity", "chaos"),
                slo_ttft_s: float = 2.0, engine: str = "stepped",
                point_timeout_s: float | None = None) -> SweepSpec:
    """The attestation-tax table as a resumable SweepSpec.

    Defaults mirror :func:`repro.tee.boot.attest_tax_sweep`, so running
    this spec to completion journals exactly the rows the
    ``golden.attest_tax`` audit snapshot pins.
    """
    from ..tee.boot import TAX_FLEET_KINDS

    kinds = TAX_FLEET_KINDS if kinds is None else kinds
    points = []
    for scenario in scenarios:
        for kind in kinds:
            points.append(GridPoint(
                index=len(points), key=f"{kind}/{scenario}",
                runner="attest_tax",
                params={"kind": kind, "scenario": scenario,
                        "slo_ttft_s": slo_ttft_s, "engine": engine},
                group=kind))
    return SweepSpec(points=tuple(points),
                     point_timeout_s=point_timeout_s)
