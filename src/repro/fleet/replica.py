"""Fleet replicas: a priced, bootable serving instance.

A :class:`ReplicaSpec` names a rentable configuration — deployment
(bare metal, TDX, SGX, GPU, cGPU), serving limits, and the hourly
price from :mod:`repro.cost.pricing`.  A :class:`Replica` is one
provisioned instance of a spec: it owns a steppable
:class:`~repro.serving.scheduler.ContinuousBatchingScheduler`, tracks
its lifecycle (booting -> live -> draining -> retired), and accrues
billed uptime from provisioning to retirement — booting and draining
time is paid for, exactly like a real cloud instance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.experiment import cpu_deployment, gpu_deployment
from ..cost.pricing import GCP_SPOT_US_EAST1, PAPER_MEMORY_GB, PriceCatalog
from ..engine.placement import CpuPlacement, Deployment
from ..llm.config import LLAMA2_7B, ModelConfig
from ..llm.datatypes import BFLOAT16, DType
from ..serving.admission import TenancyConfig
from ..serving.columnar import ColumnarScheduler
from ..serving.scheduler import (
    ContinuousBatchingScheduler,
    RequestOutcome,
    ServeRequest,
)
from ..tee.boot import ATTESTING as BOOT_REATTEST_PHASE
from ..tee.boot import BootProfile, BootSequence

#: Fleet engine names: the original fixed-tick object core and the
#: event-driven columnar core (see :mod:`repro.fleet.cluster`).
ENGINES = ("stepped", "event")

#: Replica lifecycle states.
BOOTING, LIVE, DRAINING, RETIRED = "booting", "live", "draining", "retired"

#: Fault lifecycle states (:mod:`repro.faults`): a crashed instance and
#: a TEE instance waiting to re-attest before readmission.
FAILED, ATTESTING = "failed", "attesting"

#: Replica kinds the factory knows how to price.
REPLICA_KINDS = ("baremetal", "vm", "tdx", "sgx", "gpu", "cgpu")


@dataclass(frozen=True)
class ReplicaSpec:
    """One rentable serving configuration.

    Attributes:
        kind: Backend label (``tdx``, ``cgpu``, ...).
        deployment: Execution environment of every instance.
        price_hr: Hourly price of one instance.
        model: Served architecture.
        dtype: Serving datatype.
        kv_capacity_tokens: KV pool per instance.
        block_size: Paged-KV block granularity.
        max_batch: Concurrent-sequence cap per instance.
        admission_lookahead: Scheduler head-of-line lookahead window.
        tenancy: Optional multi-tenant policy (admission + KV
            isolation) armed on every scheduler this spec builds.
        boot: Optional phased cold-start profile
            (:class:`~repro.tee.boot.BootProfile`).  When set, every
            instance of this spec boots through the confidential
            lifecycle (provision -> attest -> key release -> decrypt
            -> load) and its boot latency is the *derived* sum of the
            phases — any constant the provisioner passes is superseded.
            ``None`` keeps the legacy single-constant boot path,
            bit-identically.
    """

    kind: str
    deployment: Deployment
    price_hr: float
    model: ModelConfig = LLAMA2_7B
    dtype: DType = BFLOAT16
    kv_capacity_tokens: int = 131072
    block_size: int = 16
    max_batch: int = 32
    admission_lookahead: int = 0
    tenancy: TenancyConfig | None = None
    boot: BootProfile | None = None

    def __post_init__(self) -> None:
        if self.price_hr <= 0:
            raise ValueError("price_hr must be positive")

    def boot_sequence(self) -> BootSequence | None:
        """The phased boot frozen against the served model, if armed."""
        if self.boot is None:
            return None
        return self.boot.sequence(self.model, self.dtype)

    def build_scheduler(self, engine: str = "stepped",
                        ) -> ContinuousBatchingScheduler | ColumnarScheduler:
        """A fresh scheduler configured for one instance of this spec.

        The ``"stepped"`` engine gets the object-per-request
        :class:`~repro.serving.scheduler.ContinuousBatchingScheduler`;
        the ``"event"`` engine gets its bit-identical columnar twin.
        """
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; "
                             f"expected one of {ENGINES}")
        scheduler_cls = (ColumnarScheduler if engine == "event"
                         else ContinuousBatchingScheduler)
        return scheduler_cls(
            self.deployment, self.model, self.dtype,
            kv_capacity_tokens=self.kv_capacity_tokens,
            block_size=self.block_size, max_batch=self.max_batch,
            admission_lookahead=self.admission_lookahead,
            tenancy=self.tenancy)


def replica_spec(kind: str, catalog: PriceCatalog = GCP_SPOT_US_EAST1,
                 cores: int | None = None,
                 **overrides: object) -> ReplicaSpec:
    """Build a priced spec for a named backend kind.

    CPU kinds are priced as custom instances (one billed vCPU per
    physical core, §IV-A; memory fixed at the paper's 128 GB); GPU
    kinds use the (confidential) H100 instance price.

    Args:
        kind: One of :data:`REPLICA_KINDS`.
        catalog: Price catalog to bill against.
        cores: CPU cores per instance (default: a full socket).
        **overrides: Forwarded to :class:`ReplicaSpec` (e.g.
            ``max_batch``, ``kv_capacity_tokens``).
    """
    if kind not in REPLICA_KINDS:
        raise ValueError(f"unknown replica kind {kind!r}; "
                         f"expected one of {REPLICA_KINDS}")
    if kind in ("gpu", "cgpu"):
        deployment = gpu_deployment(confidential=kind == "cgpu")
        price = (catalog.cgpu_instance_hr if kind == "cgpu"
                 else catalog.gpu_instance_hr)
    else:
        placement_kwargs = {"sockets_used": 1}
        if cores is not None:
            placement_kwargs["cores_per_socket_used"] = cores
        deployment = cpu_deployment(kind, **placement_kwargs)
        placement = deployment.placement
        assert isinstance(placement, CpuPlacement)
        price = catalog.cpu_instance_hr(placement.cores, PAPER_MEMORY_GB)
    return ReplicaSpec(kind=kind, deployment=deployment, price_hr=price,
                       **overrides)  # type: ignore[arg-type]


class Replica:
    """One provisioned instance of a spec inside a fleet.

    Args:
        replica_id: Fleet-unique id (provisioning order).
        spec: Configuration this instance runs.
        provisioned_s: When the instance was requested.
        boot_latency_s: Time from provisioning to serving readiness.
            When the spec carries a phased boot profile this constant
            is superseded by the derived sum of the boot phases.
        origin: Which spec pool provisioned this instance —
            ``"initial"`` (fleet construction), ``"scale"`` (autoscaler
            scale-up), or ``"spill"`` (degradation spill pool).  Purely
            descriptive at run time; checkpoint restore uses it to find
            the right spec when rebuilding the instance.
        engine: Which scheduler core the instance runs — ``"stepped"``
            (object-per-request) or ``"event"`` (columnar twin).
    """

    def __init__(self, replica_id: int, spec: ReplicaSpec,
                 provisioned_s: float, boot_latency_s: float,
                 origin: str = "initial", engine: str = "stepped") -> None:
        # NaN passes a plain `< 0` comparison, so finiteness is explicit
        # (same guard the ServeRequest/Workload validators grew).
        if not math.isfinite(boot_latency_s) or boot_latency_s < 0:
            raise ValueError("boot_latency_s must be finite and >= 0")
        if not math.isfinite(provisioned_s):
            raise ValueError("provisioned_s must be finite")
        if origin not in ("initial", "scale", "spill"):
            raise ValueError(f"unknown replica origin {origin!r}")
        self.replica_id = replica_id
        self.spec = spec
        self.origin = origin
        self.engine = engine
        self.provisioned_s = provisioned_s
        #: Phased confidential boot (None on legacy constant-boot specs).
        self.boot = spec.boot_sequence()
        if self.boot is not None:
            # The constant becomes the derived sum of the boot phases.
            boot_latency_s = self.boot.total_s
        self.boot_latency_s = boot_latency_s
        self.ready_s = provisioned_s + boot_latency_s
        self.retired_s: float | None = None
        self.state = BOOTING if boot_latency_s > 0 else LIVE
        self.scheduler = spec.build_scheduler(engine)
        # An instance cannot serve before it exists.
        self.scheduler.advance_clock_to(self.ready_s if self.state == LIVE
                                        else self.provisioned_s)
        self.requests_routed = 0
        self.tokens_out = 0
        # Fault machinery (repro.faults); all inert on a healthy fleet.
        self.crashes = 0
        self._hang_until_s: float | None = None
        self._slow_until_s: float | None = None
        self._restart_at_s: float | None = None
        self._boot_penalty_s = 0.0
        # Billing windows: uptime billed so far across closed rental
        # windows (a crash closes one; a restart opens the next) plus
        # the start of the currently open window, if any.
        self._closed_billed_s = 0.0
        self._window_start_s: float | None = provisioned_s

    # -- lifecycle ------------------------------------------------------------

    def activate_if_ready(self, now: float) -> None:
        """Transition booting -> live once boot latency has elapsed."""
        if self.state == BOOTING and now >= self.ready_s:
            self.state = LIVE
            # A replica starts serving at readiness, not at clock 0: it
            # cannot have served anything while booting.
            self.scheduler.advance_clock_to(self.ready_s)

    def boot_phase(self, now: float) -> str | None:
        """Which confidential boot phase is underway at ``now``.

        Only meaningful on phased-boot replicas: returns ``None`` on
        legacy constant-boot instances and whenever the instance is not
        booting or re-attesting.  The phase is derived backwards from
        ``ready_s`` (see :meth:`repro.tee.boot.BootSequence.phase_at`),
        so a boot stretched by a ``boot_failure`` penalty or restarted
        from ``ATTESTING`` still maps every instant to exactly one
        phase — and the answer survives snapshot/restore for free,
        because ``ready_s`` does.
        """
        if self.boot is None or self.state not in (BOOTING, ATTESTING):
            return None
        return self.boot.phase_at(now, self.ready_s)

    @property
    def reattest_s(self) -> float | None:
        """Boot time a restart from the ATTESTING phase pays, if phased.

        The provisioning phase is never repaid: an attestation failure
        (mid-boot or live) re-enters the sequence at ``ATTESTING`` and
        pays attestation, key release, model decrypt and weight load
        again — the enclave's contents are no longer trusted.
        """
        if self.boot is None:
            return None
        return self.boot.remaining_from(BOOT_REATTEST_PHASE)

    def drain(self) -> None:
        """Stop accepting new work; finish what is queued, then retire."""
        if self.state in (BOOTING, LIVE):
            self.state = DRAINING

    def retire_if_drained(self, now: float) -> None:
        """Transition draining -> retired once all queued work is done."""
        if self.state == DRAINING and self.scheduler.idle:
            self.state = RETIRED
            self.retired_s = now

    @property
    def routable(self) -> bool:
        """Whether the router may send new requests here."""
        return self.state == LIVE and self._hang_until_s is None

    @property
    def active(self) -> bool:
        """Whether the instance still accrues cost and needs stepping."""
        return self.state not in (RETIRED, FAILED)

    # -- fault lifecycle (repro.faults) ---------------------------------------

    def crash(self, now: float,
              restart_after_s: float | None = None,
              ) -> list[tuple[ServeRequest, int]]:
        """Kill the instance; in-flight work is lost.

        With a scheduled reboot (``restart_after_s``) the rental
        continues — the operator keeps paying while the instance
        repairs, exactly as a cloud bills a rebooting VM.  Without one
        the instance is released and the billing window closes.  Any
        hang/slowdown effects are cleared; the fleet requeues the
        evacuated requests.

        Returns:
            ``(request, tokens_generated)`` pairs evacuated from the
            scheduler; the generated counts are wasted work.
        """
        evacuated = self.scheduler.evacuate()
        self.state = FAILED
        self.crashes += 1
        self._hang_until_s = None
        self._slow_until_s = None
        self.scheduler.time_scale = 1.0
        if restart_after_s is None:
            # Unrecoverable: the instance is released and the meter
            # stops.  ``retired_s`` records release time only.
            self.retired_s = now
            if self._window_start_s is not None:
                self._closed_billed_s += max(0.0,
                                             now - self._window_start_s)
                self._window_start_s = None
            self._restart_at_s = None
        else:
            self._restart_at_s = now + restart_after_s
        return evacuated

    @property
    def restart_pending(self) -> bool:
        """Whether a crashed instance has a reboot scheduled."""
        return self.state == FAILED and self._restart_at_s is not None

    def restart_if_due(self, now: float) -> bool:
        """Reboot a crashed instance once its repair window elapsed.

        The billing window stayed open through the repair (the rental
        never ended); the instance re-enters the boot path (plus any
        queued boot-failure penalty) and, for TEE replicas, must
        re-attest before going live.  A phased-boot instance re-enters
        the sequence at ``ATTESTING`` — the VM/TD is already
        provisioned, but attestation, key release, model decrypt and
        weight load all run again.
        """
        if self.state != FAILED or self._restart_at_s is None \
                or now < self._restart_at_s:
            return False
        restart_at = self._restart_at_s
        self._restart_at_s = None
        self.retired_s = None
        reboot_s = self.reattest_s
        self.ready_s = restart_at + (reboot_s or 0.0) + self._boot_penalty_s
        self._boot_penalty_s = 0.0
        self.state = BOOTING
        return True

    def hang(self, until_s: float) -> None:
        """Stall the instance: no progress until ``until_s``."""
        if self.state in (LIVE, DRAINING):
            current = self._hang_until_s
            self._hang_until_s = (until_s if current is None
                                  else max(current, until_s))

    def slow(self, until_s: float, factor: float) -> None:
        """Degrade the instance: steps run ``factor`` slower until
        ``until_s`` (later faults overwrite earlier ones)."""
        if self.state in (LIVE, DRAINING):
            self.scheduler.time_scale = factor
            self._slow_until_s = until_s

    def expire_faults(self, now: float) -> None:
        """Lift timed effects whose window has passed."""
        if self._slow_until_s is not None and now >= self._slow_until_s:
            self.scheduler.time_scale = 1.0
            self._slow_until_s = None

    def boot_failure(self, penalty_s: float) -> str:
        """Fail the current boot (delays readiness) or queue the
        penalty for the next reboot of an already-running instance."""
        if self.state == BOOTING:
            self.ready_s += penalty_s
            return f"boot delayed by {penalty_s:g}s"
        self._boot_penalty_s += penalty_s
        return f"{penalty_s:g}s penalty queued for next boot"

    def begin_attestation(self, ready_at_s: float,
                          ) -> list[tuple[ServeRequest, int]]:
        """Quarantine the instance until it re-attests at ``ready_at_s``.

        In-flight work is evacuated (the enclave's state is no longer
        trusted); billing continues — the instance is still rented.
        On phased-boot replicas the fleet passes a ``ready_at_s`` of
        ``now + reattest_s``: the boot sequence restarts from the
        ``ATTESTING`` phase whether the failure struck mid-boot or
        mid-serving (:attr:`reattest_s`).
        """
        evacuated = self.scheduler.evacuate()
        self.state = ATTESTING
        self._hang_until_s = None
        self._slow_until_s = None
        self.scheduler.time_scale = 1.0
        self.ready_s = ready_at_s
        return evacuated

    def complete_attestation(self) -> None:
        """Readmit a successfully re-attested instance."""
        if self.state == ATTESTING:
            self.state = LIVE
            self.scheduler.advance_clock_to(self.ready_s)

    def cancel(self, request_id: int) -> tuple[ServeRequest, int] | None:
        """Withdraw one in-flight request (fleet timeout/retry hook)."""
        return self.scheduler.cancel(request_id)

    # -- serving --------------------------------------------------------------

    def submit(self, request: ServeRequest) -> None:
        if not self.routable:
            raise ValueError(
                f"replica {self.replica_id} is {self.state}, not routable")
        # An idle replica whose clock lags the arrival would otherwise
        # admit in the past; the scheduler's idle-jump handles it, but
        # never let a booting clock precede readiness.
        self.scheduler.submit(request)
        self.requests_routed += 1

    def step(self, until_s: float) -> list[RequestOutcome] | list[int]:
        """Advance the replica's scheduler to the shared-clock horizon.

        Returns outcome objects under the stepped engine and finished
        request *ids* under the event engine (read timelines from the
        columnar scheduler via ``finished_triple``).
        """
        if self._hang_until_s is not None:
            if until_s < self._hang_until_s:
                return []  # stalled: no progress until the hang lifts
            # The stall window produced no work; resume from its end.
            self.scheduler.advance_clock_to(self._hang_until_s)
            self._hang_until_s = None
        finished = self.scheduler.step(until_s)
        if self.engine == "event":
            for request_id in finished:
                self.tokens_out += self.scheduler.output_tokens(request_id)
        else:
            for outcome in finished:
                self.tokens_out += outcome.request.output_tokens
        return finished

    # -- accounting -----------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return self.scheduler.outstanding

    @property
    def kv_free_fraction(self) -> float:
        return self.scheduler.kv_free_fraction

    def estimated_ttft_s(self, request: ServeRequest, now: float) -> float:
        estimate = self.scheduler.estimated_ttft_s(request, now)
        if self.state == BOOTING:
            estimate += max(0.0, self.ready_s - now)
        return estimate

    def billed_hours(self, end_s: float) -> float:
        """Billed uptime (provisioning to release, or to ``end_s``).

        The rental window closes only when the instance is *released*:
        retirement after a drain, or an unrecoverable crash.  A crash
        with a scheduled reboot keeps the meter running through the
        repair, exactly as a cloud bills a rebooting VM.  On a healthy
        fleet there is exactly one window from provisioning, and the
        sum below adds ``0.0`` — exact under IEEE-754, keeping
        fault-free bills bit-identical.
        """
        if self._window_start_s is None:
            return self._closed_billed_s / 3600.0
        end = self.retired_s if self.retired_s is not None else end_s
        open_window = max(0.0, end - self._window_start_s)
        return (self._closed_billed_s + open_window) / 3600.0

    def cost_usd(self, end_s: float) -> float:
        return self.billed_hours(end_s) * self.spec.price_hr

    # -- checkpoint/restore ---------------------------------------------------

    def spec_fingerprint(self) -> dict:
        """Identity of the spec this instance runs, for restore checks."""
        spec = self.spec
        fingerprint = {
            "kind": spec.kind,
            "price_hr": spec.price_hr,
            "model": spec.model.name,
            "dtype": spec.dtype.name,
            "kv_capacity_tokens": spec.kv_capacity_tokens,
            "block_size": spec.block_size,
            "max_batch": spec.max_batch,
            "admission_lookahead": spec.admission_lookahead,
        }
        if spec.tenancy is not None:
            fingerprint["tenancy"] = spec.tenancy.fingerprint()
        # Only-when-armed, like tenancy: pre-boot snapshots stay
        # byte-compatible and legacy fleets never see the key.
        if spec.boot is not None:
            fingerprint["boot"] = spec.boot.fingerprint()
        return fingerprint

    def to_state(self) -> dict:
        """Plain-dict snapshot of lifecycle, billing, and serving state."""
        return {
            "replica_id": self.replica_id,
            "origin": self.origin,
            "spec": self.spec_fingerprint(),
            "provisioned_s": self.provisioned_s,
            "boot_latency_s": self.boot_latency_s,
            "ready_s": self.ready_s,
            "retired_s": self.retired_s,
            "state": self.state,
            "requests_routed": self.requests_routed,
            "tokens_out": self.tokens_out,
            "crashes": self.crashes,
            "hang_until_s": self._hang_until_s,
            "slow_until_s": self._slow_until_s,
            "restart_at_s": self._restart_at_s,
            "boot_penalty_s": self._boot_penalty_s,
            "closed_billed_s": self._closed_billed_s,
            "window_start_s": self._window_start_s,
            "scheduler": self.scheduler.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict, spec: ReplicaSpec,
                   engine: str = "stepped") -> "Replica":
        """Rebuild an instance of ``spec`` from a :meth:`to_state` dict.

        Raises:
            repro.state.errors.StateIntegrityError: If the snapshot was
                taken on a different spec or carries an unknown
                lifecycle state.
        """
        from ..state.errors import StateIntegrityError
        from ..state.schema import require, require_finite

        replica = cls(
            replica_id=require(state, "replica_id", int, "$.replica"),
            spec=spec,
            provisioned_s=require_finite(state, "provisioned_s", "$.replica"),
            boot_latency_s=require_finite(state, "boot_latency_s",
                                          "$.replica", minimum=0.0),
            origin=require(state, "origin", str, "$.replica"),
            engine=engine,
        )
        recorded = require(state, "spec", dict, "$.replica")
        mine = replica.spec_fingerprint()
        if recorded != mine:
            diverged = sorted(key for key in set(recorded) | set(mine)
                              if recorded.get(key) != mine.get(key))
            raise StateIntegrityError(
                f"replica {replica.replica_id} snapshot was taken on a "
                f"different spec (mismatched: {diverged})")
        lifecycle = require(state, "state", str, "$.replica")
        if lifecycle not in (BOOTING, LIVE, DRAINING, RETIRED,
                             FAILED, ATTESTING):
            raise StateIntegrityError(
                f"replica {replica.replica_id} has unknown lifecycle "
                f"state {lifecycle!r}")
        replica.state = lifecycle
        replica.ready_s = require_finite(state, "ready_s", "$.replica")
        replica.retired_s = require_finite(state, "retired_s", "$.replica",
                                           optional=True)
        replica.requests_routed = require(state, "requests_routed", int,
                                          "$.replica")
        replica.tokens_out = require(state, "tokens_out", int, "$.replica")
        replica.crashes = require(state, "crashes", int, "$.replica")
        replica._hang_until_s = require_finite(state, "hang_until_s",
                                               "$.replica", optional=True)
        replica._slow_until_s = require_finite(state, "slow_until_s",
                                               "$.replica", optional=True)
        replica._restart_at_s = require_finite(state, "restart_at_s",
                                               "$.replica", optional=True)
        replica._boot_penalty_s = require_finite(state, "boot_penalty_s",
                                                 "$.replica", minimum=0.0)
        replica._closed_billed_s = require_finite(state, "closed_billed_s",
                                                  "$.replica", minimum=0.0)
        replica._window_start_s = require_finite(state, "window_start_s",
                                                 "$.replica", optional=True)
        replica.scheduler.from_state(
            require(state, "scheduler", dict, "$.replica"))
        return replica
