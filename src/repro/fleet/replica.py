"""Fleet replicas: a priced, bootable serving instance.

A :class:`ReplicaSpec` names a rentable configuration — deployment
(bare metal, TDX, SGX, GPU, cGPU), serving limits, and the hourly
price from :mod:`repro.cost.pricing`.  A :class:`Replica` is one
provisioned instance of a spec: it owns a steppable
:class:`~repro.serving.scheduler.ContinuousBatchingScheduler`, tracks
its lifecycle (booting -> live -> draining -> retired), and accrues
billed uptime from provisioning to retirement — booting and draining
time is paid for, exactly like a real cloud instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.experiment import cpu_deployment, gpu_deployment
from ..cost.pricing import GCP_SPOT_US_EAST1, PAPER_MEMORY_GB, PriceCatalog
from ..engine.placement import CpuPlacement, Deployment
from ..llm.config import LLAMA2_7B, ModelConfig
from ..llm.datatypes import BFLOAT16, DType
from ..serving.scheduler import (
    ContinuousBatchingScheduler,
    RequestOutcome,
    ServeRequest,
)

#: Replica lifecycle states.
BOOTING, LIVE, DRAINING, RETIRED = "booting", "live", "draining", "retired"

#: Replica kinds the factory knows how to price.
REPLICA_KINDS = ("baremetal", "vm", "tdx", "sgx", "gpu", "cgpu")


@dataclass(frozen=True)
class ReplicaSpec:
    """One rentable serving configuration.

    Attributes:
        kind: Backend label (``tdx``, ``cgpu``, ...).
        deployment: Execution environment of every instance.
        price_hr: Hourly price of one instance.
        model: Served architecture.
        dtype: Serving datatype.
        kv_capacity_tokens: KV pool per instance.
        block_size: Paged-KV block granularity.
        max_batch: Concurrent-sequence cap per instance.
        admission_lookahead: Scheduler head-of-line lookahead window.
    """

    kind: str
    deployment: Deployment
    price_hr: float
    model: ModelConfig = LLAMA2_7B
    dtype: DType = BFLOAT16
    kv_capacity_tokens: int = 131072
    block_size: int = 16
    max_batch: int = 32
    admission_lookahead: int = 0

    def __post_init__(self) -> None:
        if self.price_hr <= 0:
            raise ValueError("price_hr must be positive")

    def build_scheduler(self) -> ContinuousBatchingScheduler:
        """A fresh scheduler configured for one instance of this spec."""
        return ContinuousBatchingScheduler(
            self.deployment, self.model, self.dtype,
            kv_capacity_tokens=self.kv_capacity_tokens,
            block_size=self.block_size, max_batch=self.max_batch,
            admission_lookahead=self.admission_lookahead)


def replica_spec(kind: str, catalog: PriceCatalog = GCP_SPOT_US_EAST1,
                 cores: int | None = None,
                 **overrides: object) -> ReplicaSpec:
    """Build a priced spec for a named backend kind.

    CPU kinds are priced as custom instances (one billed vCPU per
    physical core, §IV-A; memory fixed at the paper's 128 GB); GPU
    kinds use the (confidential) H100 instance price.

    Args:
        kind: One of :data:`REPLICA_KINDS`.
        catalog: Price catalog to bill against.
        cores: CPU cores per instance (default: a full socket).
        **overrides: Forwarded to :class:`ReplicaSpec` (e.g.
            ``max_batch``, ``kv_capacity_tokens``).
    """
    if kind not in REPLICA_KINDS:
        raise ValueError(f"unknown replica kind {kind!r}; "
                         f"expected one of {REPLICA_KINDS}")
    if kind in ("gpu", "cgpu"):
        deployment = gpu_deployment(confidential=kind == "cgpu")
        price = (catalog.cgpu_instance_hr if kind == "cgpu"
                 else catalog.gpu_instance_hr)
    else:
        placement_kwargs = {"sockets_used": 1}
        if cores is not None:
            placement_kwargs["cores_per_socket_used"] = cores
        deployment = cpu_deployment(kind, **placement_kwargs)
        placement = deployment.placement
        assert isinstance(placement, CpuPlacement)
        price = catalog.cpu_instance_hr(placement.cores, PAPER_MEMORY_GB)
    return ReplicaSpec(kind=kind, deployment=deployment, price_hr=price,
                       **overrides)  # type: ignore[arg-type]


class Replica:
    """One provisioned instance of a spec inside a fleet.

    Args:
        replica_id: Fleet-unique id (provisioning order).
        spec: Configuration this instance runs.
        provisioned_s: When the instance was requested.
        boot_latency_s: Time from provisioning to serving readiness.
    """

    def __init__(self, replica_id: int, spec: ReplicaSpec,
                 provisioned_s: float, boot_latency_s: float) -> None:
        if boot_latency_s < 0:
            raise ValueError("boot_latency_s must be >= 0")
        self.replica_id = replica_id
        self.spec = spec
        self.provisioned_s = provisioned_s
        self.ready_s = provisioned_s + boot_latency_s
        self.retired_s: float | None = None
        self.state = BOOTING if boot_latency_s > 0 else LIVE
        self.scheduler = spec.build_scheduler()
        # An instance cannot serve before it exists.
        self.scheduler.advance_clock_to(self.ready_s if self.state == LIVE
                                        else self.provisioned_s)
        self.requests_routed = 0
        self.tokens_out = 0

    # -- lifecycle ------------------------------------------------------------

    def activate_if_ready(self, now: float) -> None:
        """Transition booting -> live once boot latency has elapsed."""
        if self.state == BOOTING and now >= self.ready_s:
            self.state = LIVE
            # A replica starts serving at readiness, not at clock 0: it
            # cannot have served anything while booting.
            self.scheduler.advance_clock_to(self.ready_s)

    def drain(self) -> None:
        """Stop accepting new work; finish what is queued, then retire."""
        if self.state in (BOOTING, LIVE):
            self.state = DRAINING

    def retire_if_drained(self, now: float) -> None:
        """Transition draining -> retired once all queued work is done."""
        if self.state == DRAINING and self.scheduler.idle:
            self.state = RETIRED
            self.retired_s = now

    @property
    def routable(self) -> bool:
        """Whether the router may send new requests here."""
        return self.state == LIVE

    @property
    def active(self) -> bool:
        """Whether the instance still accrues cost and needs stepping."""
        return self.state != RETIRED

    # -- serving --------------------------------------------------------------

    def submit(self, request: ServeRequest) -> None:
        if not self.routable:
            raise ValueError(
                f"replica {self.replica_id} is {self.state}, not routable")
        # An idle replica whose clock lags the arrival would otherwise
        # admit in the past; the scheduler's idle-jump handles it, but
        # never let a booting clock precede readiness.
        self.scheduler.submit(request)
        self.requests_routed += 1

    def step(self, until_s: float) -> list[RequestOutcome]:
        """Advance the replica's scheduler to the shared-clock horizon."""
        finished = self.scheduler.step(until_s)
        for outcome in finished:
            self.tokens_out += outcome.request.output_tokens
        return finished

    # -- accounting -----------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return self.scheduler.outstanding

    @property
    def kv_free_fraction(self) -> float:
        return self.scheduler.kv_free_fraction

    def estimated_ttft_s(self, request: ServeRequest, now: float) -> float:
        estimate = self.scheduler.estimated_ttft_s(request, now)
        if self.state == BOOTING:
            estimate += max(0.0, self.ready_s - now)
        return estimate

    def billed_hours(self, end_s: float) -> float:
        """Billed uptime (provisioning to retirement, or to ``end_s``)."""
        end = self.retired_s if self.retired_s is not None else end_s
        return max(0.0, end - self.provisioned_s) / 3600.0

    def cost_usd(self, end_s: float) -> float:
        return self.billed_hours(end_s) * self.spec.price_hr
