"""Shared-clock fleet simulator: N replicas, one request stream.

The event loop advances a global clock in fixed ticks.  At every tick
it (1) lets the autoscaler provision or drain instances, (2) activates
replicas whose boot latency elapsed, (3) routes arrivals due by the
tick to live replicas, and (4) steps every replica's scheduler to the
tick horizon.  Replica-local clocks may overshoot a tick (prefill and
decode steps are not preemptible) but are resynchronized by the
horizon of the next ``step`` call — the same quantized-time contract
real cluster managers have with their nodes.

Determinism: replicas are stepped and inspected in id order, arrivals
are routed in (arrival, id) order, and all randomness lives in the
seeded arrival generators — so one config + one stream produce one
bit-identical :class:`~repro.fleet.report.FleetReport`.
"""

from __future__ import annotations

from ..serving.scheduler import RequestOutcome, ServeRequest
from .autoscaler import ReactiveAutoscaler
from .replica import DRAINING, LIVE, Replica, ReplicaSpec
from .report import FleetReport, ReplicaUsage
from .router import LeastOutstandingRouter, Router

#: Default tick width.  Small enough that routing sees fresh replica
#: state every few decode steps; large enough that a fleet run is a few
#: thousand ticks, not millions.
DEFAULT_TICK_S = 0.25


class FleetSimulator:
    """Discrete-event simulation of a replicated serving fleet.

    Args:
        specs: Initial fleet composition — one replica per entry,
            provisioned ready at time zero (heterogeneous fleets are
            expressed by mixing specs).
        router: Routing policy (default: least-outstanding).
        autoscaler: Optional reactive autoscaler; scale-ups clone
            ``scale_spec`` (default: the first spec).
        scale_spec: Spec the autoscaler provisions.
        tick_s: Shared-clock quantum.
    """

    def __init__(self, specs: list[ReplicaSpec], router: Router | None = None,
                 autoscaler: ReactiveAutoscaler | None = None,
                 scale_spec: ReplicaSpec | None = None,
                 tick_s: float = DEFAULT_TICK_S) -> None:
        if not specs:
            raise ValueError("at least one initial replica spec required")
        if tick_s <= 0:
            raise ValueError("tick_s must be positive")
        self.router = router or LeastOutstandingRouter()
        self.autoscaler = autoscaler
        self.scale_spec = scale_spec or specs[0]
        self.tick_s = tick_s
        self.replicas: list[Replica] = [
            Replica(replica_id=index, spec=spec, provisioned_s=0.0,
                    boot_latency_s=0.0)
            for index, spec in enumerate(specs)
        ]

    # -- views ----------------------------------------------------------------

    @property
    def live(self) -> list[Replica]:
        return [r for r in self.replicas if r.state == LIVE]

    @property
    def active(self) -> list[Replica]:
        return [r for r in self.replicas if r.active]

    def _outstanding(self) -> int:
        return sum(r.outstanding for r in self.replicas)

    # -- autoscaling ----------------------------------------------------------

    def _autoscale(self, now: float) -> None:
        if self.autoscaler is None:
            return
        delta = self.autoscaler.decide(
            now, outstanding=self._outstanding(),
            live_replicas=len(self.live),
            active_replicas=len(self.active))
        if delta > 0:
            self.replicas.append(Replica(
                replica_id=len(self.replicas), spec=self.scale_spec,
                provisioned_s=now,
                boot_latency_s=self.autoscaler.config.boot_latency_s))
        elif delta < 0:
            # Drain the least-loaded live replica (highest id on ties:
            # prefer retiring the newest instance).
            victim = min(self.live,
                         key=lambda r: (r.outstanding, -r.replica_id))
            victim.drain()

    # -- event loop -----------------------------------------------------------

    def run(self, requests: list[ServeRequest]) -> FleetReport:
        """Serve a request stream to completion across the fleet.

        Raises:
            ValueError: On an empty stream, or when a request can never
                fit any replica's KV pool.
        """
        if not requests:
            raise ValueError("no requests")
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        outcomes: dict[int, RequestOutcome] = {}
        held: list[ServeRequest] = []  # arrived but unroutable (all booting)
        start = pending[0].arrival_s
        now = (start // self.tick_s) * self.tick_s
        peak = len(self.active)

        while pending or held or any(r.outstanding for r in self.replicas):
            now += self.tick_s
            self._autoscale(now)
            for replica in self.replicas:
                replica.activate_if_ready(now)

            due = held
            held = []
            while pending and pending[0].arrival_s <= now:
                due.append(pending.pop(0))
            for request in due:
                try:
                    replica = self.router.choose(request, self.replicas, now)
                except ValueError:
                    held.append(request)  # nothing live yet; retry next tick
                    continue
                replica.submit(request)

            for replica in self.replicas:
                if replica.active:
                    for outcome in replica.step(now):
                        outcomes[outcome.request.request_id] = outcome
                    replica.retire_if_drained(now)
            peak = max(peak, len(self.active))

        # Replica clocks may overshoot the final tick; the fleet ends
        # when the last request completes.
        end = max((o.finish_s for o in outcomes.values()), default=now)
        usages = tuple(
            ReplicaUsage(
                replica_id=r.replica_id, kind=r.spec.kind,
                price_hr=r.spec.price_hr, provisioned_s=r.provisioned_s,
                retired_s=r.retired_s,
                billed_hours=r.billed_hours(end), cost_usd=r.cost_usd(end),
                requests_served=r.requests_routed, tokens_out=r.tokens_out)
            for r in self.replicas)
        ordered = tuple(outcomes[request.request_id]
                        for request in sorted(requests,
                                              key=lambda r: r.request_id))
        return FleetReport(
            outcomes=ordered, start_s=start, end_s=end, replicas=usages,
            scale_events=tuple(self.autoscaler.events)
            if self.autoscaler else (),
            total_preemptions=sum(r.scheduler.preemptions
                                  for r in self.replicas),
            peak_replicas=peak)


def fixed_fleet(spec: ReplicaSpec, count: int,
                router: Router | None = None,
                tick_s: float = DEFAULT_TICK_S) -> FleetSimulator:
    """A homogeneous fixed-size fleet (the capacity-planning unit)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    return FleetSimulator([spec] * count, router=router, tick_s=tick_s)
