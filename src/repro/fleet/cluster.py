"""Shared-clock fleet simulator: N replicas, one request stream.

The event loop advances a global clock in fixed ticks.  At every tick
it (1) lets the autoscaler provision or drain instances, (2) activates
replicas whose boot latency elapsed, (3) routes arrivals due by the
tick to live replicas, and (4) steps every replica's scheduler to the
tick horizon.  Replica-local clocks may overshoot a tick (prefill and
decode steps are not preemptible) but are resynchronized by the
horizon of the next ``step`` call — the same quantized-time contract
real cluster managers have with their nodes.

Two engines implement that contract:

* ``engine="stepped"`` — the original core: object-per-request state,
  every tick executed.
* ``engine="event"`` — the columnar core: request streams live in
  numpy columns (:class:`~repro.fleet.table.RequestTable`), replicas
  run the :class:`~repro.serving.columnar.ColumnarScheduler`, finishes
  land in an append-only :class:`~repro.fleet.table.OutcomeLog`, and
  :meth:`FleetSimulator.run` jumps quiet stretches of the tick grid in
  one composed scheduler step instead of ticking through them.  The
  jump is taken only when no tick in the stretch could act (no arrival,
  retry, fault, boot/attest/restart/hang edge, or flight timeout is
  due, no autoscaler, no draining or slowed replica, nothing held) and
  always lands *before* the next such edge, so the ticks that do act
  execute at exactly the stepped engine's clock values — reports are
  bit-identical, pinned by the ``fleet.event_core_parity`` audit
  checks.

Fault injection (:mod:`repro.faults`) plugs into the same loop: when a
schedule, retry policy, or degradation policy is supplied, each tick
additionally applies due faults, reboots repaired instances, re-attests
TEE replicas before readmission, retries timed-out or evacuated
requests with seeded backoff, and sheds or spills work the degraded
fleet cannot hold.  Every chaos hook is gated so a run without fault
machinery executes the exact fault-free instruction sequence — the
``chaos.zero_fault_twin`` audit check pins this bit-for-bit.

Determinism: replicas are stepped and inspected in id order, arrivals
are routed in (arrival, id) order, retries in (due, id) order, faults
in schedule order, and all randomness lives in the seeded arrival
generators and retry-jitter draws — so one config + one stream produce
one bit-identical :class:`~repro.fleet.report.FleetReport`.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..faults.attest import FleetAttestation, needs_attestation
from ..faults.injector import FaultInjector
from ..faults.resilience import DegradationPolicy, RetryPolicy, ShedRequest
from ..faults.schedule import DEFAULT_DURATION_S, FaultEvent, FaultSchedule
from ..scaleout.links import link_slowdown_factor
from ..serving.scheduler import RequestOutcome, ServeRequest
from .autoscaler import ReactiveAutoscaler
from .replica import (
    ATTESTING,
    BOOTING,
    DRAINING,
    ENGINES,
    FAILED,
    LIVE,
    RETIRED,
    Replica,
    ReplicaSpec,
)
from .report import FleetReport, ReplicaUsage
from .retryq import RetryQueue
from .router import LeastOutstandingRouter, Router
from .table import OutcomeLog, RequestTable

#: Default tick width.  Small enough that routing sees fresh replica
#: state every few decode steps; large enough that a fleet run is a few
#: thousand ticks, not millions.
DEFAULT_TICK_S = 0.25


class _ChaosState:
    """Per-run resilience bookkeeping (only allocated under chaos).

    Tracks in-flight attempts, the retry queue, the shed ledger, and
    the waste counters that make the final report failure-aware.
    """

    def __init__(self, injector: FaultInjector,
                 retry: RetryPolicy | None,
                 degradation: DegradationPolicy | None) -> None:
        self.injector = injector
        self.retry = retry
        self.degradation = degradation
        self.flights: dict[int, tuple[Replica, float]] = {}
        self.attempts: dict[int, int] = {}
        self.retry_queue = RetryQueue()
        self.held_since: dict[int, float] = {}
        self.completed: set[int] = set()
        self.shed: list[ShedRequest] = []
        self.wasted_tokens = 0
        self.retries = 0
        self.spilled = 0

    def requeue_or_shed(self, request: ServeRequest, now: float,
                        generated: int) -> None:
        """Route a failed attempt back through retry policy or shed it."""
        self.wasted_tokens += generated
        made = self.attempts.get(request.request_id, 0)
        if self.retry is None:
            # No policy: crash evacuations still requeue immediately so
            # no request is ever silently lost.
            self.retry_queue.push(now, request)
            return
        if made >= self.retry.max_attempts:
            self.shed.append(ShedRequest(request=request, time_s=now,
                                         reason="retries-exhausted",
                                         attempts=made))
            return
        delay = self.retry.backoff_s(request.request_id, made)
        self.retry_queue.push(now + delay, request)

    def shed_request(self, request: ServeRequest, now: float,
                     reason: str) -> None:
        self.held_since.pop(request.request_id, None)
        self.shed.append(ShedRequest(
            request=request, time_s=now, reason=reason,
            attempts=self.attempts.get(request.request_id, 0)))


class _RunState:
    """Mid-run loop state (pending arrivals, held work, outcomes).

    Hoisting the ``run`` loop's locals into an object is what makes a
    run *snapshotable*: everything the next tick depends on lives here
    or on the replicas/router/autoscaler, never in a stack frame.
    """

    def __init__(self, requests: list[ServeRequest] | RequestTable,
                 pending: list[ServeRequest], start: float, now: float,
                 peak: int, chaos: _ChaosState | None) -> None:
        self.requests = requests
        self.pending = pending
        self.held: list[ServeRequest] = []  # arrived but unroutable
        self.outcomes: dict[int, RequestOutcome] = {}
        self.start = start
        self.now = now
        self.peak = peak
        self.chaos = chaos
        # Event-engine columnar state (all None/unused under "stepped"):
        # the stream as a RequestTable, the arrival-ordered drain cursor
        # (flat lists + head pointer instead of pop(0) surgery), and the
        # append-only finish ledger replacing the outcome dict.
        self.table: RequestTable | None = None
        self.pending_arrivals: list[float] = []
        self.pending_rows: list[int] = []
        self.pending_head = 0
        self.finished: OutcomeLog | None = None


class FleetSimulator:
    """Discrete-event simulation of a replicated serving fleet.

    Args:
        specs: Initial fleet composition — one replica per entry,
            provisioned ready at time zero (heterogeneous fleets are
            expressed by mixing specs).
        router: Routing policy (default: least-outstanding).
        autoscaler: Optional reactive autoscaler; scale-ups clone
            ``scale_spec`` (default: the first spec).
        scale_spec: Spec the autoscaler provisions.
        tick_s: Shared-clock quantum.
        faults: Fault timeline to inject — a
            :class:`~repro.faults.schedule.FaultSchedule` (replayed
            through a fresh injector every ``run``) or a single-shot
            :class:`~repro.faults.injector.FaultInjector`.
        retry_policy: Per-request timeout + seeded backoff; without it
            crash-evacuated requests still requeue (immediately, with
            unbounded attempts) so nothing is lost.
        degradation: What to do with work the fleet cannot route within
            ``max_hold_s`` — shed by priority, or spill onto emergency
            replicas of another backend.
        engine: ``"stepped"`` (object-per-request core, every tick
            executed) or ``"event"`` (columnar core with quiet-tick
            jumping; bit-identical reports, orders of magnitude faster
            on large streams).

    Supplying any of the three arms the chaos path; leaving all three
    ``None`` runs the exact fault-free instruction sequence.
    """

    def __init__(self, specs: list[ReplicaSpec], router: Router | None = None,
                 autoscaler: ReactiveAutoscaler | None = None,
                 scale_spec: ReplicaSpec | None = None,
                 tick_s: float = DEFAULT_TICK_S,
                 faults: FaultSchedule | FaultInjector | None = None,
                 retry_policy: RetryPolicy | None = None,
                 degradation: DegradationPolicy | None = None,
                 engine: str = "stepped") -> None:
        if not specs:
            raise ValueError("at least one initial replica spec required")
        if tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; "
                             f"expected one of {ENGINES}")
        self.engine = engine
        self.router = router or LeastOutstandingRouter()
        self.autoscaler = autoscaler
        self.scale_spec = scale_spec or specs[0]
        self.tick_s = tick_s
        self.faults = faults
        self.retry_policy = retry_policy
        self.degradation = degradation
        self._chaos = (faults is not None or retry_policy is not None
                       or degradation is not None)
        self.attestation = FleetAttestation() if self._chaos else None
        #: Resilience bookkeeping of the most recent ``run`` (chaos only).
        self.last_chaos: _ChaosState | None = None
        #: In-progress incremental run (``begin_run``/``run_tick``).
        self._run: _RunState | None = None
        self._initial_specs = list(specs)
        self.replicas: list[Replica] = []
        for spec in specs:
            self._provision(spec, provisioned_s=0.0, boot_latency_s=0.0)

    def _provision(self, spec: ReplicaSpec, provisioned_s: float,
                   boot_latency_s: float, origin: str = "initial") -> Replica:
        replica = Replica(replica_id=len(self.replicas), spec=spec,
                          provisioned_s=provisioned_s,
                          boot_latency_s=boot_latency_s, origin=origin,
                          engine=self.engine)
        self.replicas.append(replica)
        if self.attestation is not None and needs_attestation(spec.kind):
            self.attestation.enroll(replica.replica_id)
        return replica

    # -- views ----------------------------------------------------------------

    @property
    def live(self) -> list[Replica]:
        return [r for r in self.replicas if r.state == LIVE]

    @property
    def active(self) -> list[Replica]:
        return [r for r in self.replicas if r.active]

    def _outstanding(self) -> int:
        return sum(r.outstanding for r in self.replicas)

    # -- autoscaling ----------------------------------------------------------

    def _autoscale(self, now: float, queued: int = 0) -> None:
        if self.autoscaler is None:
            return
        delta = self.autoscaler.decide(
            now, outstanding=self._outstanding() + queued,
            live_replicas=len(self.live),
            active_replicas=len(self.active))
        if delta > 0:
            self._provision(self.scale_spec, provisioned_s=now,
                            boot_latency_s=self.autoscaler.config.boot_latency_s,
                            origin="scale")
        elif delta < 0 and self.live:
            # Drain the least-loaded live replica (highest id on ties:
            # prefer retiring the newest instance).
            victim = min(self.live,
                         key=lambda r: (r.outstanding, -r.replica_id))
            victim.drain()

    # -- fault application -----------------------------------------------------

    def _apply_fault(self, event: FaultEvent, now: float,
                     state: _ChaosState) -> str:
        """Land one due fault on its target; returns the effect log."""
        if event.replica_id >= len(self.replicas):
            return "no-op: no such replica"
        replica = self.replicas[event.replica_id]
        if event.kind == "crash":
            if replica.state in (FAILED, RETIRED):
                return f"no-op: replica already {replica.state}"
            evacuated = replica.crash(now, event.restart_after_s)
            for request, generated in evacuated:
                state.flights.pop(request.request_id, None)
                state.requeue_or_shed(request, now, generated)
            return f"crash: evacuated {len(evacuated)} requests"
        if event.kind == "hang":
            if replica.state not in (LIVE, DRAINING):
                return f"no-op: replica {replica.state}"
            replica.hang(now + event.duration_s)
            return f"hang until {now + event.duration_s:g}s"
        if event.kind in ("slowdown", "link_degrade"):
            if replica.state not in (LIVE, DRAINING):
                return f"no-op: replica {replica.state}"
            if event.kind == "slowdown":
                factor = event.factor
            else:
                factor = link_slowdown_factor(event.factor, event.comm_share)
            replica.slow(now + event.duration_s, factor)
            return f"{event.kind}: x{factor:.3f} until {now + event.duration_s:g}s"
        if event.kind == "boot_failure":
            penalty = event.duration_s or DEFAULT_DURATION_S
            return f"boot_failure: {replica.boot_failure(penalty)}"
        # attestation_failure
        if not needs_attestation(replica.spec.kind):
            return f"no-op: {replica.spec.kind} replica does not attest"
        if replica.state in (FAILED, RETIRED):
            return f"no-op: replica already {replica.state}"
        assert self.attestation is not None
        self.attestation.revoke(replica.replica_id)
        # Phased-boot replicas restart the boot sequence from the
        # ATTESTING phase (quote, key release, decrypt, load — the
        # already-provisioned instance is kept); legacy replicas pay
        # the event's flat outage window.  Mid-boot and live failures
        # alike: the enclave's contents are no longer trusted.
        reattest_s = replica.reattest_s
        outage_s = event.duration_s if reattest_s is None else reattest_s
        evacuated = replica.begin_attestation(now + outage_s)
        for request, generated in evacuated:
            state.flights.pop(request.request_id, None)
            state.requeue_or_shed(request, now, generated)
        return (f"attestation revoked: evacuated {len(evacuated)} requests, "
                f"re-attest at {now + outage_s:g}s")

    def _chaos_tick(self, now: float, state: _ChaosState) -> None:
        """Pre-routing chaos phase: expiries, reboots, due faults."""
        for replica in self.replicas:
            replica.expire_faults(now)
            replica.restart_if_due(now)
        for event in state.injector.due(now):
            state.injector.record(event, now, self._apply_fault(event, now,
                                                                state))

    def _chaos_activate(self, replica: Replica, now: float) -> None:
        """Attestation gate: TEE replicas re-attest before readmission."""
        assert self.attestation is not None
        if replica.state == ATTESTING and now >= replica.ready_s:
            if self.attestation.readmit(replica.replica_id):
                replica.complete_attestation()
        elif (replica.state == BOOTING and now >= replica.ready_s
                and needs_attestation(replica.spec.kind)):
            # Reboot completing: run the full quote/verify flow (it is
            # deterministic and instant in simulated time) before
            # activate_if_ready flips the replica live.
            self.attestation.readmit(replica.replica_id)

    def _check_timeouts(self, now: float, state: _ChaosState) -> None:
        """Cancel and retry in-flight requests older than the timeout."""
        if state.retry is None:
            return
        for request_id in sorted(state.flights):
            replica, routed_s = state.flights[request_id]
            if now - routed_s <= state.retry.timeout_s:
                continue
            cancelled = replica.cancel(request_id)
            if cancelled is None:
                continue  # completed within this very tick
            del state.flights[request_id]
            request, generated = cancelled
            state.requeue_or_shed(request, now, generated)

    def _degrade(self, now: float, held: list[ServeRequest],
                 state: _ChaosState) -> list[ServeRequest]:
        """Apply the degradation policy to overdue unroutable work."""
        policy = state.degradation
        if policy is None:
            return held
        overdue = [r for r in held
                   if now - state.held_since.get(r.request_id, now)
                   > policy.max_hold_s]
        if not overdue:
            return held
        if policy.mode == "spill":
            # Provision one emergency instance per tick until capped;
            # the overdue work keeps waiting for it to boot.
            if state.spilled < policy.max_spill:
                spec = policy.spill_spec or self.scale_spec
                self._provision(spec, provisioned_s=now,
                                boot_latency_s=policy.spill_boot_s,
                                origin="spill")
                state.spilled += 1
            return held
        # Shed mode: lowest priority goes first.
        victims = sorted(overdue,
                         key=lambda r: (r.priority, r.arrival_s,
                                        r.request_id))
        victim_ids = {r.request_id for r in victims}
        for request in victims:
            state.shed_request(request, now, "degraded")
        return [r for r in held if r.request_id not in victim_ids]

    def _shed_unroutable(self, now: float, held: list[ServeRequest],
                         state: _ChaosState) -> list[ServeRequest]:
        """Liveness guard: when no replica can ever serve again (all
        dead with no reboot pending, no autoscaler, spill exhausted),
        shed all queued work instead of ticking forever."""
        if not (held or state.retry_queue):
            return held
        if self.autoscaler is not None:
            return held
        if any(r.state not in (RETIRED, FAILED) or r.restart_pending
               for r in self.replicas):
            return held
        policy = state.degradation
        if (policy is not None and policy.mode == "spill"
                and state.spilled < policy.max_spill):
            return held
        for request in held:
            state.shed_request(request, now, "unroutable")
        for request in state.retry_queue.drain():
            state.shed_request(request, now, "unroutable")
        return []

    # -- event loop -----------------------------------------------------------

    def _make_injector(self) -> FaultInjector:
        if isinstance(self.faults, FaultInjector):
            return self.faults
        return FaultInjector(self.faults if self.faults is not None
                             else FaultSchedule.empty())

    def begin_run(self, requests: Sequence[ServeRequest] | RequestTable,
                  ) -> None:
        """Install a request stream and arm the event loop.

        Splits :meth:`run` into an incremental form — ``begin_run``,
        then :meth:`run_tick` while :attr:`run_active`, then
        :meth:`finish_run` — so a checkpoint can capture the loop
        between any two ticks.  :meth:`run` composes exactly these
        calls; the instruction sequence is unchanged.

        Either engine accepts a ``list[ServeRequest]`` or a
        :class:`~repro.fleet.table.RequestTable` and converts to its
        native container; for million-request streams, build the table
        directly (``poisson_table`` et al.) so no object list ever
        exists.

        Raises:
            ValueError: On an empty stream or if a run is in progress.
        """
        if not len(requests):
            raise ValueError("no requests")
        if self._run is not None:
            raise ValueError("a run is already in progress; finish_run() "
                             "or restore into a fresh simulator")
        state: _ChaosState | None = None
        if self._chaos:
            state = _ChaosState(self._make_injector(), self.retry_policy,
                                self.degradation)
            self.last_chaos = state
            # TEE replicas attest before serving their first request.
            for replica in self.replicas:
                if needs_attestation(replica.spec.kind):
                    assert self.attestation is not None
                    self.attestation.readmit(replica.replica_id)
        if self.engine == "event":
            table = (requests if isinstance(requests, RequestTable)
                     else RequestTable.from_requests(requests))
            self._run = self._arm_event_run(table, state)
            return
        if isinstance(requests, RequestTable):
            requests = list(requests)
        pending = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        start = pending[0].arrival_s
        self._run = _RunState(
            requests=list(requests), pending=pending, start=start,
            now=(start // self.tick_s) * self.tick_s,
            peak=len(self.active), chaos=state)

    def _arm_event_run(self, table: RequestTable,
                       state: _ChaosState | None) -> _RunState:
        """Build the columnar run state for an event-engine run."""
        order = table.arrival_order()
        arrivals = table.arrival_s[order]
        start = float(arrivals[0])
        run = _RunState(
            requests=table, pending=[], start=start,
            now=(start // self.tick_s) * self.tick_s,
            peak=len(self.active), chaos=state)
        run.table = table
        run.pending_arrivals = arrivals.tolist()
        run.pending_rows = order.tolist()
        run.finished = OutcomeLog()
        return run

    @property
    def run_active(self) -> bool:
        """Whether the armed run still has work for another tick."""
        run = self._run
        if run is None:
            return False
        state = run.chaos
        if run.table is not None:
            has_pending = run.pending_head < len(run.pending_arrivals)
        else:
            has_pending = bool(run.pending)
        return bool(has_pending or run.held
                    or (state is not None and state.retry_queue)
                    or any(r.outstanding for r in self.replicas))

    @property
    def run_clock_s(self) -> float:
        """Shared clock of the armed run (last completed tick)."""
        if self._run is None:
            raise ValueError("no run in progress")
        return self._run.now

    def run_tick(self) -> None:
        """Advance the armed run by one shared-clock tick."""
        run = self._run
        if run is None:
            raise ValueError("no run in progress; call begin_run() first")
        state = run.chaos
        run.now += self.tick_s
        now = run.now
        if state is not None:
            self._chaos_tick(now, state)
            self._autoscale(now, queued=len(run.held) + len(state.retry_queue))
        else:
            self._autoscale(now)
        for replica in self.replicas:
            if state is not None:
                self._chaos_activate(replica, now)
            replica.activate_if_ready(now)

        due = run.held
        run.held = []
        if run.table is not None:
            arrivals = run.pending_arrivals
            rows = run.pending_rows
            head, end = run.pending_head, len(arrivals)
            while head < end and arrivals[head] <= now:
                due.append(run.table.request(rows[head]))
                head += 1
            run.pending_head = head
        else:
            while run.pending and run.pending[0].arrival_s <= now:
                due.append(run.pending.pop(0))
        if state is not None:
            due.extend(state.retry_queue.pop_due(now))
        for request in due:
            try:
                replica = self.router.choose(request, self.replicas, now)
            except ValueError:
                run.held.append(request)  # nothing live yet; retry next tick
                if state is not None:
                    state.held_since.setdefault(request.request_id, now)
                continue
            replica.submit(request)
            if state is not None:
                state.held_since.pop(request.request_id, None)
                made = state.attempts.get(request.request_id, 0) + 1
                state.attempts[request.request_id] = made
                if made > 1:
                    state.retries += 1
                state.flights[request.request_id] = (replica, now)

        for replica in self.replicas:
            if replica.active:
                finished = replica.step(now)
                if run.finished is not None:
                    self._log_finished(replica, finished, run, state)
                else:
                    for outcome in finished:
                        run.outcomes[outcome.request.request_id] = outcome
                        if state is not None:
                            state.completed.add(outcome.request.request_id)
                            state.flights.pop(outcome.request.request_id,
                                              None)
                replica.retire_if_drained(now)
        run.peak = max(run.peak, len(self.active))

        if state is not None:
            self._check_timeouts(now, state)
            run.held = self._degrade(now, run.held, state)
            run.held = self._shed_unroutable(now, run.held, state)

    def _log_finished(self, replica: Replica, finished: list[int],
                      run: _RunState, state: _ChaosState | None) -> None:
        """Record event-engine finishes (ids) in the columnar ledger.

        Copies each finished request's timeline triple out of the
        columnar scheduler and releases the id, so every scheduler's
        live dict stays O(in-flight) over a million-request run.
        """
        assert run.finished is not None
        scheduler = replica.scheduler
        for request_id in finished:
            first, finish, preempted = scheduler.finished_triple(request_id)
            run.finished.record(request_id, first, finish, preempted)
            scheduler.release(request_id)
            if state is not None:
                state.completed.add(request_id)
                state.flights.pop(request_id, None)

    # -- quiet-tick jumping (event engine) ------------------------------------

    def _next_wake_s(self, run: _RunState) -> float | None:
        """Earliest future instant at which a tick could *act*.

        A tick acts when it routes work, applies a fault, crosses a
        lifecycle edge, or fires a timeout.  Everything that can cause
        one is time-anchored and peekable: the next pending arrival,
        the earliest retry due, the injector's next event, each
        replica's boot/attest readiness, scheduled restart, hang
        expiry, and the earliest in-flight timeout.  Returns ``None``
        when no such instant exists (a pure drain: only scheduler-
        internal work remains).
        """
        state = run.chaos
        candidates: list[float] = []
        if run.pending_head < len(run.pending_arrivals):
            candidates.append(run.pending_arrivals[run.pending_head])
        if state is not None:
            retry_due = state.retry_queue.next_due_s
            if retry_due is not None:
                candidates.append(retry_due)
            injector_due = state.injector.next_due_s
            if injector_due is not None:
                candidates.append(injector_due)
            if state.retry is not None and state.flights:
                oldest = min(routed_s for _, routed_s
                             in state.flights.values())
                candidates.append(oldest + state.retry.timeout_s)
        for replica in self.replicas:
            if replica.state in (BOOTING, ATTESTING):
                candidates.append(replica.ready_s)
            elif replica.restart_pending:
                candidates.append(replica._restart_at_s)
            if replica._hang_until_s is not None:
                candidates.append(replica._hang_until_s)
        return min(candidates) if candidates else None

    #: Ticks jumped per chunk when nothing external is ever due again
    #: and only in-flight decode work remains (pure drain).
    _DRAIN_CHUNK_TICKS = 4096

    def _skip_quiet_ticks(self) -> None:
        """Jump the clock over ticks that provably cannot act.

        Replays the skipped ticks' only observable work — stepping the
        replicas — as one composed ``step`` call per replica (the
        scheduler's step/run parity contract makes the composition
        exact), then lets :meth:`run_tick` execute the next tick
        normally.  The jump always stops *short* of the next wake
        instant, so the tick that handles it runs at exactly the clock
        value the stepped engine would have used, and ``run.now`` is
        advanced by repeated ``+= tick_s`` so float accumulation stays
        bit-identical too.

        Conservative no-jump conditions (any of these makes ticks
        potentially act in ways that are not time-peekable): an armed
        autoscaler (decides on queue depth every tick), held work
        (rerouted every tick), a draining replica (retires the tick its
        queue empties), a slowed replica (expiry interacts with in-step
        work), or a non-FCFS admission policy (WFQ admission order
        depends on exactly which requests have arrived at each step, so
        composed steps are not time-peekable).
        """
        run = self._run
        if run is None or run.finished is None:
            return
        if self.autoscaler is not None or run.held:
            return
        for replica in self.replicas:
            if replica.state == DRAINING:
                return
            if replica.active and replica._slow_until_s is not None:
                return
            if replica.scheduler.admission != "fcfs":
                return
        wake = self._next_wake_s(run)
        tick = self.tick_s
        now = run.now
        if wake is None:
            steps = self._DRAIN_CHUNK_TICKS
        else:
            gap = wake - now
            if gap <= tick:
                return
            # Stop two ticks short of the wake instant; int() truncation
            # plus the margin guarantees we never cross it.
            steps = int(gap / tick) - 2
            if steps <= 0:
                return
        for _ in range(steps):
            now += tick
        if wake is not None and now >= wake:
            return  # float-accumulation safety net: tick normally instead
        run.now = now
        state = run.chaos
        for replica in self.replicas:
            if replica.active:
                finished = replica.step(now)
                if finished:
                    self._log_finished(replica, finished, run, state)

    def finish_run(self) -> FleetReport:
        """Close out a completed run and build its report.

        Raises:
            ValueError: If no run is armed or work remains.
        """
        run = self._run
        if run is None:
            raise ValueError("no run in progress")
        if self.run_active:
            raise ValueError("run still has outstanding work; keep ticking")
        state = run.chaos
        # Replica clocks may overshoot the final tick; the fleet ends
        # when the last request completes.
        if run.finished is not None:
            last_finish = run.finished.max_finish_s()
            end = run.now if last_finish is None else last_finish
        else:
            end = max((o.finish_s for o in run.outcomes.values()),
                      default=run.now)
        usages = tuple(
            ReplicaUsage(
                replica_id=r.replica_id, kind=r.spec.kind,
                price_hr=r.spec.price_hr, provisioned_s=r.provisioned_s,
                retired_s=r.retired_s,
                billed_hours=r.billed_hours(end), cost_usd=r.cost_usd(end),
                requests_served=r.requests_routed, tokens_out=r.tokens_out,
                crashes=r.crashes,
                prefix_hits=r.scheduler.prefix_hits,
                prefix_misses=r.scheduler.prefix_misses)
            for r in self.replicas)
        if run.finished is not None:
            assert run.table is not None
            ordered = run.finished.to_outcomes(run.table)
        else:
            ordered = tuple(run.outcomes[request.request_id]
                            for request in sorted(run.requests,
                                                  key=lambda r: r.request_id)
                            if request.request_id in run.outcomes)
        report = FleetReport(
            outcomes=ordered, start_s=run.start, end_s=end, replicas=usages,
            scale_events=tuple(self.autoscaler.events)
            if self.autoscaler else (),
            total_preemptions=sum(r.scheduler.preemptions
                                  for r in self.replicas),
            peak_replicas=run.peak,
            retries=state.retries if state else 0,
            wasted_tokens=state.wasted_tokens if state else 0,
            shed=tuple(state.shed) if state else (),
            fault_events=tuple(state.injector.applied) if state else ())
        self._run = None
        return report

    def run(self, requests: Sequence[ServeRequest] | RequestTable,
            ) -> FleetReport:
        """Serve a request stream to completion across the fleet.

        Under the event engine, quiet stretches of the tick grid are
        jumped (see :meth:`_skip_quiet_ticks`); the report is
        bit-identical to ticking through them.

        Raises:
            ValueError: On an empty stream, or when a request can never
                fit any replica's KV pool.
        """
        self.begin_run(requests)
        if self.engine == "event":
            while self.run_active:
                self._skip_quiet_ticks()
                self.run_tick()
        else:
            while self.run_active:
                self.run_tick()
        return self.finish_run()

    # -- checkpoint/restore ---------------------------------------------------

    def to_state(self) -> dict:
        """Plain-dict snapshot of the whole fleet, mid-run or idle.

        Requests are serialized once (the original stream, in
        ``run.requests``) and referenced by id from the pending queue,
        held list, retry heap, and flight table.  Replicas carry their
        spec fingerprints; restore rebuilds each instance from the
        *host* simulator's specs (selected by the replica's ``origin``)
        and refuses a mismatch, so deployments and price catalogs never
        need to be serialized.
        """
        run = self._run
        run_state = None
        if run is not None:
            chaos_state = None
            state = run.chaos
            if state is not None:
                chaos_state = {
                    "injector": state.injector.to_state(),
                    "flights": {str(request_id): [replica.replica_id,
                                                  routed_s]
                                for request_id, (replica, routed_s)
                                in state.flights.items()},
                    "attempts": {str(request_id): count for request_id, count
                                 in state.attempts.items()},
                    "retry_heap": state.retry_queue.to_state(),
                    "held_since": {str(request_id): since
                                   for request_id, since
                                   in state.held_since.items()},
                    "completed": sorted(state.completed),
                    "shed": [{"request": shed.request.to_state(),
                              "time_s": shed.time_s,
                              "reason": shed.reason,
                              "attempts": shed.attempts}
                             for shed in state.shed],
                    "wasted_tokens": state.wasted_tokens,
                    "retries": state.retries,
                    "spilled": state.spilled,
                }
            run_state = {
                "start_s": run.start,
                "now_s": run.now,
                "peak": run.peak,
                "chaos": chaos_state,
            }
            if run.table is not None:
                # Event engine: the stream as columns, the arrival
                # cursor as a head index (the order is recomputed on
                # restore), and the finish ledger as columns.
                run_state["requests_table"] = run.table.to_state()
                run_state["pending_head"] = run.pending_head
                run_state["held"] = [request.request_id
                                     for request in run.held]
                run_state["finished"] = run.finished.to_state()
            else:
                run_state["requests"] = [request.to_state()
                                         for request in run.requests]
                run_state["pending"] = [request.request_id
                                        for request in run.pending]
                run_state["held"] = [request.request_id
                                     for request in run.held]
                run_state["outcomes"] = {str(request_id): outcome.to_state()
                                         for request_id, outcome
                                         in run.outcomes.items()}
        return {
            "engine": self.engine,
            "tick_s": self.tick_s,
            "chaos_armed": self._chaos,
            "initial_replicas": len(self._initial_specs),
            "replicas": [replica.to_state() for replica in self.replicas],
            "router": self.router.to_state(),
            "autoscaler": (self.autoscaler.to_state()
                           if self.autoscaler is not None else None),
            "attestation": (self.attestation.to_state()
                            if self.attestation is not None else None),
            "run": run_state,
        }

    def _spec_for_origin(self, origin: str, replica_id: int) -> ReplicaSpec:
        """The spec pool a replica of ``origin`` was provisioned from."""
        from ..state.errors import StateIntegrityError
        if origin == "initial":
            if replica_id >= len(self._initial_specs):
                raise StateIntegrityError(
                    f"replica {replica_id} claims origin 'initial' but the "
                    f"fleet was built with {len(self._initial_specs)} specs")
            return self._initial_specs[replica_id]
        if origin == "scale":
            return self.scale_spec
        if self.degradation is not None \
                and self.degradation.spill_spec is not None:
            return self.degradation.spill_spec
        return self.scale_spec

    def from_state(self, state: dict) -> None:
        """Install a :meth:`to_state` snapshot into this simulator.

        The simulator must be freshly built with the same constructor
        arguments (specs, router policy, autoscaler config, tick, fault
        schedule, retry/degradation policies) the snapshot was taken
        under; fingerprints on every layer enforce this.

        Raises:
            repro.state.errors.StateIntegrityError: On any mismatch
                between the snapshot and this simulator's configuration,
                or when the simulator has already run.
        """
        from ..state.errors import StateIntegrityError
        from ..state.schema import require, require_finite

        if self._run is not None or len(self.replicas) \
                != len(self._initial_specs):
            raise StateIntegrityError(
                "restore target must be a freshly built simulator")
        tick_s = require_finite(state, "tick_s", "$.fleet", minimum=0.0)
        if tick_s != self.tick_s:
            raise StateIntegrityError(
                f"snapshot tick {tick_s:g}s != simulator tick "
                f"{self.tick_s:g}s")
        engine = state.get("engine", "stepped")
        if engine != self.engine:
            raise StateIntegrityError(
                f"snapshot was taken under the {engine!r} engine but this "
                f"simulator runs {self.engine!r}")
        if require(state, "chaos_armed", bool, "$.fleet") != self._chaos:
            raise StateIntegrityError(
                "snapshot and simulator disagree on whether the chaos "
                "machinery is armed")
        if require(state, "initial_replicas", int, "$.fleet") \
                != len(self._initial_specs):
            raise StateIntegrityError(
                "snapshot was taken on a fleet with a different initial "
                "replica count")

        replicas: list[Replica] = []
        for index, payload in enumerate(require(state, "replicas", list,
                                                "$.fleet")):
            origin = require(payload, "origin", str, "$.fleet.replicas")
            replica_id = require(payload, "replica_id", int,
                                 "$.fleet.replicas")
            if replica_id != index:
                raise StateIntegrityError(
                    f"replica ids not contiguous: slot {index} holds "
                    f"replica {replica_id}")
            spec = self._spec_for_origin(origin, replica_id)
            replicas.append(Replica.from_state(payload, spec,
                                               engine=self.engine))
        self.replicas = replicas

        self.router.from_state(require(state, "router", dict, "$.fleet"))
        autoscaler_state = state.get("autoscaler")
        if (autoscaler_state is None) != (self.autoscaler is None):
            raise StateIntegrityError(
                "snapshot and simulator disagree on autoscaling")
        if self.autoscaler is not None:
            self.autoscaler.from_state(autoscaler_state)
        attestation_state = state.get("attestation")
        if (attestation_state is None) != (self.attestation is None):
            raise StateIntegrityError(
                "snapshot and simulator disagree on attestation")
        if self.attestation is not None:
            self.attestation.from_state(attestation_state)

        run_state = state.get("run")
        if run_state is None:
            self._run = None
            return
        if self.engine == "event":
            self._run = self._event_run_from_state(run_state)
            return
        requests = [ServeRequest.from_state(payload) for payload
                    in require(run_state, "requests", list, "$.fleet.run")]
        by_id = {request.request_id: request for request in requests}

        def resolve(request_id: object, where: str) -> ServeRequest:
            if request_id not in by_id:
                raise StateIntegrityError(
                    f"{where} references unknown request {request_id!r}")
            return by_id[request_id]

        chaos = self._chaos_from_state(run_state.get("chaos"), resolve)
        run = _RunState(
            requests=requests,
            pending=[resolve(request_id, "pending queue") for request_id
                     in require(run_state, "pending", list, "$.fleet.run")],
            start=require_finite(run_state, "start_s", "$.fleet.run"),
            now=require_finite(run_state, "now_s", "$.fleet.run"),
            peak=require(run_state, "peak", int, "$.fleet.run"),
            chaos=chaos)
        run.held = [resolve(request_id, "held list") for request_id
                    in require(run_state, "held", list, "$.fleet.run")]
        run.outcomes = {int(key): RequestOutcome.from_state(payload)
                        for key, payload
                        in require(run_state, "outcomes", dict,
                                   "$.fleet.run").items()}
        self._run = run

    def _chaos_from_state(self, chaos_payload: dict | None,
                          resolve) -> _ChaosState | None:
        """Rebuild chaos bookkeeping from a snapshot (either engine).

        ``resolve(request_id, where)`` maps a serialized request id
        back to a request from the run's stream — a dict lookup under
        the stepped engine, a table row under the event engine.
        """
        from ..state.errors import StateIntegrityError
        from ..state.schema import require, require_finite

        if chaos_payload is None:
            if self._chaos:
                raise StateIntegrityError(
                    "simulator has fault machinery armed but the snapshot's "
                    "run carries no chaos state")
            return None
        if not self._chaos:
            raise StateIntegrityError(
                "snapshot carries chaos state but this simulator has "
                "no fault machinery armed")
        chaos = _ChaosState(self._make_injector(), self.retry_policy,
                            self.degradation)
        chaos.injector.from_state(
            require(chaos_payload, "injector", dict, "$.fleet.chaos"))
        for key, entry in require(chaos_payload, "flights", dict,
                                  "$.fleet.chaos").items():
            replica_id, routed_s = entry
            if not 0 <= replica_id < len(self.replicas):
                raise StateIntegrityError(
                    f"flight for request {key} references unknown "
                    f"replica {replica_id}")
            chaos.flights[int(key)] = (self.replicas[replica_id],
                                       float(routed_s))
        chaos.attempts = {int(key): count for key, count
                          in require(chaos_payload, "attempts", dict,
                                     "$.fleet.chaos").items()}
        chaos.retry_queue.from_state(
            require(chaos_payload, "retry_heap", list, "$.fleet.chaos"),
            lambda request_id: resolve(request_id, "retry heap"))
        chaos.held_since = {int(key): float(since) for key, since
                            in require(chaos_payload, "held_since", dict,
                                       "$.fleet.chaos").items()}
        chaos.completed = set(require(chaos_payload, "completed", list,
                                      "$.fleet.chaos"))
        chaos.shed = [
            ShedRequest(
                request=ServeRequest.from_state(
                    require(entry, "request", dict, "$.fleet.chaos.shed")),
                time_s=require_finite(entry, "time_s",
                                      "$.fleet.chaos.shed"),
                reason=require(entry, "reason", str, "$.fleet.chaos.shed"),
                attempts=require(entry, "attempts", int,
                                 "$.fleet.chaos.shed"))
            for entry in require(chaos_payload, "shed", list,
                                 "$.fleet.chaos")]
        chaos.wasted_tokens = require(chaos_payload, "wasted_tokens",
                                      int, "$.fleet.chaos")
        chaos.retries = require(chaos_payload, "retries", int,
                                "$.fleet.chaos")
        chaos.spilled = require(chaos_payload, "spilled", int,
                                "$.fleet.chaos")
        self.last_chaos = chaos
        return chaos

    def _event_run_from_state(self, run_state: dict) -> _RunState:
        """Rebuild an event-engine run from its columnar snapshot."""
        from ..state.errors import StateIntegrityError
        from ..state.schema import require, require_finite

        table = RequestTable.from_state(
            require(run_state, "requests_table", dict, "$.fleet.run"))
        if not len(table):
            raise StateIntegrityError("armed run carries an empty "
                                      "request table")

        def resolve(request_id: object, where: str) -> ServeRequest:
            try:
                row = table.index_of(request_id)
            except (KeyError, TypeError) as error:
                raise StateIntegrityError(
                    f"{where} references unknown request "
                    f"{request_id!r}") from error
            return table.request(row)

        chaos = self._chaos_from_state(run_state.get("chaos"), resolve)
        run = self._arm_event_run(table, chaos)
        head = require(run_state, "pending_head", int, "$.fleet.run")
        if not 0 <= head <= len(table):
            raise StateIntegrityError(
                f"pending head {head} out of range for {len(table)} "
                f"requests")
        run.pending_head = head
        run.finished = OutcomeLog.from_state(
            require(run_state, "finished", dict, "$.fleet.run"))
        run.start = require_finite(run_state, "start_s", "$.fleet.run")
        run.now = require_finite(run_state, "now_s", "$.fleet.run")
        run.peak = require(run_state, "peak", int, "$.fleet.run")
        run.held = [resolve(request_id, "held list") for request_id
                    in require(run_state, "held", list, "$.fleet.run")]
        return run


def fixed_fleet(spec: ReplicaSpec, count: int,
                router: Router | None = None,
                tick_s: float = DEFAULT_TICK_S,
                faults: FaultSchedule | FaultInjector | None = None,
                retry_policy: RetryPolicy | None = None,
                degradation: DegradationPolicy | None = None,
                engine: str = "stepped",
                ) -> FleetSimulator:
    """A homogeneous fixed-size fleet (the capacity-planning unit)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    return FleetSimulator([spec] * count, router=router, tick_s=tick_s,
                          faults=faults, retry_policy=retry_policy,
                          degradation=degradation, engine=engine)
