"""Columnar request streams and outcome ledgers for the event engine.

A million-request fleet run cannot afford a million
:class:`~repro.serving.scheduler.ServeRequest` /
:class:`~repro.serving.scheduler.RequestOutcome` objects plus the
O(n)-per-tick list surgery the object path does.  This module holds the
three columnar twins the event-driven core runs on instead:

* :class:`RequestTable` — the request stream as numpy columns (arrival,
  prompt, output, priority, id).  The seeded generators fill the
  columns with the *identical RNG draw sequence* as the object
  generators in :mod:`repro.fleet.arrivals`, so a table stream and a
  list stream of the same kind/seed are value-equal request for
  request.
* :class:`OutcomeLog` — an append-only (id, first-token, finish,
  preemptions) ledger the fleet fills in finish order, replacing the
  per-request outcome dict.
* :class:`ColumnarOutcomes` — the report-facing view: a lazy
  ``Sequence[RequestOutcome]`` in request-id order whose raw columns
  feed the vectorized percentile/SLO math in
  :mod:`repro.fleet.report`.

Everything here is a container; the parity contract (event reports are
bit-identical to stepped reports) is pinned by the
``fleet.event_core_parity`` audit checks.
"""

from __future__ import annotations

import random
from array import array
from collections.abc import Sequence

import numpy as np

from ..serving.scheduler import RequestOutcome, ServeRequest
from .arrivals import (
    ARRIVAL_KINDS,
    _diurnal_times,
    _mmpp_times,
    _poisson_times,
)


class RequestTable(Sequence):
    """A request stream stored as parallel numpy columns.

    Value-equal to a ``list[ServeRequest]`` (materialize any row with
    :meth:`request`) but holds five flat arrays instead of n objects —
    ~50 bytes/request instead of ~500, and O(1) column access for the
    event core's arrival drain and the report's percentile math.
    """

    __slots__ = ("request_id", "arrival_s", "prompt_tokens",
                 "output_tokens", "priority", "tenant_id", "_index")

    def __init__(self, request_id, arrival_s, prompt_tokens, output_tokens,
                 priority=None, tenant_id=None) -> None:
        self.request_id = np.asarray(request_id, dtype=np.int64)
        self.arrival_s = np.asarray(arrival_s, dtype=np.float64)
        self.prompt_tokens = np.asarray(prompt_tokens, dtype=np.int64)
        self.output_tokens = np.asarray(output_tokens, dtype=np.int64)
        if priority is None:
            priority = np.zeros(len(self.request_id), dtype=np.int64)
        self.priority = np.asarray(priority, dtype=np.int64)
        if tenant_id is None:
            tenant_id = np.zeros(len(self.request_id), dtype=np.int64)
        self.tenant_id = np.asarray(tenant_id, dtype=np.int64)
        self._index: dict[int, int] | None = None
        n = len(self.request_id)
        for name in ("arrival_s", "prompt_tokens", "output_tokens",
                     "priority", "tenant_id"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"ragged request table: {name} has "
                                 f"{len(getattr(self, name))} rows, ids {n}")
        # The same guards ServeRequest.__post_init__ applies per object,
        # vectorized over the stream.
        if n and (not np.all(np.isfinite(self.arrival_s))
                  or np.any(self.arrival_s < 0)):
            raise ValueError("arrival_s must be finite and >= 0")
        if np.any(self.prompt_tokens < 1):
            raise ValueError("prompt_tokens must be finite and >= 1")
        if np.any(self.output_tokens < 1):
            raise ValueError("output_tokens must be finite and >= 1")
        if np.any(self.tenant_id < 0):
            raise ValueError("tenant_id must be >= 0")
        if n and len(np.unique(self.request_id)) != n:
            raise ValueError("request ids must be unique")

    def __len__(self) -> int:
        return len(self.request_id)

    def request(self, index: int) -> ServeRequest:
        """Materialize row ``index`` as a value-equal ServeRequest."""
        return ServeRequest(
            request_id=int(self.request_id[index]),
            arrival_s=float(self.arrival_s[index]),
            prompt_tokens=int(self.prompt_tokens[index]),
            output_tokens=int(self.output_tokens[index]),
            priority=int(self.priority[index]),
            tenant_id=int(self.tenant_id[index]))

    def __getitem__(self, index: int) -> ServeRequest:
        if isinstance(index, slice):
            raise TypeError("RequestTable does not support slicing")
        n = len(self.request_id)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("request table index out of range")
        return self.request(index)

    def index_of(self, request_id: int) -> int:
        """Row index of ``request_id`` (raises ``KeyError`` if absent)."""
        if self._index is None:
            self._index = {int(rid): row for row, rid
                           in enumerate(self.request_id)}
        return self._index[request_id]

    def arrival_order(self) -> np.ndarray:
        """Row indices sorted by (arrival_s, request_id).

        The exact order the stepped engine's
        ``sorted(requests, key=lambda r: (r.arrival_s, r.request_id))``
        produces — lexsort's last key is primary.
        """
        return np.lexsort((self.request_id, self.arrival_s))

    @classmethod
    def from_requests(cls, requests: Sequence[ServeRequest],
                      ) -> "RequestTable":
        """Columnarize an object stream (value-preserving)."""
        return cls(
            request_id=[r.request_id for r in requests],
            arrival_s=[r.arrival_s for r in requests],
            prompt_tokens=[r.prompt_tokens for r in requests],
            output_tokens=[r.output_tokens for r in requests],
            priority=[r.priority for r in requests],
            tenant_id=[r.tenant_id for r in requests])

    # -- checkpoint/restore ---------------------------------------------------

    def to_state(self) -> dict:
        return {
            "request_id": self.request_id.tolist(),
            "arrival_s": self.arrival_s.tolist(),
            "prompt_tokens": self.prompt_tokens.tolist(),
            "output_tokens": self.output_tokens.tolist(),
            "priority": self.priority.tolist(),
            "tenant_id": self.tenant_id.tolist(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "RequestTable":
        from ..state.errors import StateValueError
        from ..state.schema import require
        try:
            return cls(
                request_id=require(state, "request_id", list, "$.requests"),
                arrival_s=require(state, "arrival_s", list, "$.requests"),
                prompt_tokens=require(state, "prompt_tokens", list,
                                      "$.requests"),
                output_tokens=require(state, "output_tokens", list,
                                      "$.requests"),
                priority=require(state, "priority", list, "$.requests"),
                # Lenient: pre-tenancy snapshots have no tenant column.
                tenant_id=state.get("tenant_id"))
        except ValueError as error:
            raise StateValueError(f"$.requests: {error}") from error


def _fill_sizes(rng: random.Random, count: int, mean_prompt: int,
                mean_output: int) -> tuple[array, array]:
    """Per-request lognormal sizes, drawn in id order.

    Exactly the draws ``arrivals._build`` makes — two lognormal
    variates per request, after every arrival draw — filled straight
    into flat arrays instead of request objects.
    """
    prompts = array("q", bytes(8 * count))
    outputs = array("q", bytes(8 * count))
    for index in range(count):
        prompts[index] = max(16, int(rng.lognormvariate(0.0, 0.5)
                                     * mean_prompt))
        outputs[index] = max(8, int(rng.lognormvariate(0.0, 0.4)
                                    * mean_output))
    return prompts, outputs


def _table_from_times(arrivals: list[float], rng: random.Random,
                      mean_prompt: int, mean_output: int) -> RequestTable:
    prompts, outputs = _fill_sizes(rng, len(arrivals), mean_prompt,
                                   mean_output)
    return RequestTable(
        request_id=np.arange(len(arrivals), dtype=np.int64),
        arrival_s=arrivals, prompt_tokens=prompts, output_tokens=outputs)


def poisson_table(count: int, rate_per_s: float, mean_prompt: int = 256,
                  mean_output: int = 96, seed: int = 0) -> RequestTable:
    """Columnar twin of :func:`~repro.fleet.arrivals.poisson_arrivals`."""
    rng = random.Random(seed)
    return _table_from_times(_poisson_times(count, rate_per_s, rng), rng,
                             mean_prompt, mean_output)


def mmpp_table(count: int, calm_rate_per_s: float, burst_rate_per_s: float,
               mean_calm_s: float = 20.0, mean_burst_s: float = 5.0,
               mean_prompt: int = 256, mean_output: int = 96,
               seed: int = 0) -> RequestTable:
    """Columnar twin of :func:`~repro.fleet.arrivals.mmpp_arrivals`."""
    rng = random.Random(seed)
    return _table_from_times(
        _mmpp_times(count, calm_rate_per_s, burst_rate_per_s, mean_calm_s,
                    mean_burst_s, rng),
        rng, mean_prompt, mean_output)


def diurnal_table(count: int, mean_rate_per_s: float, period_s: float = 240.0,
                  peak_to_trough: float = 4.0, mean_prompt: int = 256,
                  mean_output: int = 96, seed: int = 0) -> RequestTable:
    """Columnar twin of :func:`~repro.fleet.arrivals.diurnal_arrivals`."""
    rng = random.Random(seed)
    return _table_from_times(
        _diurnal_times(count, mean_rate_per_s, period_s, peak_to_trough,
                       rng),
        rng, mean_prompt, mean_output)


def make_arrival_table(kind: str, count: int, rate_per_s: float,
                       mean_prompt: int = 256, mean_output: int = 96,
                       seed: int = 0) -> RequestTable:
    """Columnar twin of :func:`~repro.fleet.arrivals.make_arrivals`.

    Same kind/argument conventions (``mmpp`` treats ``rate_per_s`` as
    the calm rate with a 3x burst); the resulting table is value-equal
    to the object stream row for row.
    """
    if kind == "poisson":
        return poisson_table(count, rate_per_s, mean_prompt, mean_output,
                             seed)
    if kind == "mmpp":
        return mmpp_table(count, rate_per_s, 3.0 * rate_per_s,
                          mean_prompt=mean_prompt, mean_output=mean_output,
                          seed=seed)
    if kind == "diurnal":
        return diurnal_table(count, rate_per_s, mean_prompt=mean_prompt,
                             mean_output=mean_output, seed=seed)
    raise ValueError(f"unknown arrival kind {kind!r}; "
                     f"expected one of {ARRIVAL_KINDS}")


class ColumnarOutcomes(Sequence):
    """Completed-request records as columns, in request-id order.

    Drop-in for the ``tuple[RequestOutcome, ...]`` a stepped-engine
    :class:`~repro.fleet.report.FleetReport` carries: iteration and
    indexing materialize value-equal :class:`RequestOutcome` objects on
    demand, while the report's aggregate math reads the raw columns.
    """

    __slots__ = ("request_id", "arrival_s", "prompt_tokens", "output_tokens",
                 "priority", "tenant_id", "first_token_s", "finish_s",
                 "preemptions")

    def __init__(self, request_id, arrival_s, prompt_tokens, output_tokens,
                 priority, first_token_s, finish_s, preemptions,
                 tenant_id=None) -> None:
        self.request_id = np.asarray(request_id, dtype=np.int64)
        self.arrival_s = np.asarray(arrival_s, dtype=np.float64)
        self.prompt_tokens = np.asarray(prompt_tokens, dtype=np.int64)
        self.output_tokens = np.asarray(output_tokens, dtype=np.int64)
        self.priority = np.asarray(priority, dtype=np.int64)
        if tenant_id is None:
            tenant_id = np.zeros(len(self.request_id), dtype=np.int64)
        self.tenant_id = np.asarray(tenant_id, dtype=np.int64)
        self.first_token_s = np.asarray(first_token_s, dtype=np.float64)
        self.finish_s = np.asarray(finish_s, dtype=np.float64)
        self.preemptions = np.asarray(preemptions, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.request_id)

    def __getitem__(self, index: int) -> RequestOutcome:
        if isinstance(index, slice):
            raise TypeError("ColumnarOutcomes does not support slicing")
        n = len(self.request_id)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("outcome index out of range")
        return RequestOutcome(
            request=ServeRequest(
                request_id=int(self.request_id[index]),
                arrival_s=float(self.arrival_s[index]),
                prompt_tokens=int(self.prompt_tokens[index]),
                output_tokens=int(self.output_tokens[index]),
                priority=int(self.priority[index]),
                tenant_id=int(self.tenant_id[index])),
            first_token_s=float(self.first_token_s[index]),
            finish_s=float(self.finish_s[index]),
            preemptions=int(self.preemptions[index]))

    def ttft_values(self) -> np.ndarray:
        """Per-request TTFT column (first token - arrival)."""
        return self.first_token_s - self.arrival_s

    def e2e_values(self) -> np.ndarray:
        """Per-request end-to-end latency column (finish - arrival)."""
        return self.finish_s - self.arrival_s


class OutcomeLog:
    """Append-only finish ledger the event engine fills as requests end.

    One ``record`` per completed request, in completion order; the
    stepped engine's ``dict[id, RequestOutcome]`` collapses to four
    flat arrays.  :meth:`to_outcomes` joins the ledger back against the
    request stream into the request-id-ordered view reports expect.
    """

    __slots__ = ("_ids", "_first", "_finish", "_preempt")

    def __init__(self) -> None:
        self._ids = array("q")
        self._first = array("d")
        self._finish = array("d")
        self._preempt = array("q")

    def __len__(self) -> int:
        return len(self._ids)

    def record(self, request_id: int, first_token_s: float, finish_s: float,
               preemptions: int) -> None:
        self._ids.append(request_id)
        self._first.append(first_token_s)
        self._finish.append(finish_s)
        self._preempt.append(preemptions)

    def max_finish_s(self) -> float | None:
        """Latest completion recorded, if any (the run's end time)."""
        if not self._finish:
            return None
        return float(np.max(np.frombuffer(self._finish, dtype=np.float64)))

    def to_outcomes(self, table: RequestTable) -> ColumnarOutcomes:
        """Join the ledger with its request stream, in request-id order."""
        ids = np.asarray(self._ids, dtype=np.int64)
        order = np.argsort(ids)
        ids = ids[order]
        table_ids = table.request_id
        sorter = np.argsort(table_ids)
        location = np.searchsorted(table_ids, ids, sorter=sorter)
        if np.any(location >= len(table_ids)):
            raise ValueError("outcome ledger references requests outside "
                             "the stream")
        rows = sorter[location]
        if len(ids) and not np.array_equal(table_ids[rows], ids):
            raise ValueError("outcome ledger references requests outside "
                             "the stream")
        return ColumnarOutcomes(
            request_id=ids,
            arrival_s=table.arrival_s[rows],
            prompt_tokens=table.prompt_tokens[rows],
            output_tokens=table.output_tokens[rows],
            priority=table.priority[rows],
            tenant_id=table.tenant_id[rows],
            first_token_s=np.asarray(self._first, dtype=np.float64)[order],
            finish_s=np.asarray(self._finish, dtype=np.float64)[order],
            preemptions=np.asarray(self._preempt, dtype=np.int64)[order])

    # -- checkpoint/restore ---------------------------------------------------

    def to_state(self) -> dict:
        return {
            "request_id": list(self._ids),
            "first_token_s": list(self._first),
            "finish_s": list(self._finish),
            "preemptions": list(self._preempt),
        }

    @classmethod
    def from_state(cls, state: dict) -> "OutcomeLog":
        from ..state.errors import StateIntegrityError
        from ..state.schema import require
        log = cls()
        ids = require(state, "request_id", list, "$.finished")
        first = require(state, "first_token_s", list, "$.finished")
        finish = require(state, "finish_s", list, "$.finished")
        preempt = require(state, "preemptions", list, "$.finished")
        if not len(ids) == len(first) == len(finish) == len(preempt):
            raise StateIntegrityError("ragged outcome ledger snapshot")
        log._ids = array("q", (int(v) for v in ids))
        log._first = array("d", (float(v) for v in first))
        log._finish = array("d", (float(v) for v in finish))
        log._preempt = array("q", (int(v) for v in preempt))
        return log
