"""Fleet reports: SLO attainment and serving cost at cluster scale.

Joins per-request outcomes from every replica with per-replica billing
(:mod:`repro.cost.pricing` rates) into the paper's serving-economics
metrics: p50/p99 TTFT and end-to-end latency, SLO-attainment curves,
dollars per million generated tokens, and peak/mean fleet size.

Under fault injection (:mod:`repro.faults`) the report is
failure-aware: it separates goodput (tokens of completed requests)
from wasted work (tokens generated for attempts that were cancelled or
evacuated), attributes the fleet bill to each, carries the shed-request
ledger, and records the applied fault timeline.  All failure fields
default to empty so fault-free reports are unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..cost.pricing import attribute_cost
from ..faults.injector import AppliedFault
from ..faults.resilience import ShedRequest
from ..serving.scheduler import RequestOutcome, _percentile
from .autoscaler import ScaleEvent
from .table import ColumnarOutcomes


def _percentile_array(values: np.ndarray, percentile: float) -> float:
    """Vectorized twin of :func:`repro.serving.scheduler._percentile`.

    Same linear interpolation over the same sorted values in the same
    IEEE-754 doubles — bit-identical to the scalar path, required by
    the event/stepped report parity contract.
    """
    if not values.size:
        raise ValueError("no values")
    if not 0.0 <= percentile <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    ordered = np.sort(values)
    rank = percentile / 100.0 * (values.size - 1)
    lower = int(math.floor(rank))
    upper = min(lower + 1, values.size - 1)
    fraction = rank - lower
    return float(ordered[lower] + (ordered[upper] - ordered[lower])
                 * fraction)


@dataclass(frozen=True)
class ReplicaUsage:
    """Billing and utilization summary of one fleet instance."""

    replica_id: int
    kind: str
    price_hr: float
    provisioned_s: float
    retired_s: float | None
    billed_hours: float
    cost_usd: float
    requests_served: int
    tokens_out: int
    crashes: int = 0
    prefix_hits: int = 0
    prefix_misses: int = 0

    def to_dict(self) -> dict:
        return {
            "replica_id": self.replica_id,
            "kind": self.kind,
            "price_hr": self.price_hr,
            "provisioned_s": self.provisioned_s,
            "retired_s": self.retired_s,
            "billed_hours": self.billed_hours,
            "cost_usd": self.cost_usd,
            "requests_served": self.requests_served,
            "tokens_out": self.tokens_out,
            "crashes": self.crashes,
            "prefix_hits": self.prefix_hits,
            "prefix_misses": self.prefix_misses,
        }


@dataclass(frozen=True)
class FleetReport:
    """Aggregate outcome of one fleet simulation.

    Attributes:
        outcomes: Per-request lifecycle records (completed requests
            only) in request-id order — a tuple of
            :class:`RequestOutcome` under the stepped engine, a
            value-equal :class:`~repro.fleet.table.ColumnarOutcomes`
            view under the event engine.
        start_s: Earliest arrival in the stream.
        end_s: Completion time of the last request.
        replicas: Billing summary per instance ever provisioned.
        scale_events: Autoscaler decision timeline (empty = fixed fleet).
        total_preemptions: Preempt-and-recompute events fleet-wide.
        peak_replicas: Most instances simultaneously billed.
        retries: Resubmissions after a crash, timeout, or attestation
            evacuation (first submissions are not retries).
        wasted_tokens: Tokens generated for attempts that did not
            complete (the work the fleet paid for but threw away).
        shed: Requests that left the system unserved, with reasons.
        fault_events: Applied fault timeline, in injection order.
    """

    outcomes: tuple[RequestOutcome, ...]
    start_s: float
    end_s: float
    replicas: tuple[ReplicaUsage, ...]
    scale_events: tuple[ScaleEvent, ...]
    total_preemptions: int
    peak_replicas: int
    retries: int = 0
    wasted_tokens: int = 0
    shed: tuple[ShedRequest, ...] = ()
    fault_events: tuple[AppliedFault, ...] = ()

    @property
    def makespan_s(self) -> float:
        """Busy window from first arrival to last completion."""
        return self.end_s - self.start_s

    @property
    def submitted(self) -> int:
        """Requests that entered the system (completed + shed)."""
        return len(self.outcomes) + len(self.shed)

    @property
    def tokens_out(self) -> int:
        """Goodput: tokens of completed requests."""
        if isinstance(self.outcomes, ColumnarOutcomes):
            return int(self.outcomes.output_tokens.sum())
        return sum(o.request.output_tokens for o in self.outcomes)

    @property
    def throughput_tok_s(self) -> float:
        return self.tokens_out / self.makespan_s if self.makespan_s else 0.0

    @property
    def cost_usd(self) -> float:
        """Total fleet bill (instances pay from provisioning to retirement)."""
        return sum(usage.cost_usd for usage in self.replicas)

    @property
    def usd_per_mtok(self) -> float:
        """Dollars per million *good* tokens, fleet-wide.

        The numerator is the whole bill — including instance-hours
        spent on retried attempts — so this rises with failure rate.
        """
        if not self.tokens_out:
            raise ValueError("no tokens generated")
        return self.cost_usd / self.tokens_out * 1e6

    @property
    def goodput_cost_usd(self) -> float:
        """Share of the bill attributed to completed work."""
        return attribute_cost(self.cost_usd, self.tokens_out,
                              self.wasted_tokens)[0]

    @property
    def wasted_cost_usd(self) -> float:
        """Share of the bill attributed to discarded attempts."""
        return attribute_cost(self.cost_usd, self.tokens_out,
                              self.wasted_tokens)[1]

    def ttft_percentile(self, percentile: float) -> float:
        if not self.outcomes:
            raise ValueError("no completed requests")
        if isinstance(self.outcomes, ColumnarOutcomes):
            return _percentile_array(self.outcomes.ttft_values(), percentile)
        return _percentile([o.ttft_s for o in self.outcomes], percentile)

    def e2e_percentile(self, percentile: float) -> float:
        if not self.outcomes:
            raise ValueError("no completed requests")
        if isinstance(self.outcomes, ColumnarOutcomes):
            return _percentile_array(self.outcomes.e2e_values(), percentile)
        return _percentile([o.e2e_s for o in self.outcomes], percentile)

    def slo_attainment(self, slo_ttft_s: float) -> float:
        """Fraction of submitted requests whose TTFT met the SLO.

        Shed requests never produced a first token, so they count as
        misses — on a fault-free fleet nothing is shed and this is the
        plain completed-request fraction.
        """
        if slo_ttft_s <= 0:
            raise ValueError("slo_ttft_s must be positive")
        if not self.submitted:
            raise ValueError("no requests submitted")
        if isinstance(self.outcomes, ColumnarOutcomes):
            met = int(np.count_nonzero(
                self.outcomes.ttft_values() <= slo_ttft_s))
        else:
            met = sum(1 for o in self.outcomes if o.ttft_s <= slo_ttft_s)
        return met / self.submitted

    def slo_curve(self, slos_s: list[float]) -> dict[float, float]:
        """SLO-attainment curve over a grid of TTFT targets."""
        return {slo: self.slo_attainment(slo) for slo in slos_s}

    def to_dict(self) -> dict:
        """JSON-friendly summary (golden snapshots, CLI --json).

        Metrics undefined on a degenerate run (every request shed, or
        no tokens generated) are ``None`` rather than an exception.
        """
        completed = bool(self.outcomes)
        return {
            "requests": len(self.outcomes),
            "start_s": self.start_s,
            "end_s": self.end_s,
            "makespan_s": self.makespan_s,
            "throughput_tok_s": self.throughput_tok_s,
            "tokens_out": self.tokens_out,
            "cost_usd": self.cost_usd,
            "usd_per_mtok": self.usd_per_mtok if self.tokens_out else None,
            "ttft_p50_s": self.ttft_percentile(50) if completed else None,
            "ttft_p99_s": self.ttft_percentile(99) if completed else None,
            "e2e_p50_s": self.e2e_percentile(50) if completed else None,
            "e2e_p99_s": self.e2e_percentile(99) if completed else None,
            "total_preemptions": self.total_preemptions,
            "peak_replicas": self.peak_replicas,
            "scale_events": len(self.scale_events),
            "submitted": self.submitted,
            "retries": self.retries,
            "wasted_tokens": self.wasted_tokens,
            "shed_requests": len(self.shed),
            "goodput_cost_usd": self.goodput_cost_usd,
            "wasted_cost_usd": self.wasted_cost_usd,
            "fault_events": len(self.fault_events),
            "replicas": [usage.to_dict() for usage in self.replicas],
        }

    def summary_rows(self) -> list[dict]:
        """Per-replica table for CLI printing."""
        return [usage.to_dict() for usage in self.replicas]
