"""Fleet-scale serving simulation: replicas, routing, autoscaling, cost.

Composes the steppable continuous-batching scheduler
(:mod:`repro.serving.scheduler`), the TEE-aware cost model and the
price catalog (:mod:`repro.cost.pricing`) into a multi-replica cluster
under a shared discrete-event clock — the layer that turns the paper's
per-instance overhead and cost numbers into serving economics under
load: SLO-attainment curves, tail latencies, $/Mtok, and
capacity-planning sweeps across {CPU-TEE, cGPU} fleets.
"""

from .arrivals import (
    ARRIVAL_KINDS,
    diurnal_arrivals,
    make_arrivals,
    mmpp_arrivals,
    poisson_arrivals,
    trace_replay,
)
from .retryq import RetryQueue
from .table import (
    ColumnarOutcomes,
    OutcomeLog,
    RequestTable,
    diurnal_table,
    make_arrival_table,
    mmpp_table,
    poisson_table,
)
from .autoscaler import AutoscalerConfig, ReactiveAutoscaler, ScaleEvent
from .cluster import DEFAULT_TICK_S, FleetSimulator, fixed_fleet
from .planner import (
    CapacityPlan,
    CapacityPoint,
    capacity_plan,
    capacity_sweep,
    iter_capacity_points,
    evaluate_fleet,
)
from .replica import ENGINES, REPLICA_KINDS, Replica, ReplicaSpec, replica_spec
from .report import FleetReport, ReplicaUsage
from .router import (
    ROUTER_KINDS,
    CostSloRouter,
    KvPressureRouter,
    LeastOutstandingRouter,
    RoundRobinRouter,
    Router,
    make_router,
)

__all__ = [
    "ARRIVAL_KINDS",
    "AutoscalerConfig",
    "CapacityPlan",
    "CapacityPoint",
    "ColumnarOutcomes",
    "CostSloRouter",
    "DEFAULT_TICK_S",
    "ENGINES",
    "FleetReport",
    "FleetSimulator",
    "KvPressureRouter",
    "LeastOutstandingRouter",
    "OutcomeLog",
    "REPLICA_KINDS",
    "ROUTER_KINDS",
    "ReactiveAutoscaler",
    "Replica",
    "ReplicaSpec",
    "ReplicaUsage",
    "RequestTable",
    "RetryQueue",
    "RoundRobinRouter",
    "Router",
    "ScaleEvent",
    "capacity_plan",
    "capacity_sweep",
    "iter_capacity_points",
    "diurnal_arrivals",
    "diurnal_table",
    "evaluate_fleet",
    "fixed_fleet",
    "make_arrival_table",
    "make_arrivals",
    "make_router",
    "mmpp_arrivals",
    "mmpp_table",
    "poisson_arrivals",
    "poisson_table",
    "replica_spec",
    "trace_replay",
]
