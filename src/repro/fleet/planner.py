"""Capacity planning: replicas and dollars needed to hit an SLO.

The paper's cost analysis (Figs. 12-13) prices a single instance at a
fixed workload; a provider's real question is sizing: *how many* TDX or
cGPU replicas does a given traffic level need before p99 TTFT clears
the SLO, and what does a million tokens cost at that fleet size?  The
sweep answers it by simulating the same arrival trace against growing
fixed fleets of each kind and finding the smallest that attains the
objective.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults.resilience import DegradationPolicy, RetryPolicy
from ..faults.schedule import FaultSchedule
from ..serving.scheduler import ServeRequest
from .cluster import DEFAULT_TICK_S, fixed_fleet
from .replica import ReplicaSpec
from .report import FleetReport
from .router import LeastOutstandingRouter, Router


@dataclass(frozen=True)
class CapacityPoint:
    """One fleet size evaluated against the trace."""

    kind: str
    replicas: int
    p99_ttft_s: float
    attainment: float
    usd_per_mtok: float
    meets_slo: bool

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "replicas": self.replicas,
            "p99_ttft_s": self.p99_ttft_s,
            "attainment": self.attainment,
            "usd_per_mtok": self.usd_per_mtok,
            "meets_slo": self.meets_slo,
        }


@dataclass(frozen=True)
class CapacityPlan:
    """Sweep result for one replica kind.

    Attributes:
        kind: Replica kind swept.
        slo_ttft_s: The p-percentile TTFT objective.
        percentile: Which TTFT percentile the SLO binds (paper: p99).
        points: One entry per fleet size tried, ascending.
        replicas_needed: Smallest fleet meeting the SLO (``None`` when
            even the largest swept fleet misses it).
    """

    kind: str
    slo_ttft_s: float
    percentile: float
    points: tuple[CapacityPoint, ...]
    replicas_needed: int | None

    @property
    def plan_point(self) -> CapacityPoint | None:
        """The chosen fleet size's evaluation, if the SLO is attainable."""
        for point in self.points:
            if point.replicas == self.replicas_needed:
                return point
        return None

    @property
    def usd_per_mtok_at_slo(self) -> float | None:
        point = self.plan_point
        return point.usd_per_mtok if point else None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "slo_ttft_s": self.slo_ttft_s,
            "percentile": self.percentile,
            "replicas_needed": self.replicas_needed,
            "usd_per_mtok_at_slo": self.usd_per_mtok_at_slo,
            "points": [point.to_dict() for point in self.points],
        }


def evaluate_fleet(spec: ReplicaSpec, count: int,
                   requests: list[ServeRequest], slo_ttft_s: float,
                   percentile: float = 99.0,
                   router: Router | None = None,
                   tick_s: float = DEFAULT_TICK_S,
                   faults: FaultSchedule | None = None,
                   retry_policy: RetryPolicy | None = None,
                   degradation: DegradationPolicy | None = None,
                   engine: str = "stepped",
                   ) -> tuple[CapacityPoint, FleetReport]:
    """Run one fixed fleet against the trace and grade it vs the SLO.

    Passing a fault schedule (with an optional retry/degradation
    policy) grades capacity under failures — the schedule is replayed
    afresh for every fleet size, so plans stay deterministic.
    """
    fleet = fixed_fleet(spec, count, router=router
                        or LeastOutstandingRouter(), tick_s=tick_s,
                        faults=faults, retry_policy=retry_policy,
                        degradation=degradation, engine=engine)
    report = fleet.run(requests)
    p_ttft = report.ttft_percentile(percentile)
    point = CapacityPoint(
        kind=spec.kind, replicas=count, p99_ttft_s=p_ttft,
        attainment=report.slo_attainment(slo_ttft_s),
        usd_per_mtok=report.usd_per_mtok,
        meets_slo=p_ttft <= slo_ttft_s)
    return point, report


def capacity_plan(spec: ReplicaSpec, requests: list[ServeRequest],
                  slo_ttft_s: float, percentile: float = 99.0,
                  max_replicas: int = 8,
                  tick_s: float = DEFAULT_TICK_S,
                  faults: FaultSchedule | None = None,
                  retry_policy: RetryPolicy | None = None,
                  degradation: DegradationPolicy | None = None,
                  engine: str = "stepped",
                  ) -> CapacityPlan:
    """Grow a fixed fleet until the TTFT percentile clears the SLO.

    The sweep stops at the first fleet size that meets the objective
    (capacity curves are evaluated left to right; the metamorphic
    audit separately checks that growing the fleet never hurts the
    tail, so the first hit is the minimum).

    Raises:
        ValueError: On a bad SLO/limit or an infeasible trace.
    """
    if slo_ttft_s <= 0:
        raise ValueError("slo_ttft_s must be positive")
    if max_replicas < 1:
        raise ValueError("max_replicas must be >= 1")
    points = list(iter_capacity_points(spec, requests, slo_ttft_s,
                                       percentile, max_replicas,
                                       tick_s=tick_s, faults=faults,
                                       retry_policy=retry_policy,
                                       degradation=degradation,
                                       engine=engine))
    needed = next((p.replicas for p in points if p.meets_slo), None)
    return CapacityPlan(kind=spec.kind, slo_ttft_s=slo_ttft_s,
                        percentile=percentile, points=tuple(points),
                        replicas_needed=needed)


def iter_capacity_points(spec: ReplicaSpec, requests: list[ServeRequest],
                         slo_ttft_s: float, percentile: float = 99.0,
                         max_replicas: int = 8,
                         tick_s: float = DEFAULT_TICK_S,
                         faults: FaultSchedule | None = None,
                         retry_policy: RetryPolicy | None = None,
                         degradation: DegradationPolicy | None = None,
                         engine: str = "stepped"):
    """Yield :func:`capacity_plan` points one fleet size at a time.

    Streams the left-to-right capacity curve, stopping after the first
    size that meets the SLO — exactly :func:`capacity_plan`'s early
    stop, exposed incrementally so sweep CLIs can emit partial results
    and the resumable runner can skip completed sizes.
    """
    for count in range(1, max_replicas + 1):
        point, _ = evaluate_fleet(spec, count, requests, slo_ttft_s,
                                  percentile, tick_s=tick_s, faults=faults,
                                  retry_policy=retry_policy,
                                  degradation=degradation, engine=engine)
        yield point
        if point.meets_slo:
            break


def capacity_sweep(specs: list[ReplicaSpec], requests: list[ServeRequest],
                   slo_ttft_s: float, percentile: float = 99.0,
                   max_replicas: int = 8,
                   tick_s: float = DEFAULT_TICK_S,
                   engine: str = "stepped") -> dict[str, CapacityPlan]:
    """Capacity plans for several replica kinds over one shared trace."""
    return {spec.kind: capacity_plan(spec, requests, slo_ttft_s, percentile,
                                     max_replicas, tick_s=tick_s,
                                     engine=engine)
            for spec in specs}
