"""Arrival-process generators for fleet-scale serving studies.

The paper's serving question — what does confidential inference cost
under load — depends on *how* load arrives.  A single Poisson rate
answers the steady-state question; production traffic is bursty (flash
crowds, retry storms) and diurnal (timezone peaks).  This module
generates deterministic request streams for all of those regimes, plus
exact trace replay, all producing the same
:class:`~repro.serving.scheduler.ServeRequest` objects the scheduler
and fleet simulator consume.

Every generator is seeded and pure: same arguments -> identical stream,
which is what makes fleet reports reproducible and golden-snapshotable.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable, Sequence

from ..serving.scheduler import ServeRequest


def _sample_sizes(rng: random.Random, mean_prompt: int,
                  mean_output: int) -> tuple[int, int]:
    """Lognormal prompt/output sizes (same shape as ``poisson_stream``)."""
    prompt = max(16, int(rng.lognormvariate(0.0, 0.5) * mean_prompt))
    output = max(8, int(rng.lognormvariate(0.0, 0.4) * mean_output))
    return prompt, output


def _build(arrivals: Iterable[float], rng: random.Random, mean_prompt: int,
           mean_output: int) -> list[ServeRequest]:
    requests = []
    for request_id, arrival_s in enumerate(arrivals):
        prompt, output = _sample_sizes(rng, mean_prompt, mean_output)
        requests.append(ServeRequest(request_id=request_id,
                                     arrival_s=arrival_s,
                                     prompt_tokens=prompt,
                                     output_tokens=output))
    return requests


def _poisson_times(count: int, rate_per_s: float,
                   rng: random.Random) -> list[float]:
    """Arrival instants of a homogeneous Poisson process.

    Shared by the object-stream and columnar-table generators so both
    consume the identical RNG draw sequence (arrivals first, then
    sizes) and produce bit-identical streams.
    """
    if count < 1 or rate_per_s <= 0:
        raise ValueError("count >= 1 and positive rate required")
    arrivals, clock = [], 0.0
    for _ in range(count):
        clock += rng.expovariate(rate_per_s)
        arrivals.append(clock)
    return arrivals


def poisson_arrivals(count: int, rate_per_s: float, mean_prompt: int = 256,
                     mean_output: int = 96, seed: int = 0) -> list[ServeRequest]:
    """Homogeneous Poisson arrivals (exponential inter-arrival gaps)."""
    rng = random.Random(seed)
    return _build(_poisson_times(count, rate_per_s, rng), rng,
                  mean_prompt, mean_output)


def mmpp_arrivals(count: int, calm_rate_per_s: float, burst_rate_per_s: float,
                  mean_calm_s: float = 20.0, mean_burst_s: float = 5.0,
                  mean_prompt: int = 256, mean_output: int = 96,
                  seed: int = 0) -> list[ServeRequest]:
    """Two-state Markov-modulated Poisson process (bursty traffic).

    The process alternates between a *calm* and a *burst* state with
    exponentially distributed dwell times; within each state arrivals
    are Poisson at that state's rate.  This is the standard minimal
    model for flash-crowd traffic — the regime where TEE overheads
    compound with queueing delay.
    """
    rng = random.Random(seed)
    return _build(
        _mmpp_times(count, calm_rate_per_s, burst_rate_per_s, mean_calm_s,
                    mean_burst_s, rng),
        rng, mean_prompt, mean_output)


def _mmpp_times(count: int, calm_rate_per_s: float, burst_rate_per_s: float,
                mean_calm_s: float, mean_burst_s: float,
                rng: random.Random) -> list[float]:
    """Arrival instants of the two-state MMPP (shared draw sequence)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    if calm_rate_per_s <= 0 or burst_rate_per_s <= 0:
        raise ValueError("rates must be positive")
    if burst_rate_per_s < calm_rate_per_s:
        raise ValueError("burst rate must be >= calm rate")
    if mean_calm_s <= 0 or mean_burst_s <= 0:
        raise ValueError("dwell times must be positive")
    arrivals: list[float] = []
    clock = 0.0
    bursting = False
    state_end = rng.expovariate(1.0 / mean_calm_s)
    while len(arrivals) < count:
        rate = burst_rate_per_s if bursting else calm_rate_per_s
        gap = rng.expovariate(rate)
        if clock + gap >= state_end:
            # State flips before the next arrival; restart the draw
            # from the flip instant (memorylessness makes this exact).
            clock = state_end
            bursting = not bursting
            dwell = mean_burst_s if bursting else mean_calm_s
            state_end = clock + rng.expovariate(1.0 / dwell)
            continue
        clock += gap
        arrivals.append(clock)
    return arrivals


def diurnal_arrivals(count: int, mean_rate_per_s: float,
                     period_s: float = 240.0, peak_to_trough: float = 4.0,
                     mean_prompt: int = 256, mean_output: int = 96,
                     seed: int = 0) -> list[ServeRequest]:
    """Sinusoidally modulated Poisson arrivals (diurnal load curve).

    Thinning (Lewis-Shedler): candidates are drawn at the peak rate and
    accepted with probability ``rate(t) / peak_rate``, yielding an
    exact non-homogeneous Poisson process with

    ``rate(t) = mean * (1 + a * sin(2 pi t / period))``,

    where ``a`` is derived from ``peak_to_trough`` (peak/trough rate
    ratio).  ``period_s`` defaults to a compressed "day" so simulations
    stay short.
    """
    rng = random.Random(seed)
    return _build(
        _diurnal_times(count, mean_rate_per_s, period_s, peak_to_trough, rng),
        rng, mean_prompt, mean_output)


def _diurnal_times(count: int, mean_rate_per_s: float, period_s: float,
                   peak_to_trough: float, rng: random.Random) -> list[float]:
    """Arrival instants of the thinned diurnal process (shared draws)."""
    if count < 1 or mean_rate_per_s <= 0 or period_s <= 0:
        raise ValueError("count, rate and period must be positive")
    if peak_to_trough < 1.0:
        raise ValueError("peak_to_trough must be >= 1")
    amplitude = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    peak_rate = mean_rate_per_s * (1.0 + amplitude)
    arrivals: list[float] = []
    clock = 0.0
    while len(arrivals) < count:
        clock += rng.expovariate(peak_rate)
        rate = mean_rate_per_s * (
            1.0 + amplitude * math.sin(2.0 * math.pi * clock / period_s))
        if rng.random() <= rate / peak_rate:
            arrivals.append(clock)
    return arrivals


def trace_replay(trace: Sequence[tuple[float, int, int]]) -> list[ServeRequest]:
    """Deterministic replay of an explicit (arrival_s, prompt, output) trace.

    Request ids follow trace order; arrivals need not be sorted (the
    scheduler orders by arrival time).  This is the generator capacity
    planning uses: a committed trace makes the sweep bit-reproducible.
    """
    if not trace:
        raise ValueError("empty trace")
    return [ServeRequest(request_id=index, arrival_s=float(arrival),
                         prompt_tokens=int(prompt), output_tokens=int(output))
            for index, (arrival, prompt, output) in enumerate(trace)]


#: Named generators the CLI and sweep helpers expose.
ARRIVAL_KINDS = ("poisson", "mmpp", "diurnal")


def make_arrivals(kind: str, count: int, rate_per_s: float,
                  mean_prompt: int = 256, mean_output: int = 96,
                  seed: int = 0) -> list[ServeRequest]:
    """Build a stream by generator name (CLI convenience).

    ``mmpp`` treats ``rate_per_s`` as the calm rate with a 3x burst;
    ``diurnal`` as the mean rate.
    """
    if kind == "poisson":
        return poisson_arrivals(count, rate_per_s, mean_prompt, mean_output,
                                seed)
    if kind == "mmpp":
        return mmpp_arrivals(count, rate_per_s, 3.0 * rate_per_s,
                             mean_prompt=mean_prompt, mean_output=mean_output,
                             seed=seed)
    if kind == "diurnal":
        return diurnal_arrivals(count, rate_per_s, mean_prompt=mean_prompt,
                                mean_output=mean_output, seed=seed)
    raise ValueError(f"unknown arrival kind {kind!r}; "
                     f"expected one of {ARRIVAL_KINDS}")
