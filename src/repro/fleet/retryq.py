"""Retry queue: the fleet's (due, id)-ordered resubmission heap.

Before this helper existed, :mod:`repro.fleet.cluster` open-coded the
same ``heapq`` triple ``(due_s, request_id, request)`` in three places
— requeueing failed attempts, draining due retries each tick, and
shedding the queue when the fleet goes unroutable.  The event-driven
engine adds a fourth consumer (the quiet-tick skipper needs to *peek*
the next due time), which made the duplication a liability: one class
now owns the ordering invariant.

Ordering matches the original open-coded heap exactly: entries pop in
``(due_s, request_id)`` order, so two retries due at the same instant
resubmit in id order and reports stay bit-identical.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable

from ..serving.scheduler import ServeRequest


class RetryQueue:
    """Min-heap of requests awaiting resubmission.

    Entries are ``(due_s, request_id, request)`` tuples; the id in the
    middle makes heap order total without comparing requests.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, ServeRequest]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def next_due_s(self) -> float | None:
        """Due time of the earliest entry, if any (non-destructive)."""
        return self._heap[0][0] if self._heap else None

    def push(self, due_s: float, request: ServeRequest) -> None:
        """Schedule ``request`` for resubmission at ``due_s``."""
        heapq.heappush(self._heap, (due_s, request.request_id, request))

    def pop_due(self, now: float) -> list[ServeRequest]:
        """Pop every entry due at or before ``now``, in (due, id) order."""
        due: list[ServeRequest] = []
        heap = self._heap
        while heap and heap[0][0] <= now:
            due.append(heapq.heappop(heap)[2])
        return due

    def drain(self) -> list[ServeRequest]:
        """Pop everything, in (due, id) order (unroutable-shed path)."""
        due: list[ServeRequest] = []
        heap = self._heap
        while heap:
            due.append(heapq.heappop(heap)[2])
        return due

    # -- checkpoint/restore ---------------------------------------------------

    def to_state(self) -> list[list]:
        """``[[due_s, request_id], ...]`` — the cluster snapshot schema.

        Requests are referenced by id (the run's request stream is
        serialized once elsewhere); the list is heap-ordered, which
        restore re-heapifies anyway.
        """
        return [[due, request_id] for due, request_id, _ in self._heap]

    def from_state(self, entries: Iterable[Iterable],
                   resolve: Callable[[int], ServeRequest]) -> None:
        """Rebuild from :meth:`to_state`, resolving ids to requests."""
        self._heap = []
        for due, request_id in entries:
            request = resolve(request_id)
            self._heap.append((float(due), request.request_id, request))
        heapq.heapify(self._heap)
