"""Request routers: which replica serves the next arrival.

Routers see the live replica set and pick one per request.  All
policies are deterministic (ties break on replica id) so fleet reports
are bit-reproducible.  The cost/SLO-aware policy encodes the paper's
economic finding directly: CPU TEEs (TDX) are the cheap tier and the
cGPU the fast tier, so route to the cheapest replica whose estimated
TTFT still clears the SLO and spill to faster, costlier replicas only
under SLO risk (Figs. 12-13 turned into a routing policy).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..serving.scheduler import ServeRequest
from .replica import Replica


class Router:
    """Base router: pick a live replica for each request."""

    name = "base"

    def choose(self, request: ServeRequest, replicas: Sequence[Replica],
               now: float) -> Replica:
        """Pick a replica for ``request`` among routable candidates.

        Raises:
            ValueError: If no replica is routable.
        """
        raise NotImplementedError

    @staticmethod
    def _routable(replicas: Sequence[Replica]) -> list[Replica]:
        candidates = [r for r in replicas if r.routable]
        if not candidates:
            raise ValueError("no routable replica")
        return candidates

    # -- checkpoint/restore ---------------------------------------------------

    def to_state(self) -> dict:
        """Plain-dict snapshot; stateless policies carry only identity."""
        return {"name": self.name}

    def from_state(self, state: dict) -> None:
        """Install a snapshot; refuses a different policy's state."""
        from ..state.errors import StateIntegrityError
        from ..state.schema import require
        name = require(state, "name", str, "$.router")
        if name != self.name:
            raise StateIntegrityError(
                f"router snapshot is for policy {name!r}, "
                f"this fleet routes with {self.name!r}")


class RoundRobinRouter(Router):
    """Cycle through live replicas in id order (stateful cursor)."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, request: ServeRequest, replicas: Sequence[Replica],
               now: float) -> Replica:
        candidates = sorted(self._routable(replicas),
                            key=lambda r: r.replica_id)
        chosen = candidates[self._next % len(candidates)]
        self._next += 1
        return chosen

    def to_state(self) -> dict:
        state = super().to_state()
        state["next"] = self._next
        return state

    def from_state(self, state: dict) -> None:
        from ..state.schema import require
        super().from_state(state)
        self._next = require(state, "next", int, "$.router")


class LeastOutstandingRouter(Router):
    """Fewest queued-or-running requests wins (join-shortest-queue)."""

    name = "least-outstanding"

    def choose(self, request: ServeRequest, replicas: Sequence[Replica],
               now: float) -> Replica:
        return min(self._routable(replicas),
                   key=lambda r: (r.outstanding, r.replica_id))


class KvPressureRouter(Router):
    """Most free KV blocks wins; breaks ties on queue depth then id.

    Outstanding-request counts miss that a few long-context sequences
    can exhaust the paged-KV pool; routing on block pressure sends
    work where memory headroom is, reducing preemption storms.
    """

    name = "kv-pressure"

    def choose(self, request: ServeRequest, replicas: Sequence[Replica],
               now: float) -> Replica:
        return min(self._routable(replicas),
                   key=lambda r: (-r.kv_free_fraction, r.outstanding,
                                  r.replica_id))


class CostSloRouter(Router):
    """Prefer cheap replicas until TTFT SLO risk forces a spill.

    Args:
        slo_ttft_s: The TTFT service-level objective.
        risk_factor: Fraction of the SLO budget a candidate's estimated
            TTFT may consume before it is considered at risk (0.8 means
            spill once the estimate exceeds 80% of the SLO).
    """

    name = "cost-slo"

    def __init__(self, slo_ttft_s: float, risk_factor: float = 0.8) -> None:
        if slo_ttft_s <= 0:
            raise ValueError("slo_ttft_s must be positive")
        if not 0.0 < risk_factor <= 1.0:
            raise ValueError("risk_factor must be in (0, 1]")
        self.slo_ttft_s = slo_ttft_s
        self.risk_factor = risk_factor

    def to_state(self) -> dict:
        state = super().to_state()
        state["slo_ttft_s"] = self.slo_ttft_s
        state["risk_factor"] = self.risk_factor
        return state

    def from_state(self, state: dict) -> None:
        from ..state.errors import StateIntegrityError
        from ..state.schema import require
        super().from_state(state)
        recorded = (require(state, "slo_ttft_s", float, "$.router"),
                    require(state, "risk_factor", float, "$.router"))
        if recorded != (self.slo_ttft_s, self.risk_factor):
            raise StateIntegrityError(
                f"cost-slo router snapshot was taken under different "
                f"knobs {recorded}, this router has "
                f"{(self.slo_ttft_s, self.risk_factor)}")

    def choose(self, request: ServeRequest, replicas: Sequence[Replica],
               now: float) -> Replica:
        candidates = self._routable(replicas)
        budget = self.slo_ttft_s * self.risk_factor
        safe = [r for r in candidates
                if r.estimated_ttft_s(request, now) <= budget]
        if safe:
            # Cheapest safe replica; ties to the least loaded, then id.
            return min(safe, key=lambda r: (r.spec.price_hr, r.outstanding,
                                            r.replica_id))
        # Every replica is at risk: damage control, minimize the miss.
        return min(candidates,
                   key=lambda r: (r.estimated_ttft_s(request, now),
                                  r.replica_id))


#: Router names the CLI exposes.
ROUTER_KINDS = ("round-robin", "least-outstanding", "kv-pressure",
                "cost-slo")


def make_router(kind: str, slo_ttft_s: float = 2.0,
                risk_factor: float = 0.8) -> Router:
    """Build a router by name (CLI convenience)."""
    if kind == "round-robin":
        return RoundRobinRouter()
    if kind == "least-outstanding":
        return LeastOutstandingRouter()
    if kind == "kv-pressure":
        return KvPressureRouter()
    if kind == "cost-slo":
        return CostSloRouter(slo_ttft_s, risk_factor)
    raise ValueError(f"unknown router {kind!r}; "
                     f"expected one of {ROUTER_KINDS}")
