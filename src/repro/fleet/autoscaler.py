"""Reactive autoscaling: grow and shrink the fleet under load.

The autoscaler watches a load signal — outstanding requests per live
replica — at every fleet tick and issues scale decisions subject to
cooldowns and replica limits.  Scale-ups pay a boot latency before the
new instance serves (it bills from provisioning, like a real cloud);
scale-downs drain the least-loaded replica rather than killing it, so
no request is ever dropped.  Deliberately simple and deterministic:
the point is to measure how reactive capacity changes cost and SLO
attainment under bursty TEE serving, not to invent a novel controller.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AutoscalerConfig:
    """Reactive autoscaler policy knobs.

    Attributes:
        min_replicas: Never drain below this many active instances.
        max_replicas: Never provision above this many active instances.
        scale_up_load: Provision one replica when outstanding requests
            per live replica exceed this.
        scale_down_load: Drain one replica when outstanding requests
            per live replica fall below this (hysteresis: keep it well
            under ``scale_up_load`` to avoid flapping).
        cooldown_s: Minimum time between consecutive scale decisions.
        boot_latency_s: Provision-to-ready delay of a new instance.
    """

    min_replicas: int = 1
    max_replicas: int = 8
    scale_up_load: float = 6.0
    scale_down_load: float = 1.0
    cooldown_s: float = 10.0
    boot_latency_s: float = 15.0

    def __post_init__(self) -> None:
        if self.min_replicas < 1 or self.max_replicas < self.min_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if self.scale_down_load >= self.scale_up_load:
            raise ValueError(
                "scale_down_load must be < scale_up_load (hysteresis)")
        if self.cooldown_s < 0 or self.boot_latency_s < 0:
            raise ValueError("cooldown and boot latency must be >= 0")


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler decision, for the fleet report timeline."""

    time_s: float
    action: str  # "up" | "down"
    load_per_replica: float
    active_replicas: int


class ReactiveAutoscaler:
    """Threshold autoscaler with hysteresis and cooldown.

    Args:
        config: Policy knobs.
    """

    def __init__(self, config: AutoscalerConfig | None = None) -> None:
        self.config = config or AutoscalerConfig()
        self._last_decision_s = float("-inf")
        self.events: list[ScaleEvent] = []

    def decide(self, now: float, outstanding: int, live_replicas: int,
               active_replicas: int) -> int:
        """Return a replica delta (+1 scale up, -1 drain one, 0 hold).

        Args:
            now: Shared fleet clock.
            outstanding: Queued-or-running requests fleet-wide.
            live_replicas: Instances currently serving.
            active_replicas: Instances billed (live + booting + draining).
        """
        config = self.config
        if now - self._last_decision_s < config.cooldown_s:
            return 0
        # Booting replicas count as capacity already bought: load is
        # judged against what will soon serve, which prevents panic
        # over-provisioning during one boot latency.
        capacity = max(1, active_replicas)
        load = outstanding / capacity
        if load > config.scale_up_load and active_replicas < config.max_replicas:
            self._last_decision_s = now
            self.events.append(ScaleEvent(now, "up", load, active_replicas))
            return 1
        if (load < config.scale_down_load
                and active_replicas > config.min_replicas
                and live_replicas > 1):
            self._last_decision_s = now
            self.events.append(ScaleEvent(now, "down", load, active_replicas))
            return -1
        return 0
