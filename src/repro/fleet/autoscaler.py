"""Reactive autoscaling: grow and shrink the fleet under load.

The autoscaler watches a load signal — outstanding requests per live
replica — at every fleet tick and issues scale decisions subject to
cooldowns and replica limits.  Scale-ups pay a boot latency before the
new instance serves (it bills from provisioning, like a real cloud);
scale-downs drain the least-loaded replica rather than killing it, so
no request is ever dropped.  Deliberately simple and deterministic:
the point is to measure how reactive capacity changes cost and SLO
attainment under bursty TEE serving, not to invent a novel controller.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AutoscalerConfig:
    """Reactive autoscaler policy knobs.

    Attributes:
        min_replicas: Never drain below this many active instances.
        max_replicas: Never provision above this many active instances.
        scale_up_load: Provision one replica when outstanding requests
            per live replica exceed this.
        scale_down_load: Drain one replica when outstanding requests
            per live replica fall below this (hysteresis: keep it well
            under ``scale_up_load`` to avoid flapping).
        cooldown_s: Minimum time between consecutive scale decisions.
        boot_latency_s: Provision-to-ready delay of a new instance.
    """

    min_replicas: int = 1
    max_replicas: int = 8
    scale_up_load: float = 6.0
    scale_down_load: float = 1.0
    cooldown_s: float = 10.0
    boot_latency_s: float = 15.0

    def __post_init__(self) -> None:
        if self.min_replicas < 1 or self.max_replicas < self.min_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if self.scale_down_load >= self.scale_up_load:
            raise ValueError(
                "scale_down_load must be < scale_up_load (hysteresis)")
        if self.cooldown_s < 0 or self.boot_latency_s < 0:
            raise ValueError("cooldown and boot latency must be >= 0")


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler decision, for the fleet report timeline."""

    time_s: float
    action: str  # "up" | "down"
    load_per_replica: float
    active_replicas: int

    def to_state(self) -> dict:
        """Plain-dict snapshot of this decision."""
        return {
            "time_s": self.time_s,
            "action": self.action,
            "load_per_replica": self.load_per_replica,
            "active_replicas": self.active_replicas,
        }

    # Report/audit serialization is the same plain dict.
    to_dict = to_state

    @classmethod
    def from_state(cls, state: dict) -> "ScaleEvent":
        from ..state.schema import require
        return cls(
            time_s=require(state, "time_s", float, "$.scale_event"),
            action=require(state, "action", str, "$.scale_event"),
            load_per_replica=require(state, "load_per_replica", float,
                                     "$.scale_event"),
            active_replicas=require(state, "active_replicas", int,
                                    "$.scale_event"),
        )


class ReactiveAutoscaler:
    """Threshold autoscaler with hysteresis and cooldown.

    Args:
        config: Policy knobs.
    """

    def __init__(self, config: AutoscalerConfig | None = None) -> None:
        self.config = config or AutoscalerConfig()
        self._last_decision_s = float("-inf")
        self.events: list[ScaleEvent] = []

    def decide(self, now: float, outstanding: int, live_replicas: int,
               active_replicas: int) -> int:
        """Return a replica delta (+1 scale up, -1 drain one, 0 hold).

        Args:
            now: Shared fleet clock.
            outstanding: Queued-or-running requests fleet-wide.
            live_replicas: Instances currently serving.
            active_replicas: Instances billed (live + booting + draining).
        """
        config = self.config
        if now - self._last_decision_s < config.cooldown_s:
            return 0
        # Booting replicas count as capacity already bought: load is
        # judged against what will soon serve, which prevents panic
        # over-provisioning during one boot latency.
        capacity = max(1, active_replicas)
        load = outstanding / capacity
        if load > config.scale_up_load and active_replicas < config.max_replicas:
            self._last_decision_s = now
            self.events.append(ScaleEvent(now, "up", load, active_replicas))
            return 1
        if (load < config.scale_down_load
                and active_replicas > config.min_replicas
                and live_replicas > 1):
            self._last_decision_s = now
            self.events.append(ScaleEvent(now, "down", load, active_replicas))
            return -1
        return 0

    # -- checkpoint/restore ---------------------------------------------------

    def config_fingerprint(self) -> dict:
        """Identity of the policy knobs, for restore checks."""
        config = self.config
        return {
            "min_replicas": config.min_replicas,
            "max_replicas": config.max_replicas,
            "scale_up_load": config.scale_up_load,
            "scale_down_load": config.scale_down_load,
            "cooldown_s": config.cooldown_s,
            "boot_latency_s": config.boot_latency_s,
        }

    def to_state(self) -> dict:
        """Plain-dict snapshot of the controller state.

        The never-decided sentinel ``-inf`` cannot survive strict JSON,
        so it is encoded as ``None`` and decoded back on restore.
        """
        last = self._last_decision_s
        return {
            "config": self.config_fingerprint(),
            "last_decision_s": None if last == float("-inf") else last,
            "events": [event.to_state() for event in self.events],
        }

    def from_state(self, state: dict) -> None:
        """Install a :meth:`to_state` snapshot into this controller.

        Raises:
            repro.state.errors.StateIntegrityError: If the snapshot was
                taken under different policy knobs.
        """
        from ..state.errors import StateIntegrityError
        from ..state.schema import require, require_finite

        recorded = require(state, "config", dict, "$.autoscaler")
        mine = self.config_fingerprint()
        if recorded != mine:
            diverged = sorted(key for key in set(recorded) | set(mine)
                              if recorded.get(key) != mine.get(key))
            raise StateIntegrityError(
                f"autoscaler snapshot was taken under a different config "
                f"(mismatched: {diverged})")
        last = require_finite(state, "last_decision_s", "$.autoscaler",
                              optional=True)
        self._last_decision_s = float("-inf") if last is None else last
        self.events = [ScaleEvent.from_state(event) for event
                       in require(state, "events", list, "$.autoscaler")]
