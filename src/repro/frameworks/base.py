"""Inference framework models.

§III-C2 benchmarks Hugging Face transformers, vLLM, IPEX and llama.cpp
to pick the CPU inference stack (IPEX wins by ~2x thanks to AMX and
oneCCL, Insight 3); the GPU experiments use vLLM.  A framework
contributes three things to the execution model: which engines it can
drive (AMX vs AVX-512 only), its sustained MFU per engine, and its
memory-bandwidth efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine import calibration as cal
from ..hardware.engines import Engine
from ..llm.datatypes import BFLOAT16, FLOAT32, INT8, DType


@dataclass(frozen=True)
class Framework:
    """One inference software stack.

    Attributes:
        name: Registry name.
        device: ``"cpu"`` or ``"gpu"``.
        amx_capable: Whether the stack ships AMX kernels (IPEX only).
        dtypes: Datatypes the stack supports for end-to-end inference.
        weight_bytes_per_param: Storage bytes per parameter when the
            stack overrides the nominal dtype width (llama.cpp's mixed
            quantization); ``None`` uses the dtype width.
        multi_socket: Whether the stack scales across NUMA domains
            (IPEX via oneCCL; DeepSpeed-style tensor parallel).
    """

    name: str
    device: str
    amx_capable: bool
    dtypes: tuple[DType, ...]
    weight_bytes_per_param: float | None = None
    multi_socket: bool = False
    # Excluded from eq/hash so Framework (and thus Deployment) stays
    # hashable — cache keys in repro.memo rely on this.
    _mfu: dict[str, float] = field(default_factory=dict, repr=False,
                                   compare=False)

    def supports(self, dtype: DType) -> bool:
        return dtype in self.dtypes

    def mfu(self, engine: Engine) -> float:
        """Sustained model-FLOP utilization on one engine.

        Raises:
            KeyError: If the stack cannot drive the engine at all.
        """
        key = (self.name, engine.value)
        if key not in cal.FRAMEWORK_MFU:
            raise KeyError(f"{self.name} has no kernels for engine {engine.value}")
        return cal.FRAMEWORK_MFU[key]

    def memory_efficiency(self) -> float:
        """Sustained fraction of hardware memory bandwidth."""
        return cal.FRAMEWORK_MEM_EFF[self.name]


IPEX = Framework(
    name="ipex", device="cpu", amx_capable=True,
    dtypes=(FLOAT32, BFLOAT16, INT8), multi_socket=True,
)

VLLM_CPU = Framework(
    name="vllm-cpu", device="cpu", amx_capable=False,
    dtypes=(FLOAT32, BFLOAT16),
)

HUGGINGFACE = Framework(
    name="hf", device="cpu", amx_capable=False,
    dtypes=(FLOAT32, BFLOAT16),
)

#: llama.cpp's mixed quantization: ~4.5 bits/weight plus scales.
LLAMACPP = Framework(
    name="llamacpp", device="cpu", amx_capable=False,
    dtypes=(BFLOAT16,), weight_bytes_per_param=0.62,
)

VLLM_GPU = Framework(
    name="vllm-gpu", device="gpu", amx_capable=False,
    dtypes=(FLOAT32, BFLOAT16, INT8), multi_socket=False,
)

_FRAMEWORKS = {fw.name: fw for fw in (IPEX, VLLM_CPU, HUGGINGFACE, LLAMACPP, VLLM_GPU)}


def framework_by_name(name: str) -> Framework:
    """Look up a framework by registry name."""
    if name not in _FRAMEWORKS:
        raise KeyError(f"unknown framework {name!r}; known: {sorted(_FRAMEWORKS)}")
    return _FRAMEWORKS[name]


def cpu_frameworks() -> tuple[Framework, ...]:
    """All CPU inference stacks (the Fig. 3 contenders)."""
    return tuple(fw for fw in _FRAMEWORKS.values() if fw.device == "cpu")
