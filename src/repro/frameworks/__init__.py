"""Inference framework models (Fig. 3 contenders + vLLM-GPU)."""

from .base import (
    HUGGINGFACE,
    IPEX,
    LLAMACPP,
    VLLM_CPU,
    VLLM_GPU,
    Framework,
    cpu_frameworks,
    framework_by_name,
)

__all__ = [
    "HUGGINGFACE", "IPEX", "LLAMACPP", "VLLM_CPU", "VLLM_GPU",
    "Framework", "cpu_frameworks", "framework_by_name",
]
