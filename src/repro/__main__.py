"""Command-line entry point: ``python -m repro <command>``.

Commands:
    report     Print the live reproduction report (Fig. 4 bands, the
               cGPU band, Table I, and the 12 insight checks).
    insights   Run only the 12 insight checks.
    threats    Print the threat-coverage matrix per backend.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_report(args: argparse.Namespace) -> int:
    from .core.report import headline_report
    print(headline_report(output_tokens=args.output_tokens))
    return 0


def _cmd_insights(args: argparse.Namespace) -> int:
    del args
    from .core.insights import verify_all_insights
    failures = 0
    for check in verify_all_insights():
        status = "ok  " if check.holds else "FAIL"
        print(f"[{status}] {check.number:2d}. {check.statement}")
        print(f"         {check.evidence}")
        failures += not check.holds
    return 1 if failures else 0


def _cmd_threats(args: argparse.Namespace) -> int:
    del args
    from .tee.threats import THREATS, coverage
    backends = ("baremetal", "vm", "sgx", "tdx", "cgpu", "cgpu-b100")
    width = max(len(t.name) for t in THREATS)
    print("threat".ljust(width), *[b.rjust(10) for b in backends])
    maps = {backend: coverage(backend) for backend in backends}
    for threat in THREATS:
        marks = ["yes".rjust(10) if maps[b][threat.name] else "-".rjust(10)
                 for b in backends]
        print(threat.name.ljust(width), *marks)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Confidential LLM Inference: "
                    "Performance and Cost Across CPU and GPU TEEs'")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="live reproduction report")
    report.add_argument("--output-tokens", type=int, default=64)
    report.set_defaults(func=_cmd_report)

    insights = sub.add_parser("insights", help="run the 12 insight checks")
    insights.set_defaults(func=_cmd_insights)

    threats = sub.add_parser("threats", help="threat coverage matrix")
    threats.set_defaults(func=_cmd_threats)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
