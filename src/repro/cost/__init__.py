"""Cost modelling: price catalog and $/Mtok efficiency (Figs. 12-13)."""

from .efficiency import (
    CostPoint,
    best_cpu_point,
    cost_overhead,
    cost_per_million_tokens,
    cpu_cost_point,
    gpu_cost_point,
    optimal_core_count,
)
from .pricing import (
    GCP_SPOT_US_EAST1,
    PAPER_MEMORY_GB,
    PriceCatalog,
    attribute_cost,
)

__all__ = [
    "CostPoint", "best_cpu_point", "cost_overhead",
    "cost_per_million_tokens", "cpu_cost_point", "gpu_cost_point",
    "optimal_core_count",
    "GCP_SPOT_US_EAST1", "PAPER_MEMORY_GB", "PriceCatalog",
    "attribute_cost",
]
