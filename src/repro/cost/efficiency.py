"""Cost-efficiency computations (Figs. 12-13).

Combines throughput from the execution engine with the price catalog to
produce the paper's cost metrics: dollars per million generated tokens,
the cGPU-vs-CPU cost ratio, and optimal core counts per batch size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.simulator import GenerationResult
from .pricing import PAPER_MEMORY_GB, PriceCatalog


def cost_per_million_tokens(throughput_tok_s: float, price_hr: float) -> float:
    """Dollars to generate one million tokens at a sustained throughput."""
    if throughput_tok_s <= 0:
        raise ValueError("throughput must be positive")
    if price_hr < 0:
        raise ValueError("price must be >= 0")
    tokens_per_hour = throughput_tok_s * 3600.0
    return price_hr / tokens_per_hour * 1e6


@dataclass(frozen=True)
class CostPoint:
    """One configuration's cost-efficiency summary.

    Attributes:
        label: Configuration name (e.g. ``"tdx-32c"``).
        vcpus: Billed vCPUs (0 for GPU instances).
        throughput_tok_s: Sustained user-token throughput, first token
            included (the paper's Fig. 12 metric).
        price_hr: Instance price per hour.
        usd_per_mtok: Dollars per million tokens.
    """

    label: str
    vcpus: int
    throughput_tok_s: float
    price_hr: float
    usd_per_mtok: float


def cpu_cost_point(result: GenerationResult, vcpus: int,
                   catalog: PriceCatalog, label: str | None = None,
                   memory_gb: float = PAPER_MEMORY_GB,
                   spr: bool = False) -> CostPoint:
    """Cost-efficiency of one CPU run."""
    price = catalog.cpu_instance_hr(vcpus, memory_gb, spr=spr)
    throughput = result.throughput_tok_s
    return CostPoint(
        label=label or f"{result.backend_name}-{vcpus}c",
        vcpus=vcpus,
        throughput_tok_s=throughput,
        price_hr=price,
        usd_per_mtok=cost_per_million_tokens(throughput, price),
    )


def gpu_cost_point(result: GenerationResult, catalog: PriceCatalog,
                   confidential: bool = True,
                   label: str | None = None) -> CostPoint:
    """Cost-efficiency of one (c)GPU run."""
    price = catalog.cgpu_instance_hr if confidential else catalog.gpu_instance_hr
    throughput = result.throughput_tok_s
    return CostPoint(
        label=label or result.backend_name,
        vcpus=0,
        throughput_tok_s=throughput,
        price_hr=price,
        usd_per_mtok=cost_per_million_tokens(throughput, price),
    )


def cost_overhead(point: CostPoint, reference: CostPoint) -> float:
    """Fractional extra cost of ``point`` over ``reference``.

    The paper reports "cGPUs up to 100% more expensive" — that is
    ``cost_overhead(cgpu_point, best_cpu_point) == 1.0``.
    """
    return point.usd_per_mtok / reference.usd_per_mtok - 1.0


def best_cpu_point(points: list[CostPoint]) -> CostPoint:
    """The cheapest CPU configuration of a core-count sweep."""
    if not points:
        raise ValueError("no cost points given")
    return min(points, key=lambda point: point.usd_per_mtok)


def optimal_core_count(points: list[CostPoint]) -> int:
    """Core count minimizing $/Mtok (Fig. 12's per-batch optimum)."""
    return best_cpu_point(points).vcpus
