"""Cloud price catalog.

§V-D2 evaluates cost with GCP spot prices (US-East-1), selecting vCPUs
and memory independently and fixing memory at 128 GB (sufficient for
Llama2 7B in every evaluated configuration), against a rented
confidential H100 (Azure NCCads_H100_v5).  Prices are per hour.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PriceCatalog:
    """Spot prices for one region/date snapshot.

    Attributes:
        vcpu_hr: Price per vCPU-hour (custom machine type).
        gb_hr: Price per GB-of-RAM-hour.
        cgpu_instance_hr: Confidential H100 instance (NCCads_H100_v5).
        gpu_instance_hr: Non-confidential H100 instance (NCads_H100_v5).
        spr_discount: Price multiplier for the Sapphire Rapids
            alternative ("almost 2x cheaper", §V-D2).
    """

    vcpu_hr: float
    gb_hr: float
    cgpu_instance_hr: float
    gpu_instance_hr: float
    spr_discount: float = 0.55

    def __post_init__(self) -> None:
        for name in ("vcpu_hr", "gb_hr", "cgpu_instance_hr", "gpu_instance_hr"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 < self.spr_discount <= 1.0:
            raise ValueError("spr_discount must be in (0, 1]")

    def cpu_instance_hr(self, vcpus: int, memory_gb: float,
                        spr: bool = False) -> float:
        """Hourly price of a custom CPU instance.

        The paper maps one physical core to one billed vCPU (guests see
        no hyperthreads, §IV-A).
        """
        if vcpus < 1 or memory_gb <= 0:
            raise ValueError("vcpus must be >= 1 and memory positive")
        price = vcpus * self.vcpu_hr + memory_gb * self.gb_hr
        return price * (self.spr_discount if spr else 1.0)


def attribute_cost(cost_usd: float, good_tokens: int,
                   wasted_tokens: int) -> tuple[float, float]:
    """Split a fleet bill between goodput and wasted work.

    Under faults some generated tokens are discarded (a request is
    retried after its replica crashed or timed out); the bill still
    covers them.  Attribution is by token share: the instance-hours a
    fleet paid for were spent proportionally on both.

    Returns:
        ``(goodput_cost_usd, wasted_cost_usd)``; with no tokens at all
        the entire bill is waste.
    """
    if cost_usd < 0:
        raise ValueError("cost_usd must be >= 0")
    if good_tokens < 0 or wasted_tokens < 0:
        raise ValueError("token counts must be >= 0")
    total = good_tokens + wasted_tokens
    if total == 0:
        return (0.0, cost_usd)
    good_share = good_tokens / total
    return (cost_usd * good_share, cost_usd * (1.0 - good_share))


#: GCP spot, US-East-1, mid-2025 snapshot (paper's assumptions).
GCP_SPOT_US_EAST1 = PriceCatalog(
    vcpu_hr=0.00846,
    gb_hr=0.00113,
    cgpu_instance_hr=6.50,
    gpu_instance_hr=5.50,
)

#: Memory size the paper fixes for all CPU configurations.
PAPER_MEMORY_GB = 128.0
