"""Cloud price catalog.

§V-D2 evaluates cost with GCP spot prices (US-East-1), selecting vCPUs
and memory independently and fixing memory at 128 GB (sufficient for
Llama2 7B in every evaluated configuration), against a rented
confidential H100 (Azure NCCads_H100_v5).  Prices are per hour.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PriceCatalog:
    """Spot prices for one region/date snapshot.

    Attributes:
        vcpu_hr: Price per vCPU-hour (custom machine type).
        gb_hr: Price per GB-of-RAM-hour.
        cgpu_instance_hr: Confidential H100 instance (NCCads_H100_v5).
        gpu_instance_hr: Non-confidential H100 instance (NCads_H100_v5).
        spr_discount: Price multiplier for the Sapphire Rapids
            alternative ("almost 2x cheaper", §V-D2).
    """

    vcpu_hr: float
    gb_hr: float
    cgpu_instance_hr: float
    gpu_instance_hr: float
    spr_discount: float = 0.55

    def __post_init__(self) -> None:
        for name in ("vcpu_hr", "gb_hr", "cgpu_instance_hr", "gpu_instance_hr"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 < self.spr_discount <= 1.0:
            raise ValueError("spr_discount must be in (0, 1]")

    def cpu_instance_hr(self, vcpus: int, memory_gb: float,
                        spr: bool = False) -> float:
        """Hourly price of a custom CPU instance.

        The paper maps one physical core to one billed vCPU (guests see
        no hyperthreads, §IV-A).
        """
        if vcpus < 1 or memory_gb <= 0:
            raise ValueError("vcpus must be >= 1 and memory positive")
        price = vcpus * self.vcpu_hr + memory_gb * self.gb_hr
        return price * (self.spr_discount if spr else 1.0)


#: GCP spot, US-East-1, mid-2025 snapshot (paper's assumptions).
GCP_SPOT_US_EAST1 = PriceCatalog(
    vcpu_hr=0.00846,
    gb_hr=0.00113,
    cgpu_instance_hr=6.50,
    gpu_instance_hr=5.50,
)

#: Memory size the paper fixes for all CPU configurations.
PAPER_MEMORY_GB = 128.0
