"""RAG substrate: corpus, inverted index, BM25, rerank, dense, evaluation."""

from .bm25 import Bm25Retriever, RankedDoc
from .corpus import Corpus, Document, generate_corpus
from .dense import DenseRetriever, HashingSentenceEncoder
from .evaluate import (
    RAG_METHODS,
    QueryTiming,
    RagEvaluation,
    build_retrievers,
    evaluate_pipeline,
    rag_tdx_overheads,
    time_query,
)
from .inverted_index import POSTING_ENTRY_BYTES, InvertedIndex, ScanCost
from .metrics import dcg, mean_metric, ndcg_at_k, recall_at_k
from .pipeline import RagAnswer, RagService
from .rerank import CrossEncoderScorer, RerankedBm25Retriever

__all__ = [
    "Bm25Retriever", "RankedDoc",
    "Corpus", "Document", "generate_corpus",
    "DenseRetriever", "HashingSentenceEncoder",
    "RAG_METHODS", "QueryTiming", "RagEvaluation", "build_retrievers",
    "evaluate_pipeline", "rag_tdx_overheads", "time_query",
    "POSTING_ENTRY_BYTES", "InvertedIndex", "ScanCost",
    "dcg", "mean_metric", "ndcg_at_k", "recall_at_k",
    "RagAnswer", "RagService",
    "CrossEncoderScorer", "RerankedBm25Retriever",
]
