"""Reranked BM25: cross-encoder second stage.

The paper's second retrieval model first retrieves with BM25 and then
reranks the candidates with a cross-encoder.  The functional scorer here
combines exact lexical overlap with the dense-embedding similarity
(a monotone proxy for a trained cross-encoder's behaviour on our
synthetic corpora); the *cost* of reranking is priced as real
cross-encoder transformer passes by the TEE envelope.
"""

from __future__ import annotations

from .bm25 import Bm25Retriever, RankedDoc
from .dense import HashingSentenceEncoder
from .inverted_index import InvertedIndex


class CrossEncoderScorer:
    """Pairwise (query, document) relevance scorer."""

    def __init__(self, encoder: HashingSentenceEncoder | None = None,
                 overlap_weight: float = 0.5) -> None:
        if not 0.0 <= overlap_weight <= 1.0:
            raise ValueError("overlap_weight must be in [0, 1]")
        self.encoder = encoder or HashingSentenceEncoder()
        self.overlap_weight = overlap_weight

    def score(self, query: str, document_text: str) -> float:
        """Relevance in [~-1, 1]; higher is more relevant."""
        query_words = set(query.split())
        if not query_words:
            raise ValueError("empty query")
        doc_words = set(document_text.split())
        overlap = len(query_words & doc_words) / len(query_words)
        semantic = float(self.encoder.encode(query)
                         @ self.encoder.encode(document_text))
        return self.overlap_weight * overlap \
            + (1.0 - self.overlap_weight) * semantic


class RerankedBm25Retriever:
    """BM25 first stage + cross-encoder rerank of the top candidates."""

    name = "bm25-reranked"

    def __init__(self, index: InvertedIndex,
                 scorer: CrossEncoderScorer | None = None,
                 first_stage_k: int = 50) -> None:
        if first_stage_k < 1:
            raise ValueError("first_stage_k must be >= 1")
        self.bm25 = Bm25Retriever(index)
        self.index = index
        self.scorer = scorer or CrossEncoderScorer()
        self.first_stage_k = first_stage_k

    def retrieve(self, query: str, k: int = 10) -> list[RankedDoc]:
        """Top-k after reranking the BM25 top ``first_stage_k``."""
        if k < 1:
            raise ValueError("k must be >= 1")
        candidates = self.bm25.retrieve(query, k=self.first_stage_k)
        rescored = [
            RankedDoc(doc_id=hit.doc_id,
                      score=self.scorer.score(query,
                                              self.index.doc_text(hit.doc_id)))
            for hit in candidates
        ]
        rescored.sort(key=lambda hit: (-hit.score, hit.doc_id))
        return rescored[:k]

    def candidates_scored(self, k: int = 10) -> int:
        """Cross-encoder passes needed per query (for cost accounting)."""
        del k
        return self.first_stage_k
