"""Synthetic BEIR-like corpora.

The paper evaluates RAG on BEIR datasets; offline we generate topical
corpora with the same experimental structure: documents clustered into
topics with shared vocabulary, queries drawn from a topic's vocabulary,
and graded relevance judgments (qrels) for nDCG evaluation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

_WORD_STEMS = (
    "data", "model", "secure", "cloud", "token", "memory", "graph", "query",
    "index", "batch", "socket", "cache", "layer", "attest", "cipher",
    "tensor", "kernel", "buffer", "thread", "weight", "vector", "stream",
    "policy", "market", "clinic", "ledger", "treaty", "enzyme", "sensor",
    "orbit", "quartz", "meadow", "harbor", "lattice", "casing", "rotor",
)


def _topic_vocabulary(rng: random.Random, topic: int, size: int) -> list[str]:
    return [f"{rng.choice(_WORD_STEMS)}{topic}x{i}" for i in range(size)]


@dataclass(frozen=True)
class Document:
    """One corpus document."""

    doc_id: str
    text: str
    topic: int


@dataclass
class Corpus:
    """A topical corpus with queries and graded relevance judgments.

    Attributes:
        documents: All documents.
        queries: Mapping query id -> query text.
        qrels: Mapping query id -> {doc_id: grade} with grades 2
            (same topic, strong term overlap) and 1 (same topic).
    """

    documents: list[Document]
    queries: dict[str, str] = field(default_factory=dict)
    qrels: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def num_documents(self) -> int:
        return len(self.documents)

    def document(self, doc_id: str) -> Document:
        for doc in self.documents:
            if doc.doc_id == doc_id:
                return doc
        raise KeyError(f"unknown document {doc_id!r}")


def generate_corpus(num_docs: int = 1000, num_topics: int = 12,
                    num_queries: int = 50, doc_len: int = 60,
                    query_len: int = 5, seed: int = 0) -> Corpus:
    """Generate a topical corpus with queries and qrels.

    Each topic owns a private vocabulary; documents mix mostly topic
    words with some shared words, so lexical (BM25) and semantic-ish
    (dense) retrieval both have signal.

    Raises:
        ValueError: On degenerate sizes.
    """
    if num_docs < num_topics:
        raise ValueError("need at least one document per topic")
    if min(num_topics, num_queries, doc_len, query_len) < 1:
        raise ValueError("all sizes must be >= 1")
    rng = random.Random(seed)
    shared = _topic_vocabulary(rng, 999, 40)
    topic_vocab = [_topic_vocabulary(rng, topic, 60)
                   for topic in range(num_topics)]

    documents = []
    for index in range(num_docs):
        topic = index % num_topics
        words = [
            rng.choice(topic_vocab[topic]) if rng.random() < 0.7
            else rng.choice(shared)
            for _ in range(doc_len)
        ]
        documents.append(Document(doc_id=f"d{index}", text=" ".join(words),
                                  topic=topic))

    corpus = Corpus(documents=documents)
    for qindex in range(num_queries):
        topic = qindex % num_topics
        query_words = rng.sample(topic_vocab[topic], k=min(query_len, 10))
        query_id = f"q{qindex}"
        corpus.queries[query_id] = " ".join(query_words)
        grades = {}
        query_set = set(query_words)
        for doc in documents:
            if doc.topic != topic:
                continue
            overlap = len(query_set & set(doc.text.split()))
            grades[doc.doc_id] = 2 if overlap >= 2 else 1
        corpus.qrels[query_id] = grades
    return corpus
