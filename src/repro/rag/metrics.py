"""Retrieval quality metrics (nDCG@k, recall@k) — the BEIR measures."""

from __future__ import annotations

import math

from .bm25 import RankedDoc


def dcg(grades: list[int]) -> float:
    """Discounted cumulative gain of a graded ranking."""
    return sum((2 ** grade - 1) / math.log2(position + 2)
               for position, grade in enumerate(grades))


def ndcg_at_k(ranking: list[RankedDoc], qrels: dict[str, int],
              k: int = 10) -> float:
    """Normalized DCG@k of one ranking against graded judgments.

    Returns 0.0 when the query has no relevant documents.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    gains = [qrels.get(hit.doc_id, 0) for hit in ranking[:k]]
    ideal = sorted(qrels.values(), reverse=True)[:k]
    ideal_dcg = dcg(ideal)
    if ideal_dcg == 0.0:
        return 0.0
    return dcg(gains) / ideal_dcg


def recall_at_k(ranking: list[RankedDoc], qrels: dict[str, int],
                k: int = 10) -> float:
    """Fraction of relevant documents found in the top k."""
    if k < 1:
        raise ValueError("k must be >= 1")
    relevant = {doc_id for doc_id, grade in qrels.items() if grade > 0}
    if not relevant:
        return 0.0
    found = {hit.doc_id for hit in ranking[:k]} & relevant
    return len(found) / len(relevant)


def mean_metric(values: list[float]) -> float:
    """Mean over queries (raises on empty input)."""
    if not values:
        raise ValueError("no values")
    return sum(values) / len(values)
