"""SBERT-style dense retrieval.

Encodes queries and documents into dense vectors and ranks by cosine
similarity.  The encoder is a feature-hashing bag-of-words embedder:
each word deterministically maps to a unit vector (seeded by its hash),
and a text embeds to the normalized mean — preserving the property the
experiments need (texts sharing vocabulary are close in cosine space)
with zero learned weights.  The *cost* of encoding is separately priced
as a real SBERT-class transformer pass by the TEE envelope.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .bm25 import RankedDoc
from .corpus import Document


class HashingSentenceEncoder:
    """Deterministic sentence embedder via feature hashing."""

    def __init__(self, dim: int = 384) -> None:
        if dim < 8:
            raise ValueError("dim must be >= 8")
        self.dim = dim
        self._word_cache: dict[str, np.ndarray] = {}

    def _word_vector(self, word: str) -> np.ndarray:
        cached = self._word_cache.get(word)
        if cached is not None:
            return cached
        digest = hashlib.blake2b(word.encode("utf-8"), digest_size=8).digest()
        rng = np.random.default_rng(int.from_bytes(digest, "little"))
        vector = rng.standard_normal(self.dim)
        vector /= np.linalg.norm(vector)
        self._word_cache[word] = vector
        return vector

    def encode(self, text: str) -> np.ndarray:
        """Unit-norm embedding of a text.

        Raises:
            ValueError: For texts with no words.
        """
        words = text.split()
        if not words:
            raise ValueError("cannot encode empty text")
        mean = np.mean([self._word_vector(word) for word in words], axis=0)
        norm = np.linalg.norm(mean)
        if norm == 0.0:
            # Theoretically possible with cancelling vectors; fall back
            # to the first word's direction.
            return self._word_vector(words[0])
        return mean / norm


class DenseRetriever:
    """Cosine-similarity retrieval over pre-encoded documents."""

    name = "sbert"

    def __init__(self, encoder: HashingSentenceEncoder | None = None) -> None:
        self.encoder = encoder or HashingSentenceEncoder()
        self._doc_ids: list[str] = []
        self._matrix: np.ndarray | None = None

    @property
    def num_documents(self) -> int:
        return len(self._doc_ids)

    def index_all(self, documents: list[Document]) -> None:
        """Encode and store document embeddings.

        Raises:
            ValueError: If called twice (rebuild a new retriever instead).
        """
        if self._matrix is not None:
            raise ValueError("index already built")
        if not documents:
            raise ValueError("no documents")
        self._doc_ids = [doc.doc_id for doc in documents]
        self._matrix = np.stack([self.encoder.encode(doc.text)
                                 for doc in documents])

    def retrieve(self, query: str, k: int = 10) -> list[RankedDoc]:
        """Top-k documents by cosine similarity."""
        if self._matrix is None:
            raise ValueError("index not built; call index_all first")
        if k < 1:
            raise ValueError("k must be >= 1")
        query_vec = self.encoder.encode(query)
        similarities = self._matrix @ query_vec
        order = np.argsort(-similarities)[:k]
        return [RankedDoc(doc_id=self._doc_ids[i],
                          score=float(similarities[i])) for i in order]
