"""End-to-end RAG + LLM generation service.

§VI motivates RAG as the most common LLM extension: retrieve documents
matching the query, stuff them into the prompt, and generate.  This
service combines the functional retrieval stack with the TEE-aware
generation engine so the *whole* confidential pipeline — retrieval,
encoding, and generation — is priced on one deployment, including the
prompt growth that retrieved context causes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.placement import Deployment, Workload
from ..engine.simulator import simulate_generation
from ..llm.config import ModelConfig
from ..llm.datatypes import DType
from ..llm.tokenizer import HashTokenizer
from .bm25 import RankedDoc
from .corpus import Corpus
from .evaluate import build_retrievers, time_query


@dataclass(frozen=True)
class RagAnswer:
    """One answered RAG query."""

    query: str
    retrieved: tuple[RankedDoc, ...]
    prompt_tokens: int
    retrieval_s: float
    generation_s: float
    generation_tok_s: float

    @property
    def total_s(self) -> float:
        return self.retrieval_s + self.generation_s

    @property
    def retrieval_fraction(self) -> float:
        return self.retrieval_s / self.total_s if self.total_s else 0.0


class RagService:
    """Retrieval-augmented generation on one deployment.

    Args:
        corpus: Document collection (indexed on construction).
        deployment: Where retrieval and generation run.
        model: Generator architecture.
        dtype: Generation datatype.
        retriever: One of :data:`repro.rag.evaluate.RAG_METHODS`.
        top_k: Documents stuffed into the prompt.
        output_tokens: Tokens generated per answer.
    """

    def __init__(self, corpus: Corpus, deployment: Deployment,
                 model: ModelConfig, dtype: DType,
                 retriever: str = "bm25", top_k: int = 3,
                 output_tokens: int = 128) -> None:
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if output_tokens < 1:
            raise ValueError("output_tokens must be >= 1")
        self.corpus = corpus
        self.deployment = deployment
        self.model = model
        self.dtype = dtype
        self.retriever_name = retriever
        self.top_k = top_k
        self.output_tokens = output_tokens
        self._retrievers = build_retrievers(corpus)
        if retriever not in self._retrievers:
            raise ValueError(f"unknown retriever {retriever!r}")
        self._tokenizer = HashTokenizer(model.vocab_size)

    def _build_prompt(self, query: str, hits: list[RankedDoc]) -> str:
        context = " ".join(
            self._retrievers["_index"].doc_text(hit.doc_id)  # type: ignore[attr-defined]
            for hit in hits)
        return f"context: {context} question: {query} answer:"

    def answer(self, query: str, seed: int = 0) -> RagAnswer:
        """Retrieve, build the prompt, and price the generation.

        Raises:
            ValueError: For empty queries or prompts exceeding the
                generator's context window.
        """
        if not query.strip():
            raise ValueError("empty query")
        retriever = self._retrievers[self.retriever_name]
        hits = retriever.retrieve(query, k=self.top_k)  # type: ignore[attr-defined]
        timing = time_query(self.retriever_name,
                            self._retrievers["_index"],  # type: ignore[arg-type]
                            query, self.deployment,
                            dense_docs=self.corpus.num_documents, seed=seed)
        prompt = self._build_prompt(query, hits)
        prompt_tokens = max(1, self._tokenizer.count(prompt))
        workload = Workload(self.model, self.dtype, batch_size=1,
                            input_tokens=prompt_tokens,
                            output_tokens=self.output_tokens)
        generation = simulate_generation(workload, self.deployment,
                                         seed=seed)
        return RagAnswer(
            query=query,
            retrieved=tuple(hits),
            prompt_tokens=prompt_tokens,
            retrieval_s=timing.total_s,
            generation_s=generation.total_time_s,
            generation_tok_s=generation.decode_throughput_tok_s,
        )
