"""RAG pipeline evaluation under TEE envelopes (Fig. 14).

Runs the three retrieval models on a synthetic BEIR-like corpus and
prices each query's work — Elasticsearch-style index scans, SBERT
encodes, cross-encoder passes — through the same execution engine the
LLM experiments use, so TDX's mechanisms (memory encryption, nested
walks, virtualization tax) apply to the whole pipeline, database
included.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.placement import Deployment
from ..engine.roofline import WorkingSets, cost_model_for
from ..llm.config import CROSS_ENCODER, SBERT_BASE
from ..llm.datatypes import BFLOAT16
from ..llm.ops import Operator, OpCategory, Phase
from .bm25 import Bm25Retriever, RankedDoc
from .corpus import Corpus, generate_corpus
from .dense import DenseRetriever
from .inverted_index import POSTING_ENTRY_BYTES, InvertedIndex
from .metrics import mean_metric, ndcg_at_k
from .rerank import RerankedBm25Retriever

#: Retrieval model names evaluated in Fig. 14.
RAG_METHODS = ("bm25", "bm25-reranked", "sbert")


def _scan_operator(index: InvertedIndex, query: str) -> Operator:
    cost = index.scan_cost(query.split())
    return Operator(
        name="es_index_scan", category=OpCategory.ELEMENTWISE,
        phase=Phase.PREFILL, layer=None,
        flops=cost.score_ops,
        activation_bytes=cost.bytes_touched,
    )


def _cosine_operator(num_docs: int, dim: int) -> Operator:
    return Operator(
        name="dense_search", category=OpCategory.GEMM,
        phase=Phase.PREFILL, layer=None,
        flops=2.0 * num_docs * dim,
        activation_bytes=float(num_docs * dim * 4 + dim * 4),
    )


#: Resident set of the Elasticsearch JVM serving the index: heap, segment
#: caches and page cache churn dwarf the raw postings for realistic
#: deployments, keeping index scans DRAM-visible inside the TEE.
ES_HEAP_RESIDENT_BYTES = 4 * 1024**3


def _index_working_sets(index: InvertedIndex) -> WorkingSets:
    # Raw postings plus the JVM resident set (whichever dominates).
    postings_bytes = (index.num_documents * index.average_doc_length
                      * POSTING_ENTRY_BYTES)
    resident = max(postings_bytes, ES_HEAP_RESIDENT_BYTES)
    return WorkingSets(weights=0.0, kv=0.0, activations=resident)


@dataclass(frozen=True)
class QueryTiming:
    """Per-query time breakdown of one retrieval pipeline."""

    method: str
    retrieval_s: float
    encode_s: float

    @property
    def total_s(self) -> float:
        return self.retrieval_s + self.encode_s


def time_query(method: str, index: InvertedIndex, query: str,
               deployment: Deployment, dense_docs: int = 0,
               rerank_candidates: int = 50, seed: int = 0) -> QueryTiming:
    """Price one query of a retrieval pipeline on a deployment.

    Args:
        method: One of :data:`RAG_METHODS`.
        dense_docs: Corpus size for the dense cosine search.
        rerank_candidates: Cross-encoder passes for the rerank stage.

    Raises:
        ValueError: For unknown methods.
    """
    if method not in RAG_METHODS:
        raise ValueError(f"unknown method {method!r}; known: {RAG_METHODS}")
    model = cost_model_for(deployment)
    sets = _index_working_sets(index)
    doc_tokens = max(8, int(index.average_doc_length))
    query_tokens = max(4, len(query.split()))

    if method == "bm25":
        step = model.step_cost([_scan_operator(index, query)], sets, BFLOAT16)
        return QueryTiming(method=method, retrieval_s=step.total_s,
                           encode_s=0.0)
    if method == "bm25-reranked":
        step = model.step_cost([_scan_operator(index, query)], sets, BFLOAT16)
        encode = _encode_time(
            CROSS_ENCODER, rerank_candidates,
            min(query_tokens + doc_tokens, 512), model)
        return QueryTiming(method=method, retrieval_s=step.total_s,
                           encode_s=encode)
    # sbert: encode the query, then a cosine scan over the doc matrix.
    encode = _encode_time(SBERT_BASE, 1, min(query_tokens, 512), model)
    dim = SBERT_BASE.hidden_size
    step = model.step_cost([_cosine_operator(dense_docs, dim)], sets, BFLOAT16)
    return QueryTiming(method=method, retrieval_s=step.total_s,
                       encode_s=encode)


def _encode_time(config, batch: int, input_tokens: int, model) -> float:
    """Price one encoder pass with the Elasticsearch JVM polluting the
    LLC: the co-located database keeps evicting the small encoder's
    weights, so they stream from (TEE-encrypted) DRAM every pass."""
    from ..llm.graph import encode_ops
    ops = encode_ops(config, BFLOAT16, batch, input_tokens)
    weights = config.num_parameters * BFLOAT16.bytes + ES_HEAP_RESIDENT_BYTES
    sets = WorkingSets(weights=weights, kv=0.0,
                       activations=ES_HEAP_RESIDENT_BYTES)
    return model.step_cost(ops, sets, BFLOAT16).total_s


@dataclass(frozen=True)
class RagEvaluation:
    """Quality and cost of one retrieval pipeline on one deployment."""

    method: str
    mean_query_time_s: float
    mean_ndcg_at_10: float
    queries: int


def build_retrievers(corpus: Corpus) -> dict[str, object]:
    """Construct the three retrieval pipelines over a corpus."""
    index = InvertedIndex()
    index.index_all(corpus.documents)
    dense = DenseRetriever()
    dense.index_all(corpus.documents)
    return {
        "bm25": Bm25Retriever(index),
        "bm25-reranked": RerankedBm25Retriever(index),
        "sbert": dense,
        "_index": index,
    }


def evaluate_pipeline(corpus: Corpus, method: str, deployment: Deployment,
                      k: int = 10, seed: int = 0,
                      retrievers: dict[str, object] | None = None,
                      ) -> RagEvaluation:
    """Run a pipeline over every corpus query: real rankings for quality,
    engine-priced time for cost."""
    retrievers = retrievers or build_retrievers(corpus)
    index: InvertedIndex = retrievers["_index"]  # type: ignore[assignment]
    retriever = retrievers[method]
    times = []
    ndcgs = []
    for offset, (query_id, query) in enumerate(sorted(corpus.queries.items())):
        ranking: list[RankedDoc] = retriever.retrieve(query, k=k)  # type: ignore[attr-defined]
        ndcgs.append(ndcg_at_k(ranking, corpus.qrels[query_id], k=k))
        timing = time_query(method, index, query, deployment,
                            dense_docs=corpus.num_documents,
                            seed=seed + offset)
        times.append(timing.total_s)
    return RagEvaluation(
        method=method,
        mean_query_time_s=mean_metric(times),
        mean_ndcg_at_10=mean_metric(ndcgs),
        queries=len(times),
    )


def rag_tdx_overheads(num_docs: int = 1000, num_queries: int = 30,
                      seed: int = 0) -> dict[str, float]:
    """Fig. 14: mean-evaluation-time overhead of TDX per retrieval model."""
    from ..core.experiment import cpu_deployment
    corpus = generate_corpus(num_docs=num_docs, num_queries=num_queries,
                             seed=seed)
    retrievers = build_retrievers(corpus)
    baseline = cpu_deployment("baremetal", sockets_used=1)
    tdx = cpu_deployment("tdx", sockets_used=1)
    overheads = {}
    for method in RAG_METHODS:
        base = evaluate_pipeline(corpus, method, baseline, seed=seed,
                                 retrievers=retrievers)
        secure = evaluate_pipeline(corpus, method, tdx, seed=seed + 1000,
                                   retrievers=retrievers)
        overheads[method] = (secure.mean_query_time_s
                             / base.mean_query_time_s - 1.0)
    return overheads
