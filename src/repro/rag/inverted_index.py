"""A miniature Elasticsearch: inverted index with collection statistics.

The paper stores documents in Elasticsearch and runs the whole database
inside TDX.  This index implements the parts the retrieval models need:
term postings with term frequencies, document lengths, and cost
accounting (postings bytes scanned, scoring operations) that the TEE
envelope prices (see :mod:`repro.rag.evaluate`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .corpus import Document

#: Modelled size of one posting entry on the Elasticsearch heap
#: (doc id, term frequency, norms, skip-list share).
POSTING_ENTRY_BYTES = 16


@dataclass(frozen=True)
class ScanCost:
    """Work performed by one index scan."""

    postings_scanned: int
    bytes_touched: float
    score_ops: float


class InvertedIndex:
    """In-memory inverted index over tokenized documents."""

    def __init__(self) -> None:
        self._postings: dict[str, list[tuple[str, int]]] = {}
        self._doc_lengths: dict[str, int] = {}
        self._doc_texts: dict[str, str] = {}

    @property
    def num_documents(self) -> int:
        return len(self._doc_lengths)

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    @property
    def average_doc_length(self) -> float:
        if not self._doc_lengths:
            raise ValueError("empty index")
        return sum(self._doc_lengths.values()) / len(self._doc_lengths)

    def index_document(self, document: Document) -> None:
        """Add one document; re-adding an id raises KeyError."""
        if document.doc_id in self._doc_lengths:
            raise KeyError(f"document {document.doc_id!r} already indexed")
        terms = document.text.split()
        self._doc_lengths[document.doc_id] = len(terms)
        self._doc_texts[document.doc_id] = document.text
        for term, count in Counter(terms).items():
            self._postings.setdefault(term, []).append((document.doc_id, count))

    def index_all(self, documents: list[Document]) -> None:
        for document in documents:
            self.index_document(document)

    def postings(self, term: str) -> list[tuple[str, int]]:
        """(doc_id, term frequency) postings of a term (empty if absent)."""
        return list(self._postings.get(term, []))

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def doc_length(self, doc_id: str) -> int:
        return self._doc_lengths[doc_id]

    def doc_text(self, doc_id: str) -> str:
        return self._doc_texts[doc_id]

    def scan_cost(self, query_terms: list[str],
                  ops_per_posting: float = 12.0) -> ScanCost:
        """Cost accounting for scoring one query against the index."""
        scanned = sum(self.document_frequency(term) for term in query_terms)
        return ScanCost(
            postings_scanned=scanned,
            bytes_touched=float(scanned * POSTING_ENTRY_BYTES),
            score_ops=scanned * ops_per_posting,
        )
