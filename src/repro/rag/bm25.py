"""BM25 ranking (Okapi BM25, the paper's classic retrieval model)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from .inverted_index import InvertedIndex


@dataclass(frozen=True)
class RankedDoc:
    """One retrieval hit."""

    doc_id: str
    score: float


class Bm25Retriever:
    """Okapi BM25 over an inverted index.

    Args:
        index: Populated inverted index.
        k1: Term-frequency saturation (Elasticsearch default 1.2).
        b: Length normalization (Elasticsearch default 0.75).
    """

    name = "bm25"

    def __init__(self, index: InvertedIndex, k1: float = 1.2,
                 b: float = 0.75) -> None:
        if k1 < 0 or not 0.0 <= b <= 1.0:
            raise ValueError("k1 must be >= 0 and b in [0, 1]")
        self.index = index
        self.k1 = k1
        self.b = b

    def _idf(self, term: str) -> float:
        n = self.index.num_documents
        df = self.index.document_frequency(term)
        # Lucene-style floor at 0 via the +1 inside the log.
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5)) if df else 0.0

    def score_all(self, query: str) -> dict[str, float]:
        """BM25 scores of every document matching at least one term."""
        terms = query.split()
        if not terms:
            raise ValueError("empty query")
        avgdl = self.index.average_doc_length
        scores: dict[str, float] = {}
        for term in terms:
            idf = self._idf(term)
            if idf == 0.0:
                continue
            for doc_id, tf in self.index.postings(term):
                length_norm = 1.0 - self.b + self.b * (
                    self.index.doc_length(doc_id) / avgdl)
                gain = idf * tf * (self.k1 + 1.0) / (tf + self.k1 * length_norm)
                scores[doc_id] = scores.get(doc_id, 0.0) + gain
        return scores

    def retrieve(self, query: str, k: int = 10) -> list[RankedDoc]:
        """Top-k documents by BM25 score (ties broken by doc id)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        scores = self.score_all(query)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return [RankedDoc(doc_id=doc_id, score=score)
                for doc_id, score in ranked[:k]]
