"""Fleet and steppable-scheduler audit checks (all three families).

The steppable refactor of :class:`ContinuousBatchingScheduler` and the
fleet layer on top of it get the same treatment as every other fast
path in the repository: a slower, simpler twin to diff against, a set
of directional invariants, and a golden snapshot of the headline
capacity-planning numbers.

* ``serving.legacy_loop_parity`` (differential) re-implements the
  pre-refactor run-to-completion loop verbatim and requires ``run()``
  to reproduce it **bit-identically** — the refactor's acceptance
  criterion, pinned forever.
* ``serving.step_run_parity`` (differential) drives the same stream
  through ``submit``/``step`` at several horizon cadences and requires
  exact equality with ``run()``.
* ``fleet.*`` metamorphic checks encode cluster-level physics: adding
  a replica never raises p99 TTFT under fixed load, requests are
  conserved through routing/autoscaling, fleet runs are deterministic.
* ``golden.fleet_capacity`` snapshots the capacity-planning sweep —
  replicas needed and $/Mtok at the p99 TTFT SLO for TDX and cGPU
  fleets on a fixed trace.
"""

from __future__ import annotations

from ..fleet import (
    capacity_sweep,
    fixed_fleet,
    poisson_arrivals,
    replica_spec,
    trace_replay,
)
from ..llm.kvcache import PagedKVCache
from ..serving.scheduler import ContinuousBatchingScheduler, poisson_stream
from .context import AuditContext
from .golden import _golden
from .registry import CheckFailure, check


def _legacy_run(scheduler: ContinuousBatchingScheduler, requests):
    """The pre-steppable run-to-completion loop, verbatim.

    A frozen transcription of the original
    ``ContinuousBatchingScheduler.run`` body (run state lived in
    locals, one monolithic while loop).  Returns per-request
    ``(first_token_s, finish_s, preemptions)`` plus the final clock —
    the ground truth the refactored ``run`` must match bit-for-bit.
    """
    cache = PagedKVCache(num_blocks=scheduler.cache.num_blocks,
                         block_size=scheduler.block_size)
    waiting = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
    timeline = {r.request_id: [0.0, 0.0, 0] for r in requests}
    running: list = []  # (request, generated) mutable pairs
    clock = 0.0
    preemptions = 0
    occupancy: list[int] = []

    while waiting or running:
        while (waiting and len(running) < scheduler.max_batch
               and waiting[0].arrival_s <= clock):
            request = waiting[0]
            try:
                cache.allocate(request.request_id, request.prompt_tokens)
            except MemoryError:
                break
            waiting.pop(0)
            clock += scheduler._prefill_s(request.prompt_tokens)
            timeline[request.request_id][0] = clock
            running.append([request, 0])
        if not running:
            clock = max(clock, waiting[0].arrival_s)
            continue
        contexts = [entry[0].prompt_tokens + entry[1] for entry in running]
        mean_context = int(sum(contexts) / len(contexts))
        occupancy.append(len(running))
        clock += scheduler._decode_step_s(len(running), max(1, mean_context))

        finished = []
        preempted_ids: set[int] = set()

        def preempt_youngest():
            victim = running[-1]
            cache.free(victim[0].request_id)
            timeline[victim[0].request_id][2] += 1
            victim[1] = 0
            running.remove(victim)
            waiting.insert(0, victim[0])
            preempted_ids.add(victim[0].request_id)
            return victim

        for entry in list(running):
            if entry[0].request_id in preempted_ids:
                continue
            appended = False
            while not appended:
                try:
                    cache.append_token(entry[0].request_id)
                    appended = True
                except MemoryError:
                    victim = preempt_youngest()
                    preemptions += 1
                    if victim is entry:
                        break
            if not appended:
                continue
            entry[1] += 1
            if entry[1] >= entry[0].output_tokens:
                finished.append(entry)
        for entry in finished:
            timeline[entry[0].request_id][1] = clock
            cache.free(entry[0].request_id)
            running.remove(entry)

    mean_occupancy = sum(occupancy) / len(occupancy) if occupancy else 0.0
    return timeline, clock, preemptions, mean_occupancy


def _serving_cases(ctx: AuditContext):
    """(label, scheduler-factory, stream) cases shared by the parity checks."""
    def scheduler(backend: str, kv: int, batch: int):
        deployment = (ctx.gpu(confidential=True) if backend == "cgpu"
                      else ctx.cpu(backend))
        return ContinuousBatchingScheduler(deployment, ctx.model, ctx.dtype,
                                           kv_capacity_tokens=kv,
                                           max_batch=batch)
    return (
        ("tdx/relaxed", lambda: scheduler("tdx", 65536, 16),
         poisson_stream(16, 4.0, mean_prompt=128, mean_output=32, seed=2)),
        ("baremetal/preempting", lambda: scheduler("baremetal", 1024, 8),
         poisson_stream(20, 2.0, mean_prompt=96, mean_output=48, seed=7)),
        ("cgpu/bursty", lambda: scheduler("cgpu", 16384, 32),
         poisson_stream(24, 8.0, mean_prompt=256, mean_output=64, seed=17)),
    )


@check("serving.legacy_loop_parity", family="differential",
       layers=("serving", "fleet"))
def legacy_loop_parity(ctx: AuditContext) -> str:
    """run() reproduces the pre-steppable monolithic loop bit-identically."""
    checked = 0
    for label, make, stream in _serving_cases(ctx):
        report = make().run(stream)
        timeline, clock, preemptions, occupancy = _legacy_run(make(), stream)
        if report.total_preemptions != preemptions:
            raise CheckFailure(f"{label}: preemption counts diverge")
        if report.mean_batch_occupancy != occupancy:
            raise CheckFailure(f"{label}: occupancy diverged")
        if report.start_s + report.makespan_s != clock:
            raise CheckFailure(
                f"{label}: end clock {report.start_s + report.makespan_s!r} "
                f"!= legacy {clock!r}")
        for outcome in report.outcomes:
            first, finish, preempts = timeline[outcome.request.request_id]
            # Bit-identical means float equality, not tolerance.
            if (outcome.first_token_s != first
                    or outcome.finish_s != finish
                    or outcome.preemptions != preempts):
                raise CheckFailure(
                    f"{label}: request {outcome.request.request_id} timeline "
                    f"diverged from the legacy loop")
            checked += 1
    return f"{checked} request timelines bit-identical across 3 streams"


@check("serving.step_run_parity", family="differential",
       layers=("serving", "fleet"))
def step_run_parity(ctx: AuditContext) -> str:
    """submit()+step() at any cadence equals run() exactly."""
    horizons = (0.1, 5.0)  # fine- and coarse-grained stepping cadences
    checked = 0
    for label, make, stream in _serving_cases(ctx):
        expected = make().run(stream)
        for horizon in horizons:
            scheduler = make()
            for request in stream:
                scheduler.submit(request)
            clock = 0.0
            while not scheduler.idle:
                clock += horizon
                scheduler.step(clock)
            got = scheduler.report()
            pairs = zip(expected.outcomes, got.outcomes)
            if any((a.first_token_s, a.finish_s, a.preemptions)
                   != (b.first_token_s, b.finish_s, b.preemptions)
                   for a, b in pairs):
                raise CheckFailure(
                    f"{label}: stepped horizon {horizon} diverged from run()")
            if (expected.makespan_s != got.makespan_s
                    or expected.mean_batch_occupancy
                    != got.mean_batch_occupancy):
                raise CheckFailure(
                    f"{label}: aggregate metrics diverged at horizon "
                    f"{horizon}")
            checked += 1
    return f"{checked} (stream, horizon) pairs exact"


# -- fleet metamorphic checks -------------------------------------------------

def _fleet_stream():
    return poisson_arrivals(40, rate_per_s=4.0, mean_prompt=128,
                            mean_output=32, seed=11)


def _tdx_spec():
    return replica_spec("tdx", max_batch=16, kv_capacity_tokens=65536)


@check("fleet.replica_scaling_monotonic_tail", family="metamorphic",
       layers=("fleet", "serving"))
def replica_scaling_monotonic_tail(ctx: AuditContext) -> str:
    """Adding a replica never raises p99 TTFT under fixed load."""
    stream = _fleet_stream()
    spec = _tdx_spec()
    p99s = [fixed_fleet(spec, count).run(stream).ttft_percentile(99)
            for count in (1, 2, 3)]
    for earlier, later in zip(p99s, p99s[1:]):
        if later > earlier * (1.0 + ctx.tol.monotonic_slack_rel):
            raise CheckFailure(
                f"p99 TTFT rose when adding a replica: {earlier:.3f}s -> "
                f"{later:.3f}s", deltas={"earlier": earlier, "later": later})
    return " -> ".join(f"{p:.2f}s" for p in p99s)


@check("fleet.request_conservation", family="metamorphic",
       layers=("fleet", "serving"))
def fleet_request_conservation(ctx: AuditContext) -> str:
    """Routing and autoscaling never lose or duplicate a request."""
    from ..fleet import AutoscalerConfig, FleetSimulator, ReactiveAutoscaler
    stream = _fleet_stream()
    scaler = ReactiveAutoscaler(AutoscalerConfig(
        max_replicas=4, scale_up_load=3.0, scale_down_load=0.5,
        cooldown_s=2.0, boot_latency_s=5.0))
    report = FleetSimulator([_tdx_spec()], autoscaler=scaler).run(stream)
    served = sorted(o.request.request_id for o in report.outcomes)
    if served != [r.request_id for r in stream]:
        raise CheckFailure("request ids lost or duplicated across the fleet")
    if sum(u.requests_served for u in report.replicas) != len(stream):
        raise CheckFailure("per-replica routing counts do not sum to stream")
    if any(o.finish_s <= 0 or o.ttft_s < 0 for o in report.outcomes):
        raise CheckFailure("unserved or acausal outcome in fleet report")
    return (f"{len(stream)} requests over {len(report.replicas)} replicas, "
            f"peak {report.peak_replicas}")


@check("fleet.deterministic_replay", family="metamorphic",
       layers=("fleet",))
def fleet_deterministic_replay(ctx: AuditContext) -> str:
    """Same seed + config produce an identical fleet report."""
    stream = _fleet_stream()
    spec = _tdx_spec()
    first = fixed_fleet(spec, 2).run(stream).to_dict()
    second = fixed_fleet(spec, 2).run(stream).to_dict()
    if first != second:
        raise CheckFailure("fleet report not reproducible across runs")
    return f"{first['requests']} requests, report dicts identical"


# -- fleet golden snapshot ----------------------------------------------------

#: The committed capacity-planning trace: 60 requests at 4 req/s with
#: deterministic size variation (no RNG — the trace IS the config).
CAPACITY_TRACE = tuple((0.25 * i, 192 + (37 * i) % 160, 48 + (13 * i) % 48)
                       for i in range(60))

#: The p99 TTFT objective the capacity golden plans against.
CAPACITY_SLO_TTFT_S = 2.0


@_golden("fleet_capacity", "Fleet capacity plan: replicas and $/Mtok at SLO",
         layers=("fleet", "serving", "cost"))
def fleet_capacity(ctx: AuditContext) -> dict[str, float]:
    requests = trace_replay(list(CAPACITY_TRACE))
    specs = [replica_spec("tdx", max_batch=16, kv_capacity_tokens=65536),
             replica_spec("cgpu", max_batch=16, kv_capacity_tokens=65536)]
    plans = capacity_sweep(specs, requests, slo_ttft_s=CAPACITY_SLO_TTFT_S,
                           max_replicas=6)
    series: dict[str, float] = {}
    for kind, plan in plans.items():
        if plan.replicas_needed is None:
            raise CheckFailure(
                f"{kind}: SLO unattainable within the swept fleet sizes")
        series[f"{kind}/replicas_needed"] = float(plan.replicas_needed)
        series[f"{kind}/usd_per_mtok_at_slo"] = plan.usd_per_mtok_at_slo
        series[f"{kind}/p99_ttft_at_slo_s"] = plan.plan_point.p99_ttft_s
        series[f"{kind}/attainment_at_slo"] = plan.plan_point.attainment
    return series
