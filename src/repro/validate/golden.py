"""Golden-trace regression checks for the figure benchmarks.

Each figure/table benchmark in ``benchmarks/`` asserts loose paper
*bands*; a regression inside a band (e.g. a 3% silent drift of TDX
overhead) passes those tests.  These checks pin the *exact* headline
series of every benchmark against committed JSON snapshots under
``repro/validate/golden_data/`` with explicit relative tolerances, so
any drift — intended or not — is surfaced and must be acknowledged by
regenerating the snapshot (``scripts/audit.py --regen``).

The builders mirror each benchmark's ``regenerate()`` at a reduced grid
(same workloads, deployments and metrics; fewer sweep points) to keep
the audit fast enough to run on every PR.
"""

from __future__ import annotations

import json
from typing import Callable

from ..core.experiment import cpu_deployment
from ..core.overhead import throughput_overhead
from ..core.summary import render_summary_table
from ..cost.efficiency import best_cpu_point, cpu_cost_point, gpu_cost_point
from ..cost.pricing import GCP_SPOT_US_EAST1
from ..engine.placement import Workload
from ..engine.trace import block_layer_summary, decoder_block_share, layer_overheads
from ..hardware.cpu import EMR1
from ..llm.config import LLAMA2_7B, LLAMA2_70B
from ..llm.datatypes import BFLOAT16, FLOAT32, INT8
from ..memsim.pages import HugepagePolicy
from .context import AuditContext
from .registry import CheckFailure, CheckSkip, check

#: Default allowed relative drift against a snapshot.  Simulations are
#: deterministic; this only absorbs platform float-noise, so any real
#: model change trips the check.
DEFAULT_REL_TOL = 1e-4

#: Values whose snapshot is exactly zero compare against this absolute
#: tolerance instead.
ZERO_ABS_TOL = 1e-12


def compare_series(measured: dict[str, float], golden: dict[str, float],
                   rel_tol: float) -> list[str]:
    """Mismatches between a measured and a golden series (empty = pass)."""
    problems = []
    missing = sorted(set(golden) - set(measured))
    extra = sorted(set(measured) - set(golden))
    if missing:
        problems.append(f"missing keys: {', '.join(missing)}")
    if extra:
        problems.append(f"unexpected keys: {', '.join(extra)}")
    for key in sorted(set(golden) & set(measured)):
        expected, actual = golden[key], measured[key]
        if expected == 0.0:
            if abs(actual) > ZERO_ABS_TOL:
                problems.append(f"{key}: expected 0, got {actual:.3e}")
            continue
        rel = abs(actual - expected) / abs(expected)
        if rel > rel_tol:
            problems.append(
                f"{key}: {actual:.6g} vs golden {expected:.6g} "
                f"(rel {rel:.2e} > {rel_tol:.0e})")
    return problems


def _golden(name: str, title: str, layers: tuple[str, ...],
            rel_tol: float = DEFAULT_REL_TOL) -> Callable:
    """Register a golden check around a headline-series builder."""

    def register(builder: Callable[[AuditContext], dict[str, float]]):
        def run(ctx: AuditContext) -> str:
            series = {key: float(value)
                      for key, value in builder(ctx).items()}
            path = ctx.golden_dir / f"{name}.json"
            if ctx.regen:
                path.parent.mkdir(parents=True, exist_ok=True)
                payload = {"name": name, "title": title,
                           "tolerance_rel": rel_tol, "series": series}
                path.write_text(json.dumps(payload, indent=2,
                                           sort_keys=True) + "\n")
                return f"regenerated {len(series)}-point snapshot"
            if not path.exists():
                raise CheckSkip(
                    f"no snapshot at {path}; run scripts/audit.py --regen")
            payload = json.loads(path.read_text())
            tolerance = float(payload.get("tolerance_rel", rel_tol))
            problems = compare_series(series, payload["series"], tolerance)
            if problems:
                raise CheckFailure(
                    f"{len(problems)} drift(s) vs {path.name}: "
                    + "; ".join(problems[:4]))
            return (f"{len(series)} points within rel "
                    f"{tolerance:.0e} of snapshot")

        run.__doc__ = title
        run.__name__ = f"golden_{name}"
        check(f"golden.{name}", family="golden",
              layers=tuple(layers) + ("bench",))(run)
        return builder

    return register


# -- headline-series builders -------------------------------------------------

def _emr1(backend: str, **kwargs):
    kwargs.setdefault("sockets_used", 1)
    return cpu_deployment(backend, cpu=EMR1, **kwargs)


@_golden("fig01_overview", "Fig. 1 headline TEE throughput overheads",
         layers=("engine", "tee"))
def fig01(ctx: AuditContext) -> dict[str, float]:
    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=6, input_tokens=1024,
                        output_tokens=128, beam_size=4)
    base = ctx.simulate(workload, _emr1("baremetal"))
    series = {}
    for backend in ("sgx", "tdx"):
        run = ctx.simulate(workload, _emr1(backend))
        series[f"{backend}/tput_ovh_pct"] = 100 * throughput_overhead(run, base)
    gpu_workload = workload.with_(beam_size=1)
    gpu = ctx.simulate(gpu_workload, ctx.gpu(confidential=False))
    cgpu = ctx.simulate(gpu_workload, ctx.gpu(confidential=True))
    series["cgpu/tput_ovh_pct"] = 100 * throughput_overhead(
        cgpu, gpu, include_prefill=True)
    return series


@_golden("fig03_frameworks", "Fig. 3 framework microbenchmark wall times",
         layers=("engine", "frameworks"))
def fig03(ctx: AuditContext) -> dict[str, float]:
    cases = (("hf-f32", "hf", FLOAT32), ("hf-bf16", "hf", BFLOAT16),
             ("vllm-f32", "vllm-cpu", FLOAT32),
             ("vllm-bf16", "vllm-cpu", BFLOAT16),
             ("llamacpp-mixed", "llamacpp", BFLOAT16),
             ("ipex-bf16", "ipex", BFLOAT16))
    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=1, input_tokens=1024,
                        output_tokens=128)
    return {
        f"{label}/wall_s": ctx.simulate(
            workload.with_(dtype=dtype),
            _emr1("baremetal", framework=framework)).total_time_s
        for label, framework, dtype in cases
    }


@_golden("fig04_single_socket", "Fig. 4 single-socket overheads (EMR1)",
         layers=("engine", "tee"))
def fig04(ctx: AuditContext) -> dict[str, float]:
    series = {}
    for dtype in (BFLOAT16, INT8):
        tput_workload = Workload(LLAMA2_7B, dtype, 6, 1024, 128, beam_size=4)
        lat_workload = Workload(LLAMA2_7B, dtype, 1, 1024, 128)
        base_tput = ctx.simulate(tput_workload, _emr1("baremetal"))
        for backend in ("vm", "sgx", "tdx"):
            run = ctx.simulate(tput_workload, _emr1(backend))
            series[f"{dtype.name}/{backend}/tput_ovh_pct"] = \
                100 * throughput_overhead(run, base_tput)
        lat = ctx.simulate(lat_workload, _emr1("tdx"))
        series[f"{dtype.name}/tdx/latency_ms"] = \
            lat.next_token_latency_s * 1e3
    return series


@_golden("fig05_numa_binding", "Fig. 5 two-socket 70B NUMA latencies",
         layers=("engine", "memsim", "tee"))
def fig05(ctx: AuditContext) -> dict[str, float]:
    workload = Workload(LLAMA2_70B, BFLOAT16, batch_size=1,
                        input_tokens=1024, output_tokens=64)
    series = {}
    for label, backend in (("vm-bound", "vm"), ("vm-unbound", "vm-unbound"),
                           ("tdx", "tdx")):
        run = ctx.simulate(workload, _emr1(backend, sockets_used=2))
        series[f"{label}/latency_ms"] = run.next_token_latency_s * 1e3
    return series


@_golden("fig06_hugepages", "Fig. 6 hugepage-policy throughput overheads",
         layers=("engine", "memsim", "tee"))
def fig06(ctx: AuditContext) -> dict[str, float]:
    workload = Workload(LLAMA2_7B, BFLOAT16, 6, 1024, 128, beam_size=4)
    configs = {
        "baremetal": ("baremetal", HugepagePolicy.RESERVED_1G),
        "vm-fh": ("vm", HugepagePolicy.RESERVED_1G),
        "vm-th": ("vm", HugepagePolicy.TRANSPARENT_2M),
        "tdx": ("tdx", HugepagePolicy.RESERVED_1G),
    }
    runs = {
        label: ctx.simulate(workload, _emr1(backend, sockets_used=2,
                                            hugepages=pages))
        for label, (backend, pages) in configs.items()
    }
    return {
        f"{label}/tput_ovh_pct":
            100 * throughput_overhead(run, runs["baremetal"])
        for label, run in runs.items() if label != "baremetal"
    }


@_golden("fig07_block_breakdown", "Fig. 7 decoder-block layer breakdown",
         layers=("engine", "llm", "tee"))
def fig07(ctx: AuditContext) -> dict[str, float]:
    workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=4, input_tokens=128,
                        output_tokens=128)
    traces = {
        backend: ctx.simulate(workload, ctx.cpu(backend),
                              record_steps=True).decode_trace()
        for backend in ("baremetal", "tdx")
    }
    summary = block_layer_summary(traces["tdx"])
    overheads = layer_overheads(traces["tdx"], traces["baremetal"])
    series = {"decoder_block_share": decoder_block_share(traces["tdx"])}
    for layer, stat in summary.items():
        series[f"{layer}/share_pct"] = 100 * stat.share_of_block
        series[f"{layer}/tdx_ovh_pct"] = 100 * overheads[layer]
    return series


@_golden("fig08_amx", "Fig. 8 AMX advantage and TDX overhead vs batch",
         layers=("engine", "hardware", "tee"))
def fig08(ctx: AuditContext) -> dict[str, float]:
    series = {}
    for batch in (1, 16, 64, 256):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=batch,
                            input_tokens=128, output_tokens=128)
        vm_amx = ctx.simulate(workload, ctx.cpu("vm"))
        vm_noamx = ctx.simulate(workload, ctx.cpu("vm", amx_enabled=False))
        tdx_amx = ctx.simulate(workload, ctx.cpu("tdx"))
        series[f"b{batch}/amx_speedup_x"] = (
            vm_amx.decode_throughput_tok_s / vm_noamx.decode_throughput_tok_s)
        series[f"b{batch}/tdx_ovh_pct"] = \
            100 * throughput_overhead(tdx_amx, vm_amx)
    return series


@_golden("fig09_batch_scaling", "Fig. 9 TDX overhead vs batch size",
         layers=("engine", "tee"))
def fig09(ctx: AuditContext) -> dict[str, float]:
    series = {}
    for dtype in (BFLOAT16, INT8):
        for batch in (1, 16, 64, 256):
            workload = Workload(LLAMA2_7B, dtype, batch_size=batch,
                                input_tokens=128, output_tokens=128)
            base = ctx.simulate(workload, ctx.cpu("baremetal"))
            tdx = ctx.simulate(workload, ctx.cpu("tdx"))
            series[f"{dtype.name}/b{batch}/tdx_ovh_pct"] = \
                100 * throughput_overhead(tdx, base)
    return series


@_golden("fig10_input_scaling", "Fig. 10 TDX overhead vs input size",
         layers=("engine", "memsim", "tee"))
def fig10(ctx: AuditContext) -> dict[str, float]:
    series = {}
    for input_len in (32, 128, 512, 2048, 3584):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=64,
                            input_tokens=input_len, output_tokens=128)
        base = ctx.simulate(workload, ctx.cpu("baremetal"))
        tdx = ctx.simulate(workload, ctx.cpu("tdx"))
        series[f"in{input_len}/total_ovh_pct"] = 100 * throughput_overhead(
            tdx, base, include_prefill=True)
        series[f"in{input_len}/decode_ovh_pct"] = \
            100 * throughput_overhead(tdx, base)
    return series


@_golden("fig11_cgpu_scaling", "Fig. 11 cGPU overhead vs batch and input",
         layers=("engine", "tee", "hardware"))
def fig11(ctx: AuditContext) -> dict[str, float]:
    series = {}
    for batch in (1, 16, 64):
        for input_len in (128, 2048):
            workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=batch,
                                input_tokens=input_len, output_tokens=128)
            gpu = ctx.simulate(workload, ctx.gpu(confidential=False))
            cgpu = ctx.simulate(workload, ctx.gpu(confidential=True))
            series[f"b{batch}/in{input_len}/cc_ovh_pct"] = \
                100 * throughput_overhead(cgpu, gpu, include_prefill=True)
    return series


@_golden("fig12_vcpu_cost", "Fig. 12 cost of 1M tokens vs vCPU count",
         layers=("engine", "cost"))
def fig12(ctx: AuditContext) -> dict[str, float]:
    series = {}
    for batch in (1, 64):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=batch,
                            input_tokens=128, output_tokens=128)
        points = []
        for cores in (8, 24, 56):
            tdx = ctx.simulate(workload, ctx.cpu(
                "tdx", cores_per_socket_used=cores))
            point = cpu_cost_point(tdx, vcpus=cores,
                                   catalog=GCP_SPOT_US_EAST1)
            points.append(point)
            series[f"b{batch}/c{cores}/usd_per_mtok"] = point.usd_per_mtok
        series[f"b{batch}/best_cores"] = best_cpu_point(points).vcpus
        cgpu = ctx.simulate(workload, ctx.gpu(confidential=True))
        series[f"b{batch}/cgpu_usd_per_mtok"] = gpu_cost_point(
            cgpu, GCP_SPOT_US_EAST1).usd_per_mtok
    return series


@_golden("fig13_input_cost", "Fig. 13 CPU cost advantage vs input size",
         layers=("engine", "cost"))
def fig13(ctx: AuditContext) -> dict[str, float]:
    series = {}
    for input_len in (32, 256, 2048):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=4,
                            input_tokens=input_len, output_tokens=128)
        points = []
        for cores in (8, 24, 48):
            tdx = ctx.simulate(workload, ctx.cpu(
                "tdx", cores_per_socket_used=cores))
            points.append(cpu_cost_point(tdx, vcpus=cores,
                                         catalog=GCP_SPOT_US_EAST1))
        best = best_cpu_point(points)
        cgpu = ctx.simulate(workload, ctx.gpu(confidential=True))
        gpu_point = gpu_cost_point(cgpu, GCP_SPOT_US_EAST1)
        series[f"in{input_len}/cpu_advantage_pct"] = \
            100 * (gpu_point.usd_per_mtok / best.usd_per_mtok - 1.0)
    return series


@_golden("fig14_rag", "Fig. 14 RAG pipeline TDX overheads",
         layers=("rag", "engine", "tee"), rel_tol=5e-2)
def fig14(ctx: AuditContext) -> dict[str, float]:
    from ..rag.corpus import generate_corpus
    from ..rag.evaluate import RAG_METHODS, build_retrievers, evaluate_pipeline
    corpus = generate_corpus(num_docs=400, num_topics=8, num_queries=12,
                             seed=42)
    retrievers = build_retrievers(corpus)
    baseline = ctx.cpu("baremetal")
    tdx = ctx.cpu("tdx")
    series = {}
    for method in RAG_METHODS:
        base = evaluate_pipeline(corpus, method, baseline,
                                 retrievers=retrievers, seed=1)
        secure = evaluate_pipeline(corpus, method, tdx,
                                   retrievers=retrievers, seed=1001)
        series[f"{method}/tdx_ovh_pct"] = \
            100 * (secure.mean_query_time_s / base.mean_query_time_s - 1.0)
    return series


@_golden("table1_summary", "Table I measured overhead bands",
         layers=("engine", "tee", "core"))
def table1(ctx: AuditContext) -> dict[str, float]:
    bands: dict[str, list[float]] = {"sgx": [], "tdx": [], "cgpu": []}
    for dtype in (BFLOAT16, INT8):
        workload = Workload(LLAMA2_7B, dtype, batch_size=6,
                            input_tokens=1024, output_tokens=64, beam_size=4)
        base = ctx.simulate(workload, ctx.cpu("baremetal"))
        for backend in ("sgx", "tdx"):
            run = ctx.simulate(workload, ctx.cpu(backend))
            bands[backend].append(throughput_overhead(run, base))
    for batch in (1, 64):
        workload = Workload(LLAMA2_7B, BFLOAT16, batch_size=batch,
                            input_tokens=512, output_tokens=64)
        gpu = ctx.simulate(workload, ctx.gpu(confidential=False))
        cgpu = ctx.simulate(workload, ctx.gpu(confidential=True))
        bands["cgpu"].append(throughput_overhead(cgpu, gpu,
                                                 include_prefill=True))
    # The rendered table must accept the measured bands (shape check).
    render_summary_table(measured_bands={
        name: (min(values), max(values)) for name, values in bands.items()})
    series = {}
    for name, values in bands.items():
        series[f"{name}/band_lo_pct"] = 100 * min(values)
        series[f"{name}/band_hi_pct"] = 100 * max(values)
    return series
