"""State audit checks: checkpoint/restore parity (family ``state``).

A checkpoint is only trustworthy if restoring it is indistinguishable
from never having stopped.  These checks pin that end to end:

* ``state.resume_parity`` — freeze a fleet mid-run, push the snapshot
  through strict JSON, revive it in a *fresh* simulator, and finish
  both: report, raw outcome floats, fault timeline, shed ledger and
  scale events must be **bit-identical** — fault-free, faulted and
  autoscaled configurations alike.  Taking the snapshot must not
  perturb the running simulator either.
* ``state.snapshot_roundtrip`` — ``restore(snapshot(sim))`` then
  re-snapshot yields the identical payload (idempotence), and the
  steppable run loop composes to exactly ``run()``.
* ``state.schema_negotiation`` — newer/unreachable ``state_version``
  payloads are refused with the right error; the same-version v1→v1
  hook runs on every restore; non-finite values are rejected with a
  JSON path.
* ``state.wal_resume`` — an interrupted journaled sweep, reopened and
  finished, merges into a journal byte-identical to an uninterrupted
  run's, matching the monolithic sweep rows; a torn final line is
  tolerated, mid-file corruption is not.
* ``state.quarantine_isolation`` — a pathological grid point is
  retried with the seeded deterministic backoff, quarantined after
  ``max_attempts``, and *degrades* the sweep instead of killing it;
  resume skips both completed and quarantined points.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from ..faults import FaultSchedule, RetryPolicy, mtbf_schedule
from ..fleet import (
    AutoscalerConfig,
    FleetSimulator,
    ReactiveAutoscaler,
    fixed_fleet,
    poisson_arrivals,
    replica_spec,
)
from ..state import (
    StateValueError,
    StateVersionError,
    negotiate,
    validate_payload,
)
from ..state.checkpoint import restore, snapshot
from ..state.points import point_runner
from .context import AuditContext
from .registry import CheckFailure, check


def _spec(kind: str = "tdx"):
    return replica_spec(kind, max_batch=16, kv_capacity_tokens=65536)


def _stream(n: int = 10, seed: int = 11):
    return poisson_arrivals(n, rate_per_s=4.0, mean_prompt=128,
                            mean_output=32, seed=seed)


def _fleets() -> list[tuple[str, "callable"]]:
    """Fresh-simulator factories for the parity configurations.

    Factories (not instances) because restore-into-fresh needs a second
    simulator built from identical constructor arguments.
    """

    def fault_free():
        return fixed_fleet(_spec(), 2)

    def faulted():
        return fixed_fleet(
            _spec(), 2,
            faults=mtbf_schedule([0, 1], mtbf_s=6.0, horizon_s=20.0, seed=3),
            retry_policy=RetryPolicy(timeout_s=30.0, max_attempts=3, seed=3))

    def autoscaled():
        scaler = ReactiveAutoscaler(AutoscalerConfig(
            max_replicas=4, scale_up_load=3.0, scale_down_load=0.5,
            cooldown_s=2.0, boot_latency_s=5.0))
        return FleetSimulator([_spec()], autoscaler=scaler,
                              faults=FaultSchedule.empty(),
                              retry_policy=RetryPolicy(seed=3))

    return [("fixed/fault-free", fault_free), ("fixed/faulted", faulted),
            ("autoscaled/faulted-armed", autoscaled)]


def _finish(sim) -> object:
    while sim.run_active:
        sim.run_tick()
    return sim.finish_run()


def _compare(label: str, resumed, baseline) -> None:
    if resumed.to_dict() != baseline.to_dict():
        base, res = baseline.to_dict(), resumed.to_dict()
        diverged = [key for key in base if base[key] != res.get(key)]
        raise CheckFailure(
            f"{label}: resumed report diverged from the uninterrupted "
            f"baseline in {diverged[:4]}")
    for a, b in zip(baseline.outcomes, resumed.outcomes):
        if (a.first_token_s, a.finish_s, a.preemptions) != (
                b.first_token_s, b.finish_s, b.preemptions):
            raise CheckFailure(
                f"{label}: request {a.request.request_id} timeline "
                f"diverged after restore (raw float comparison)")
    for series in ("fault_events", "shed", "scale_events"):
        base = [e.to_dict() for e in getattr(baseline, series)]
        res = [e.to_dict() for e in getattr(resumed, series)]
        if base != res:
            raise CheckFailure(f"{label}: {series} ledger diverged "
                               f"after restore")


@check("state.resume_parity", family="state",
       layers=("state", "fleet", "faults", "serving"))
def state_resume_parity(ctx: AuditContext) -> str:
    """Mid-run snapshot -> JSON -> restore into a fresh simulator ->
    completion is bit-identical to never having stopped."""
    stream = _stream()
    checked = 0
    for label, factory in _fleets():
        baseline = factory().run(stream)
        running = factory()
        running.begin_run(stream)
        for _ in range(6):
            if not running.run_active:
                break
            running.run_tick()
        payload = json.loads(json.dumps(snapshot(running)))
        fresh = factory()
        restore(fresh, payload)
        _compare(label, _finish(fresh), baseline)
        # The snapshot must be an observation, not an intervention:
        # the simulator it was taken from finishes identically too.
        _compare(f"{label} (donor)", _finish(running), baseline)
        checked += 1
    return f"{checked} configs resume bit-identically from mid-run JSON"


@check("state.snapshot_roundtrip", family="state",
       layers=("state", "fleet"))
def state_snapshot_roundtrip(ctx: AuditContext) -> str:
    """restore(snapshot(sim)) re-snapshots to the identical payload,
    and the steppable loop composes to exactly run()."""
    stream = _stream(10, seed=5)

    def factory():
        return fixed_fleet(
            _spec("cgpu"), 2,
            faults=mtbf_schedule([0], mtbf_s=8.0, horizon_s=20.0, seed=5),
            retry_policy=RetryPolicy(seed=5))

    running = factory()
    running.begin_run(stream)
    for _ in range(4):
        running.run_tick()
    payload = snapshot(running)
    validate_payload(payload)
    fresh = factory()
    restore(fresh, json.loads(json.dumps(payload)))
    again = snapshot(fresh)
    if json.dumps(payload, sort_keys=True) != json.dumps(again,
                                                         sort_keys=True):
        first = payload["state"]
        second = again["state"]
        diverged = [key for key in first if first[key] != second.get(key)]
        raise CheckFailure(
            f"snapshot(restore(snapshot(sim))) not idempotent; state "
            f"keys diverged: {diverged[:4]}")
    stepped = _finish(fresh)
    monolithic = factory().run(stream)
    if stepped.to_dict() != monolithic.to_dict():
        raise CheckFailure(
            "steppable begin_run/run_tick/finish_run loop diverged "
            "from the monolithic run()")
    return "snapshot idempotent; steppable loop equals run()"


@check("state.schema_negotiation", family="state", layers=("state",))
def state_schema_negotiation(ctx: AuditContext) -> str:
    """Version negotiation refuses what it cannot restore and always
    exercises the same-version migration hook."""
    from ..state.schema import CURRENT_STATE_VERSION

    sim = fixed_fleet(_spec(), 1)
    payload = snapshot(sim)
    if payload["state_version"] != CURRENT_STATE_VERSION:
        raise CheckFailure("snapshot does not stamp the current version")

    newer = dict(payload, state_version=CURRENT_STATE_VERSION + 1)
    try:
        negotiate(newer)
        raise CheckFailure("a newer state_version was accepted")
    except StateVersionError:
        pass
    ancient = dict(payload, state_version=0)
    try:
        negotiate(ancient)
        raise CheckFailure("an unmigratable older version was accepted")
    except StateVersionError:
        pass
    if negotiate(dict(payload)) != payload:
        raise CheckFailure("the v1->v1 no-op migration altered the payload")

    poisoned = dict(payload, state=dict(payload["state"],
                                        tick_s=float("inf")))
    try:
        validate_payload(poisoned)
        raise CheckFailure("a non-finite snapshot value passed validation")
    except StateValueError as error:
        if "tick_s" not in str(error):
            raise CheckFailure(
                "non-finite rejection does not name the offending path")
    return "newer/stale versions refused; v1->v1 hook is a no-op"


@check("state.wal_resume", family="state",
       layers=("state", "faults", "fleet"))
def state_wal_resume(ctx: AuditContext) -> str:
    """An interrupted journaled sweep resumes into a journal
    byte-identical to an uninterrupted run's and matches the
    monolithic sweep rows."""
    from ..faults.sweep import mtbf_sweep
    from ..state.points import chaos_grid
    from ..state.runner import SweepRunner, read_journal

    grid = chaos_grid(kinds=("tdx",), mtbf_grid_s=(None, 6.0),
                      num_requests=8)
    expect = mtbf_sweep(kinds=("tdx",), mtbf_grid_s=(None, 6.0),
                        num_requests=8)
    with tempfile.TemporaryDirectory() as tmp:
        straight = SweepRunner.create(Path(tmp) / "straight", grid)
        rows = straight.run()
        if [rows[i] for i in sorted(rows)] != expect:
            raise CheckFailure("journaled sweep rows diverge from "
                               "mtbf_sweep()")
        interrupted = SweepRunner.create(Path(tmp) / "resumed", grid)
        interrupted.run(max_points=1)
        resumed = SweepRunner.open(Path(tmp) / "resumed")
        resumed.run()
        straight_bytes = straight.results_path.read_bytes()
        resumed_bytes = resumed.results_path.read_bytes()
        if straight_bytes != resumed_bytes:
            raise CheckFailure(
                "resumed journal is not byte-identical to the "
                f"uninterrupted one ({len(resumed_bytes)} vs "
                f"{len(straight_bytes)} bytes)")
        # A SIGKILL mid-append tears at most the final line; that must
        # be recoverable, and recovery must not drop completed rows.
        with open(resumed.results_path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 99, "key": "to')
        records = read_journal(resumed.results_path)
        if len(records) != len(expect):
            raise CheckFailure("torn-tail recovery lost completed rows")
    return f"{len(expect)}-point journal resumes byte-identically"


#: Invocation log of the deliberately pathological point runner below.
_POISON_CALLS: list[int] = []


@point_runner("audit_poison")
def _audit_poison_point(params: dict, context) -> dict:
    """A grid point that always crashes — chaos for the sweep runner."""
    _POISON_CALLS.append(1)
    raise RuntimeError("deliberately pathological grid point")


@check("state.quarantine_isolation", family="state",
       layers=("state", "faults"))
def state_quarantine_isolation(ctx: AuditContext) -> str:
    """A pathological point is retried with the seeded deterministic
    backoff, quarantined, and degrades the sweep instead of killing
    it; resume skips completed and quarantined points alike."""
    from ..state.runner import GridPoint, SweepRunner, SweepSpec

    healthy = {"kind": "tdx", "mtbf_s": None, "num_requests": 6,
               "rate_rps": 2.0, "mean_prompt": 64, "mean_output": 16,
               "replicas": 1, "seed": 7, "slo_ttft_s": 2.0,
               "timeout_s": 20.0, "horizon_s": 40.0}
    spec = SweepSpec(points=(
        GridPoint(0, "ok_before", "chaos_mtbf", dict(healthy)),
        GridPoint(1, "poison", "audit_poison", {}),
        GridPoint(2, "ok_after", "chaos_mtbf", dict(healthy, seed=8)),
    ), max_attempts=2, retry_seed=5)

    del _POISON_CALLS[:]
    sleeps: list[float] = []
    with tempfile.TemporaryDirectory() as tmp:
        runner = SweepRunner.create(Path(tmp) / "run", spec)
        rows = runner.run(sleep=sleeps.append)
        if sorted(rows) != [0, 2]:
            raise CheckFailure(
                f"healthy points did not complete around the poison one "
                f"(rows: {sorted(rows)})")
        bad = runner.quarantined()
        if list(bad) != [1] or bad[1]["attempts"] != 2 \
                or "RuntimeError" not in bad[1]["error"]:
            raise CheckFailure(f"poison point not quarantined: {bad}")
        if len(_POISON_CALLS) != 2:
            raise CheckFailure(
                f"expected exactly max_attempts=2 poison attempts, saw "
                f"{len(_POISON_CALLS)}")
        expected = RetryPolicy(timeout_s=1.0, max_attempts=2,
                               seed=5).backoff_s(1, 1)
        if sleeps != [expected]:
            raise CheckFailure(
                f"retry backoff not the seeded RetryPolicy delay "
                f"(slept {sleeps}, expected [{expected!r}])",
                deltas={"backoff_s": sleeps[0] if sleeps else -1.0})
        # Resume must skip the quarantined point, not retry it forever.
        del _POISON_CALLS[:]
        reopened = SweepRunner.open(Path(tmp) / "run")
        if reopened.pending():
            raise CheckFailure("resume re-queued completed or "
                               "quarantined points")
        reopened.run(sleep=sleeps.append)
        if _POISON_CALLS:
            raise CheckFailure("resume re-ran a quarantined point")
    return "poison point quarantined after 2 seeded-backoff attempts"
