"""Named-check registry for the invariant audit subsystem.

Every audit check is a plain function registered under a dotted name
with the :func:`check` decorator, carrying a *family* (how it validates:
``differential``, ``metamorphic`` or ``golden``), a *severity* and a set
of *layer* tags (which subsystems it exercises).  The registry is the
single source of truth consumed by the runner (:mod:`.runner`), the CLI
(``scripts/audit.py``) and the pytest adapter
(``tests/validate/test_audit_checks.py``) — a check registered here is
automatically an audit item *and* a tier-1 test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

#: The validation strategies the audit layer ships.  ``chaos`` checks
#: prove fault-injection invariants: conservation of requests, billing
#: bounds, deterministic replay, and zero-fault bit-identity.  ``state``
#: checks prove checkpoint/restore parity: mid-run snapshot -> restore
#: -> completion is bit-identical to never having stopped, and the
#: write-ahead sweep journal resumes byte-identically.  ``tenancy``
#: checks prove the multi-tenant serving plane: WFQ/FCFS engine
#: parity, exact billing partition, per-tenant request conservation,
#: weighted-fairness ordering, shed-priority parity, and WFQ-armed
#: snapshot resume.  ``attest`` checks prove the phased confidential
#: boot lifecycle: phase conservation, legacy-constant parity, engine
#: parity with phased boots, and mid-boot snapshot-resume parity.
FAMILIES = ("differential", "metamorphic", "golden", "chaos", "state",
            "tenancy", "attest")

#: ``blocker`` checks gate every run; ``warn`` checks gate only
#: ``--strict`` runs (statistical or known-loose invariants).
SEVERITIES = ("blocker", "warn")


class CheckFailure(AssertionError):
    """An audit check failed.

    Args:
        message: Human-readable account of the violated invariant.
        deltas: Optional measured quantities (name -> value) recorded in
            the :class:`~repro.validate.runner.CheckResult`.
    """

    def __init__(self, message: str,
                 deltas: dict[str, float] | None = None) -> None:
        super().__init__(message)
        self.deltas = dict(deltas or {})


class CheckSkip(Exception):
    """Raised by a check that cannot run in this environment/config."""


@dataclass(frozen=True)
class CheckSpec:
    """One registered audit check.

    Attributes:
        name: Dotted id, conventionally ``<layer>.<what>``.
        family: One of :data:`FAMILIES`.
        layers: Subsystem tags (``llm``, ``engine``, ``memsim``, ...).
        severity: One of :data:`SEVERITIES`.
        description: First line of the check's docstring.
        func: The check body; receives an ``AuditContext``, returns an
            optional detail string, raises :class:`CheckFailure` /
            :class:`CheckSkip` / any exception on failure.
    """

    name: str
    family: str
    layers: tuple[str, ...]
    severity: str
    description: str
    func: Callable = field(compare=False)


_CHECKS: dict[str, CheckSpec] = {}


def check(name: str, *, family: str, layers: tuple[str, ...] = (),
          severity: str = "blocker") -> Callable:
    """Register a function as a named audit check.

    Raises:
        ValueError: On duplicate names or unknown family/severity.
    """
    if family not in FAMILIES:
        raise ValueError(f"family must be one of {FAMILIES}, got {family!r}")
    if severity not in SEVERITIES:
        raise ValueError(
            f"severity must be one of {SEVERITIES}, got {severity!r}")
    if not name or "." not in name:
        raise ValueError(f"check name must be dotted, got {name!r}")

    def register(func: Callable) -> Callable:
        if name in _CHECKS:
            raise ValueError(f"duplicate check name {name!r}")
        description = (func.__doc__ or name).strip().splitlines()[0]
        _CHECKS[name] = CheckSpec(name=name, family=family,
                                  layers=tuple(layers), severity=severity,
                                  description=description, func=func)
        return func

    return register


def all_checks() -> dict[str, CheckSpec]:
    """Every registered check, by name (a copy; mutation-safe)."""
    return dict(_CHECKS)


def checks_matching(families: tuple[str, ...] | None = None,
                    layers: tuple[str, ...] | None = None,
                    names: tuple[str, ...] | None = None) -> list[CheckSpec]:
    """Registered checks filtered by family, layer tag and name substring.

    All filters are conjunctive; ``names`` entries match as substrings so
    ``--check parity`` selects every parity check.
    """
    selected = []
    for spec in _CHECKS.values():
        if families and spec.family not in families:
            continue
        if layers and not set(layers) & set(spec.layers):
            continue
        if names and not any(fragment in spec.name for fragment in names):
            continue
        selected.append(spec)
    return sorted(selected, key=lambda spec: (spec.family, spec.name))


def unregister(name: str) -> None:
    """Remove a check (test helper; unknown names are ignored)."""
    _CHECKS.pop(name, None)
