"""Shared execution context for audit checks.

Checks receive one :class:`AuditContext` per audit run.  It centralises

* the tolerances every family compares against (documented here, in one
  place, instead of scattered magic numbers),
* memoized simulation/serving helpers so checks that exercise the same
  ``Deployment x ModelConfig x workload`` tuples share work within a run
  (the same pattern the benchmark suite uses),
* golden-snapshot configuration (directory and ``--regen`` mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..core.experiment import cpu_deployment, gpu_deployment
from ..engine.placement import Deployment, Workload
from ..engine.simulator import GenerationResult, simulate_generation
from ..llm.config import LLAMA2_7B, tiny_llama
from ..llm.datatypes import BFLOAT16
from ..serving.scheduler import (
    ContinuousBatchingScheduler,
    ServingReport,
    poisson_stream,
)

#: Default location of the committed golden snapshots.
GOLDEN_DIR = Path(__file__).parent / "golden_data"


@dataclass(frozen=True)
class Tolerances:
    """Comparison tolerances used across the check families.

    Attributes:
        engine_parity_rel: Max relative error between the vectorized and
            reference-loop decode engines (they share the same algebra,
            so only float reassociation noise is allowed).
        flops_gemm_rel: Analytical GEMM FLOPs vs the numpy reference
            pass's recorded matmul shapes (exact formulas; float noise).
        attention_ratio_band: Allowed analytical/recorded attention FLOP
            ratio in prefill — the analytical model costs causal-aware
            kernels (~half the dense matmul) while the reference executes
            the full score matrix, so the ratio sits near 0.5.
        golden_rel: Default relative drift allowed against a golden
            snapshot (simulations are deterministic; this only absorbs
            platform/numpy float differences).
        monotonic_slack_rel: Relative counter-movement tolerated by the
            monotonicity checks (pure float noise).
    """

    engine_parity_rel: float = 1e-9
    flops_gemm_rel: float = 1e-6
    attention_ratio_band: tuple[float, float] = (0.40, 0.65)
    golden_rel: float = 1e-4
    monotonic_slack_rel: float = 1e-9


class AuditContext:
    """Execution context handed to every check.

    Args:
        golden_dir: Snapshot directory (defaults to the committed
            ``repro/validate/golden_data``).
        regen: Golden checks rewrite their snapshot instead of comparing
            (the ``scripts/audit.py --regen`` path).
        tolerances: Override comparison tolerances.
    """

    def __init__(self, golden_dir: Path | None = None, regen: bool = False,
                 tolerances: Tolerances | None = None) -> None:
        self.golden_dir = Path(golden_dir) if golden_dir else GOLDEN_DIR
        self.regen = regen
        self.tol = tolerances or Tolerances()
        self._sim_cache: dict = {}
        self._serve_cache: dict = {}

    # -- canonical subjects ---------------------------------------------------

    #: Default model/dtype the checks audit (the paper's workhorse).
    model = LLAMA2_7B
    dtype = BFLOAT16

    @staticmethod
    def tiny_model():
        """A 2-layer toy architecture for numpy-reference checks."""
        return tiny_llama()

    @staticmethod
    def cpu(backend: str = "baremetal", **kwargs) -> Deployment:
        """Standard single-socket CPU deployment (EMR2 default)."""
        kwargs.setdefault("sockets_used", 1)
        return cpu_deployment(backend, **kwargs)

    @staticmethod
    def gpu(confidential: bool = False) -> Deployment:
        return gpu_deployment(confidential=confidential)

    def small_workload(self, **overrides) -> Workload:
        """The default audit workload: cheap but non-degenerate."""
        params = dict(model=self.model, dtype=self.dtype, batch_size=2,
                      input_tokens=128, output_tokens=24)
        params.update(overrides)
        return Workload(**params)

    # -- memoized execution ---------------------------------------------------

    def simulate(self, workload: Workload, deployment: Deployment,
                 **kwargs) -> GenerationResult:
        """Memoized :func:`simulate_generation` (shared across checks).

        Results are shared — treat them as read-only.
        """
        key = (workload, deployment, tuple(sorted(kwargs.items())))
        if key not in self._sim_cache:
            self._sim_cache[key] = simulate_generation(workload, deployment,
                                                       **kwargs)
        return self._sim_cache[key]

    def serve(self, backend: str = "baremetal", num_requests: int = 24,
              rate_per_s: float = 2.0, kv_capacity_tokens: int = 1024,
              max_batch: int = 8, seed: int = 7) -> ServingReport:
        """Memoized continuous-batching run on a constrained KV pool.

        The pool is sized to force preemptions so scheduler checks see
        the full admit/preempt/recompute lifecycle.
        """
        key = (backend, num_requests, rate_per_s, kv_capacity_tokens,
               max_batch, seed)
        if key not in self._serve_cache:
            requests = poisson_stream(num_requests, rate_per_s,
                                      mean_prompt=96, mean_output=48,
                                      seed=seed)
            scheduler = ContinuousBatchingScheduler(
                self.cpu(backend), self.model, self.dtype,
                kv_capacity_tokens=kv_capacity_tokens, max_batch=max_batch)
            report = scheduler.run(requests)
            self._serve_cache[key] = (requests, scheduler, report)
        return self._serve_cache[key][2]

    def serve_state(self, **kwargs):
        """(requests, scheduler, report) of the memoized serving run."""
        self.serve(**kwargs)
        key = (kwargs.get("backend", "baremetal"),
               kwargs.get("num_requests", 24), kwargs.get("rate_per_s", 2.0),
               kwargs.get("kv_capacity_tokens", 1024),
               kwargs.get("max_batch", 8), kwargs.get("seed", 7))
        return self._serve_cache[key]


@dataclass
class _DefaultContext:
    """Lazily constructed process-wide default context."""

    instance: AuditContext | None = field(default=None)


_DEFAULT = _DefaultContext()


def default_context() -> AuditContext:
    """A process-shared context (pytest adapter and ad-hoc use)."""
    if _DEFAULT.instance is None:
        _DEFAULT.instance = AuditContext()
    return _DEFAULT.instance
