"""Audit runner: executes registered checks and builds a report.

Modeled on the audit-runner pattern: every check runs in isolation, its
outcome (pass/fail/skip, measured deltas, duration) is captured in a
:class:`CheckResult`, and the :class:`AuditReport` aggregates them into
something a CLI can render, CI can gate on, and tests can assert on.
"""

from __future__ import annotations

import json
import time
import traceback
from dataclasses import asdict, dataclass

from .context import AuditContext, default_context
from .registry import CheckFailure, CheckSkip, CheckSpec, checks_matching

#: Check outcome states.
STATUSES = ("pass", "fail", "skip")


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one executed check."""

    name: str
    family: str
    layers: tuple[str, ...]
    severity: str
    status: str
    detail: str
    deltas: dict[str, float]
    duration_s: float

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CheckResult":
        data = dict(data)
        data["layers"] = tuple(data["layers"])
        return cls(**data)


@dataclass(frozen=True)
class AuditReport:
    """Aggregate outcome of an audit run."""

    results: tuple[CheckResult, ...]

    @property
    def counts(self) -> dict[str, int]:
        counts = {status: 0 for status in STATUSES}
        for result in self.results:
            counts[result.status] += 1
        return counts

    @property
    def failures(self) -> tuple[CheckResult, ...]:
        return tuple(r for r in self.results if r.status == "fail")

    def ok(self, strict: bool = True) -> bool:
        """Whether the run gates green.

        Args:
            strict: Fail on *any* failing check; otherwise only
                ``blocker``-severity failures gate.
        """
        if strict:
            return not self.failures
        return not any(r.severity == "blocker" for r in self.failures)

    def by_family(self) -> dict[str, tuple[CheckResult, ...]]:
        families: dict[str, list[CheckResult]] = {}
        for result in self.results:
            families.setdefault(result.family, []).append(result)
        return {name: tuple(results) for name, results in families.items()}

    def render(self, verbose: bool = False) -> str:
        """Human-readable report table."""
        lines = []
        marks = {"pass": "ok", "fail": "FAIL", "skip": "skip"}
        for family, results in sorted(self.by_family().items()):
            lines.append(f"[{family}]")
            for result in sorted(results, key=lambda r: r.name):
                line = (f"  {marks[result.status]:<4}  {result.name:<42} "
                        f"{result.duration_s * 1e3:7.1f} ms")
                if result.status != "pass" or verbose:
                    if result.detail:
                        line += f"  {result.detail}"
                lines.append(line)
        counts = self.counts
        total = len(self.results)
        lines.append(
            f"{total} checks: {counts['pass']} passed, "
            f"{counts['fail']} failed, {counts['skip']} skipped")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({"results": [r.to_dict() for r in self.results]},
                          indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AuditReport":
        data = json.loads(text)
        return cls(results=tuple(CheckResult.from_dict(entry)
                                 for entry in data["results"]))


def run_check(spec: CheckSpec, ctx: AuditContext | None = None) -> CheckResult:
    """Execute a single check, capturing its outcome."""
    ctx = ctx or default_context()
    started = time.perf_counter()
    status, detail, deltas = "pass", "", {}
    try:
        outcome = spec.func(ctx)
        detail = outcome if isinstance(outcome, str) else ""
    except CheckSkip as skip:
        status, detail = "skip", str(skip)
    except CheckFailure as failure:
        status, detail, deltas = "fail", str(failure), failure.deltas
    except Exception as error:  # noqa: BLE001 - a crash is a failing check
        status = "fail"
        detail = (f"{type(error).__name__}: {error} "
                  f"({traceback.format_exc(limit=2).splitlines()[-2].strip()})")
    return CheckResult(name=spec.name, family=spec.family, layers=spec.layers,
                       severity=spec.severity, status=status, detail=detail,
                       deltas={k: float(v) for k, v in deltas.items()},
                       duration_s=time.perf_counter() - started)


def run_audit(families: tuple[str, ...] | None = None,
              layers: tuple[str, ...] | None = None,
              names: tuple[str, ...] | None = None,
              ctx: AuditContext | None = None) -> AuditReport:
    """Run every registered check matching the filters.

    Raises:
        ValueError: If the filters select no checks (catches typos).
    """
    specs = checks_matching(families=families, layers=layers, names=names)
    if not specs:
        raise ValueError(
            f"no checks match families={families} layers={layers} "
            f"names={names}")
    ctx = ctx or default_context()
    return AuditReport(results=tuple(run_check(spec, ctx) for spec in specs))
