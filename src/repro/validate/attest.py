"""Phased-boot / attestation-tax audit checks (the ``attest`` family).

The phased cold-start lifecycle (:mod:`repro.tee.boot` layered under
:class:`repro.fleet.replica.Replica`) replaces the opaque
``boot_latency_s`` constant with a five-phase confidential boot —
PROVISIONING → ATTESTING → KEY_RELEASE → MODEL_DECRYPT → WEIGHT_LOAD —
whose sum *is* the boot latency.  Its acceptance contract:

* ``attest.boot_phase_conservation`` — phase durations sum exactly to
  the boot latency, schedule windows are contiguous, non-overlapping
  and end exactly at readiness, every sampled instant lands in exactly
  one phase (zero-length phases own no instants), and the
  restart-from-phase arithmetic telescopes.
* ``attest.legacy_constant_parity`` — a fleet armed with degenerate
  :func:`~repro.tee.boot.constant_profile` sequences is bit-identical
  to the legacy constant path: zero-boot fixed fleets (fault-free and
  faulted) and autoscaled scale-ups paying the same constant through
  either mechanism produce identical reports.
* ``attest.engine_parity`` — phased boots, re-attestation faults and
  autoscaling produce identical OutcomeLogs on the stepped and event
  engines (extends ``fleet.event_core_parity`` to the boot path).
* ``attest.mid_boot_resume_parity`` — a fleet snapshotted with a
  replica in *each* of the five boot phases (including after a
  mid-boot attestation restart) restores bit-identically on both
  engines.
* ``golden.attest_tax`` — committed snapshot of the attestation-tax
  table: $/Mtok and p99 TTFT deltas of phased vs legacy boots on the
  capacity and chaos headlines, plus the per-phase boot breakdown.
"""

from __future__ import annotations

import json

from ..faults import FaultEvent, FaultSchedule, RetryPolicy, mtbf_schedule
from ..fleet import (
    AutoscalerConfig,
    FleetSimulator,
    ReactiveAutoscaler,
    fixed_fleet,
    poisson_arrivals,
    replica_spec,
)
from ..fleet.table import RequestTable
from ..llm.config import LLAMA2_7B, LLAMA2_70B
from ..llm.datatypes import BFLOAT16, INT8
from ..tee.boot import (
    BOOT_PHASES,
    DEFAULT_PROFILES,
    PHASE_LIVE,
    PROVISIONING,
    attest_tax_sweep,
    boot_breakdown,
    boot_profile,
    constant_profile,
)
from .context import AuditContext
from .golden import _golden
from .registry import CheckFailure, check

#: Fault mix whose repair paths are boot-profile-independent (an
#: ``attestation_failure`` outage intentionally differs: legacy pays
#: the drawn duration, phased pays the re-attestation remainder).
_BOOT_NEUTRAL_KINDS = (("crash", 0.4), ("hang", 0.2), ("slowdown", 0.2),
                       ("boot_failure", 0.2))


def _phased_spec(kind: str, **overrides):
    overrides.setdefault("max_batch", 8)
    overrides.setdefault("kv_capacity_tokens", 16384)
    return replica_spec(kind, boot=boot_profile(kind), **overrides)


def _stream(requests: int = 24, rate_per_s: float = 1.2, seed: int = 11):
    return poisson_arrivals(requests, rate_per_s=rate_per_s,
                            mean_prompt=128, mean_output=48, seed=seed)


def _requests(engine: str, **kwargs):
    stream = _stream(**kwargs)
    if engine == "event":
        return RequestTable.from_requests(stream)
    return stream


def _compare(label: str, reference: dict, candidate: dict) -> None:
    if reference != candidate:
        diverged = [key for key in reference
                    if reference[key] != candidate.get(key)]
        raise CheckFailure(f"{label}: reports diverged in {diverged[:4]}")


@check("attest.boot_phase_conservation", family="attest",
       layers=("tee", "fleet"))
def boot_phase_conservation(ctx: AuditContext) -> str:
    """Phase durations sum exactly to boot latency and partition the
    boot window: contiguous, non-overlapping, one phase per instant."""
    models = ((LLAMA2_7B, BFLOAT16), (LLAMA2_70B, INT8))
    instants = 0
    for kind, profile in sorted(DEFAULT_PROFILES.items()):
        for model, dtype in models:
            sequence = profile.sequence(model, dtype)
            if sum(sequence.durations) != sequence.total_s:
                raise CheckFailure(
                    f"{kind}/{model.name}: durations sum to "
                    f"{sum(sequence.durations)!r}, total_s is "
                    f"{sequence.total_s!r}")
            ready = 100.0
            windows = sequence.schedule(ready)
            # The first start is exact by construction; the last end
            # accumulates the durations forward, so it closes on
            # ``ready`` only to float ulps.
            if windows[0][1] != ready - sequence.total_s \
                    or abs(windows[-1][2] - ready) > 1e-9:
                raise CheckFailure(
                    f"{kind}/{model.name}: schedule does not span "
                    f"[ready - total, ready)")
            for (_, _, prev_end), (_, start, end) in zip(windows,
                                                         windows[1:]):
                if start != prev_end or end < start:
                    raise CheckFailure(
                        f"{kind}/{model.name}: windows not contiguous "
                        f"and ordered")
            # The restart arithmetic telescopes over the durations:
            # re-entering at phase i saves exactly the phases before it
            # (to float ulps — suffix sums round differently than the
            # running difference).
            if sequence.remaining_from(PROVISIONING) != sequence.total_s:
                raise CheckFailure(
                    f"{kind}/{model.name}: a provisioning restart does "
                    f"not pay the full boot")
            for phase, later, duration in zip(BOOT_PHASES, BOOT_PHASES[1:],
                                              sequence.durations):
                step = (sequence.remaining_from(phase)
                        - sequence.remaining_from(later))
                if abs(step - duration) > 1e-9:
                    raise CheckFailure(
                        f"{kind}/{model.name}: remaining_from telescopes "
                        f"{step!r} across {phase}, duration is "
                        f"{duration!r}")
            # Every sampled instant lands in exactly the phase whose
            # window contains it; zero-length phases own no instants.
            # Samples sit a hair inside each window: the schedule
            # accumulates durations forward while phase_at walks them
            # backward, so exact boundaries differ by float ulps.
            start = ready - sequence.total_s
            samples = []
            for _, begin, end in windows:
                if end - begin > 1e-5:
                    samples += [begin + 1e-6, (begin + end) / 2,
                                end - 1e-6]
            for instant in samples:
                owners = [phase for phase, begin, end in windows
                          if begin <= instant < end]
                if len(owners) != 1:
                    raise CheckFailure(
                        f"{kind}/{model.name}: t={instant:.3f} owned by "
                        f"{owners}")
                if sequence.phase_at(instant, ready) != owners[0]:
                    raise CheckFailure(
                        f"{kind}/{model.name}: phase_at(t={instant:.3f}) "
                        f"= {sequence.phase_at(instant, ready)}, window "
                        f"says {owners[0]}")
                instants += 1
            if sequence.phase_at(ready, ready) != PHASE_LIVE:
                raise CheckFailure(f"{kind}: not live at readiness")
            if sequence.phase_at(start - 7.5, ready) != PROVISIONING:
                raise CheckFailure(
                    f"{kind}: penalty-stretched instant did not park "
                    f"in provisioning")
    return (f"{instants} instants over {len(DEFAULT_PROFILES)} profiles "
            f"x {len(models)} models each land in exactly one phase")


@check("attest.legacy_constant_parity", family="attest",
       layers=("tee", "fleet"))
def legacy_constant_parity(ctx: AuditContext) -> str:
    """A constant_profile-armed fleet is bit-identical to the legacy
    boot-constant path, fault-free, faulted and through autoscaling."""
    compared = 0
    legacy = replica_spec("tdx", max_batch=8, kv_capacity_tokens=16384)
    armed = replica_spec("tdx", max_batch=8, kv_capacity_tokens=16384,
                         boot=constant_profile("tdx", 0.0))
    faulted = {
        "faults": mtbf_schedule([0, 1], mtbf_s=9.0, horizon_s=30.0,
                                seed=5, kinds=_BOOT_NEUTRAL_KINDS),
        "retry_policy": RetryPolicy(timeout_s=25.0, max_attempts=4, seed=5),
    }
    for engine in ("stepped", "event"):
        for label, kwargs in (("fault-free", {}), ("faulted", faulted)):
            a = fixed_fleet(legacy, 2, engine=engine,
                            **kwargs).run(_requests(engine))
            b = fixed_fleet(armed, 2, engine=engine,
                            **kwargs).run(_requests(engine))
            _compare(f"{engine}/{label} zero-boot", a.to_dict(), b.to_dict())
            compared += 1
    # Scale-ups: the autoscaler constant vs the same constant expressed
    # as a degenerate boot profile on the scale spec.
    config = AutoscalerConfig(min_replicas=1, max_replicas=4,
                              scale_up_load=2.0, scale_down_load=0.5,
                              cooldown_s=4.0, boot_latency_s=9.0)
    scaled_armed = replica_spec("tdx", max_batch=8,
                                kv_capacity_tokens=16384,
                                boot=constant_profile("tdx", 9.0))
    reports = []
    for engine in ("stepped", "event"):
        pair = []
        for scale_spec in (legacy, scaled_armed):
            sim = FleetSimulator(
                [legacy], autoscaler=ReactiveAutoscaler(config),
                scale_spec=scale_spec, engine=engine)
            pair.append(sim.run(_requests(engine, requests=36,
                                          rate_per_s=6.0, seed=3)))
        _compare(f"{engine} autoscaled constant", pair[0].to_dict(),
                 pair[1].to_dict())
        reports.append(pair[0])
        compared += 1
    if not any(report.scale_events for report in reports):
        raise CheckFailure("autoscaled regime never scaled; check is "
                           "vacuous")
    return f"{compared} legacy/constant-profile fleet pairs bit-identical"


def _phased_regimes():
    """(label, fleet-factory-kwargs) grid: boots x faults x scaling."""
    faulted = {
        "faults": mtbf_schedule([0, 1], mtbf_s=10.0, horizon_s=45.0, seed=7),
        "retry_policy": RetryPolicy(timeout_s=30.0, max_attempts=4, seed=7),
    }
    return (
        ("tdx/fault-free", _phased_spec("tdx"), {}),
        ("tdx/faulted", _phased_spec("tdx"), faulted),
        ("cgpu/faulted", _phased_spec("cgpu"), faulted),
    )


@check("attest.engine_parity", family="attest",
       layers=("tee", "fleet", "faults"))
def engine_parity(ctx: AuditContext) -> str:
    """Phased boots, re-attestation faults and autoscaling are
    bit-identical between the stepped and event engines."""
    compared = 0
    for label, spec, kwargs in _phased_regimes():
        stepped = fixed_fleet(spec, 2, engine="stepped",
                              **kwargs).run(_requests("stepped"))
        event = fixed_fleet(spec, 2, engine="event",
                            **kwargs).run(_requests("event"))
        _compare(label, stepped.to_dict(), event.to_dict())
        if not stepped.outcomes:
            raise CheckFailure(f"{label}: no outcomes; check is vacuous")
        compared += len(stepped.outcomes)
    # Autoscaled: scale-ups clone the phased spec, so every scale-up
    # pays the full phase sequence instead of the config constant.
    config = AutoscalerConfig(min_replicas=1, max_replicas=3,
                              scale_up_load=2.0, scale_down_load=0.5,
                              cooldown_s=4.0)
    pair = []
    for engine in ("stepped", "event"):
        sim = FleetSimulator(
            [_phased_spec("tdx")],
            autoscaler=ReactiveAutoscaler(config), engine=engine)
        pair.append(sim.run(_requests(engine, requests=36, rate_per_s=6.0,
                                      seed=3)))
    _compare("tdx/autoscaled", pair[0].to_dict(), pair[1].to_dict())
    if not pair[0].scale_events:
        raise CheckFailure("autoscaled phased regime never scaled; "
                           "check is vacuous")
    compared += len(pair[0].outcomes)
    return (f"{compared} request timelines bit-identical across "
            f"4 phased-boot regimes")


@check("attest.mid_boot_resume_parity", family="attest",
       layers=("tee", "fleet", "state"))
def mid_boot_resume_parity(ctx: AuditContext) -> str:
    """A fleet snapshotted with a replica in each boot phase — and
    after a mid-boot attestation restart — restores bit-identically."""
    spec = _phased_spec("tdx")
    sequence = spec.boot_sequence()
    # Deterministic mid-boot faults: an attestation failure while
    # replica 0 is still booting (restart from ATTESTING) and a crash
    # on replica 1 that reboots into the re-attestation path.
    faults = FaultSchedule((
        FaultEvent(time_s=12.0, kind="attestation_failure", replica_id=0,
                   duration_s=6.0),
        FaultEvent(time_s=6.0, kind="crash", replica_id=1,
                   restart_after_s=4.0),
    ))
    retry = RetryPolicy(timeout_s=60.0, max_attempts=4, seed=3)
    restored = 0
    for engine in ("stepped", "event"):
        def fleet():
            return fixed_fleet(spec, 2, faults=faults, retry_policy=retry,
                               engine=engine)

        requests = _requests(engine, requests=20, rate_per_s=0.8, seed=5)
        baseline = fleet().run(requests).to_dict()
        running = fleet()
        running.begin_run(requests)
        snapshots: list[tuple[str, dict]] = []
        seen: set[str] = set()
        while running.run_active:
            running.run_tick()
            now = running.run_clock_s
            for replica in running.replicas:
                phase = replica.boot_phase(now)
                if phase is not None and phase not in seen:
                    seen.add(phase)
                    snapshots.append(
                        (phase, json.loads(json.dumps(running.to_state()))))
        missing = set(BOOT_PHASES) - seen
        if missing:
            raise CheckFailure(
                f"{engine}: no snapshot captured in phases "
                f"{sorted(missing)}; check is vacuous")
        if running.finish_run().to_dict() != baseline:
            raise CheckFailure(
                f"{engine}: taking the snapshots perturbed the run")
        for phase, payload in snapshots:
            fresh = fleet()
            fresh.from_state(payload)
            while fresh.run_active:
                fresh.run_tick()
            _compare(f"{engine} resume from {phase}", baseline,
                     fresh.finish_run().to_dict())
            restored += 1
    return (f"{restored} mid-boot snapshots (all {len(BOOT_PHASES)} "
            f"phases x 2 engines) restore exactly; reattest window "
            f"{sequence.remaining_from(BOOT_PHASES[1]):.2f}s exercised")


@check("attest.boot_scaling_metamorphic", family="attest",
       layers=("tee",))
def boot_scaling_metamorphic(ctx: AuditContext) -> str:
    """Boot durations respond to their inputs the way the model says:
    byte-proportional phases scale exactly with weight bytes, fixed
    phases never move, and every latency term adds only to its own
    phase."""
    verified = 0
    for kind in ("tdx", "sgx", "cgpu"):
        profile = DEFAULT_PROFILES[kind]
        base = profile.phase_durations(1e9)
        # Power-of-two byte scaling is exact in IEEE-754: decrypt and
        # load double, the fixed phases are bit-identical.
        doubled = profile.phase_durations(2e9)
        if doubled[3] != 2 * base[3] or doubled[4] != 2 * base[4]:
            raise CheckFailure(
                f"{kind}: byte-proportional phases did not scale 2x")
        if doubled[:3] != base[:3]:
            raise CheckFailure(f"{kind}: fixed phases moved with bytes")
        # int8 weights are half the bf16 bytes: the sequence builder
        # inherits the same proportionality through dtype.
        bf16 = profile.sequence(LLAMA2_7B, BFLOAT16)
        int8 = profile.sequence(LLAMA2_7B, INT8)
        if not (int8.duration_of(BOOT_PHASES[3])
                < bf16.duration_of(BOOT_PHASES[3])):
            raise CheckFailure(f"{kind}: int8 decrypt not cheaper")
        # Each override lands in exactly one phase of the sum.
        slower = boot_profile(kind, quote_s=profile.quote_s + 3.0)
        delta = (slower.sequence(LLAMA2_7B, BFLOAT16).total_s
                 - bf16.total_s)
        if abs(delta - 3.0) > 1e-9:
            raise CheckFailure(
                f"{kind}: +3s quote moved the total by {delta!r}")
        # A re-attestation is strictly cheaper than a cold boot, but
        # pays every confidential phase.
        reattest = bf16.remaining_from(BOOT_PHASES[1])
        if not (0 < reattest < bf16.total_s):
            raise CheckFailure(f"{kind}: reattest window out of bounds")
        if abs(reattest + bf16.duration_of(PROVISIONING)
               - bf16.total_s) > 1e-9:
            raise CheckFailure(
                f"{kind}: reattest does not exclude exactly provisioning")
        verified += 1
    return f"{verified} TEE profiles scale and compose as modeled"


# -- golden headline: the attestation-tax table -------------------------------

@_golden("attest_tax", "Attestation tax of phased confidential boots "
         "($/Mtok and p99 TTFT vs legacy, capacity + chaos headlines)",
         layers=("tee", "fleet"))
def attest_tax_series(ctx: AuditContext) -> dict[str, float]:
    series: dict[str, float] = {}
    for row in attest_tax_sweep():
        prefix = f"{row['kind']}_{row['scenario']}"
        for field, value in row.items():
            if field in ("kind", "scenario"):
                continue
            series[f"{prefix}_{field}"] = float(value)
    for row in boot_breakdown():
        for phase in BOOT_PHASES + ("total_s", "reattest_s"):
            series[f"boot_{row['kind']}_{phase}"] = float(row[phase])
    return series
