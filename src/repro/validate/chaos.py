"""Chaos audit checks: fault-injection invariants (family ``chaos``).

The resilience layer (:mod:`repro.faults`) must never change physics it
does not model: arming the chaos machinery with an empty schedule has
to reproduce the fault-free fleet bit-for-bit, and under any seeded
fault schedule the fleet must conserve requests (each one completed or
shed exactly once), never bill a dead instance, and replay
deterministically.  These checks pin all of that:

* ``chaos.zero_fault_twin`` (differential in spirit) — a chaos-armed
  run with an empty schedule is **bit-identical** to the fault-free
  simulator, fixed fleet and autoscaled alike.
* ``chaos.request_conservation`` — submitted == completed + shed with
  no duplicates, and routing counts reconcile with retries, across a
  grid of MTBF schedules.
* ``chaos.billing_bounds`` — billed seconds never exceed the
  provisioned window; crashes only ever shrink a bill.
* ``chaos.deterministic_replay`` — same seeds, same schedule: the
  report, the fault timeline, and the shed ledger are identical.
* ``chaos.backoff_discipline`` — retry delays are monotone
  non-decreasing per attempt and deterministic per seed.
* ``golden.chaos_mtbf`` — snapshot of the MTBF sweep: SLO attainment
  and $/Mtok degrading with failure rate for TDX and cGPU fleets.
"""

from __future__ import annotations

from ..faults import (
    FaultSchedule,
    RetryPolicy,
    mtbf_schedule,
    one_shot,
)
from ..faults.sweep import mtbf_sweep
from ..fleet import (
    AutoscalerConfig,
    FleetSimulator,
    ReactiveAutoscaler,
    fixed_fleet,
    poisson_arrivals,
    replica_spec,
)
from .context import AuditContext
from .golden import _golden
from .registry import CheckFailure, check


def _spec(kind: str = "tdx"):
    return replica_spec(kind, max_batch=16, kv_capacity_tokens=65536)


def _stream(n: int = 14, seed: int = 11):
    return poisson_arrivals(n, rate_per_s=4.0, mean_prompt=128,
                            mean_output=32, seed=seed)


@check("chaos.zero_fault_twin", family="chaos",
       layers=("faults", "fleet", "serving"))
def zero_fault_twin(ctx: AuditContext) -> str:
    """Chaos machinery armed with zero faults is bit-identical to the
    fault-free simulator (differential twin)."""
    cases = []
    stream = _stream()
    cases.append(("fixed/tdx",
                  fixed_fleet(_spec(), 2).run(stream),
                  fixed_fleet(_spec(), 2,
                              faults=FaultSchedule.empty()).run(stream)))
    cases.append(("fixed/cgpu",
                  fixed_fleet(_spec("cgpu"), 2).run(stream),
                  fixed_fleet(_spec("cgpu"), 2,
                              faults=FaultSchedule.empty()).run(stream)))

    def autoscaled(faults):
        scaler = ReactiveAutoscaler(AutoscalerConfig(
            max_replicas=4, scale_up_load=3.0, scale_down_load=0.5,
            cooldown_s=2.0, boot_latency_s=5.0))
        return FleetSimulator([_spec()], autoscaler=scaler,
                              faults=faults).run(stream)
    cases.append(("autoscaled/tdx", autoscaled(None),
                  autoscaled(FaultSchedule.empty())))

    for label, bare, armed in cases:
        bare_dict, armed_dict = bare.to_dict(), armed.to_dict()
        if bare_dict != armed_dict:
            diverged = [key for key in bare_dict
                        if bare_dict[key] != armed_dict.get(key)]
            raise CheckFailure(
                f"{label}: zero-fault chaos run diverged from the "
                f"fault-free baseline in {diverged[:4]}")
        # Bit-identical means float equality on the raw outcomes too,
        # not just the summary dict.
        for a, b in zip(bare.outcomes, armed.outcomes):
            if (a.first_token_s, a.finish_s) != (b.first_token_s,
                                                 b.finish_s):
                raise CheckFailure(
                    f"{label}: request {a.request.request_id} timeline "
                    f"diverged under the armed (empty) injector")
    return f"{len(cases)} configs bit-identical with the injector armed"


def _conservation_case(kind: str, seed: int, n: int):
    stream = _stream(n, seed=seed)
    schedule = mtbf_schedule([0, 1], mtbf_s=6.0, horizon_s=20.0, seed=seed)
    fleet = fixed_fleet(_spec(kind), 2, faults=schedule,
                        retry_policy=RetryPolicy(timeout_s=30.0,
                                                 max_attempts=3, seed=seed))
    return stream, fleet.run(stream)


@check("chaos.request_conservation", family="chaos",
       layers=("faults", "fleet", "serving"))
def chaos_request_conservation(ctx: AuditContext) -> str:
    """No request is lost or duplicated under fault schedules:
    submitted == completed + shed, each id exactly once."""
    checked = 0
    for kind, seed in (("tdx", 3), ("tdx", 9), ("cgpu", 5)):
        stream, report = _conservation_case(kind, seed, 12)
        completed = [o.request.request_id for o in report.outcomes]
        shed = [s.request.request_id for s in report.shed]
        if len(set(completed)) != len(completed):
            raise CheckFailure(f"{kind}/seed{seed}: duplicated completion")
        if set(completed) & set(shed):
            raise CheckFailure(
                f"{kind}/seed{seed}: request both completed and shed")
        if sorted(completed + shed) != [r.request_id for r in stream]:
            raise CheckFailure(
                f"{kind}/seed{seed}: submitted != completed + shed "
                f"({len(completed)} + {len(shed)} vs {len(stream)})")
        # Routing counts reconcile: every submission is either a first
        # attempt of a request that ever routed, or a retry.
        routed_once = len(completed) + sum(1 for s in report.shed
                                           if s.attempts > 0)
        submissions = sum(u.requests_served for u in report.replicas)
        if submissions != routed_once + report.retries:
            raise CheckFailure(
                f"{kind}/seed{seed}: replica routing counts "
                f"({submissions}) != first-routes ({routed_once}) + "
                f"retries ({report.retries})")
        checked += 1
    return f"{checked} fault schedules conserve all requests"


@check("chaos.billing_bounds", family="chaos",
       layers=("faults", "fleet", "cost"))
def chaos_billing_bounds(ctx: AuditContext) -> str:
    """Billed seconds never exceed the provisioned window, a released
    (unrecoverable) crash stops the meter, and waste attribution
    reconciles with the bill."""
    reports = [_conservation_case(kind, seed, 12)[1]
               for kind, seed in (("tdx", 3), ("cgpu", 5))]
    # One permanent crash (no scheduled restart): the instance is
    # released mid-run and must not be billed past its death.
    stream = _stream(12)
    released = fixed_fleet(
        _spec(), 2, faults=one_shot("crash", 1, 1.5),
        retry_policy=RetryPolicy(seed=0)).run(stream)
    reports.append(released)

    for report in reports:
        for usage in report.replicas:
            window_s = max(0.0, report.end_s - usage.provisioned_s)
            billed_s = usage.billed_hours * 3600.0
            if billed_s < 0:
                raise CheckFailure(f"replica {usage.replica_id}: "
                                   f"negative bill")
            if billed_s > window_s * (1 + 1e-12) + 1e-9:
                raise CheckFailure(
                    f"replica {usage.replica_id} ({usage.kind}): billed "
                    f"{billed_s:.3f}s exceeds provisioned window "
                    f"{window_s:.3f}s",
                    deltas={"billed_s": billed_s, "window_s": window_s})
            if usage.crashes and usage.retired_s is not None:
                released_window_s = max(0.0, usage.retired_s
                                        - usage.provisioned_s)
                if billed_s > released_window_s * (1 + 1e-12) + 1e-9:
                    raise CheckFailure(
                        f"replica {usage.replica_id}: billed past its "
                        f"unrecovered crash at t={usage.retired_s:g}s")
        total = report.goodput_cost_usd + report.wasted_cost_usd
        if abs(total - report.cost_usd) > 1e-9 * max(1.0, report.cost_usd):
            raise CheckFailure("cost attribution does not sum to the bill")
    dead = next(u for u in reports[-1].replicas if u.crashes)
    if dead.billed_hours * 3600.0 >= reports[-1].end_s - 1e-9:
        raise CheckFailure("released replica billed to end of run")
    return f"{len(reports)} fleets billed within provisioned windows"


@check("chaos.deterministic_replay", family="chaos",
       layers=("faults", "fleet"))
def chaos_deterministic_replay(ctx: AuditContext) -> str:
    """Same seeds + schedule: identical report, fault timeline and
    shed ledger across two runs."""
    _, first = _conservation_case("tdx", 3, 12)
    _, second = _conservation_case("tdx", 3, 12)
    if first.to_dict() != second.to_dict():
        raise CheckFailure("chaos report not reproducible across runs")
    if ([a.to_dict() for a in first.fault_events]
            != [a.to_dict() for a in second.fault_events]):
        raise CheckFailure("applied fault timeline diverged across runs")
    if ([s.to_dict() for s in first.shed]
            != [s.to_dict() for s in second.shed]):
        raise CheckFailure("shed ledger diverged across runs")
    return (f"{len(first.fault_events)} faults, {first.retries} retries "
            f"replayed identically")


@check("chaos.backoff_discipline", family="chaos", layers=("faults",))
def chaos_backoff_discipline(ctx: AuditContext) -> str:
    """Retry backoff is monotone non-decreasing per attempt and
    deterministic per (seed, request)."""
    policy = RetryPolicy(timeout_s=10.0, max_attempts=6,
                         backoff_base_s=0.5, jitter_frac=0.25, seed=13)
    twin = RetryPolicy(timeout_s=10.0, max_attempts=6,
                       backoff_base_s=0.5, jitter_frac=0.25, seed=13)
    for request_id in range(40):
        delays = [policy.backoff_s(request_id, retry)
                  for retry in range(1, 6)]
        if any(b < a for a, b in zip(delays, delays[1:])):
            raise CheckFailure(
                f"request {request_id}: backoff not monotone: {delays}")
        if delays != [twin.backoff_s(request_id, retry)
                      for retry in range(1, 6)]:
            raise CheckFailure(
                f"request {request_id}: backoff not deterministic")
    return "40 requests x 5 retries monotone and reproducible"


# -- chaos golden snapshot ----------------------------------------------------

@_golden("chaos_mtbf",
         "Chaos MTBF sweep: SLO attainment and $/Mtok vs failure rate",
         layers=("faults", "fleet", "cost"))
def chaos_mtbf(ctx: AuditContext) -> dict[str, float]:
    rows = mtbf_sweep()
    series: dict[str, float] = {}
    for row in rows:
        label = ("inf" if row["mtbf_s"] is None
                 else f"{row['mtbf_s']:g}s")
        prefix = f"{row['kind']}/mtbf_{label}"
        series[f"{prefix}/slo_attainment"] = row["slo_attainment"]
        if row["usd_per_mtok"] is not None:
            series[f"{prefix}/usd_per_mtok"] = row["usd_per_mtok"]
        series[f"{prefix}/retries"] = float(row["retries"])
        series[f"{prefix}/wasted_tokens"] = float(row["wasted_tokens"])
        series[f"{prefix}/shed"] = float(row["shed"])
    return series
