"""Differential checks: independent code paths must agree.

Every engine, cache and parallelism feature in the repository has a
slower, simpler twin: the vectorized decode engine has the scalar
reference loop, memo caches have cold recomputation, process-pool sweeps
have serial execution, the analytical FLOP/byte formulas have the numpy
mini-Llama that actually executes the matmuls, and the closed-form
TLB/EPC models have functional simulators.  These checks pin each pair
together so an optimization can never silently drift from its ground
truth.
"""

from __future__ import annotations

import numpy as np

from ..engine.simulator import _working_sets, simulate_generation
from ..engine.vectorized import decode_cost_engine
from ..core.sweep import sweep_workload
from ..llm.graph import cached_decode_step_ops, decode_step_ops, prefill_ops
from ..llm.reference import FlopRecorder, ReferenceTransformer
from ..memo import clear_all_caches
from ..memsim.epc import EpcPager, paging_fraction, paging_fraction_vec
from ..memsim.pages import PAGE_4K
from ..memsim.tlb import (
    SetAssociativeTlb,
    streaming_miss_rate,
    streaming_miss_rate_vec,
)
from .context import AuditContext
from .registry import CheckFailure, check


def _max_rel_err(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.max(np.abs(a - b) / np.abs(b)))


@check("engine.vectorized_loop_parity", family="differential",
       layers=("engine", "llm"))
def vectorized_loop_parity(ctx: AuditContext) -> str:
    """Vectorized decode engine matches the scalar reference loop <1e-9."""
    worst = 0.0
    for backend, gpu in (("baremetal", False), ("tdx", False),
                         ("sgx", False), (None, True)):
        deployment = ctx.gpu(confidential=True) if gpu else ctx.cpu(backend)
        for batch in (1, 8):
            workload = ctx.small_workload(batch_size=batch)
            loop = ctx.simulate(workload, deployment, context_stride=1,
                                engine="loop")
            vec = ctx.simulate(workload, deployment, context_stride=1,
                               engine="vectorized")
            worst = max(worst, _max_rel_err(vec.decode_clean_s,
                                            loop.decode_clean_s))
    if worst >= ctx.tol.engine_parity_rel:
        raise CheckFailure(
            f"engines diverge: max rel err {worst:.3e} >= "
            f"{ctx.tol.engine_parity_rel:.0e}", deltas={"max_rel_err": worst})
    return f"max rel err {worst:.2e}"


@check("engine.memo_bit_identity", family="differential",
       layers=("engine", "core"))
def memo_bit_identity(ctx: AuditContext) -> str:
    """Memoized step costs are bit-identical to cold-cache recomputation."""
    workload = ctx.small_workload()
    deployment = ctx.cpu("tdx")
    clear_all_caches()
    cold = simulate_generation(workload, deployment, seed=3)
    warm = simulate_generation(workload, deployment, seed=3)
    if not np.array_equal(cold.decode_clean_s, warm.decode_clean_s):
        raise CheckFailure("warm-cache decode trajectory differs from cold")
    if cold.prefill_s != warm.prefill_s:
        raise CheckFailure("warm-cache prefill cost differs from cold")
    if not np.array_equal(cold.decode_noisy_s, warm.decode_noisy_s):
        raise CheckFailure("warm-cache noisy trajectory differs from cold")
    return "cold == warm bitwise"


@check("engine.record_steps_invariance", family="differential",
       layers=("engine",))
def record_steps_invariance(ctx: AuditContext) -> str:
    """Toggling record_steps never perturbs the simulated times."""
    workload = ctx.small_workload()
    deployment = ctx.cpu("sgx")
    plain = ctx.simulate(workload, deployment, record_steps=False)
    traced = ctx.simulate(workload, deployment, record_steps=True)
    if not np.array_equal(plain.decode_clean_s, traced.decode_clean_s):
        raise CheckFailure("record_steps=True changed the decode trajectory")
    if traced.sample_decode_step is None or traced.prefill_step is None:
        raise CheckFailure("record_steps=True did not record steps")
    return "trajectories identical"


@check("engine.stride_subsampling_exact", family="differential",
       layers=("engine",))
def stride_subsampling_exact(ctx: AuditContext) -> str:
    """Strided decode costs equal the exact loop at every costed context."""
    workload = ctx.small_workload(output_tokens=32)
    deployment = ctx.cpu("tdx")
    exact = ctx.simulate(workload, deployment, context_stride=1)
    stride = 8
    coarse = ctx.simulate(workload, deployment, context_stride=stride)
    costed = np.arange(0, workload.output_tokens, stride)
    if not np.array_equal(coarse.decode_clean_s[costed],
                          exact.decode_clean_s[costed]):
        raise CheckFailure(
            f"stride={stride} trajectory differs from exact at its own "
            f"costed contexts")
    return f"stride={stride} exact at {len(costed)} costed contexts"


@check("sweep.parallel_serial_identity", family="differential",
       layers=("core", "engine"))
def parallel_serial_identity(ctx: AuditContext) -> str:
    """Process-pool sweeps merge to bit-identical serial results."""
    base = ctx.small_workload(input_tokens=32, output_tokens=8)
    deployments = {"baremetal": ctx.cpu("baremetal"), "tdx": ctx.cpu("tdx")}
    serial = sweep_workload("audit", base, deployments, "batch_size",
                            [1, 2, 3], parallel=False)
    pooled = sweep_workload("audit", base, deployments, "batch_size",
                            [1, 2, 3], parallel=True, max_workers=2)
    for value, outcome in serial.items():
        twin = pooled[value]
        for label, result in outcome.results.items():
            other = twin.results[label]
            if (result.prefill_s != other.prefill_s
                    or not np.array_equal(result.decode_clean_s,
                                          other.decode_clean_s)
                    or not np.array_equal(result.decode_noisy_s,
                                          other.decode_noisy_s)):
                raise CheckFailure(
                    f"parallel sweep differs at value={value} label={label}")
    return "3-point sweep x 2 deployments bit-identical"


@check("llm.prefill_flops_vs_reference", family="differential",
       layers=("llm",))
def prefill_flops_vs_reference(ctx: AuditContext) -> str:
    """Analytical prefill GEMM FLOPs match the executed numpy pass."""
    config = ctx.tiny_model()
    reference = ReferenceTransformer(config, seed=0)
    batch, seq = 2, 16
    rng = np.random.default_rng(0)
    ids = rng.integers(0, config.vocab_size, size=(batch, seq))
    recorder = FlopRecorder()
    reference.forward(ids, recorder=recorder)

    analytical: dict[str, float] = {}
    for op in prefill_ops(config, ctx.dtype, batch, seq):
        analytical[op.name] = analytical.get(op.name, 0.0) + op.flops

    for name in ("qkv_proj", "o_proj", "gate_up_proj", "down_proj"):
        rel = abs(analytical[name] - recorder.counts[name]) \
            / recorder.counts[name]
        if rel > ctx.tol.flops_gemm_rel:
            raise CheckFailure(
                f"{name}: analytical {analytical[name]:.3e} vs recorded "
                f"{recorder.counts[name]:.3e} (rel {rel:.2e})",
                deltas={"rel_err": rel})
    # The analytical head costs logits for the last position only; the
    # reference computes logits for every prompt position.
    head_rel = abs(analytical["lm_head"] * seq - recorder.counts["lm_head"]) \
        / recorder.counts["lm_head"]
    if head_rel > ctx.tol.flops_gemm_rel:
        raise CheckFailure(f"lm_head per-token FLOPs differ (rel {head_rel:.2e})")
    # Causal-aware analytical attention ~= half the dense reference matmul.
    ratio = analytical["self_attention"] / recorder.counts["self_attention"]
    lo, hi = ctx.tol.attention_ratio_band
    if not lo <= ratio <= hi:
        raise CheckFailure(
            f"prefill attention ratio {ratio:.3f} outside [{lo}, {hi}]",
            deltas={"ratio": ratio})
    return f"GEMMs exact, attention ratio {ratio:.3f}"


@check("llm.decode_flops_vs_reference", family="differential",
       layers=("llm",))
def decode_flops_vs_reference(ctx: AuditContext) -> str:
    """Analytical decode-step FLOPs match an executed cached decode step."""
    config = ctx.tiny_model()
    reference = ReferenceTransformer(config, seed=0)
    batch, prompt_len = 2, 12
    rng = np.random.default_rng(1)
    cache = reference.new_cache()
    reference.forward(rng.integers(0, config.vocab_size,
                                   size=(batch, prompt_len)), cache)
    recorder = FlopRecorder()
    reference.forward(rng.integers(0, config.vocab_size, size=(batch, 1)),
                      cache, recorder=recorder)

    context = prompt_len + 1
    analytical: dict[str, float] = {}
    for op in decode_step_ops(config, ctx.dtype, batch, context):
        analytical[op.name] = analytical.get(op.name, 0.0) + op.flops

    for name in ("qkv_proj", "o_proj", "gate_up_proj", "down_proj",
                 "lm_head"):
        rel = abs(analytical[name] - recorder.counts[name]) \
            / recorder.counts[name]
        if rel > ctx.tol.flops_gemm_rel:
            raise CheckFailure(
                f"{name}: analytical {analytical[name]:.3e} vs recorded "
                f"{recorder.counts[name]:.3e} (rel {rel:.2e})",
                deltas={"rel_err": rel})
    # Decode attends the full context in both paths; the analytical op
    # additionally carries the (small) softmax FLOP term.
    ratio = analytical["self_attention"] / recorder.counts["self_attention"]
    if not 0.95 <= ratio <= 1.25:
        raise CheckFailure(
            f"decode attention ratio {ratio:.3f} outside [0.95, 1.25]",
            deltas={"ratio": ratio})
    return f"GEMMs exact, attention ratio {ratio:.3f}"


@check("engine.vectorized_working_sets", family="differential",
       layers=("engine", "llm"))
def vectorized_working_sets(ctx: AuditContext) -> str:
    """Vectorized working sets equal the scalar per-step accounting."""
    workload = ctx.small_workload(batch_size=4)
    deployment = ctx.cpu("tdx")
    engine = decode_cost_engine(workload, deployment)
    contexts = np.array([64, 256, 1024])
    vec_sets = engine.working_sets(contexts)
    for position, context in enumerate(contexts):
        ops = list(cached_decode_step_ops(
            workload.model, workload.dtype, workload.batch_size, int(context),
            workload.beam_size))
        scalar = _working_sets(workload, deployment, int(context), ops)
        for name, vec_value in (("kv", vec_sets.kv[position]),
                                ("activations",
                                 vec_sets.activations[position]),
                                ("weights", vec_sets.weights)):
            scalar_value = getattr(scalar, name)
            rel = abs(vec_value - scalar_value) / scalar_value
            if rel > 1e-12:
                raise CheckFailure(
                    f"{name} differs at context {context}: vectorized "
                    f"{vec_value:.6e} vs scalar {scalar_value:.6e}",
                    deltas={"rel_err": rel})
    return f"kv/activations/weights identical at {len(contexts)} contexts"


@check("memsim.tlb_closed_form_lower_bound", family="differential",
       layers=("memsim",))
def tlb_closed_form_lower_bound(ctx: AuditContext) -> str:
    """Functional LRU TLB misses at least the closed-form streaming rate."""
    entries, ways, page = 64, 4, PAGE_4K
    reach = entries * page
    margins = []
    for factor in (2, 4):
        tlb = SetAssociativeTlb(entries=entries, ways=ways, page_bytes=page)
        working_set = factor * reach
        for _ in range(3):
            tlb.access_range(0, working_set, stride=page)
        closed = streaming_miss_rate(working_set, page, entries)
        if tlb.miss_rate + 1e-12 < closed:
            raise CheckFailure(
                f"measured miss rate {tlb.miss_rate:.4f} below closed form "
                f"{closed:.4f} at ws={factor}x reach",
                deltas={"measured": tlb.miss_rate, "closed_form": closed})
        margins.append(tlb.miss_rate - closed)
    return f"LRU >= closed form (margins {', '.join(f'{m:.3f}' for m in margins)})"


@check("memsim.epc_closed_form_lower_bound", family="differential",
       layers=("memsim",))
def epc_closed_form_lower_bound(ctx: AuditContext) -> str:
    """Functional EPC pager faults at least the closed-form fraction."""
    epc_pages = 32
    pager = EpcPager(epc_bytes=epc_pages * PAGE_4K)
    working_set = 2 * epc_pages * PAGE_4K
    for _ in range(3):
        pager.touch_range(0, working_set)
    closed = paging_fraction(working_set, epc_pages * PAGE_4K)
    if pager.fault_rate + 1e-12 < closed:
        raise CheckFailure(
            f"pager fault rate {pager.fault_rate:.4f} below closed form "
            f"{closed:.4f}",
            deltas={"measured": pager.fault_rate, "closed_form": closed})
    return f"fault rate {pager.fault_rate:.3f} >= closed form {closed:.3f}"


@check("memsim.vectorized_twins_bitwise", family="differential",
       layers=("memsim", "engine"))
def vectorized_twins_bitwise(ctx: AuditContext) -> str:
    """Array twins of the TLB/EPC closed forms equal the scalar versions."""
    working_sets = np.array([0.0, 1e6, 64e6, 256e6, 1e9, 64e9])
    entries, page = 1024, PAGE_4K
    vec_tlb = streaming_miss_rate_vec(working_sets, page, entries)
    vec_epc = paging_fraction_vec(working_sets, 128e6)
    for position, ws in enumerate(working_sets):
        scalar_tlb = streaming_miss_rate(float(ws), page, entries)
        scalar_epc = paging_fraction(float(ws), 128e6)
        if vec_tlb[position] != scalar_tlb or vec_epc[position] != scalar_epc:
            raise CheckFailure(
                f"vectorized twin differs from scalar at ws={ws:.0f}")
    return f"bitwise equal over {len(working_sets)} working sets"
