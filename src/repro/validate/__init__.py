"""Cross-layer invariant audit subsystem.

A registry of named checks (``@check``) spanning four families:

* **differential** — fast paths against reference twins (vectorized vs
  loop engine, memoized vs cold caches, parallel vs serial sweeps,
  analytical FLOPs vs the numpy reference transformer, closed forms vs
  the functional TLB/EPC simulators),
* **metamorphic** — monotonicity and ordering invariants the cost model
  must satisfy everywhere (TEE never faster, cost non-decreasing in
  context/batch, scheduler/KV-block conservation),
* **golden** — committed snapshots of every figure benchmark's headline
  series with explicit tolerances and a ``--regen`` path,
* **chaos** — fault-injection invariants over :mod:`repro.faults`:
  request conservation, billing bounds, deterministic replay, and the
  zero-fault differential twin (armed-but-empty chaos machinery is
  bit-identical to the fault-free simulator),
* **state** — checkpoint/restore parity over :mod:`repro.state`:
  mid-run snapshot → restore → completion bit-identical to an
  uninterrupted run, snapshot idempotence, schema-version negotiation,
  and byte-identical write-ahead-journal resume,
* **tenancy** — the multi-tenant serving plane over
  :mod:`repro.tenancy`: WFQ/FCFS engine parity across every KV
  isolation mode, exact per-tenant billing partition, per-tenant
  request conservation under faults, weighted-fairness ordering,
  shed-priority parity, and WFQ-armed snapshot resume,
* **attest** — the phased confidential boot lifecycle over
  :mod:`repro.tee.boot`: boot-phase conservation, legacy-constant
  parity, stepped/event engine parity with phased boots and
  re-attestation faults, mid-boot snapshot-resume parity, and the
  golden attestation-tax table.

Run via ``scripts/audit.py`` or through the pytest adapter in
``tests/validate/``, which makes every check a tier-1 test.
"""

from .context import GOLDEN_DIR, AuditContext, Tolerances, default_context
from .registry import (
    FAMILIES,
    SEVERITIES,
    CheckFailure,
    CheckSkip,
    CheckSpec,
    all_checks,
    check,
    checks_matching,
    unregister,
)
from .runner import AuditReport, CheckResult, run_audit, run_check

# Importing the check modules registers every built-in check.
from . import differential as _differential  # noqa: E402,F401
from . import metamorphic as _metamorphic  # noqa: E402,F401
from . import golden as _golden  # noqa: E402,F401
from . import fleet as _fleet  # noqa: E402,F401
from . import chaos as _chaos  # noqa: E402,F401
from . import state as _state  # noqa: E402,F401
from . import event as _event  # noqa: E402,F401
from . import tenancy as _tenancy  # noqa: E402,F401
from . import attest as _attest  # noqa: E402,F401

__all__ = [
    "AuditContext",
    "AuditReport",
    "CheckFailure",
    "CheckResult",
    "CheckSkip",
    "CheckSpec",
    "FAMILIES",
    "GOLDEN_DIR",
    "SEVERITIES",
    "Tolerances",
    "all_checks",
    "check",
    "checks_matching",
    "default_context",
    "run_audit",
    "run_check",
    "unregister",
]
