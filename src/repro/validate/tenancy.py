"""Multi-tenant serving-plane audit checks (the ``tenancy`` family).

The tenancy plane (:mod:`repro.tenancy` over
:mod:`repro.serving.admission`) adds weighted-fair queueing, KV
isolation modes, and per-tenant billing on top of both scheduler
engines.  Its acceptance contract mirrors the event-core one: the
stepped engine stays the reference, and every tenancy configuration —
WFQ or FCFS, shared, partitioned or prefix-sharing KV — must reproduce
bit-identically on the columnar engine, while the tenant ledgers
*exactly* partition the fleet bill and conserve every submitted
request across fault and degradation regimes.

* ``tenancy.engine_parity`` — stream/table twins and full
  admission x isolation regime grid, fault-free and faulted, compared
  as raw report dicts and per-tenant breakdowns (float equality).
* ``tenancy.billing_conservation`` — per-tenant invoices in integer
  cents sum to ``round(cost_usd * 100)`` in every regime.
* ``tenancy.request_conservation`` — per tenant,
  ``completed + shed == submitted`` even under crashes and sheds.
* ``tenancy.wfq_fairness`` — under symmetric demand on a saturated
  replica, the heavier-weighted tenant sees the smaller p99 TTFT.
* ``tenancy.shed_priority_parity`` — the degradation shed ledger
  (id, time, reason, attempts, priority) is identical between engines
  under mixed priority classes.
* ``tenancy.resume_parity`` — a WFQ-armed, prefix-sharing, faulted
  fleet snapshotted mid-run restores bit-identically on both engines.
"""

from __future__ import annotations

import json

from ..faults import DegradationPolicy, RetryPolicy, mtbf_schedule
from ..fleet import fixed_fleet, replica_spec
from ..tenancy import (
    TenantPopulation,
    TenantSpec,
    tenant_breakdown,
    whale_mix,
)
from .context import AuditContext
from .golden import _golden
from .registry import CheckFailure, check


def _population() -> TenantPopulation:
    """Small three-tenant mix: bursty anchor, steady mid, light tail."""
    return TenantPopulation((
        TenantSpec(tenant_id=0, name="anchor", requests=18, rate_per_s=2.4,
                   arrival="mmpp", mean_prompt=192, mean_output=48,
                   weight=4.0, priority=0, slo_ttft_s=3.0, prefix_tokens=48),
        TenantSpec(tenant_id=1, name="steady", requests=12, rate_per_s=1.6,
                   mean_prompt=128, mean_output=40, weight=2.0, priority=1,
                   slo_ttft_s=2.0, prefix_tokens=32),
        TenantSpec(tenant_id=2, name="tail", requests=6, rate_per_s=0.8,
                   mean_prompt=96, mean_output=32, weight=1.0, priority=2,
                   slo_ttft_s=1.5),
    ), seed=7)


def _spec(population: TenantPopulation, admission: str, kv_isolation: str):
    return replica_spec(
        "tdx", max_batch=8, kv_capacity_tokens=16384, admission_lookahead=2,
        tenancy=population.tenancy_config(admission=admission,
                                          kv_isolation=kv_isolation))


def _regimes(population: TenantPopulation):
    """(label, spec, fleet-kwargs) covering the policy grid and faults."""
    faulted = {
        "faults": mtbf_schedule([0, 1], mtbf_s=8.0, horizon_s=30.0, seed=5),
        "retry_policy": RetryPolicy(timeout_s=30.0, max_attempts=4, seed=5),
    }
    shedding = {
        **faulted,
        "degradation": DegradationPolicy(mode="shed", max_hold_s=4.0),
    }
    grid = [(f"{admission}/{isolation}",
             _spec(population, admission, isolation), {})
            for admission in ("fcfs", "wfq")
            for isolation in ("shared", "partition", "shared-prefix")]
    grid.append(("wfq/shared+faults",
                 _spec(population, "wfq", "shared"), faulted))
    grid.append(("fcfs/shared-prefix+faults",
                 _spec(population, "fcfs", "shared-prefix"), faulted))
    grid.append(("wfq/shared+shed",
                 _spec(population, "wfq", "shared"), shedding))
    return grid


def _run_pair(population, spec, fleet_kwargs):
    """The same population through both engines; raw FleetReports."""
    stepped = fixed_fleet(spec, 2, engine="stepped",
                          **fleet_kwargs).run(population.stream())
    event = fixed_fleet(spec, 2, engine="event",
                        **fleet_kwargs).run(population.table())
    return stepped, event


@check("tenancy.engine_parity", family="tenancy",
       layers=("tenancy", "fleet", "serving"))
def engine_parity(ctx: AuditContext) -> str:
    """Every admission x isolation regime, fault-free and faulted, is
    bit-identical between the stepped and event engines."""
    population = _population()
    stream, table = population.stream(), population.table()
    for i, request in enumerate(stream):
        if request != table.request(i):
            raise CheckFailure(
                f"population table row {i} diverged from the stream")
    compared = 0
    for label, spec, fleet_kwargs in _regimes(population):
        stepped, event = _run_pair(population, spec, fleet_kwargs)
        a, b = stepped.to_dict(), event.to_dict()
        if a != b:
            diverged = [key for key in a if a[key] != b.get(key)]
            raise CheckFailure(
                f"{label}: event report diverged from stepped in "
                f"{diverged[:4]}")
        split_a = tenant_breakdown(stepped, population).to_dict()
        split_b = tenant_breakdown(event, population).to_dict()
        if split_a != split_b:
            raise CheckFailure(
                f"{label}: per-tenant breakdown diverged between engines")
        compared += len(stepped.outcomes)
    return (f"{compared} request timelines bit-identical across "
            f"{len(_regimes(population))} tenancy regimes")


@check("tenancy.billing_conservation", family="tenancy",
       layers=("tenancy", "fleet", "cost"))
def billing_conservation(ctx: AuditContext) -> str:
    """Per-tenant invoices partition the fleet bill to the cent in
    every regime, including faulted and shedding fleets."""
    population = _population()
    checked = 0
    for label, spec, fleet_kwargs in _regimes(population):
        report = fixed_fleet(spec, 2, engine="stepped",
                             **fleet_kwargs).run(population.stream())
        split = tenant_breakdown(report, population)
        expected = round(report.cost_usd * 100)
        if split.total_bill_cents != expected:
            raise CheckFailure(
                f"{label}: tenant invoices sum to "
                f"{split.total_bill_cents}c, fleet bill is {expected}c",
                deltas={"diff_cents":
                        float(split.total_bill_cents - expected)})
        for usage in split.tenants:
            if usage.bill_cents < 0:
                raise CheckFailure(
                    f"{label}: tenant {usage.tenant_id} billed "
                    f"{usage.bill_cents}c")
            if usage.tokens_out == 0 and usage.bill_cents and any(
                    u.tokens_out for u in split.tenants):
                raise CheckFailure(
                    f"{label}: idle tenant {usage.tenant_id} billed "
                    f"{usage.bill_cents}c")
        checked += 1
    return f"bills partition exactly across {checked} regimes"


@check("tenancy.request_conservation", family="tenancy",
       layers=("tenancy", "fleet", "faults"))
def request_conservation(ctx: AuditContext) -> str:
    """Per tenant, completed + shed equals submitted in every regime —
    crashes and degradation never lose or invent a request."""
    population = _population()
    submitted = {spec.tenant_id: spec.requests
                 for spec in population.tenants}
    checked = 0
    for label, spec, fleet_kwargs in _regimes(population):
        report = fixed_fleet(spec, 2, engine="event",
                             **fleet_kwargs).run(population.table())
        split = tenant_breakdown(report, population)
        for usage in split.tenants:
            if usage.requests + usage.shed != submitted[usage.tenant_id]:
                raise CheckFailure(
                    f"{label}: tenant {usage.tenant_id} submitted "
                    f"{submitted[usage.tenant_id]} but completed "
                    f"{usage.requests} + shed {usage.shed}")
        checked += 1
    return f"request counts conserved per tenant across {checked} regimes"


@check("tenancy.wfq_fairness", family="tenancy",
       layers=("tenancy", "serving"))
def wfq_fairness(ctx: AuditContext) -> str:
    """With symmetric demand on a saturated replica, WFQ gives the
    heavier-weighted tenant the smaller p99 TTFT."""
    population = TenantPopulation((
        TenantSpec(tenant_id=0, name="heavy", requests=16, rate_per_s=6.0,
                   mean_prompt=256, mean_output=64, weight=8.0),
        TenantSpec(tenant_id=1, name="light", requests=16, rate_per_s=6.0,
                   mean_prompt=256, mean_output=64, weight=1.0),
    ), seed=13)
    spec = replica_spec(
        "tdx", max_batch=4, kv_capacity_tokens=8192,
        tenancy=population.tenancy_config(admission="wfq"))
    report = fixed_fleet(spec, 1, engine="stepped").run(population.stream())
    split = tenant_breakdown(report, population)
    heavy, light = split.usage_of(0), split.usage_of(1)
    if heavy.ttft_p99_s is None or light.ttft_p99_s is None:
        raise CheckFailure("a tenant completed no requests")
    if heavy.ttft_p99_s >= light.ttft_p99_s:
        raise CheckFailure(
            f"weight-8 tenant saw p99 TTFT {heavy.ttft_p99_s:.3f}s, "
            f"weight-1 tenant {light.ttft_p99_s:.3f}s — WFQ did not "
            f"favor the heavier weight",
            deltas={"heavy_p99_s": heavy.ttft_p99_s,
                    "light_p99_s": light.ttft_p99_s})
    return (f"p99 TTFT heavy {heavy.ttft_p99_s:.3f}s < light "
            f"{light.ttft_p99_s:.3f}s under 8:1 weights")


@check("tenancy.shed_priority_parity", family="tenancy",
       layers=("tenancy", "fleet", "faults"))
def shed_priority_parity(ctx: AuditContext) -> str:
    """The degradation shed ledger — order, priorities, reasons — is
    identical between engines under mixed priority classes."""
    population = _population()
    spec = _spec(population, "fcfs", "shared")
    fleet_kwargs = {
        "faults": mtbf_schedule([0, 1], mtbf_s=1.5, horizon_s=60.0, seed=9),
        "retry_policy": RetryPolicy(timeout_s=8.0, max_attempts=2, seed=9),
        "degradation": DegradationPolicy(mode="shed", max_hold_s=1.0),
    }
    stepped, event = _run_pair(population, spec, fleet_kwargs)
    ledger = [(shed.request.request_id, shed.request.tenant_id,
               shed.request.priority, shed.time_s, shed.reason,
               shed.attempts) for shed in stepped.shed]
    twin = [(shed.request.request_id, shed.request.tenant_id,
             shed.request.priority, shed.time_s, shed.reason,
             shed.attempts) for shed in event.shed]
    if ledger != twin:
        first = next(i for i, (a, b) in enumerate(zip(ledger, twin))
                     if a != b) if len(ledger) == len(twin) else -1
        raise CheckFailure(
            f"shed ledgers diverged between engines "
            f"(lengths {len(ledger)}/{len(twin)}, first diff {first})")
    # Within one shed instant, lower priority classes go first.
    by_instant: dict[float, list[tuple[int, int]]] = {}
    for request_id, _, priority, time_s, reason, _ in ledger:
        if reason == "degraded":
            by_instant.setdefault(time_s, []).append((priority, request_id))
    for time_s, batch in by_instant.items():
        if batch != sorted(batch):
            raise CheckFailure(
                f"shed batch at t={time_s:.2f}s not in priority order: "
                f"{batch}")
    if not by_instant:
        raise CheckFailure("regime degraded-shed nothing; check is vacuous")
    return (f"{len(ledger)}-entry shed ledger identical across engines, "
            f"priority-ordered within instants")


@check("tenancy.resume_parity", family="tenancy",
       layers=("tenancy", "fleet", "state"))
def resume_parity(ctx: AuditContext) -> str:
    """A WFQ-armed, prefix-sharing, faulted fleet snapshotted mid-run
    restores bit-identically on both engines."""
    population = _population()
    spec = _spec(population, "wfq", "shared-prefix")
    fleet_kwargs = {
        "faults": mtbf_schedule([0, 1], mtbf_s=8.0, horizon_s=30.0, seed=5),
        "retry_policy": RetryPolicy(timeout_s=30.0, max_attempts=4, seed=5),
    }
    resumed = 0
    for engine in ("stepped", "event"):
        requests = (population.table() if engine == "event"
                    else population.stream())

        def fleet():
            return fixed_fleet(spec, 2, engine=engine, **fleet_kwargs)

        baseline = fleet().run(requests)
        running = fleet()
        running.begin_run(requests)
        for _ in range(40):
            if not running.run_active:
                break
            running.run_tick()
        payload = json.loads(json.dumps(running.to_state()))
        fresh = fleet()
        fresh.from_state(payload)
        while fresh.run_active:
            fresh.run_tick()
        a, b = baseline.to_dict(), fresh.finish_run().to_dict()
        if a != b:
            diverged = [key for key in a if a[key] != b.get(key)]
            raise CheckFailure(
                f"{engine}: resumed WFQ run diverged from baseline in "
                f"{diverged[:4]}")
        # Snapshotting must not perturb the running fleet either.
        while running.run_active:
            running.run_tick()
        if running.finish_run().to_dict() != a:
            raise CheckFailure(
                f"{engine}: taking the snapshot perturbed the run")
        resumed += 1
    return f"{resumed} engines resume a WFQ+prefix+faulted run exactly"


# -- golden headline: the whale-mix fairness/billing snapshot -----------------

@_golden("tenant_mix", "Whale-mix per-tenant $/Mtok and p99 TTFT "
         "(WFQ, shared-prefix, 2x TDX)", layers=("tenancy", "fleet"))
def tenant_mix_series(ctx: AuditContext) -> dict[str, float]:
    population = whale_mix(total_requests=80, rate_per_s=6.0, seed=3,
                           prefix_tokens=64)
    spec = replica_spec(
        "tdx", max_batch=8, kv_capacity_tokens=16384,
        tenancy=population.tenancy_config(admission="wfq",
                                          kv_isolation="shared-prefix"))
    report = fixed_fleet(spec, 2, engine="event").run(population.table())
    split = tenant_breakdown(report, population)
    series: dict[str, float] = {
        "total_bill_cents": float(split.total_bill_cents),
        "prefix_hits": float(split.prefix_hits),
        "ttft_p99_spread": float(split.ttft_p99_spread()),
    }
    for usage in split.tenants:
        series[f"{usage.name}_bill_cents"] = float(usage.bill_cents)
        series[f"{usage.name}_ttft_p99_s"] = float(usage.ttft_p99_s)
    return series
