"""Metamorphic and monotonicity checks: directional invariants.

The paper's mechanisms imply directional relations that must hold for
*any* calibration: more context, batch or input can never make a step
cheaper; a TEE can never be faster than bare metal on the same silicon;
bigger pages can never miss the TLB more; a working set inside the
EPC never pages; the vLLM-style scheduler conserves requests and KV
blocks.  These checks encode those relations so calibration tweaks and
refactors cannot invert the physics.
"""

from __future__ import annotations

import numpy as np

from ..engine.simulator import decode_step_cost, prefill_step_cost
from ..engine.vectorized import decode_cost_engine
from ..llm.datatypes import INT8
from ..llm.kvcache import PagedKVCache
from ..memsim.epc import paging_overhead_s
from ..memsim.pages import PAGE_1G, PAGE_2M, PAGE_4K
from ..memsim.tlb import WalkModel, streaming_miss_rate, translation_time
from .context import AuditContext
from .registry import CheckFailure, check

_PAGE_SIZES = (PAGE_4K, PAGE_2M, PAGE_1G)


def _assert_monotonic(values: list[float], label: str, slack_rel: float,
                      decreasing: bool = False) -> None:
    for earlier, later in zip(values, values[1:]):
        slack = slack_rel * abs(earlier)
        violated = (later < earlier - slack if not decreasing
                    else later > earlier + slack)
        if violated:
            direction = "non-increasing" if decreasing else "non-decreasing"
            raise CheckFailure(
                f"{label} not {direction}: {earlier:.6e} -> {later:.6e}",
                deltas={"earlier": earlier, "later": later})


@check("engine.decode_cost_monotonic_context", family="metamorphic",
       layers=("engine",))
def decode_cost_monotonic_context(ctx: AuditContext) -> str:
    """Decode-step cost is non-decreasing in attended context length."""
    contexts = np.array([64, 128, 256, 512, 1024, 2048, 4096])
    for deployment in (ctx.cpu("baremetal"), ctx.cpu("tdx"), ctx.cpu("sgx"),
                       ctx.gpu(confidential=True)):
        engine = decode_cost_engine(ctx.small_workload(), deployment)
        costs = engine.step_costs(contexts)
        _assert_monotonic(list(costs),
                          f"{deployment.backend.name} decode cost vs context",
                          ctx.tol.monotonic_slack_rel)
    return f"4 deployments x {len(contexts)} contexts"


@check("engine.decode_cost_monotonic_batch", family="metamorphic",
       layers=("engine",))
def decode_cost_monotonic_batch(ctx: AuditContext) -> str:
    """Decode-step cost is non-decreasing in batch size."""
    for backend in ("baremetal", "tdx"):
        deployment = ctx.cpu(backend)
        costs = [
            decode_step_cost(ctx.small_workload(batch_size=batch),
                             deployment, context=512).total_s
            for batch in (1, 2, 4, 8, 16, 64)
        ]
        _assert_monotonic(costs, f"{backend} decode cost vs batch",
                          ctx.tol.monotonic_slack_rel)
    return "batch 1..64 on baremetal and tdx"


@check("engine.prefill_cost_monotonic_input", family="metamorphic",
       layers=("engine",))
def prefill_cost_monotonic_input(ctx: AuditContext) -> str:
    """Prefill cost is non-decreasing in prompt length."""
    for backend in ("baremetal", "tdx"):
        deployment = ctx.cpu(backend)
        costs = [
            prefill_step_cost(ctx.small_workload(input_tokens=length),
                              deployment).total_s
            for length in (64, 128, 256, 512, 1024, 2048)
        ]
        _assert_monotonic(costs, f"{backend} prefill cost vs input",
                          ctx.tol.monotonic_slack_rel)
    return "input 64..2048 on baremetal and tdx"


@check("tee.cpu_overhead_nonnegative", family="metamorphic",
       layers=("tee", "engine"))
def cpu_overhead_nonnegative(ctx: AuditContext) -> str:
    """CPU TEEs and VMs are never faster than bare metal (equal config)."""
    workload = ctx.small_workload()
    base = ctx.simulate(workload, ctx.cpu("baremetal"))
    overheads = {}
    for backend in ("vm", "tdx", "sgx"):
        result = ctx.simulate(workload, ctx.cpu(backend))
        if result.decode_time_s < base.decode_time_s * (1.0 - 1e-12):
            raise CheckFailure(
                f"{backend} decode {result.decode_time_s:.6e}s faster than "
                f"baremetal {base.decode_time_s:.6e}s")
        if result.prefill_s < base.prefill_s * (1.0 - 1e-12):
            raise CheckFailure(f"{backend} prefill faster than baremetal")
        overheads[backend] = result.decode_time_s / base.decode_time_s - 1.0
    detail = ", ".join(f"{name} +{value:.1%}"
                       for name, value in overheads.items())
    return detail


@check("tee.gpu_overhead_nonnegative", family="metamorphic",
       layers=("tee", "engine"))
def gpu_overhead_nonnegative(ctx: AuditContext) -> str:
    """Confidential GPU mode is never faster than the raw GPU."""
    workload = ctx.small_workload(batch_size=4)
    raw = ctx.simulate(workload, ctx.gpu(confidential=False))
    confidential = ctx.simulate(workload, ctx.gpu(confidential=True))
    if confidential.total_time_s < raw.total_time_s * (1.0 - 1e-12):
        raise CheckFailure(
            f"cGPU total {confidential.total_time_s:.6e}s faster than GPU "
            f"{raw.total_time_s:.6e}s")
    overhead = confidential.total_time_s / raw.total_time_s - 1.0
    return f"cgpu +{overhead:.1%} over gpu"


@check("tee.amx_off_never_faster", family="metamorphic",
       layers=("tee", "engine", "hardware"))
def amx_off_never_faster(ctx: AuditContext) -> str:
    """Disabling AMX never speeds up decode."""
    workload = ctx.small_workload(batch_size=16)
    with_amx = ctx.simulate(workload, ctx.cpu("vm"))
    without = ctx.simulate(workload, ctx.cpu("vm", amx_enabled=False))
    if without.decode_time_s < with_amx.decode_time_s * (1.0 - 1e-12):
        raise CheckFailure("AMX-off decode faster than AMX-on")
    ratio = without.decode_time_s / with_amx.decode_time_s
    return f"no-AMX {ratio:.2f}x AMX decode time"


@check("engine.more_cores_never_slower", family="metamorphic",
       layers=("engine", "hardware"))
def more_cores_never_slower(ctx: AuditContext) -> str:
    """Noise-free decode time is non-increasing in core count."""
    workload = ctx.small_workload(batch_size=8)
    for backend in ("baremetal", "tdx"):
        times = [
            ctx.simulate(workload, ctx.cpu(
                backend, cores_per_socket_used=cores)).decode_time_s
            for cores in (8, 16, 32, 56)
        ]
        _assert_monotonic(times, f"{backend} decode time vs cores",
                          ctx.tol.monotonic_slack_rel, decreasing=True)
    return "cores 8..56 on baremetal and tdx"


@check("llm.int8_never_slower_than_bf16", family="metamorphic",
       layers=("llm", "engine"))
def int8_never_slower_than_bf16(ctx: AuditContext) -> str:
    """Weight-only int8 decode is never slower than bf16 (half traffic)."""
    deployment = ctx.cpu("baremetal")
    bf16 = ctx.simulate(ctx.small_workload(), deployment)
    int8 = ctx.simulate(ctx.small_workload(dtype=INT8), deployment)
    if int8.decode_time_s > bf16.decode_time_s * (1.0 + 1e-12):
        raise CheckFailure(
            f"int8 decode {int8.decode_time_s:.6e}s slower than bf16 "
            f"{bf16.decode_time_s:.6e}s")
    return f"int8 {bf16.decode_time_s / int8.decode_time_s:.2f}x faster"


@check("engine.noise_positive_tee_heavier", family="metamorphic",
       layers=("engine", "tee"), severity="warn")
def noise_positive_tee_heavier(ctx: AuditContext) -> str:
    """Observed latencies stay positive; TEE jitter exceeds bare metal.

    Deterministic for a fixed seed, but the dispersion comparison rests
    on the calibrated noise process rather than closed-form algebra, so
    the check carries ``warn`` severity.
    """
    workload = ctx.small_workload(output_tokens=128)
    base = ctx.simulate(workload, ctx.cpu("baremetal"), seed=11)
    tee = ctx.simulate(workload, ctx.cpu("tdx"), seed=11)
    for label, result in (("baremetal", base), ("tdx", tee)):
        samples = result.decode_noisy_s
        if not np.all(np.isfinite(samples)) or np.any(samples <= 0):
            raise CheckFailure(f"{label} noisy latencies not positive finite")
    base_cv = float(np.std(base.decode_noisy_s / base.decode_clean_s))
    tee_cv = float(np.std(tee.decode_noisy_s / tee.decode_clean_s))
    if tee_cv < base_cv:
        raise CheckFailure(
            f"TDX jitter CV {tee_cv:.4f} below baremetal {base_cv:.4f}",
            deltas={"tee_cv": tee_cv, "base_cv": base_cv})
    return f"CV baremetal {base_cv:.4f} <= tdx {tee_cv:.4f}"


@check("memsim.tlb_miss_monotonic_page_size", family="metamorphic",
       layers=("memsim",))
def tlb_miss_monotonic_page_size(ctx: AuditContext) -> str:
    """Streaming TLB miss rate is non-increasing as pages grow."""
    for working_set in (1e6, 100e6, 10e9, 1e12):
        rates = [streaming_miss_rate(working_set, page, 1024)
                 for page in _PAGE_SIZES]
        _assert_monotonic(rates, f"miss rate vs page size at ws={working_set:.0e}",
                          0.0, decreasing=True)
    return "4 working sets x 3 page sizes"


@check("memsim.tlb_zero_when_fits", family="metamorphic",
       layers=("memsim",))
def tlb_zero_when_fits(ctx: AuditContext) -> str:
    """No streaming TLB misses while the set fits the TLB reach."""
    entries = 1024
    for page in _PAGE_SIZES:
        reach = entries * page
        if streaming_miss_rate(reach, page, entries) != 0.0:
            raise CheckFailure(f"miss rate nonzero at ws == reach ({page} pages)")
        if streaming_miss_rate(2 * reach, page, entries) <= 0.0:
            raise CheckFailure(f"miss rate zero at ws == 2x reach ({page} pages)")
    return "zero inside reach, positive beyond, all page sizes"


@check("memsim.epc_paging_zero_when_fits", family="metamorphic",
       layers=("memsim",))
def epc_paging_zero_when_fits(ctx: AuditContext) -> str:
    """EPC paging cost is zero iff the working set fits the EPC."""
    epc = 128e9
    if paging_overhead_s(1e9, working_set_bytes=epc, epc_bytes=epc) != 0.0:
        raise CheckFailure("paging cost nonzero with working set == EPC")
    beyond = paging_overhead_s(1e9, working_set_bytes=2 * epc, epc_bytes=epc)
    if beyond <= 0.0:
        raise CheckFailure("paging cost zero with working set == 2x EPC")
    return f"0 at fit, {beyond * 1e3:.1f} ms/GB beyond"


@check("memsim.translation_time_monotonic_pages", family="metamorphic",
       layers=("memsim",))
def translation_time_monotonic_pages(ctx: AuditContext) -> str:
    """Page-walk time is non-increasing as the backing page size grows."""
    walk = WalkModel(native_walk_s=20e-9, nested_multiplier=3.0)
    streamed, entries = 64e9, 1024
    times = []
    for page in _PAGE_SIZES:
        miss = streaming_miss_rate(200e9, page, entries)
        times.append(translation_time(streamed, page, miss, walk))
    _assert_monotonic(times, "translation time vs page size", 0.0,
                      decreasing=True)
    return " -> ".join(f"{t * 1e3:.2f}ms" for t in times)


@check("serving.scheduler_conservation", family="metamorphic",
       layers=("serving", "llm"))
def scheduler_conservation(ctx: AuditContext) -> str:
    """The serving loop conserves requests and KV blocks end to end."""
    requests, scheduler, report = ctx.serve_state()
    if len(report.outcomes) != len(requests):
        raise CheckFailure(
            f"{len(requests)} admitted but {len(report.outcomes)} outcomes")
    if report.total_preemptions != sum(o.preemptions
                                       for o in report.outcomes):
        raise CheckFailure("global preemption count != per-request sum")
    if report.total_preemptions == 0:
        raise CheckFailure(
            "stress stream caused no preemptions; check is not exercising "
            "the recompute path (grow the load or shrink the pool)")
    for outcome in report.outcomes:
        # makespan is measured from the first arrival, so the absolute
        # end of the serving window is start_s + makespan_s.
        if not (outcome.request.arrival_s <= outcome.first_token_s
                <= outcome.finish_s <= report.end_s):
            raise CheckFailure(
                f"request {outcome.request.request_id} lifecycle disordered")
    cache = scheduler.cache
    if cache.free_blocks != cache.num_blocks or cache.allocated_blocks != 0:
        raise CheckFailure(
            f"KV blocks leaked: {cache.allocated_blocks} still allocated "
            f"after the stream drained")
    return (f"{len(requests)} requests, {report.total_preemptions} "
            f"preemptions, pool drained")


@check("serving.kv_block_conservation", family="metamorphic",
       layers=("serving", "llm"))
def kv_block_conservation(ctx: AuditContext) -> str:
    """Paged-KV block accounting holds under a scripted op sequence."""
    cache = PagedKVCache(num_blocks=64, block_size=16)
    rng = np.random.default_rng(5)
    live: set[int] = set()
    next_id = 0
    for _ in range(400):
        action = rng.integers(0, 3)
        try:
            if action == 0 or not live:
                cache.allocate(next_id, int(rng.integers(0, 48)))
                live.add(next_id)
                next_id += 1
            elif action == 1:
                cache.append_token(int(rng.choice(sorted(live))))
            else:
                victim = int(rng.choice(sorted(live)))
                cache.free(victim)
                live.discard(victim)
        except MemoryError:
            if live:
                victim = sorted(live)[0]
                cache.free(victim)
                live.discard(victim)
        if cache.free_blocks + cache.allocated_blocks != cache.num_blocks:
            raise CheckFailure("free + allocated != total blocks")
        owned = [block for seq in live for block in cache.block_table(seq)]
        if len(owned) != len(set(owned)):
            raise CheckFailure("a block is owned by two sequences")
        if not 0.0 <= cache.utilization() <= 1.0:
            raise CheckFailure(f"utilization {cache.utilization()} outside [0, 1]")
    return f"400 ops, {len(live)} sequences live at end, accounting exact"


@check("serving.percentiles_ordered", family="metamorphic",
       layers=("serving", "core"))
def percentiles_ordered(ctx: AuditContext) -> str:
    """Latency percentiles are ordered and throughput is positive."""
    report = ctx.serve()
    for metric in (report.ttft_percentile, report.e2e_percentile):
        p50, p90, p99 = metric(50), metric(90), metric(99)
        if not p50 <= p90 <= p99:
            raise CheckFailure(
                f"percentiles disordered: p50={p50:.3f} p90={p90:.3f} "
                f"p99={p99:.3f}")
    if report.throughput_tok_s <= 0:
        raise CheckFailure("serving throughput not positive")
    return (f"ttft p50 {report.ttft_percentile(50):.2f}s, "
            f"tput {report.throughput_tok_s:.0f} tok/s")


@check("serving.tee_never_faster_makespan", family="metamorphic",
       layers=("serving", "tee"))
def tee_never_faster_makespan(ctx: AuditContext) -> str:
    """Serving the same stream under TDX never shortens the makespan."""
    base = ctx.serve(backend="baremetal")
    tee = ctx.serve(backend="tdx")
    if tee.makespan_s < base.makespan_s * (1.0 - 1e-12):
        raise CheckFailure(
            f"TDX makespan {tee.makespan_s:.3f}s beat baremetal "
            f"{base.makespan_s:.3f}s")
    return f"tdx +{tee.makespan_s / base.makespan_s - 1.0:.1%} makespan"
