"""Event-engine audit checks: columnar core vs stepped twin.

The event-driven columnar fleet core (``engine="event"``) exists for
throughput — simulating millions of requests per run — but its
acceptance criterion is *parity*: the stepped engine remains the
reference semantics, and the event core must reproduce it
bit-identically, not approximately.  These checks pin that contract
the same way ``serving.legacy_loop_parity`` pinned the steppable
scheduler refactor:

* ``fleet.event_core_parity`` (differential) — the same request
  stream, once as :class:`~repro.serving.scheduler.ServeRequest`
  objects through the stepped engine and once as a columnar
  :class:`~repro.fleet.table.RequestTable` through the event engine,
  across fault-free, faulted, autoscaled and spill-router
  configurations.  Report dicts and raw per-request outcome floats
  must be exactly equal — float equality, no tolerance.
* ``fleet.event_core_resume_parity`` (state) — freeze an event-engine
  run mid-flight, push the snapshot through strict JSON, revive it in
  a fresh event simulator and finish: bit-identical to never having
  stopped, and equal to the stepped baseline on the same stream.  The
  engine-mismatch guard (restoring an event snapshot into a stepped
  simulator) must refuse with a clear error.
"""

from __future__ import annotations

import json

from ..faults import DegradationPolicy, RetryPolicy, mtbf_schedule
from ..fleet import (
    AutoscalerConfig,
    FleetSimulator,
    ReactiveAutoscaler,
    fixed_fleet,
    poisson_arrivals,
    poisson_table,
    replica_spec,
)
from ..fleet.router import CostSloRouter
from ..state.errors import StateIntegrityError
from .context import AuditContext
from .registry import CheckFailure, check


def _tdx_spec():
    return replica_spec("tdx", max_batch=16, kv_capacity_tokens=65536)


def _fleet_stream():
    """Object stream and its columnar twin (same seed, same draws)."""
    requests = poisson_arrivals(40, rate_per_s=4.0, mean_prompt=128,
                                mean_output=32, seed=11)
    table = poisson_table(40, rate_per_s=4.0, mean_prompt=128,
                          mean_output=32, seed=11)
    return requests, table


def _configs() -> list[tuple[str, "callable"]]:
    """Factories covering every structurally distinct fleet regime."""
    spec = _tdx_spec()

    def fault_free(engine):
        return fixed_fleet(spec, 2, engine=engine)

    def faulted(engine):
        return fixed_fleet(
            spec, 2,
            faults=mtbf_schedule([0, 1], mtbf_s=6.0, horizon_s=30.0, seed=3),
            retry_policy=RetryPolicy(timeout_s=30.0, max_attempts=4, seed=3),
            engine=engine)

    def autoscaled(engine):
        scaler = ReactiveAutoscaler(AutoscalerConfig(
            max_replicas=4, scale_up_load=3.0, scale_down_load=0.5,
            cooldown_s=2.0, boot_latency_s=5.0))
        return FleetSimulator([spec], autoscaler=scaler, scale_spec=spec,
                              engine=engine)

    def spill_router(engine):
        return FleetSimulator(
            [spec, spec], router=CostSloRouter(slo_ttft_s=2.0),
            faults=mtbf_schedule([0, 1], mtbf_s=6.0, horizon_s=30.0, seed=3),
            retry_policy=RetryPolicy(timeout_s=30.0, max_attempts=4, seed=3),
            degradation=DegradationPolicy(mode="spill", max_hold_s=4.0,
                                          spill_boot_s=1.0, max_spill=2),
            scale_spec=spec, engine=engine)

    return [("fixed/fault-free", fault_free), ("fixed/faulted", faulted),
            ("autoscaled", autoscaled), ("spill-router/faulted",
                                         spill_router)]


def _compare(label: str, stepped, event) -> int:
    """Exact report + per-request timeline equality; returns #requests."""
    a, b = stepped.to_dict(), event.to_dict()
    if a != b:
        diverged = [key for key in a if a[key] != b.get(key)]
        raise CheckFailure(
            f"{label}: event report diverged from stepped in "
            f"{diverged[:4]}")
    if len(stepped.outcomes) != len(event.outcomes):
        raise CheckFailure(f"{label}: outcome counts diverge")
    for x, y in zip(stepped.outcomes, event.outcomes):
        # Bit-identical means raw float equality, not tolerance.
        if (x.request.request_id, x.first_token_s, x.finish_s,
                x.preemptions) != (y.request.request_id, y.first_token_s,
                                   y.finish_s, y.preemptions):
            raise CheckFailure(
                f"{label}: request {x.request.request_id} timeline "
                f"diverged between engines")
    return len(stepped.outcomes)


@check("fleet.event_core_parity", family="differential",
       layers=("fleet", "serving"))
def event_core_parity(ctx: AuditContext) -> str:
    """The event-driven columnar core reproduces the stepped engine
    bit-identically across all fleet regimes."""
    requests, table = _fleet_stream()
    for i, request in enumerate(requests):
        twin = table.request(i)
        if (request.request_id, request.arrival_s, request.prompt_tokens,
                request.output_tokens) != (twin.request_id, twin.arrival_s,
                                           twin.prompt_tokens,
                                           twin.output_tokens):
            raise CheckFailure(
                f"columnar table row {i} diverged from the object stream")
    checked = 0
    for label, factory in _configs():
        stepped = factory("stepped").run(requests)
        event = factory("event").run(table)
        checked += _compare(label, stepped, event)
    return f"{checked} request timelines bit-identical across 4 regimes"


@check("fleet.event_core_resume_parity", family="state",
       layers=("fleet", "state", "serving"))
def event_core_resume_parity(ctx: AuditContext) -> str:
    """Snapshot/restore round-trips the columnar run state exactly."""
    requests, table = _fleet_stream()
    resumed_reports = 0
    for label, factory in _configs():
        baseline = factory("event").run(table)
        running = factory("event")
        running.begin_run(table)
        for _ in range(23):
            if not running.run_active:
                break
            running.run_tick()
        payload = json.loads(json.dumps(running.to_state()))
        fresh = factory("event")
        fresh.from_state(payload)
        while fresh.run_active:
            fresh.run_tick()
        _compare(f"{label} (resumed)", baseline, fresh.finish_run())
        # Taking the snapshot must not perturb the running simulator.
        while running.run_active:
            running.run_tick()
        _compare(f"{label} (observed)", baseline, running.finish_run())
        # And the restored run still matches the stepped reference.
        _compare(f"{label} (vs stepped)", factory("stepped").run(requests),
                 baseline)
        resumed_reports += 1
    factory = _configs()[0][1]
    mismatch = factory("stepped")
    snapshot = factory("event")
    snapshot.begin_run(table)
    snapshot.run_tick()
    try:
        mismatch.from_state(json.loads(json.dumps(snapshot.to_state())))
    except StateIntegrityError:
        pass
    else:
        raise CheckFailure(
            "stepped simulator accepted an event-engine snapshot")
    return f"{resumed_reports} regimes resume bit-identically"
