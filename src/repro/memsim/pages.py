"""Page-size policies.

The paper distinguishes three hugepage configurations (Fig. 6):

* ``VM FH`` — preallocated 1 GB hugepages,
* ``VM TH`` — 2 MB transparent hugepages,
* ``TDX``  — requests 1 GB pages but silently gets 2 MB THP (Insight 7).

A policy resolves to the page size that actually backs a guest, which
drives TLB reach and walk counts.
"""

from __future__ import annotations

from enum import Enum

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

PAGE_4K = 4 * KB
PAGE_2M = 2 * MB
PAGE_1G = GB


class HugepagePolicy(str, Enum):
    """How guest (or process) memory is backed."""

    BASE_4K = "4k"
    TRANSPARENT_2M = "thp-2m"
    RESERVED_1G = "reserved-1g"

    @property
    def page_bytes(self) -> int:
        return {
            HugepagePolicy.BASE_4K: PAGE_4K,
            HugepagePolicy.TRANSPARENT_2M: PAGE_2M,
            HugepagePolicy.RESERVED_1G: PAGE_1G,
        }[self]


def effective_policy(requested: HugepagePolicy, tdx: bool) -> HugepagePolicy:
    """The policy that actually takes effect.

    TDX ignores manually reserved 1 GB hugepages and self-allocates 2 MB
    transparent hugepages instead (paper §IV-A2); everything else honours
    the request.
    """
    if tdx and requested is HugepagePolicy.RESERVED_1G:
        return HugepagePolicy.TRANSPARENT_2M
    return requested
