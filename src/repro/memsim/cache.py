"""Last-level-cache working-set model.

The Fig. 10 input-size sweep turns on cache behaviour: as the KV cache
per sequence grows, per-token reads stop hitting the LLC and the decode
step becomes memory-bound again (with matching TLB pressure).  We model
the LLC as a bandwidth filter: traffic whose working set fits (a share
of) the LLC is served at cache bandwidth and does not count as DRAM
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CacheModel:
    """LLC hit modelling for one traffic stream.

    Attributes:
        llc_bytes: Usable LLC capacity for this stream.
        residency_share: Fraction of the LLC this stream can realistically
            occupy given competing streams (weights always stream through,
            so KV/activations only get a share).
    """

    llc_bytes: float
    residency_share: float = 0.6

    def __post_init__(self) -> None:
        if self.llc_bytes < 0:
            raise ValueError("llc_bytes must be >= 0")
        if not 0.0 < self.residency_share <= 1.0:
            raise ValueError("residency_share must be in (0, 1]")

    @property
    def effective_capacity(self) -> float:
        return self.llc_bytes * self.residency_share

    def dram_fraction(self, working_set_bytes: float) -> float:
        """Fraction of stream traffic that reaches DRAM.

        Cyclic-scan LRU model: working sets within the effective capacity
        hit fully; beyond it, the excess fraction misses.
        """
        if working_set_bytes < 0:
            raise ValueError("working_set_bytes must be >= 0")
        if working_set_bytes <= self.effective_capacity:
            return 0.0
        return 1.0 - self.effective_capacity / working_set_bytes

    def dram_bytes(self, traffic_bytes: float, working_set_bytes: float) -> float:
        """DRAM-visible portion of ``traffic_bytes``."""
        if traffic_bytes < 0:
            raise ValueError("traffic_bytes must be >= 0")
        return traffic_bytes * self.dram_fraction(working_set_bytes)

    def dram_fraction_vec(self, working_set_bytes: np.ndarray) -> np.ndarray:
        """Array twin of :meth:`dram_fraction` (vectorized engine)."""
        ws = np.asarray(working_set_bytes, dtype=float)
        if np.any(ws < 0):
            raise ValueError("working_set_bytes must be >= 0")
        capacity = self.effective_capacity
        safe = np.where(ws > 0.0, ws, 1.0)
        return np.where(ws <= capacity, 0.0, 1.0 - capacity / safe)

    def dram_bytes_vec(self, traffic_bytes, working_set_bytes) -> np.ndarray:
        """Array twin of :meth:`dram_bytes`; broadcasts both arguments."""
        traffic = np.asarray(traffic_bytes, dtype=float)
        if np.any(traffic < 0):
            raise ValueError("traffic_bytes must be >= 0")
        return traffic * self.dram_fraction_vec(working_set_bytes)
