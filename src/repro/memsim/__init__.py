"""Memory-subsystem simulators: TLB, pages, EPC, LLC, NUMA."""

from .cache import CacheModel
from .cachesim import ScanResult, SetAssociativeCache, measure_cyclic_scan
from .epc import EPC_FAULT_S, EpcPager, paging_fraction, paging_overhead_s
from .numa import (
    NumaAllocator,
    NumaPolicy,
    effective_bandwidth,
    remote_fraction,
    sub_numa_misplacement,
)
from .pages import (
    GB,
    KB,
    MB,
    PAGE_1G,
    PAGE_2M,
    PAGE_4K,
    HugepagePolicy,
    effective_policy,
)
from .tlb import SetAssociativeTlb, WalkModel, streaming_miss_rate, translation_time

__all__ = [
    "CacheModel",
    "ScanResult", "SetAssociativeCache", "measure_cyclic_scan",
    "EPC_FAULT_S", "EpcPager", "paging_fraction", "paging_overhead_s",
    "NumaAllocator", "NumaPolicy", "effective_bandwidth",
    "remote_fraction", "sub_numa_misplacement",
    "GB", "KB", "MB", "PAGE_1G", "PAGE_2M", "PAGE_4K",
    "HugepagePolicy", "effective_policy",
    "SetAssociativeTlb", "WalkModel", "streaming_miss_rate",
    "translation_time",
]
