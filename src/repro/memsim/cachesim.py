"""Functional set-associative cache simulator.

Backs the analytical :class:`~repro.memsim.cache.CacheModel` the same
way the TLB simulator backs the streaming miss model: tests replay
synthetic access patterns (cyclic weight scans, growing KV streams)
against a real set-associative cache and check that the closed form's
DRAM-fraction predictions bound what LRU actually does.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


class SetAssociativeCache:
    """A set-associative cache with per-set LRU replacement.

    Args:
        capacity_bytes: Total capacity.
        line_bytes: Cache-line size.
        ways: Associativity.
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = 64,
                 ways: int = 16) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or ways <= 0:
            raise ValueError("capacity, line size, and ways must be positive")
        if capacity_bytes % (line_bytes * ways) != 0:
            raise ValueError("capacity must be a multiple of line*ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = capacity_bytes // (line_bytes * ways)
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    @property
    def capacity_bytes(self) -> int:
        return self.num_sets * self.ways * self.line_bytes

    def access(self, address: int) -> bool:
        """Access one address; returns True on hit."""
        line = address // self.line_bytes
        target = self._sets[line % self.num_sets]
        if line in target:
            target.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        if len(target) >= self.ways:
            target.popitem(last=False)
        target[line] = None
        return False

    def stream(self, start: int, length: int) -> None:
        """Touch every line of ``[start, start+length)`` once."""
        if length < 0:
            raise ValueError("length must be >= 0")
        for offset in range(0, length, self.line_bytes):
            self.access(start + offset)

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    @property
    def dram_bytes(self) -> int:
        """Bytes fetched from DRAM so far (misses x line size)."""
        return self.misses * self.line_bytes

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


@dataclass(frozen=True)
class ScanResult:
    """Outcome of a measured cyclic-scan experiment."""

    working_set_bytes: int
    passes: int
    measured_dram_fraction: float


def measure_cyclic_scan(cache: SetAssociativeCache, working_set_bytes: int,
                        passes: int = 3) -> ScanResult:
    """Stream a working set cyclically and measure the steady-state DRAM
    fraction (warm-up pass excluded)."""
    if working_set_bytes <= 0 or passes < 2:
        raise ValueError("need a positive working set and >= 2 passes")
    cache.stream(0, working_set_bytes)  # warm-up
    cache.reset_stats()
    for _ in range(passes - 1):
        cache.stream(0, working_set_bytes)
    touched = (passes - 1) * working_set_bytes
    return ScanResult(
        working_set_bytes=working_set_bytes,
        passes=passes,
        measured_dram_fraction=cache.dram_bytes / touched,
    )
