"""NUMA placement modelling.

Insight 6: TDX and SGX drivers lack working NUMA support, so memory ends
up poorly placed relative to the threads using it.  We model placement as
the *remote fraction* of memory traffic, then derive effective bandwidth
from local DRAM and the (possibly encrypted) socket interconnect.

A functional :class:`NumaAllocator` implements the actual placement
policies (bind / interleave / single-node / first-touch) over node
capacities so the remote fractions used analytically are backed by an
executable model that tests can probe.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..hardware.interconnect import Link


class NumaPolicy(str, Enum):
    """How allocations are placed relative to the consuming threads."""

    BOUND = "bound"              # QEMU node binding honoured (VM B / VM FH)
    INTERLEAVED = "interleaved"  # no binding: pages striped over nodes (VM NB)
    SINGLE_NODE = "single-node"  # SGX: memory exposed as one unified node
    TDX_DEFAULT = "tdx-default"  # TDX: bindings ignored, THP first-touch mix


#: Remote-traffic fraction by policy for a workload whose threads span
#: ``sockets_used`` sockets evenly.  With one socket everything is local.
_REMOTE_FRACTION_2S = {
    NumaPolicy.BOUND: 0.06,
    NumaPolicy.INTERLEAVED: 0.50,
    NumaPolicy.SINGLE_NODE: 0.50,
    NumaPolicy.TDX_DEFAULT: 0.07,
}


def remote_fraction(policy: NumaPolicy, sockets_used: int) -> float:
    """Fraction of memory traffic that crosses the socket interconnect."""
    if sockets_used < 1:
        raise ValueError("sockets_used must be >= 1")
    if sockets_used == 1:
        return 0.0
    return _REMOTE_FRACTION_2S[policy]


def sub_numa_misplacement(clusters: int, tee: bool) -> float:
    """Extra effective remote fraction caused by sub-NUMA clustering.

    SNC divides a socket into ``clusters`` NUMA domains; TEE drivers do
    not understand them, so a TEE guest's memory lands in the wrong
    cluster for ``(clusters-1)/clusters`` of accesses (paper §IV-A:
    overhead grew from ~5% to ~42% with SNC enabled).
    """
    if clusters < 1:
        raise ValueError("clusters must be >= 1")
    if clusters == 1 or not tee:
        return 0.0
    return (clusters - 1) / clusters


def effective_bandwidth(local_bw: float, upi: Link, fraction_remote: float,
                        upi_crypto_derate: float = 0.0,
                        cluster_penalty: float = 0.0) -> float:
    """Harmonic-mean bandwidth of a local/remote traffic mix.

    Remote traffic is capped by the UPI link, optionally derated by its
    TEE cryptographic unit; intra-socket SNC misplacement is modelled as
    an additional same-socket-but-wrong-cluster share running at reduced
    bandwidth.

    Args:
        local_bw: Aggregate local DRAM bandwidth of the sockets in use.
        upi: Socket interconnect.
        fraction_remote: Share of traffic crossing sockets, in [0, 1].
        upi_crypto_derate: Bandwidth fraction lost to link encryption.
        cluster_penalty: Share of local traffic hitting a wrong SNC
            cluster (runs at ~60% of local bandwidth).
    """
    if not 0.0 <= fraction_remote <= 1.0:
        raise ValueError("fraction_remote must be in [0, 1]")
    if not 0.0 <= upi_crypto_derate < 1.0:
        raise ValueError("upi_crypto_derate must be in [0, 1)")
    if not 0.0 <= cluster_penalty <= 1.0:
        raise ValueError("cluster_penalty must be in [0, 1]")
    remote_bw = upi.bandwidth_bytes_s * (1.0 - upi_crypto_derate)
    wrong_cluster_bw = local_bw * 0.6
    local_share = (1.0 - fraction_remote) * (1.0 - cluster_penalty)
    cluster_share = (1.0 - fraction_remote) * cluster_penalty
    denominator = (local_share / local_bw
                   + cluster_share / wrong_cluster_bw
                   + fraction_remote / remote_bw)
    return 1.0 / denominator


@dataclass
class _Node:
    capacity: int
    used: int = 0


class NumaAllocator:
    """Functional page allocator over NUMA nodes.

    Pages are allocated under a policy and charged to nodes; accesses from
    a given node classify as local or remote, giving measured remote
    fractions that back the analytical table above.
    """

    def __init__(self, node_capacities: list[int]) -> None:
        if not node_capacities or any(cap <= 0 for cap in node_capacities):
            raise ValueError("need at least one node with positive capacity")
        self.nodes = [_Node(capacity=cap) for cap in node_capacities]
        self._page_homes: list[int] = []
        self._next_interleave = 0

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def allocate(self, pages: int, policy: NumaPolicy,
                 preferred_node: int = 0) -> list[int]:
        """Allocate ``pages`` and return their page ids.

        Raises:
            MemoryError: If the policy's target nodes cannot hold them.
        """
        if pages < 0:
            raise ValueError("pages must be >= 0")
        if not 0 <= preferred_node < self.num_nodes:
            raise ValueError(f"preferred_node out of range: {preferred_node}")
        ids = []
        for _ in range(pages):
            node = self._place_one(policy, preferred_node)
            self.nodes[node].used += 1
            self._page_homes.append(node)
            ids.append(len(self._page_homes) - 1)
        return ids

    def _place_one(self, policy: NumaPolicy, preferred: int) -> int:
        if policy in (NumaPolicy.BOUND, NumaPolicy.SINGLE_NODE):
            node = preferred
            if self.nodes[node].used >= self.nodes[node].capacity:
                if policy is NumaPolicy.BOUND:
                    raise MemoryError(f"node {node} full under bound policy")
                node = self._first_free()
            return node
        if policy is NumaPolicy.INTERLEAVED:
            for _ in range(self.num_nodes):
                node = self._next_interleave
                self._next_interleave = (self._next_interleave + 1) % self.num_nodes
                if self.nodes[node].used < self.nodes[node].capacity:
                    return node
            raise MemoryError("all nodes full")
        # TDX_DEFAULT: first-touch-like — mostly lands on the busiest node
        # first, overflowing to others, because the guest cannot see the
        # host topology.
        return self._first_free()

    def _first_free(self) -> int:
        for index, node in enumerate(self.nodes):
            if node.used < node.capacity:
                return index
        raise MemoryError("all nodes full")

    def page_home(self, page_id: int) -> int:
        """Node that owns a page."""
        return self._page_homes[page_id]

    def measured_remote_fraction(self, page_ids: list[int],
                                 accessor_nodes: list[int]) -> float:
        """Remote share when ``accessor_nodes`` threads scan the pages evenly."""
        if not page_ids or not accessor_nodes:
            raise ValueError("need pages and accessors")
        remote = 0
        total = 0
        for position, page_id in enumerate(page_ids):
            accessor = accessor_nodes[position % len(accessor_nodes)]
            total += 1
            if self._page_homes[page_id] != accessor:
                remote += 1
        return remote / total
