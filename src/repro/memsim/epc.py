"""SGX Enclave Page Cache (EPC) pager.

SGX keeps enclave pages in a limited, hardware-protected region; pages
evicted to regular DRAM must be re-verified on the way back in, which is
the dominant SGX cost once the working set exceeds the EPC (paper §IV-A:
"we used the largest possible EPC, which significantly influences
overheads").  Two layers are provided:

* :class:`EpcPager` — a functional LRU pager counting faults/evictions;
* :func:`paging_overhead_s` — the closed-form per-step cost the engine
  uses for cyclically streamed working sets.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .pages import PAGE_4K

#: Cost of one EPC page fault: eviction + reload + MAC verification of a
#: 4 KiB page plus the AEX/resume round trip (order of ~10 us measured in
#: SGX literature; we keep an effective value).
EPC_FAULT_S = 8.0e-6


class EpcPager:
    """LRU pager over a fixed-size EPC.

    Pages are identified by index; the pager tracks residency, faults and
    evictions.  Invariant: resident pages never exceed capacity.
    """

    def __init__(self, epc_bytes: float, page_bytes: int = PAGE_4K) -> None:
        if epc_bytes <= 0 or page_bytes <= 0:
            raise ValueError("epc_bytes and page_bytes must be positive")
        self.page_bytes = page_bytes
        self.capacity_pages = max(1, int(epc_bytes // page_bytes))
        self._resident: OrderedDict[int, None] = OrderedDict()
        self.faults = 0
        self.evictions = 0
        self.accesses = 0

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    def touch(self, page_index: int) -> bool:
        """Access one page; returns True if it faulted."""
        self.accesses += 1
        if page_index in self._resident:
            self._resident.move_to_end(page_index)
            return False
        self.faults += 1
        if len(self._resident) >= self.capacity_pages:
            self._resident.popitem(last=False)
            self.evictions += 1
        self._resident[page_index] = None
        return True

    def touch_range(self, start_byte: int, length: int) -> int:
        """Touch a byte range; returns the number of faults incurred."""
        if length < 0:
            raise ValueError("length must be >= 0")
        before = self.faults
        first = start_byte // self.page_bytes
        last = (start_byte + max(length - 1, 0)) // self.page_bytes
        for page in range(first, last + 1):
            self.touch(page)
        return self.faults - before

    @property
    def fault_rate(self) -> float:
        return self.faults / self.accesses if self.accesses else 0.0


def paging_fraction(working_set_bytes: float, epc_bytes: float) -> float:
    """Fraction of streamed bytes that fault under cyclic LRU streaming.

    Identical structure to the TLB streaming model: a cyclic scan larger
    than the cache defeats LRU entirely for the excess fraction.
    """
    if working_set_bytes < 0 or epc_bytes <= 0:
        raise ValueError("working set must be >= 0 and EPC positive")
    if working_set_bytes <= epc_bytes:
        return 0.0
    return 1.0 - epc_bytes / working_set_bytes


def paging_fraction_vec(working_set_bytes, epc_bytes: float):
    """Array twin of :func:`paging_fraction` (vectorized engine)."""
    ws = np.asarray(working_set_bytes, dtype=float)
    if np.any(ws < 0) or epc_bytes <= 0:
        raise ValueError("working set must be >= 0 and EPC positive")
    safe = np.where(ws > 0.0, ws, 1.0)
    return np.where(ws <= epc_bytes, 0.0, 1.0 - epc_bytes / safe)


def paging_overhead_s(bytes_streamed: float, working_set_bytes: float,
                      epc_bytes: float, page_bytes: int = PAGE_4K,
                      fault_s: float = EPC_FAULT_S) -> float:
    """Seconds of EPC paging while streaming ``bytes_streamed``."""
    if bytes_streamed < 0:
        raise ValueError("bytes_streamed must be >= 0")
    fraction = paging_fraction(working_set_bytes, epc_bytes)
    faults = (bytes_streamed / page_bytes) * fraction
    return faults * fault_s
