"""TLB simulation and analytical miss modelling.

TDX's nested (EPT) translations and its refusal to use reserved 1 GB
hugepages (Insight 7) make TLB behaviour a first-order term of the
paper's overhead analysis.  This module provides:

* :class:`SetAssociativeTlb` — a functional set-associative LRU TLB used
  by tests to validate the analytical model on synthetic address streams;
* :func:`streaming_miss_rate` — the closed-form miss rate the execution
  engine uses for weight/KV streaming working sets;
* :func:`translation_time` — seconds of page-walk time for a byte stream.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np


class SetAssociativeTlb:
    """A set-associative TLB with true-LRU replacement per set.

    Args:
        entries: Total entry count (must be divisible by ``ways``).
        ways: Associativity.
        page_bytes: Page size the TLB holds translations for.
    """

    def __init__(self, entries: int, ways: int, page_bytes: int) -> None:
        if entries <= 0 or ways <= 0 or entries % ways != 0:
            raise ValueError("entries must be a positive multiple of ways")
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ValueError("page_bytes must be a positive power of two")
        self.entries = entries
        self.ways = ways
        self.page_bytes = page_bytes
        self.num_sets = entries // ways
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Translate one address; returns True on hit."""
        vpn = address // self.page_bytes
        target = self._sets[vpn % self.num_sets]
        if vpn in target:
            target.move_to_end(vpn)
            self.hits += 1
            return True
        self.misses += 1
        if len(target) >= self.ways:
            target.popitem(last=False)
        target[vpn] = None
        return False

    def access_range(self, start: int, length: int, stride: int = 64) -> None:
        """Touch every ``stride``-th byte in ``[start, start+length)``."""
        if length < 0 or stride <= 0:
            raise ValueError("length must be >= 0 and stride positive")
        for offset in range(0, length, stride):
            self.access(start + offset)

    @property
    def miss_rate(self) -> float:
        """Misses per access so far (0.0 before any access)."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


def streaming_miss_rate(working_set_bytes: float, page_bytes: int,
                        tlb_entries: int) -> float:
    """Per-page-touch TLB miss probability for a cyclically streamed set.

    Under *random replacement* (which approximates hardware TLBs better
    than strict LRU — set conflicts and pseudo-LRU break the pathological
    cyclic-scan thrash), a repeatedly streamed working set keeps
    ``reach/ws`` of its pages resident in steady state:

    * ``ws <= reach``: 0.0
    * ``ws >  reach``: ``1 - reach/ws`` of page touches miss.

    A strict-LRU TLB (see :class:`SetAssociativeTlb`) thrashes completely
    on cyclic scans, so this closed form is a lower bound on what the
    functional simulator measures (tests check exactly that).
    """
    if working_set_bytes < 0:
        raise ValueError("working_set_bytes must be >= 0")
    reach = float(tlb_entries) * page_bytes
    if working_set_bytes <= reach:
        return 0.0
    return 1.0 - reach / working_set_bytes


def streaming_miss_rate_vec(working_set_bytes, page_bytes: int,
                            tlb_entries: int):
    """Array twin of :func:`streaming_miss_rate` (vectorized engine)."""
    ws = np.asarray(working_set_bytes, dtype=float)
    if np.any(ws < 0):
        raise ValueError("working_set_bytes must be >= 0")
    reach = float(tlb_entries) * page_bytes
    safe = np.where(ws > 0.0, ws, 1.0)
    return np.where(ws <= reach, 0.0, 1.0 - reach / safe)


@dataclass(frozen=True)
class WalkModel:
    """Page-walk cost model.

    Attributes:
        native_walk_s: Effective cost of one non-virtualized walk.
        nested_multiplier: EPT/guest-walk inflation (TDX performs a 2-D
            walk: up to 24 loads instead of 4; walk caches bring the
            effective factor down to ~2.5-3.5x).
    """

    native_walk_s: float
    nested_multiplier: float = 1.0

    @property
    def walk_s(self) -> float:
        return self.native_walk_s * self.nested_multiplier


def translation_time(bytes_streamed: float, page_bytes: int,
                     miss_rate: float, walk: WalkModel) -> float:
    """Seconds spent in page walks while streaming ``bytes_streamed``.

    Page touches = bytes / page size; each touch misses with
    ``miss_rate`` and costs one walk.
    """
    if bytes_streamed < 0:
        raise ValueError("bytes_streamed must be >= 0")
    if not 0.0 <= miss_rate <= 1.0:
        raise ValueError("miss_rate must be in [0, 1]")
    page_touches = bytes_streamed / page_bytes
    return page_touches * miss_rate * walk.walk_s
