"""CPU system specifications.

Models the paper's two Emerald Rapids testbeds (EMR1 = dual Xeon Gold
6530, EMR2 = dual Xeon Platinum 8580) plus the cheaper Sapphire Rapids
alternative mentioned in §V-D2 as an "almost 2x cheaper, up to 40% worse"
option.  All rates that the execution engine consumes come from here.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .interconnect import UPI_EMR, Link


@dataclass(frozen=True)
class TlbSpec:
    """Second-level (unified) data-TLB capacity by page size."""

    entries_4k: int
    entries_2m: int
    entries_1g: int

    def entries_for(self, page_bytes: int) -> int:
        if page_bytes == 4 * 1024:
            return self.entries_4k
        if page_bytes == 2 * 1024 * 1024:
            return self.entries_2m
        if page_bytes == 1024 * 1024 * 1024:
            return self.entries_1g
        raise ValueError(f"unsupported page size {page_bytes}")

    def reach_bytes(self, page_bytes: int) -> int:
        """Bytes covered without a page walk."""
        return self.entries_for(page_bytes) * page_bytes


@dataclass(frozen=True)
class CpuSpec:
    """One CPU system (possibly dual socket).

    Attributes:
        name: System label used in experiment outputs (e.g. ``"EMR2"``).
        sockets: Number of populated sockets.
        cores_per_socket: Physical cores per socket.
        clock_hz: Sustained all-core frequency under AMX-heavy load.
        mem_bw_per_socket: Sustained local DRAM bandwidth per socket.
        mem_per_socket_bytes: DRAM capacity per socket.
        llc_bytes_per_socket: Last-level cache per socket.
        tlb: Second-level TLB capacities.
        page_walk_s: Effective cost of one native page walk (walk caches
            included); TEE backends multiply this for nested EPT walks.
        upi: Socket interconnect.
        sgx_epc_per_socket: SGX enclave page cache capacity per socket.
        price_usd: List price per CPU (for context in reports).
        sub_numa_clusters: SNC domains per socket when enabled (1 = off).
    """

    name: str
    sockets: int
    cores_per_socket: int
    clock_hz: float
    mem_bw_per_socket: float
    mem_per_socket_bytes: float
    llc_bytes_per_socket: float
    tlb: TlbSpec
    page_walk_s: float
    upi: Link
    sgx_epc_per_socket: float
    price_usd: float
    sub_numa_clusters: int = 1

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ValueError("sockets and cores_per_socket must be >= 1")
        if self.clock_hz <= 0 or self.mem_bw_per_socket <= 0:
            raise ValueError("clock and bandwidth must be positive")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def peak_flops(self, flops_per_cycle_per_core: float, cores: int) -> float:
        """Aggregate peak FLOP/s of ``cores`` cores on one engine rate."""
        if cores < 1 or cores > self.total_cores:
            raise ValueError(f"cores must be in [1, {self.total_cores}], got {cores}")
        return flops_per_cycle_per_core * self.clock_hz * cores

    def mem_bw(self, sockets_used: int) -> float:
        """Aggregate local DRAM bandwidth of the sockets in use."""
        if sockets_used < 1 or sockets_used > self.sockets:
            raise ValueError(
                f"sockets_used must be in [1, {self.sockets}], got {sockets_used}")
        return self.mem_bw_per_socket * sockets_used

    def with_sub_numa(self, clusters: int) -> "CpuSpec":
        """A copy with sub-NUMA clustering set to ``clusters`` domains."""
        if clusters < 1:
            raise ValueError("clusters must be >= 1")
        return replace(self, sub_numa_clusters=clusters)


_EMR_TLB = TlbSpec(entries_4k=2048, entries_2m=2048, entries_1g=16)

#: EMR1: dual Xeon Gold 6530 (32 cores/socket), 16x32 GiB DDR5-4800.
EMR1 = CpuSpec(
    name="EMR1",
    sockets=2,
    cores_per_socket=32,
    clock_hz=2.4e9,
    mem_bw_per_socket=220e9,
    mem_per_socket_bytes=256 * 2**30,
    llc_bytes_per_socket=160 * 2**20,
    tlb=_EMR_TLB,
    page_walk_s=45e-9,
    upi=UPI_EMR,
    sgx_epc_per_socket=128 * 2**30,
    price_usd=2130.0,
)

#: EMR2: dual Xeon Platinum 8580 (60 cores/socket), 16x32 GiB DDR5-4800.
EMR2 = CpuSpec(
    name="EMR2",
    sockets=2,
    cores_per_socket=60,
    clock_hz=2.3e9,
    mem_bw_per_socket=230e9,
    mem_per_socket_bytes=256 * 2**30,
    llc_bytes_per_socket=300 * 2**20,
    tlb=_EMR_TLB,
    page_walk_s=45e-9,
    upi=UPI_EMR,
    sgx_epc_per_socket=128 * 2**30,
    price_usd=10710.0,
)

#: Sapphire Rapids alternative: ~40% lower performance, ~2x cheaper rent
#: (§V-D2).  Modeled as a slower clock and bandwidth EMR2 sibling.
SPR = CpuSpec(
    name="SPR",
    sockets=2,
    cores_per_socket=56,
    clock_hz=1.9e9,
    mem_bw_per_socket=180e9,
    mem_per_socket_bytes=256 * 2**30,
    llc_bytes_per_socket=210 * 2**20,
    tlb=_EMR_TLB,
    page_walk_s=48e-9,
    upi=UPI_EMR,
    sgx_epc_per_socket=128 * 2**30,
    price_usd=5600.0,
)

_SYSTEMS = {spec.name: spec for spec in (EMR1, EMR2, SPR)}


def cpu_by_name(name: str) -> CpuSpec:
    """Look up a CPU system by name (``EMR1``, ``EMR2``, ``SPR``)."""
    if name not in _SYSTEMS:
        raise KeyError(f"unknown CPU system {name!r}; known: {sorted(_SYSTEMS)}")
    return _SYSTEMS[name]
