"""GPU specifications.

Models the paper's H100 NVL (94 GB) instance as rented from Azure
(NCCads_H100_v5 confidential / NCads_H100_v5 raw) and, for the security
discussion, the B100-class successor that adds HBM and NVLink encryption.
"""

from __future__ import annotations

from dataclasses import dataclass

from .interconnect import NVLINK4, PCIE_GEN5_X16, Link
from ..llm.datatypes import DType
from .engines import CUDA_TENSOR_RATES


@dataclass(frozen=True)
class GpuSpec:
    """One GPU device.

    Attributes:
        name: Device label.
        sms: Streaming multiprocessor count.
        clock_hz: Sustained SM clock.
        hbm_bytes: Device memory capacity.
        hbm_bw: Sustained device memory bandwidth.
        pcie: Host link.
        nvlink: Peer link.
        kernel_launch_s: Baseline kernel/graph launch latency.
        hbm_encrypted: Whether device memory is TEE-protected (False on
            H100 — a security gap the paper highlights; True on B100).
        nvlink_protected: Whether peer traffic is TEE-protected.
        price_usd: Approximate device list price.
    """

    name: str
    sms: int
    clock_hz: float
    hbm_bytes: float
    hbm_bw: float
    pcie: Link
    nvlink: Link
    kernel_launch_s: float
    hbm_encrypted: bool
    nvlink_protected: bool
    price_usd: float

    def peak_flops(self, dtype: DType) -> float:
        """Tensor-core peak FLOP/s for a datatype."""
        rate = CUDA_TENSOR_RATES.rate_for(dtype)
        if rate == 0.0:
            raise ValueError(f"{self.name} tensor cores do not support {dtype.name}")
        return rate * self.clock_hz * self.sms


H100_NVL = GpuSpec(
    name="H100-NVL",
    sms=132,
    clock_hz=1.6e9,
    hbm_bytes=94 * 10**9,
    hbm_bw=3.3e12,
    pcie=PCIE_GEN5_X16,
    nvlink=NVLINK4,
    kernel_launch_s=4.0e-6,
    hbm_encrypted=False,
    nvlink_protected=False,
    price_usd=30000.0,
)

#: B100-class successor: resolves H100's CC gaps (HBM + NVLink encryption)
#: at the cost of memory-path protection overhead (modeled, not measured —
#: the paper notes CC-mode B100s were not rentable).
B100 = GpuSpec(
    name="B100",
    sms=144,
    clock_hz=1.7e9,
    hbm_bytes=192 * 10**9,
    hbm_bw=8.0e12,
    pcie=PCIE_GEN5_X16,
    nvlink=NVLINK4,
    kernel_launch_s=4.0e-6,
    hbm_encrypted=True,
    nvlink_protected=True,
    price_usd=40000.0,
)

_GPUS = {spec.name: spec for spec in (H100_NVL, B100)}


def gpu_by_name(name: str) -> GpuSpec:
    """Look up a GPU by name (``H100-NVL``, ``B100``)."""
    if name not in _GPUS:
        raise KeyError(f"unknown GPU {name!r}; known: {sorted(_GPUS)}")
    return _GPUS[name]
