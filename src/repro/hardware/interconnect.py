"""Socket and device interconnect models.

Three links matter to the paper:

* **UPI** between CPU sockets — on TDX/SGX parts it carries a dedicated
  cryptographic unit, so cross-socket traffic pays an encryption derate
  on top of its raw bandwidth (Insight 6's multi-socket costs).
* **PCIe** between host and GPU — under confidential compute every
  transfer is staged through an encrypted bounce buffer.
* **NVLink** between GPUs — unprotected on H100, which forces confidential
  multi-GPU traffic through the host at a hard throughput cap (§V-D4).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Link:
    """A point-to-point interconnect.

    Attributes:
        name: Human-readable link name.
        bandwidth_bytes_s: Sustained one-direction bandwidth.
        latency_s: Per-transfer latency.
        encrypted_in_tee: Whether the TEE transparently protects traffic
            on this link (UPI: yes; PCIe/NVLink on H100: no — PCIe uses a
            software bounce buffer instead).
    """

    name: str
    bandwidth_bytes_s: float
    latency_s: float
    encrypted_in_tee: bool

    def transfer_time(self, size_bytes: float, efficiency: float = 1.0) -> float:
        """Seconds to move ``size_bytes`` at a bandwidth efficiency."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")
        if not 0.0 < efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        return self.latency_s + size_bytes / (self.bandwidth_bytes_s * efficiency)


#: UPI 2.0 on Emerald Rapids: 3 links x 24 GT/s, ~120 GB/s usable
#: aggregate for remote memory traffic between two sockets.
UPI_EMR = Link("upi-emr", bandwidth_bytes_s=120e9, latency_s=80e-9,
               encrypted_in_tee=True)

#: PCIe 5.0 x16 between host and H100 NVL.
PCIE_GEN5_X16 = Link("pcie5-x16", bandwidth_bytes_s=55e9, latency_s=1.0e-6,
                     encrypted_in_tee=False)

#: NVLink 4 between H100s (unprotected in CC mode).
NVLINK4 = Link("nvlink4", bandwidth_bytes_s=400e9, latency_s=0.5e-6,
               encrypted_in_tee=False)

#: Observed cap for CPU-routed GPU-to-GPU traffic in confidential mode
#: (no RDMA/GPUDirect): ~3 GB/s vs ~40 GB/s non-confidential (§V-D4).
CONFIDENTIAL_GPU_ROUTED_BW = 3e9
NONCONFIDENTIAL_GPU_ROUTED_BW = 40e9
