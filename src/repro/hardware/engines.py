"""Compute engines and per-datatype issue rates.

The paper's AMX study (Fig. 8) hinges on which matrix engine executes a
GEMM: Intel AMX tiles (bf16/int8), AVX-512 vector units (fp32/bf16, plus
an unoptimized int8 fallback — IPEX ships no AVX int8 kernels, the root
cause of the 96%/1700% no-AMX int8 overheads), or GPU tensor cores.
Rates are expressed in FLOPs (MACs * 2) per cycle per core so CPU specs
can scale them by core count and clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..llm.datatypes import BFLOAT16, FLOAT32, INT8, DType


class Engine(str, Enum):
    """A matrix/vector execution engine."""

    AMX = "amx"
    AVX512 = "avx512"
    CUDA_TENSOR = "cuda_tensor"


@dataclass(frozen=True)
class EngineRates:
    """Issue rates of one engine, FLOPs per cycle per core.

    ``0.0`` means the engine cannot execute the datatype at all.
    """

    engine: Engine
    rates: dict[str, float]

    def rate_for(self, dtype: DType) -> float:
        """FLOPs/cycle/core for a datatype (0 when unsupported)."""
        return self.rates.get(dtype.name, 0.0)

    def supports(self, dtype: DType) -> bool:
        return self.rate_for(dtype) > 0.0


#: Intel AMX: one TMUL unit per core, 16x16x32 bf16 / 16x16x64 int8 tiles.
AMX_RATES = EngineRates(Engine.AMX, {
    BFLOAT16.name: 1024.0,
    INT8.name: 2048.0,
    # AMX has no fp32 tiles; fp32 GEMMs fall back to AVX-512.
    FLOAT32.name: 0.0,
})

#: AVX-512 with two 512-bit FMA ports; bf16 via AVX512-BF16 dot products.
#: The int8 rate models IPEX's unoptimized fallback (dequantize-to-fp32
#: temporaries and vector FMA), not a tuned VNNI kernel.
AVX512_RATES = EngineRates(Engine.AVX512, {
    FLOAT32.name: 64.0,
    BFLOAT16.name: 128.0,
    INT8.name: 96.0,
})

#: Per-SM per-cycle tensor-core rates for H100 (used with SM count/clock).
CUDA_TENSOR_RATES = EngineRates(Engine.CUDA_TENSOR, {
    FLOAT32.name: 1024.0,   # TF32 path
    BFLOAT16.name: 2048.0,
    INT8.name: 4096.0,
})


def best_cpu_engine(dtype: DType, amx_enabled: bool) -> tuple[Engine, float]:
    """Pick the fastest available CPU engine for a datatype.

    Returns:
        ``(engine, flops_per_cycle_per_core)``.

    Raises:
        ValueError: If no engine can execute the datatype.
    """
    candidates = []
    if amx_enabled and AMX_RATES.supports(dtype):
        candidates.append((Engine.AMX, AMX_RATES.rate_for(dtype)))
    if AVX512_RATES.supports(dtype):
        candidates.append((Engine.AVX512, AVX512_RATES.rate_for(dtype)))
    if not candidates:
        raise ValueError(f"no CPU engine supports dtype {dtype.name}")
    return max(candidates, key=lambda pair: pair[1])


def is_fallback_path(dtype: DType, amx_enabled: bool) -> bool:
    """True when the dtype lands on the unoptimized AVX int8 fallback.

    IPEX quantization is fine-tuned for AMX; without AMX the int8 path
    dequantizes through fp32 temporaries, inflating memory traffic and
    destroying NUMA locality (paper §IV-C).
    """
    return dtype.name == INT8.name and not amx_enabled
