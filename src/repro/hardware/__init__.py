"""Hardware substrate: CPU/GPU specs, compute engines, interconnects."""

from .cpu import EMR1, EMR2, SPR, CpuSpec, TlbSpec, cpu_by_name
from .engines import (
    AMX_RATES,
    AVX512_RATES,
    CUDA_TENSOR_RATES,
    Engine,
    EngineRates,
    best_cpu_engine,
    is_fallback_path,
)
from .gpu import B100, H100_NVL, GpuSpec, gpu_by_name
from .interconnect import (
    CONFIDENTIAL_GPU_ROUTED_BW,
    NONCONFIDENTIAL_GPU_ROUTED_BW,
    NVLINK4,
    PCIE_GEN5_X16,
    UPI_EMR,
    Link,
)

__all__ = [
    "EMR1", "EMR2", "SPR", "CpuSpec", "TlbSpec", "cpu_by_name",
    "AMX_RATES", "AVX512_RATES", "CUDA_TENSOR_RATES", "Engine",
    "EngineRates", "best_cpu_engine", "is_fallback_path",
    "B100", "H100_NVL", "GpuSpec", "gpu_by_name",
    "CONFIDENTIAL_GPU_ROUTED_BW", "NONCONFIDENTIAL_GPU_ROUTED_BW",
    "NVLINK4", "PCIE_GEN5_X16", "UPI_EMR", "Link",
]
