"""Phased confidential boot model: profiles, sequences, defaults."""

import math

import pytest

from repro.llm.config import LLAMA2_7B, LLAMA2_70B
from repro.llm.datatypes import BFLOAT16, INT8
from repro.tee.boot import (
    ATTESTING,
    BOOT_PHASES,
    DEFAULT_PROFILES,
    KEY_RELEASE,
    MODEL_DECRYPT,
    PHASE_LIVE,
    PROVISIONING,
    TAX_FLEET_KINDS,
    TAX_ROW_FIELDS,
    TAX_TEE_KINDS,
    WEIGHT_LOAD,
    BootProfile,
    BootSequence,
    boot_breakdown,
    boot_profile,
    constant_profile,
)


class TestBootProfile:
    def test_phase_order(self):
        assert BOOT_PHASES == (PROVISIONING, ATTESTING, KEY_RELEASE,
                               MODEL_DECRYPT, WEIGHT_LOAD)

    def test_defaults_cover_all_backend_kinds(self):
        assert set(DEFAULT_PROFILES) == {"baremetal", "vm", "gpu", "tdx",
                                         "sgx", "cgpu"}

    def test_tee_kinds_pay_attestation_and_decrypt(self):
        for kind in TAX_TEE_KINDS:
            profile = DEFAULT_PROFILES[kind]
            assert profile.quote_s > 0
            assert profile.kms_round_trips > 0
            assert profile.decrypt_gbps is not None

    def test_non_tee_kinds_skip_confidential_phases(self):
        for kind in ("baremetal", "vm", "gpu"):
            durations = DEFAULT_PROFILES[kind].phase_durations(1e9)
            assert durations[1] == durations[2] == durations[3] == 0.0

    def test_durations_scale_with_model_bytes(self):
        profile = DEFAULT_PROFILES["tdx"]
        small = profile.sequence(LLAMA2_7B, BFLOAT16)
        large = profile.sequence(LLAMA2_70B, BFLOAT16)
        assert large.duration_of(MODEL_DECRYPT) > small.duration_of(
            MODEL_DECRYPT)
        assert large.duration_of(WEIGHT_LOAD) > small.duration_of(
            WEIGHT_LOAD)
        # Fixed phases do not scale.
        assert large.duration_of(ATTESTING) == small.duration_of(ATTESTING)

    def test_dtype_changes_byte_proportional_phases(self):
        profile = DEFAULT_PROFILES["sgx"]
        bf16 = profile.sequence(LLAMA2_7B, BFLOAT16)
        int8 = profile.sequence(LLAMA2_7B, INT8)
        assert int8.duration_of(WEIGHT_LOAD) < bf16.duration_of(WEIGHT_LOAD)

    def test_overrides(self):
        profile = boot_profile("tdx", quote_s=9.0)
        assert profile.quote_s == 9.0
        assert profile.provision_s == DEFAULT_PROFILES["tdx"].provision_s

    def test_unknown_kind_and_terms_rejected(self):
        with pytest.raises(ValueError, match="no default boot profile"):
            boot_profile("sev-snp")
        with pytest.raises(ValueError, match="unknown boot profile terms"):
            boot_profile("tdx", dcap_s=1.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -1.0])
    def test_non_finite_terms_rejected(self, bad):
        with pytest.raises(ValueError):
            BootProfile("tdx", provision_s=bad)
        with pytest.raises(ValueError):
            BootProfile("tdx", quote_s=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), 0.0, -2.0])
    def test_bad_throughputs_rejected(self, bad):
        with pytest.raises(ValueError):
            BootProfile("tdx", decrypt_gbps=bad)
        with pytest.raises(ValueError):
            BootProfile("tdx", load_gbps=bad)

    def test_plaintext_model_skips_key_release(self):
        # No decrypt throughput -> no key to release, even with KMS terms.
        profile = BootProfile("vm", kms_round_trip_s=0.5, kms_round_trips=3,
                              load_gbps=5.0)
        durations = profile.phase_durations(1e9)
        assert durations[2] == 0.0 and durations[3] == 0.0

    def test_fingerprint_round_trips(self):
        profile = DEFAULT_PROFILES["cgpu"]
        assert BootProfile(**profile.fingerprint()) == profile


class TestBootSequence:
    def _seq(self):
        return DEFAULT_PROFILES["tdx"].sequence(LLAMA2_7B, BFLOAT16)

    def test_total_is_sum_of_phases(self):
        seq = self._seq()
        assert seq.total_s == sum(seq.durations)
        assert seq.total_s > 0

    def test_phase_at_walkthrough(self):
        seq = self._seq()
        ready = 50.0
        start = ready - seq.total_s
        for phase, begin, end in seq.schedule(ready):
            if end > begin:
                assert seq.phase_at((begin + end) / 2, ready) == phase
        assert seq.phase_at(ready, ready) == PHASE_LIVE
        assert seq.phase_at(ready + 1.0, ready) == PHASE_LIVE
        # Penalty-stretched boots park the extra time in provisioning.
        assert seq.phase_at(start - 10.0, ready) == PROVISIONING

    def test_reattest_excludes_provisioning(self):
        seq = self._seq()
        assert seq.remaining_from(ATTESTING) == pytest.approx(
            seq.total_s - seq.duration_of(PROVISIONING))
        assert seq.remaining_from(PROVISIONING) == seq.total_s

    def test_unknown_phase_rejected(self):
        seq = self._seq()
        with pytest.raises(ValueError, match="unknown boot phase"):
            seq.remaining_from("warming_up")

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="phase durations"):
            BootSequence("tdx", (1.0, 2.0))

    def test_non_finite_durations_rejected(self):
        with pytest.raises(ValueError):
            BootSequence("tdx", (1.0, float("nan"), 0.0, 0.0, 0.0))
        with pytest.raises(ValueError):
            BootSequence("tdx", (1.0, -0.5, 0.0, 0.0, 0.0))

    def test_to_state_is_json_plain(self):
        state = self._seq().to_state()
        assert state["kind"] == "tdx"
        assert len(state["durations"]) == len(BOOT_PHASES)


class TestConstantProfile:
    def test_all_time_in_provisioning(self):
        seq = constant_profile("tdx", 12.5).sequence(LLAMA2_7B, BFLOAT16)
        assert seq.total_s == 12.5
        assert seq.duration_of(PROVISIONING) == 12.5
        assert seq.remaining_from(ATTESTING) == 0.0

    def test_rejects_bad_totals(self):
        for bad in (float("nan"), float("inf"), -1.0):
            with pytest.raises(ValueError):
                constant_profile("tdx", bad)


class TestAttestTax:
    def test_breakdown_rows(self):
        rows = boot_breakdown()
        assert [row["kind"] for row in rows] == list(TAX_TEE_KINDS)
        for row in rows:
            phase_sum = sum(row[phase] for phase in BOOT_PHASES)
            assert row["total_s"] == pytest.approx(phase_sum)
            assert 0 < row["reattest_s"] < row["total_s"]
            assert math.isfinite(row["total_s"])

    def test_row_fields_order_is_canonical(self):
        # The golden snapshot and CLI table both key off this tuple.
        assert TAX_ROW_FIELDS[0] == "kind"
        assert set(TAX_FLEET_KINDS) <= set(TAX_TEE_KINDS)
        assert "tax_usd_per_mtok" in TAX_ROW_FIELDS
        assert "tax_p99_ttft_s" in TAX_ROW_FIELDS
