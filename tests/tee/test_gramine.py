"""Gramine manifest generation, parsing, and validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memsim.pages import GB, MB
from repro.tee.gramine import GramineManifest, inference_manifest, parse_manifest


def make_manifest(**overrides):
    base = dict(entrypoint="/usr/bin/python3",
                enclave_size_bytes=16 * GB, max_threads=32,
                trusted_files=["/usr/bin/python3"],
                encrypted_files=["/models/w.bin"],
                allowed_files=["/tmp/out"],
                env={"OMP_NUM_THREADS": "16"})
    base.update(overrides)
    return GramineManifest(**base)


class TestValidation:
    def test_valid_manifest_passes(self):
        make_manifest().validate()

    def test_enclave_size_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            make_manifest(enclave_size_bytes=3 * GB).validate()

    def test_minimum_size(self):
        with pytest.raises(ValueError, match="minimum"):
            make_manifest(enclave_size_bytes=128 * MB).validate()

    def test_empty_entrypoint(self):
        with pytest.raises(ValueError, match="entrypoint"):
            make_manifest(entrypoint="").validate()

    def test_file_cannot_be_trusted_and_encrypted(self):
        with pytest.raises(ValueError, match="both"):
            make_manifest(trusted_files=["/a"],
                          encrypted_files=["/a"]).validate()

    def test_protected_file_cannot_be_allowed(self):
        with pytest.raises(ValueError, match="allowed"):
            make_manifest(trusted_files=["/a"],
                          allowed_files=["/a"]).validate()

    def test_unknown_attestation_mode(self):
        with pytest.raises(ValueError, match="attestation"):
            make_manifest(remote_attestation="epid").validate()


class TestRender:
    def test_render_contains_core_keys(self):
        text = make_manifest().render()
        assert 'libos.entrypoint = "/usr/bin/python3"' in text
        assert 'sgx.enclave_size = "16G"' in text
        assert "sgx.max_threads = 32" in text

    def test_render_lists_files(self):
        text = make_manifest().render()
        assert 'file:/usr/bin/python3' in text
        assert 'type = "encrypted"' in text

    def test_render_validates_first(self):
        with pytest.raises(ValueError):
            make_manifest(enclave_size_bytes=5 * GB).render()


class TestRoundTrip:
    def test_basic_round_trip(self):
        manifest = make_manifest()
        assert parse_manifest(manifest.render()) == manifest

    @settings(max_examples=25, deadline=None)
    @given(
        size_g=st.sampled_from([1, 2, 4, 8, 64, 128]),
        threads=st.integers(min_value=1, max_value=512),
        preheat=st.booleans(),
        attestation=st.sampled_from(["dcap", "none"]),
        n_trusted=st.integers(min_value=0, max_value=4),
    )
    def test_round_trip_property(self, size_g, threads, preheat,
                                 attestation, n_trusted):
        manifest = GramineManifest(
            entrypoint="/bin/app",
            enclave_size_bytes=size_g * GB,
            max_threads=threads,
            trusted_files=[f"/lib/t{i}" for i in range(n_trusted)],
            encrypted_files=["/models/weights"],
            remote_attestation=attestation,
            preheat_enclave=preheat,
            env={"K": "v"},
        )
        assert parse_manifest(manifest.render()) == manifest


class TestInferenceManifest:
    def test_paper_shape(self):
        manifest = inference_manifest("/models/llama2-7b.safetensors")
        manifest.validate()
        assert "/models/llama2-7b.safetensors" in manifest.encrypted_files
        assert manifest.remote_attestation == "dcap"
        assert manifest.preheat_enclave  # EPC warmup (§IV-A)

    def test_tcmalloc_preloaded(self):
        """§IV-D: TCMalloc reduces memory pressure."""
        manifest = inference_manifest("/models/w.bin")
        assert "tcmalloc" in manifest.env.get("LD_PRELOAD", "")
