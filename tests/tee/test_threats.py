"""Threat taxonomy and mitigation logic (paper Fig. 1)."""


from repro.tee.base import backend_by_name
from repro.tee.threats import (
    THREATS,
    Asset,
    Attacker,
    coverage,
    coverage_score,
    mitigates,
    uncovered,
)


class TestCatalogue:
    def test_covers_paper_assets(self):
        assets = {threat.asset for threat in THREATS}
        assert assets == {Asset.MODEL_WEIGHTS, Asset.USER_PROMPTS,
                          Asset.INFERENCE_INTEGRITY}

    def test_privileged_adversaries(self):
        attackers = {threat.attacker for threat in THREATS}
        assert Attacker.CLOUD_PROVIDER in attackers
        assert Attacker.HOST_ADMIN in attackers

    def test_names_unique(self):
        names = [threat.name for threat in THREATS]
        assert len(names) == len(set(names))


class TestMitigation:
    def test_baremetal_mitigates_nothing(self):
        assert coverage_score("baremetal") == 0.0

    def test_vm_mitigates_nothing(self):
        """A plain VM gives no protection against the host (§II)."""
        assert coverage_score("vm") == 0.0

    def test_cpu_tees_cover_everything(self):
        assert coverage_score("tdx") == 1.0
        assert coverage_score("sgx") == 1.0

    def test_cgpu_leaves_hbm_and_links_open(self):
        """The paper's cGPU caveats: HBM unencrypted, NVLink unprotected."""
        open_threats = {threat.name for threat in uncovered("cgpu")}
        assert open_threats == {"interconnect-snoop",
                                "accelerator-memory-scrape"}

    def test_b100_closes_the_gpu_gaps(self):
        assert coverage_score("cgpu-b100") == 1.0

    def test_ordering_matches_insight_11(self):
        """CPU TEEs strictly dominate the H100 cGPU on coverage."""
        assert coverage_score("tdx") > coverage_score("cgpu")
        assert coverage_score("cgpu") > coverage_score("baremetal")

    def test_memory_scrape_needs_encryption(self):
        scrape = next(t for t in THREATS if t.name == "memory-scrape")
        assert mitigates(backend_by_name("tdx"), scrape)
        assert not mitigates(backend_by_name("baremetal"), scrape)

    def test_coverage_map_complete(self):
        assert set(coverage("tdx")) == {t.name for t in THREATS}
